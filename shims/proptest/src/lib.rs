//! Offline stand-in for the `proptest` crate.
//!
//! The registry is unreachable in this build environment, so this shim
//! reimplements the subset of proptest the workspace's property tests use:
//! the `proptest!` macro (with optional `#![proptest_config(..)]`),
//! `any::<T>()` for primitive integers, integer range strategies,
//! tuple strategies, `Just`, `.prop_map`, `prop_oneof!`,
//! `proptest::collection::vec`, and the `prop_assert*`/`prop_assume!`
//! macros.
//!
//! Differences from upstream, by design: generation is driven by a
//! deterministic per-test RNG (seeded from the test name) so failures
//! always reproduce, and there is no shrinking — a failing case reports
//! the case number and panics.

/// Everything a property test normally imports.
pub mod prelude {
    pub use crate::strategy::{any, Just, Map, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

pub mod test_runner {
    /// Controls how many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 48 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the whole test fails.
        Fail(String),
        /// A `prop_assume!` precondition was not met; the case is skipped.
        Reject(String),
    }

    /// Deterministic RNG handed to strategies.
    ///
    /// Seeded from the test name, so every run of a given test explores the
    /// same sequence — failures reproduce without a persistence file.
    pub struct TestRunner {
        state: u64,
    }

    impl TestRunner {
        pub fn new(_config: &ProptestConfig, test_name: &str) -> Self {
            // FNV-1a over the name, mixed with a fixed odd constant so the
            // all-zero state is unreachable.
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in test_name.bytes() {
                seed ^= byte as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            TestRunner { state: seed | 1 }
        }

        /// xorshift64* step.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRunner;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream there is no shrink tree: `generate` returns a plain
    /// value. `prop_map`/`boxed` require `Sized` so the trait stays
    /// object-safe for [`Union`].
    pub trait Strategy {
        type Value;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;

        fn generate(&self, runner: &mut TestRunner) -> V {
            (**self).generate(runner)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, runner: &mut TestRunner) -> O {
            (self.f)(self.inner.generate(runner))
        }
    }

    /// Uniform choice between boxed alternatives; backs `prop_oneof!`.
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, runner: &mut TestRunner) -> V {
            let pick = (runner.next_u64() % self.arms.len() as u64) as usize;
            self.arms[pick].generate(runner)
        }
    }

    /// Strategy for any value of a primitive type; see [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Generates arbitrary values of `T`, biased toward boundary values.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, runner: &mut TestRunner) -> T {
            T::arbitrary(runner)
        }
    }

    /// Types [`any`] can generate.
    pub trait Arbitrary {
        fn arbitrary(runner: &mut TestRunner) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($ty:ty),+) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(runner: &mut TestRunner) -> $ty {
                    // One case in eight is a boundary value: integer
                    // overflow bugs live at the edges, and a uniform draw
                    // over a wide type almost never lands there.
                    match runner.next_u64() % 8 {
                        0 => 0 as $ty,
                        1 => <$ty>::MAX,
                        2 => <$ty>::MIN,
                        3 => (runner.next_u64() % 16) as $ty,
                        _ => runner.next_u64() as $ty,
                    }
                }
            }
        )+};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(runner: &mut TestRunner) -> bool {
            runner.next_u64() & 1 == 1
        }
    }

    /// Uniform draw from `[lo, hi]` (inclusive), computed in `i128` so the
    /// full span of every primitive integer type fits.
    pub(crate) fn sample_inclusive(runner: &mut TestRunner, lo: i128, hi: i128) -> i128 {
        assert!(lo <= hi, "empty range used as a proptest strategy");
        let span = (hi - lo) as u128 + 1;
        let draw = ((runner.next_u64() as u128) << 64) | runner.next_u64() as u128;
        lo + (draw % span) as i128
    }

    macro_rules! range_strategy {
        ($($ty:ty),+) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, runner: &mut TestRunner) -> $ty {
                    assert!(self.start < self.end, "empty range used as a proptest strategy");
                    sample_inclusive(runner, self.start as i128, self.end as i128 - 1) as $ty
                }
            }

            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, runner: &mut TestRunner) -> $ty {
                    sample_inclusive(runner, *self.start() as i128, *self.end() as i128) as $ty
                }
            }
        )+};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                    ($(self.$idx.generate(runner),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod collection {
    use crate::strategy::{sample_inclusive, Strategy};
    use crate::test_runner::TestRunner;

    /// Length bounds for [`vec()`], inclusive of both ends.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range for collection::vec");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy producing `Vec`s of `element` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len =
                sample_inclusive(runner, self.size.min as i128, self.size.max as i128) as usize;
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs. The `#[test]` attribute written inside the block is re-emitted
/// as-is (upstream proptest works the same way).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(&config, stringify!($name));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            // The attempt cap bounds tests whose prop_assume! rejects often.
            while accepted < config.cases && attempts < config.cases.saturating_mul(8) + 64 {
                attempts += 1;
                let ($($arg,)+) = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut runner),)+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body;
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("{} failed at case #{}: {}", stringify!($name), accepted, msg)
                    }
                }
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

/// `assert!` that reports through proptest's error channel.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that reports through proptest's error channel.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|n| n * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in -5i32..=5, len in 0..=6usize) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!(len <= 6);
        }

        #[test]
        fn tuples_maps_and_vecs_compose(
            (a, b) in (0u8..8, any::<u16>()),
            v in crate::collection::vec(arb_even(), 1..10),
            pick in prop_oneof![Just(1u32), Just(2u32), 10u32..12],
        ) {
            prop_assert!(a < 8);
            let _ = b;
            prop_assert!(!v.is_empty() && v.iter().all(|e| e % 2 == 0));
            prop_assert!(pick == 1 || pick == 2 || pick == 10 || pick == 11, "pick was {}", pick);
        }

        #[test]
        fn assume_rejects_without_failing(n in any::<u8>()) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        let config = ProptestConfig::default();
        let mut a = TestRunner::new(&config, "same");
        let mut b = TestRunner::new(&config, "same");
        let strat = (0u32..1_000_000, any::<u64>());
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
