//! Offline stand-in for the `criterion` crate.
//!
//! The registry is unreachable in this build environment, so this shim
//! provides the subset of criterion's API the workspace benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups with
//! `sample_size`/`throughput`, `Bencher::iter`, `BenchmarkId`, and
//! `black_box` — backed by a simple wall-clock timer. It reports
//! mean ns/iter and, when a throughput is declared, elements/sec.
//! Statistical rigor is intentionally out of scope; the numbers are for
//! trend tracking, not publication.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared work per iteration, used to derive rate figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Identifier combining a function name and a parameter, e.g. `decode/64`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timer handle passed to the closure under measurement.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Returns a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        run_benchmark(id, sample_size, None, f);
        self
    }

    /// Runs any pending reports. No-op in this shim.
    pub fn final_summary(&mut self) {}
}

/// A named set of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Warm-up pass, then scale iterations so each sample runs long enough
    // for the Instant clock to resolve it.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let warm = bencher.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(20);
    let iters = (target.as_nanos() / warm.as_nanos()).clamp(1, 1_000_000) as u64;

    let samples = sample_size.max(1);
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..samples {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed / iters as u32;
        best = best.min(per_iter);
        total += per_iter;
    }
    let mean = total / samples as u32;

    let rate = throughput.map(|t| {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let per_sec = count as f64 / mean.as_secs_f64().max(1e-12);
        format!("  {:>14.0} {}", per_sec, unit)
    });
    println!(
        "bench: {:<40} {:>12} ns/iter (best {} ns){}",
        id,
        mean.as_nanos(),
        best.as_nanos(),
        rate.unwrap_or_default()
    );
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2).throughput(Throughput::Elements(8));
        let mut ran = 0u32;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran += 1;
        });
        group.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
        assert!(ran >= 1);
    }
}
