//! Offline stand-in for the `bytes` crate.
//!
//! The real `bytes` crate lives on crates.io, which this build environment
//! cannot reach; this shim implements exactly the slice-cursor surface the
//! workspace uses (`Buf` over `&[u8]`, `BufMut`/`BytesMut` for
//! serialization). Semantics match the upstream crate for that subset,
//! including panics on under-length reads.

use std::ops::{Deref, DerefMut};

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes remaining between the cursor and the end of the source.
    fn remaining(&self) -> usize;

    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt` exceeds [`Buf::remaining`].
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes from the cursor into `dst` and advances.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u32` and advances by 4.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past the end of the buffer");
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy past the end of the buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Write sink for growing byte buffers.
pub trait BufMut {
    /// Appends `src`.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, value: u32) {
        self.put_slice(&value.to_le_bytes());
    }
}

/// A growable byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(buf: BytesMut) -> Vec<u8> {
        buf.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_bytesmut_and_slice_cursor() {
        let mut out = BytesMut::with_capacity(16);
        out.put_u32_le(0xdead_beef);
        out.put_slice(b"xyz");
        let serialized = out.to_vec();

        let mut cursor: &[u8] = &serialized;
        assert_eq!(cursor.remaining(), 7);
        assert_eq!(cursor.get_u32_le(), 0xdead_beef);
        let mut tail = [0u8; 2];
        cursor.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        cursor.advance(1);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "advance past the end")]
    fn advance_past_end_panics() {
        let mut cursor: &[u8] = b"ab";
        cursor.advance(3);
    }
}
