//! Shared helpers for the cross-crate integration tests.

use rtos::TaskHandle;
use tytan::platform::{Platform, PlatformConfig};
use tytan::toolchain::{SecureTaskBuilder, TaskSource};
use tytan_crypto::TaskId;

/// Boots a default platform, panicking on failure (test context).
pub fn boot() -> Platform {
    Platform::boot(PlatformConfig::default()).expect("platform boots")
}

/// A secure task that increments `counter` forever.
pub fn counter_task(name: &str) -> TaskSource {
    SecureTaskBuilder::new(
        name,
        "main:\n movi r1, counter\n\
         loop:\n ldw r2, [r1]\n addi r2, 1\n stw [r1], r2\n jmp loop\n",
    )
    .data("counter:\n .word 0\n")
    .stack_len(256)
    .build()
    .expect("counter task assembles")
}

/// Loads a task and waits for completion.
pub fn load(platform: &mut Platform, source: &TaskSource, priority: u8) -> (TaskHandle, TaskId) {
    let token = platform.begin_load(source, priority);
    platform
        .wait_load(token, 200_000_000)
        .expect("load completes")
}

/// Reads the `counter` word of a loaded counter task.
pub fn read_counter(platform: &mut Platform, handle: TaskHandle, source: &TaskSource) -> u32 {
    let base = platform.task_base(handle).expect("task loaded");
    let addr = base + source.symbol_offset("counter").expect("counter symbol");
    platform.debug_read_word(addr).expect("readable")
}
