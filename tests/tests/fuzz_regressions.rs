//! Replays the minimized fuzz corpus in the normal test tier.
//!
//! Every case under `tests/corpus/` is a bug the differential
//! fault-injection plane once found (or a hand-pinned hazard), shrunk
//! to its essence. Replaying them here means a regression fails plain
//! `cargo test` — no fuzz campaign required — and the commit that pins
//! a new case documents the bug it fixed.

use std::path::PathBuf;
use tytan_fuzz::corpus::{load_dir, replay_dir};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

#[test]
fn corpus_exists_and_parses() {
    let cases = load_dir(&corpus_dir()).expect("corpus dir loads");
    assert!(
        !cases.is_empty(),
        "tests/corpus/ must hold at least the seed corpus"
    );
}

#[test]
fn every_corpus_case_replays_clean() {
    let failures = replay_dir(&corpus_dir()).expect("corpus dir loads");
    assert!(
        failures.is_empty(),
        "pinned fuzz regressions resurfaced:\n{}",
        failures
            .iter()
            .map(|(name, msg)| format!("  {name}: {msg}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn fixed_seed_smoke_campaign_is_clean() {
    // A small cross-scenario sweep in the test tier; CI's fuzz-smoke
    // job runs the full 13,500-case campaign via the CLI.
    let report = tytan_fuzz::run_campaign(&tytan_fuzz::CampaignConfig {
        seed: 0x1350c27,
        cases: 25,
        ..tytan_fuzz::CampaignConfig::default()
    });
    assert!(
        report.is_clean(),
        "smoke campaign failures:\n{}",
        report
            .failures
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(
        report.total_cases(),
        25 * tytan_fuzz::campaign::SCENARIOS.len() as u64
    );
}
