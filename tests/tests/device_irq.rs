//! Device-IRQ-to-task routing: a secure driver task receives its
//! device's interrupts through the Int Mux as authenticated mailbox
//! messages, without the OS observing the payload path.

use sp_emu::devices::Sensor;
use tytan::platform::{Platform, PlatformConfig};
use tytan::toolchain::SecureTaskBuilder;
use tytan::TaskSource;

const VECTOR: u8 = 41;
const TAG: u32 = 0x1e;

fn driver_task() -> TaskSource {
    SecureTaskBuilder::new(
        "driver",
        format!(
            "main:\n\
             wait:\n movi r1, SYS_SUSPEND\n int SYS_VECTOR\n\
             movi r1, __mailbox\n ldw r2, [r1]\n cmpi r2, 0\n jz wait\n\
             ldw r3, [r1+16]\n cmpi r3, {TAG}\n jnz clear\n\
             movi r4, events\n ldw r5, [r4]\n addi r5, 1\n stw [r4], r5\n\
             clear:\n xor r2, r2\n stw [r1], r2\n jmp wait\n"
        ),
    )
    .data("events:\n .word 0\n")
    .build()
    .expect("assembles")
}

fn boot_with_irq() -> Platform {
    let config = PlatformConfig {
        device_irq_vectors: vec![VECTOR],
        ..Default::default()
    };
    Platform::boot(config).expect("boots")
}

#[test]
fn bound_irq_wakes_the_driver_task() {
    let mut platform = boot_with_irq();
    platform
        .device_mut::<Sensor>("radar")
        .unwrap()
        .set_trace(vec![(0, 0), (400_000, 90), (800_000, 0), (1_200_000, 95)]);
    platform
        .device_mut::<Sensor>("radar")
        .unwrap()
        .set_threshold_irq(50, VECTOR);

    let driver = driver_task();
    let token = platform.begin_load(&driver, 5);
    let (handle, id) = platform.wait_load(token, 400_000_000).unwrap();
    platform.bind_irq(VECTOR, id, TAG);
    platform.run_for(2_000_000).unwrap();

    let base = platform.task_base(handle).unwrap();
    let events = platform
        .debug_read_word(base + driver.symbol_offset("events").unwrap())
        .unwrap();
    assert_eq!(events, 2, "both rising edges delivered");
    // The mailbox sender is the reserved hardware identity.
    let mailbox = platform.rtm().lookup(id).unwrap().mailbox;
    let hi = platform.debug_read_word(mailbox + 4).unwrap();
    let lo = platform.debug_read_word(mailbox + 8).unwrap();
    assert_eq!(
        tytan_crypto::TaskId::from_register_words(hi, lo),
        tytan::platform::HARDWARE_ID
    );
}

#[test]
fn unbound_irq_is_ignored_harmlessly() {
    let mut platform = boot_with_irq();
    platform
        .device_mut::<Sensor>("radar")
        .unwrap()
        .set_trace(vec![(0, 99)]);
    platform
        .device_mut::<Sensor>("radar")
        .unwrap()
        .set_threshold_irq(50, VECTOR);
    // No binding, no tasks: the platform keeps running.
    platform.run_for(1_000_000).unwrap();
    assert!(platform.faults().is_empty());
}

#[test]
fn irq_to_dead_task_is_dropped() {
    let mut platform = boot_with_irq();
    platform
        .device_mut::<Sensor>("radar")
        .unwrap()
        .set_trace(vec![(0, 0), (500_000, 99)]);
    platform
        .device_mut::<Sensor>("radar")
        .unwrap()
        .set_threshold_irq(50, VECTOR);
    let driver = driver_task();
    let token = platform.begin_load(&driver, 5);
    let (handle, id) = platform.wait_load(token, 400_000_000).unwrap();
    platform.bind_irq(VECTOR, id, TAG);
    platform.unload_task(handle).unwrap();
    platform.run_for(1_000_000).unwrap();
    assert!(platform.faults().is_empty(), "stale binding dropped safely");
}
