//! Stress and failure-injection tests: resource exhaustion must degrade
//! gracefully and recover fully.

use tytan::platform::{LoadStatus, PlatformError};
use tytan::toolchain::SecureTaskBuilder;
use tytan::LoadError;
use tytan_integration::{boot, counter_task, load, read_counter};

#[test]
fn heap_exhaustion_fails_cleanly_and_recovers() {
    let mut platform = boot();
    // Fill the heap with large tasks until allocation fails.
    let big = SecureTaskBuilder::new("big", "main:\nspin:\n jmp spin\n")
        .stack_len(0x4_0000)
        .build()
        .unwrap();
    let mut loaded = Vec::new();
    let mut failed = None;
    for _ in 0..16 {
        let token = platform.begin_load(&big, 2);
        match platform.wait_load(token, 400_000_000) {
            Ok((handle, _)) => loaded.push(handle),
            Err(e) => {
                failed = Some((token, e));
                break;
            }
        }
    }
    let (token, error) = failed.expect("heap eventually exhausts");
    assert!(
        matches!(error, PlatformError::Load(LoadError::Alloc(_))),
        "allocation failure surfaced: {error}"
    );
    assert!(matches!(
        platform.load_status(token).unwrap(),
        LoadStatus::Failed(LoadError::Alloc(_))
    ));
    assert!(loaded.len() >= 2, "several tasks fit first");

    // Existing tasks are unaffected and the platform keeps running.
    platform.run_for(200_000).unwrap();
    assert!(platform.faults().is_empty());

    // Unloading one frees enough room for the load to succeed again.
    platform.unload_task(loaded.pop().unwrap()).unwrap();
    let token = platform.begin_load(&big, 2);
    platform
        .wait_load(token, 400_000_000)
        .expect("load succeeds after unload");
}

#[test]
fn mpu_slot_exhaustion_fails_cleanly() {
    let mut platform = boot();
    // 3 static boot rules + 3 rules per task on an 18-slot table: the
    // sixth task cannot get its rules.
    let source = counter_task("slot-eater");
    let mut results = Vec::new();
    for _ in 0..6 {
        let token = platform.begin_load(&source, 2);
        results.push(platform.wait_load(token, 400_000_000));
    }
    let successes = results.iter().filter(|r| r.is_ok()).count();
    assert_eq!(successes, 5, "five tasks fit the rule table");
    assert!(matches!(
        results.last().unwrap(),
        Err(PlatformError::Load(LoadError::Mpu(_)))
    ));
    // The five loaded tasks all still run.
    platform.run_for(2_000_000).unwrap();
    assert!(platform.faults().is_empty());
}

#[test]
fn many_concurrent_loads_complete() {
    let mut platform = boot();
    let sources: Vec<_> = (0..4).map(|i| counter_task(&format!("w{i}"))).collect();
    let tokens: Vec<_> = sources.iter().map(|s| platform.begin_load(s, 2)).collect();
    // All four queued loads complete while the platform runs.
    platform.run_for(60_000_000).unwrap();
    for token in tokens {
        assert!(matches!(
            platform.load_status(token).unwrap(),
            LoadStatus::Done { .. }
        ));
    }
    // And every loaded instance makes progress.
    for handle in platform.kernel().handles() {
        let base = platform.task_base(handle).unwrap();
        let offset = sources[0].symbol_offset("counter").unwrap();
        let counter = platform.debug_read_word(base + offset).unwrap();
        assert!(counter > 0, "{handle} progressed");
    }
}

#[test]
fn rapid_suspend_resume_churn_is_stable() {
    let mut platform = boot();
    let source = counter_task("churn");
    let (handle, _) = load(&mut platform, &source, 2);
    for _ in 0..50 {
        platform.run_for(10_000).unwrap();
        platform.suspend_task(handle).unwrap();
        platform.run_for(10_000).unwrap();
        platform.resume_task(handle).unwrap();
    }
    platform.run_for(100_000).unwrap();
    assert!(platform.faults().is_empty());
    assert!(read_counter(&mut platform, handle, &source) > 0);
}
