//! End-to-end integration: every subsystem exercised through the public
//! API of the full stack (sp32 → sp-emu → eampu → rtos → tytan).

use tytan::attest::RemoteVerifier;
use tytan::platform::{LoadStatus, PlatformConfig, PlatformError};
use tytan::storage::StorageError;
use tytan::toolchain::SecureTaskBuilder;
use tytan::Platform;
use tytan_crypto::{Digest, Sha1, TaskId};
use tytan_integration::{boot, counter_task, load, read_counter};

#[test]
fn boot_load_run_attest_unload() {
    let mut platform = boot();
    let source = counter_task("lifecycle");
    let (handle, id) = load(&mut platform, &source, 2);

    platform.run_for(500_000).unwrap();
    assert!(read_counter(&mut platform, handle, &source) > 100);

    // Local attestation matches the host-side canonical measurement.
    let digest = platform.local_attest(id).unwrap();
    assert_eq!(digest, Sha1::digest(&source.image.measurement_bytes()));

    // Remote attestation verifies end to end.
    let verifier = RemoteVerifier::new(platform.attestation_key());
    let report = platform.remote_attest(id, b"integration").unwrap();
    assert_eq!(verifier.verify(&report, b"integration", &digest), Ok(()));

    // Unload and verify the identity is gone.
    platform.unload_task(handle).unwrap();
    assert!(platform.local_attest(id).is_none());
    assert!(matches!(
        platform.remote_attest(id, b"x"),
        Err(PlatformError::NoSuchTask)
    ));
}

#[test]
fn many_load_unload_cycles_stay_stable() {
    let mut platform = boot();
    let source = counter_task("churner");
    let free0 = platform.machine().mpu().used_slots();
    for round in 0..8 {
        let (handle, _) = load(&mut platform, &source, 2);
        platform.run_for(100_000).unwrap();
        assert!(
            read_counter(&mut platform, handle, &source) > 0,
            "round {round}"
        );
        platform.unload_task(handle).unwrap();
        assert_eq!(
            platform.machine().mpu().used_slots(),
            free0,
            "round {round}"
        );
    }
}

#[test]
fn three_mutually_distrusting_tasks_coexist() {
    let mut platform = boot();
    let a = counter_task("provider-a");
    let b = counter_task("provider-b");
    let c = SecureTaskBuilder::new(
        "provider-c",
        "main:\n movi r1, counter\n\
         loop:\n ldw r2, [r1]\n addi r2, 2\n stw [r1], r2\n jmp loop\n",
    )
    .data("counter:\n .word 0\n")
    .build()
    .unwrap();
    let (ha, ida) = load(&mut platform, &a, 2);
    let (hb, idb) = load(&mut platform, &b, 2);
    let (hc, idc) = load(&mut platform, &c, 2);

    // a and b are the same binary => same identity; c differs.
    assert_eq!(ida, idb);
    assert_ne!(ida, idc);

    platform.run_for(3_000_000).unwrap();
    assert!(read_counter(&mut platform, ha, &a) > 0);
    assert!(read_counter(&mut platform, hb, &b) > 0);
    assert!(read_counter(&mut platform, hc, &c) > 0);
    assert!(platform.faults().is_empty());
}

#[test]
fn os_cannot_read_secure_task_memory() {
    use eampu::AccessKind;
    let mut platform = boot();
    let source = counter_task("private");
    let (handle, _) = load(&mut platform, &source, 2);
    let data = platform.kernel().task(handle).unwrap().params.data;
    let kernel_actor = platform.kernel().config().kernel_actor;
    let decision =
        platform
            .machine()
            .mpu()
            .check_access(kernel_actor, data.start(), AccessKind::Read);
    assert!(!decision.is_allowed(), "OS read of secure data denied");
}

#[test]
fn secure_storage_full_cycle_through_platform() {
    let mut platform = boot();
    let source = counter_task("owner");
    let (owner, owner_id) = load(&mut platform, &source, 2);
    platform.storage_store(owner, "state", b"v1").unwrap();

    // Reload same binary: unseals.
    platform.unload_task(owner).unwrap();
    let (owner2, owner2_id) = load(&mut platform, &source, 2);
    assert_eq!(owner_id, owner2_id);
    assert_eq!(platform.storage_retrieve(owner2, "state").unwrap(), b"v1");

    // A different binary cannot.
    let other = SecureTaskBuilder::new("other", "main:\nspin:\n jmp spin\n")
        .build()
        .unwrap();
    let (thief, _) = load(&mut platform, &other, 2);
    assert!(matches!(
        platform.storage_retrieve(thief, "state"),
        Err(PlatformError::Storage(StorageError::AccessDenied))
    ));
}

#[test]
fn guest_ipc_async_delivery_and_polling_receiver() {
    let mut platform = boot();
    // Receiver polls its mailbox flag in its main loop (asynchronous IPC:
    // "R processes m the next time it is scheduled", §4).
    let receiver = SecureTaskBuilder::new(
        "poller",
        "main:\n\
         poll:\n movi r1, __mailbox\n ldw r2, [r1]\n cmpi r2, 0\n jz poll\n\
         ldw r3, [r1+16]\n movi r4, got\n stw [r4], r3\n\
         done:\n jmp done\n",
    )
    .data("got:\n .word 0\n")
    .build()
    .unwrap();
    let receiver_id = TaskId::from_digest(&Sha1::digest(&receiver.image.measurement_bytes()));

    let (hi, lo) = receiver_id.to_register_words();
    let sender = SecureTaskBuilder::new(
        "pusher",
        format!(
            "main:\n movi r1, {hi:#010x}\n movi r2, {lo:#010x}\n\
             movi r3, 0x5eed\n movi r4, 0\n movi r5, 0\n movi r6, 0\n\
             int IPC_VECTOR\n\
             spin:\n jmp spin\n"
        ),
    )
    .build()
    .unwrap();

    let (rh, _) = load(&mut platform, &receiver, 2);
    let (_, _) = load(&mut platform, &sender, 2);
    platform.run_for(3_000_000).unwrap();

    let base = platform.task_base(rh).unwrap();
    let got = platform
        .debug_read_word(base + receiver.symbol_offset("got").unwrap())
        .unwrap();
    assert_eq!(got, 0x5eed, "async message arrived via polling");
}

#[test]
fn load_reports_match_paper_shape() {
    // The Table 4 shape: secure >> normal, RTM dominating.
    let mut platform = boot();
    let secure = counter_task("secure-one");
    let token = platform.begin_load(&secure, 2);
    platform.wait_load(token, 200_000_000).unwrap();
    let LoadStatus::Done {
        report: secure_report,
        ..
    } = platform.load_status(token).unwrap()
    else {
        panic!("secure load done");
    };

    let normal =
        tytan::toolchain::build_normal_task("normal-one", "main:\nspin:\n jmp spin\n", "", 256)
            .unwrap();
    let token = platform.begin_load(&normal, 2);
    platform.wait_load(token, 200_000_000).unwrap();
    let LoadStatus::Done {
        report: normal_report,
        ..
    } = platform.load_status(token).unwrap()
    else {
        panic!("normal load done");
    };

    assert!(secure_report.rtm_cycles > 0);
    assert_eq!(normal_report.rtm_cycles, 0);
    assert!(
        secure_report.total_cycles() > normal_report.total_cycles(),
        "secure {} > normal {}",
        secure_report.total_cycles(),
        normal_report.total_cycles()
    );
    assert!(
        secure_report.rtm_cycles > secure_report.reloc_cycles + secure_report.mpu_cycles,
        "RTM dominates"
    );
}

#[test]
fn platform_survives_misbehaving_task_storm() {
    let mut platform = boot();
    let victim = counter_task("victim");
    let (vh, _) = load(&mut platform, &victim, 2);
    platform.run_for(100_000).unwrap();
    let victim_data = platform.kernel().task(vh).unwrap().params.data.start();

    // Load three attackers, each trying a different violation.
    let attacks = [
        format!("main:\n movi r1, {victim_data:#x}\n ldw r2, [r1]\nspin:\n jmp spin\n"),
        format!(
            "main:\n movi r1, {victim_data:#x}\n movi r2, 7\n stw [r1], r2\nspin:\n jmp spin\n"
        ),
        format!("main:\n jmp {:#x}\n", victim_data.wrapping_sub(0x100) + 8),
    ];
    for (i, body) in attacks.iter().enumerate() {
        let attacker = SecureTaskBuilder::new(format!("attacker-{i}"), body.clone())
            .build()
            .unwrap();
        let _ = load(&mut platform, &attacker, 3);
    }
    platform.run_for(2_000_000).unwrap();

    assert!(
        platform.faults().len() >= 2,
        "violations recorded: {}",
        platform.faults().len()
    );
    assert!(platform.kernel().task(vh).is_some(), "victim survived");
    let count = read_counter(&mut platform, vh, &victim);
    assert!(count > 0, "victim kept running");
}

#[test]
fn sha256_platform_variant_works_end_to_end() {
    use tytan_crypto::Sha256;
    let mut platform: Platform<Sha256> =
        Platform::boot(PlatformConfig::default()).expect("boots with SHA-256");
    let source = counter_task("sha256-task");
    let token = platform.begin_load(&source, 2);
    let (_, id) = platform.wait_load(token, 200_000_000).unwrap();
    let digest = platform.local_attest(id).unwrap();
    assert_eq!(digest.len(), 32);
    assert_eq!(digest, Sha256::digest(&source.image.measurement_bytes()));
}
