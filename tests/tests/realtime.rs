//! Real-time-property integration tests: the paper's central claim is
//! that every TyTAN component is interruptible or bounded, so concurrent
//! tasks keep their deadlines no matter what the trust anchor is doing.

use tytan::platform::{LoadStatus, PlatformConfig};
use tytan::usecase::CruiseControl;
use tytan::Platform;
use tytan_integration::{boot, counter_task, load, read_counter};

/// Measures a task's progress over a window, in iterations.
fn progress_over(
    platform: &mut Platform,
    handle: rtos::TaskHandle,
    source: &tytan::TaskSource,
    cycles: u64,
) -> u32 {
    let before = read_counter(platform, handle, source);
    platform.run_for(cycles).unwrap();
    read_counter(platform, handle, source) - before
}

#[test]
fn task_progress_unaffected_by_concurrent_load() {
    let mut platform = boot();
    let worker = counter_task("worker");
    let (wh, _) = load(&mut platform, &worker, 3);
    platform.run_for(200_000).unwrap();

    let baseline = progress_over(&mut platform, wh, &worker, 1_000_000);

    // Start a load of a large task and measure again while it runs.
    let big = tytan::usecase::radar_monitor_source(tytan_crypto::TaskId::from_u64(1));
    let token = platform.begin_load(&big, 2);
    let during = progress_over(&mut platform, wh, &worker, 1_000_000);

    assert!(
        during as f64 >= baseline as f64 * 0.85,
        "worker kept ≥85% of its rate during the load: {baseline} vs {during}"
    );
    platform.wait_load(token, 400_000_000).unwrap();
}

#[test]
fn rtm_slice_size_bounds_preemption_latency() {
    // With 1-block RTM slices the loader yields often; scheduling trace
    // gaps for the high-priority task stay bounded near one tick.
    let config = PlatformConfig {
        rtm_blocks_per_slice: 1,
        ..Default::default()
    };
    let mut platform: Platform = Platform::boot(config).unwrap();
    let worker = counter_task("hi-prio");
    let token = platform.begin_load(&worker, 7);
    let (wh, _) = platform.wait_load(token, 400_000_000).unwrap();
    platform.run_for(200_000).unwrap();

    let big = tytan::usecase::radar_monitor_source(tytan_crypto::TaskId::from_u64(1));
    let load_token = platform.begin_load(&big, 2);
    platform.kernel_mut().trace_mut().clear();
    platform.run_for(2_000_000).unwrap();
    let _ = platform.load_status(load_token).unwrap();

    // Max gap between consecutive dispatches of the high-priority task.
    let dispatch_cycles: Vec<u64> = platform
        .kernel()
        .trace()
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            rtos::SchedEventKind::Dispatched(h) if h == wh => Some(e.cycle),
            _ => None,
        })
        .collect();
    assert!(dispatch_cycles.len() > 10, "task dispatched repeatedly");
    let max_gap = dispatch_cycles
        .windows(2)
        .map(|w| w[1] - w[0])
        .max()
        .unwrap();
    // One tick is 32,000 cycles; allow 2.5 ticks of slack for load slices.
    assert!(max_gap < 80_000, "max dispatch gap {max_gap} bounded");
}

#[test]
fn loads_complete_even_under_full_cpu_contention() {
    // Spinning tasks never yield; the loader only gets the idle...
    // With busy tasks at every tick, idle time exists between a task's
    // delay and the next tick. Use delaying tasks so idle time exists,
    // and check the load still completes in bounded time.
    let mut platform = boot();
    let mut scenario = CruiseControl::install(&mut platform).unwrap();
    platform.run_for(100_000).unwrap();
    let (token, _) = scenario.activate_cruise_control(&mut platform);
    let start = platform.machine().cycles();
    let (_t2, _) = platform.wait_load(token, 400_000_000).unwrap();
    let elapsed = platform.machine().cycles() - start;
    // The paper's t2 load takes 27.8 ms = 1.33 M cycles at 48 MHz; ours
    // should land within the same order of magnitude.
    assert!(
        (50_000..=10_000_000).contains(&elapsed),
        "load latency {elapsed} cycles within the paper's magnitude"
    );
}

#[test]
fn tick_rate_is_stable_under_churn() {
    let mut platform = boot();
    let worker = counter_task("steady");
    load(&mut platform, &worker, 3);
    let t0 = platform.kernel().tick_count();
    let c0 = platform.machine().cycles();
    // Churn: load/unload repeatedly while time passes.
    for _ in 0..3 {
        let extra = counter_task("churn");
        let (h, _) = load(&mut platform, &extra, 2);
        platform.run_for(200_000).unwrap();
        platform.unload_task(h).unwrap();
    }
    platform.run_for(200_000).unwrap();
    let ticks = platform.kernel().tick_count() - t0;
    let cycles = platform.machine().cycles() - c0;
    let expected = cycles / 32_000;
    assert!(
        (ticks as i64 - expected as i64).abs() <= 2,
        "tick count {ticks} tracks wall time (expected ≈{expected})"
    );
}

#[test]
fn suspended_task_resumes_exactly_where_it_stopped() {
    // Context integrity across suspend/resume: the counter continues
    // from its previous value, never resets (entry-routine RESUME path).
    let mut platform = boot();
    let worker = counter_task("suspendee");
    let (wh, _) = load(&mut platform, &worker, 2);
    platform.run_for(300_000).unwrap();
    let mid = read_counter(&mut platform, wh, &worker);
    assert!(mid > 10);
    platform.suspend_task(wh).unwrap();
    platform.run_for(300_000).unwrap();
    platform.resume_task(wh).unwrap();
    platform.run_for(300_000).unwrap();
    let end = read_counter(&mut platform, wh, &worker);
    assert!(end > mid, "resumed from saved context: {mid} -> {end}");
}

#[test]
fn blocking_load_double_latency_tradeoff() {
    // The blocking loader finishes the load in *fewer* wall cycles (no
    // preemption) but starves tasks; the interruptible loader pays
    // slightly more elapsed time. Both effects should be visible.
    let measure = |interruptible: bool| {
        let config = PlatformConfig {
            interruptible_load: interruptible,
            ..Default::default()
        };
        let mut platform: Platform = Platform::boot(config).unwrap();
        let worker = counter_task("w");
        let token = platform.begin_load(&worker, 3);
        let (wh, _) = platform.wait_load(token, 400_000_000).unwrap();
        platform.run_for(100_000).unwrap();
        let before = read_counter(&mut platform, wh, &worker);
        let big = tytan::usecase::radar_monitor_source(tytan_crypto::TaskId::from_u64(1));
        let token = platform.begin_load(&big, 2);
        let start = platform.machine().cycles();
        platform.wait_load(token, 400_000_000).unwrap();
        let elapsed = platform.machine().cycles() - start;
        let LoadStatus::Done { report, .. } = platform.load_status(token).unwrap() else {
            panic!("done");
        };
        let after = read_counter(&mut platform, wh, &worker);
        (elapsed, report.slices, after - before)
    };
    let (elapsed_int, _, progress_int) = measure(true);
    let (elapsed_blk, _, progress_blk) = measure(false);
    assert!(
        elapsed_int > elapsed_blk,
        "the interruptible load takes longer wall-clock because it is \
         preempted ({elapsed_int} vs {elapsed_blk} cycles)"
    );
    assert!(
        progress_int > progress_blk,
        "concurrent task progressed more under the interruptible loader \
         ({progress_int} vs {progress_blk})"
    );
}
