//! Control-flow attestation, end to end across crates.
//!
//! Two properties the plane exists for, proven on real booted
//! platforms with no hand-built evidence anywhere:
//!
//! - A monitored task's control-flow report travels the real wire path
//!   (Hello → Welcome + Challenge → `CfaReport` frame, delivered byte
//!   by byte) into the fleet verifier and verifies against the edge
//!   set `tytan-lint` extracted statically — and the same run with one
//!   injected non-admissible edge is rejected as `InadmissibleEdge`,
//!   not some generic failure.
//! - A runtime detour that leaves the static image untouched (a
//!   smashed return address in task RAM) still passes *static*
//!   attestation — the digest is over code, and the code never changed
//!   — and is caught **only** by the control-flow plane, via the
//!   shadow-stack replay.

use tytan::attest::{DeviceId, RemoteVerifier, VerifyError};
use tytan::platform::{Platform, PlatformConfig};
use tytan::toolchain::SecureTaskBuilder;
use tytan_fleet::farm::{fleet_admissible_edges, reference_digest, DeviceSim};
use tytan_fleet::proto::{decode, encode, Message, PROTOCOL_VERSION};
use tytan_fleet::verifier::FleetVerifier;

/// A real platform's control-flow evidence through the wire protocol
/// into the batched fleet verifier: the honest report verifies, and an
/// injected non-admissible edge in an otherwise genuine report (MAC
/// and chain head intact — the MAC covers the chain, not the raw log)
/// is rejected with the typed `InadmissibleEdge`.
#[test]
fn cf_attested_report_travels_the_wire_and_detours_are_typed() {
    let master = [0x7Au8; 20];
    let (_, digest) = reference_digest().expect("reference boots");
    let device = DeviceId::from_u64(3);
    let mut sim = DeviceSim::provision(device, &master).expect("device boots");
    sim.arm_cfa().expect("monitor arms");
    sim.run(50_000).expect("monitored run");

    let mut verifier = FleetVerifier::new(master, digest, 0xCFA, tytan_trace::Tracer::null());
    verifier.provision_edge_set(fleet_admissible_edges());
    verifier.provision(device);

    // Hello → Welcome + Challenge over the wire.
    let hello = encode(
        &Message::Hello {
            device,
            max_version: PROTOCOL_VERSION,
        },
        PROTOCOL_VERSION,
    );
    let replies = verifier.ingest(device, &hello);
    assert_eq!(replies.len(), 2);
    let (corr, nonce) = match decode(&replies[1]).expect("challenge decodes").0 {
        Message::Challenge { corr, nonce, .. } => (corr, nonce),
        other => panic!("expected challenge, got {other:?}"),
    };

    // The platform seals its monitored run for the challenge.
    let report = sim.respond_cfa(&nonce).expect("platform attests");
    assert!(!report.log.is_empty(), "looping task must record edges");

    // First: the same report with one edge bent off the static CFG.
    // The destination is knocked off 4-byte alignment so no site kind
    // admits it; MAC and chain head are untouched and still valid, so
    // only the edge replay can reject this — and it must, typed, at
    // the offending index. (Sent before the honest report so the
    // freshness check cannot mask the CFG verdict.)
    let mut detoured = report.clone();
    detoured.log[0].1 ^= 2;
    let frame = encode(
        &Message::CfaReport {
            device,
            corr,
            report: detoured,
        },
        PROTOCOL_VERSION,
    );
    verifier.ingest(device, &frame);
    let entries = verifier.flush();
    assert_eq!(entries.len(), 1);
    match entries[0].result {
        Err(VerifyError::InadmissibleEdge { index, .. }) => assert_eq!(index, 0),
        ref other => panic!("detour verdict: {other:?}, want InadmissibleEdge"),
    }
    assert_eq!(verifier.accepted_total(), 0);

    // Then the honest frame, delivered byte by byte: reassembly plus
    // replay plus chain refold in one pass.
    let frame = encode(
        &Message::CfaReport {
            device,
            corr,
            report,
        },
        PROTOCOL_VERSION,
    );
    for byte in &frame {
        verifier.ingest(device, std::slice::from_ref(byte));
    }
    let entries = verifier.flush();
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].result, Ok(()));
    assert_eq!(verifier.accepted_total(), 1);
}

/// The out-of-region blind spot, closed: a smashed return address that
/// sends execution *outside* the monitored code region used to vanish
/// from the evidence entirely — the monitor dropped boundary-crossing
/// edges, so the sealed log was an admissible prefix and the excursion
/// was invisible to replay and chain alike. Now the exit records an
/// `OUT_OF_REGION` sentinel edge, the chain commits to it, and the
/// verifier — with no external call sites declared for this task —
/// types the excursion as the `InadmissibleEdge` it is.
#[test]
fn out_of_region_detour_is_recorded_and_rejected_typed() {
    let source = SecureTaskBuilder::new(
        "escaper",
        "main:\n movi r1, gate\n call work\n\
         after:\n jmp after\n\
         work:\n\
         wspin:\n ldw r3, [r1]\n cmpi r3, 0\n jz wspin\n ret\n",
    )
    .data("gate:\n .word 0\n")
    .build()
    .expect("task assembles");
    let edges = tytan_lint::admissible_edges(&source.image);
    assert!(
        edges.external_sites.is_empty(),
        "no external call sites are declared, so any region exit is hostile"
    );

    let mut platform: Platform = Platform::boot(PlatformConfig::default()).expect("boots");
    let token = platform.begin_load(&source, 2);
    let (_, task) = platform.wait_load(token, 400_000_000).expect("loads");
    let digest = platform.local_attest(task).expect("measured");
    platform.arm_cf_monitor(task).expect("monitor arms");

    // Park the task inside `work` with the return address live.
    platform.run_for(50_000).expect("monitored run");
    let record = platform.rtm().lookup(task).expect("task is measured");
    let code = record.code;
    let data = record.data;
    let ret_abs = code.start() + source.symbol_offset("after").expect("label");

    // The attacker's write: redirect the saved return address to a pc
    // *outside* the monitored code region (the task's own data region —
    // not entry-protected code, so the transfer itself is not blocked).
    let machine = platform.machine_mut();
    let mut smashed_at = None;
    let mut addr = data.start();
    while addr + 4 <= data.start() + data.len() {
        if machine.read_word(addr).expect("task RAM reads") == ret_abs {
            machine
                .write_word(addr, data.start())
                .expect("task RAM writes");
            smashed_at = Some(addr);
            break;
        }
        addr += 4;
    }
    smashed_at.expect("saved return address found on the stack");

    // Release the gate and let the poisoned return leave the region.
    // Whatever the platform then does about executing data (fault,
    // kill, garbage), the monitor has already recorded the exit edge.
    let gate_abs = code.start() + source.symbol_offset("gate").expect("label");
    machine.write_word(gate_abs, 1).expect("gate writes");
    let _ = platform.run_for(50_000);

    let monitor = platform.cf_monitor().expect("monitor is still armed");
    assert!(
        monitor
            .runs()
            .iter()
            .any(|&(_, to, _)| to == tytan_lint::OUT_OF_REGION),
        "the region exit must appear in the evidence: {:?}",
        monitor.runs()
    );

    let verifier = RemoteVerifier::new(platform.attestation_key());
    let cfa = platform
        .remote_attest_cfa(task, b"escape-nonce")
        .expect("attests with evidence");
    match verifier.verify_cfa(&cfa, b"escape-nonce", &digest, &edges) {
        Err(VerifyError::InadmissibleEdge { to, .. }) => {
            assert_eq!(
                to,
                tytan_lint::OUT_OF_REGION,
                "the verdict names the region exit itself"
            );
        }
        other => panic!("CFA verdict: {other:?}, want InadmissibleEdge at the region exit"),
    }
}

/// A ROP-style detour that never touches the task's code: the saved
/// return address on the stack is overwritten between run slices, so
/// the measured image — and therefore static attestation — is
/// unchanged, yet the return lands somewhere the matching call never
/// pointed it. Static attestation stays green; the control-flow plane
/// alone catches the hijack, as a typed `InadmissibleEdge` from the
/// shadow-stack replay.
#[test]
fn stack_smash_passes_static_attestation_and_only_cfa_catches_it() {
    // `work` spins until the test releases it by writing `gate`, so the
    // call frame (and the saved return address) is live on the stack at
    // a deterministic point.
    let source = SecureTaskBuilder::new(
        "smashable",
        "main:\n movi r1, gate\n call work\n\
         after:\n jmp after\n\
         work:\n\
         wspin:\n ldw r3, [r1]\n cmpi r3, 0\n jz wspin\n ret\n",
    )
    .data("gate:\n .word 0\n")
    .build()
    .expect("task assembles");
    let edges = tytan_lint::admissible_edges(&source.image);
    assert!(
        edges.sites.len() >= 4,
        "call, jmp, jz and ret sites expected"
    );

    let mut platform: Platform = Platform::boot(PlatformConfig::default()).expect("boots");
    let token = platform.begin_load(&source, 2);
    let (_, task) = platform.wait_load(token, 400_000_000).expect("loads");
    let digest = platform.local_attest(task).expect("measured");
    platform.arm_cf_monitor(task).expect("monitor arms");

    // Run until the task is parked inside `work` with the return
    // address for `after` on its stack.
    platform.run_for(50_000).expect("monitored run");
    let record = platform.rtm().lookup(task).expect("task is measured");
    let code = record.code;
    let data = record.data;
    let ret_abs = code.start() + source.symbol_offset("after").expect("label");

    // The attacker's write: scan the task's RAM for the saved return
    // address and redirect it to the task's own entry — an aligned,
    // real instruction, so execution continues cleanly. No code byte
    // changes.
    let machine = platform.machine_mut();
    let mut smashed_at = None;
    let mut addr = data.start();
    while addr + 4 <= data.start() + data.len() {
        if machine.read_word(addr).expect("task RAM reads") == ret_abs {
            machine
                .write_word(addr, code.start())
                .expect("task RAM writes");
            smashed_at = Some(addr);
            break;
        }
        addr += 4;
    }
    let smashed_at = smashed_at.expect("saved return address found on the stack");

    // Release the gate (it lives below the smashed slot, in .data) and
    // let the poisoned return execute.
    let gate_abs = code.start() + source.symbol_offset("gate").expect("label");
    assert_ne!(gate_abs, smashed_at, "gate and frame must not collide");
    machine.write_word(gate_abs, 1).expect("gate writes");
    platform.run_for(50_000).expect("poisoned run");

    // Static attestation is blind to the hijack: the image digest never
    // changed, so the plain report still verifies.
    let verifier = RemoteVerifier::new(platform.attestation_key());
    let plain = platform
        .remote_attest(task, b"static-nonce")
        .expect("attests");
    assert_eq!(
        verifier.verify(&plain, b"static-nonce", &digest),
        Ok(()),
        "static attestation must NOT catch a pure control-flow detour"
    );

    // The control-flow plane is not: the return edge disagrees with the
    // shadow stack and is typed as inadmissible.
    let cfa = platform
        .remote_attest_cfa(task, b"cfa-nonce")
        .expect("attests with evidence");
    let ret_site = *edges
        .sites
        .iter()
        .find(|(_, kind)| matches!(kind, tytan_lint::SiteKind::Return))
        .expect("the task has exactly one ret")
        .0;
    match verifier.verify_cfa(&cfa, b"cfa-nonce", &digest, &edges) {
        Err(VerifyError::InadmissibleEdge { from, to, .. }) => {
            assert_eq!(from, ret_site, "the ret site is the offender");
            assert_eq!(to, 0, "the poisoned return landed at the entry");
        }
        other => panic!("CFA verdict: {other:?}, want InadmissibleEdge"),
    }
}
