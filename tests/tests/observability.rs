//! Fleet observability & forensics, end to end across crates.
//!
//! The fleet crate's unit tests cover the flight recorder and replay in
//! isolation; here the full orchestrated driver runs with injected
//! attacks and every observability artifact is consumed the way an
//! operator would: forensic bundle files re-verified offline with
//! [`tytan_fleet::recorder::replay_bundle`], the Prometheus exposition
//! validated, and the event JSONL parsed line by line.

use std::fs;
use std::path::PathBuf;

use tytan_fleet::recorder::replay_bundle;
use tytan_fleet::{run_fleet, FleetConfig};
use tytan_trace::events::LogEvent;
use tytan_trace::metrics::validate_prometheus_text;

/// A unique, self-cleaning scratch directory per test.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("tytan-obs-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Reads every bundle file under `dir`, replays each offline, and
/// asserts the reproduced verdict matches the recorded one and carries
/// the expected name.
fn replay_all_bundles(dir: &PathBuf, expected_verdict: &str) -> usize {
    let mut replayed = 0;
    for entry in fs::read_dir(dir).expect("bundle dir exists") {
        let path = entry.expect("dir entry").path();
        let json = fs::read_to_string(&path).expect("bundle reads");
        let outcome =
            replay_bundle(&json).unwrap_or_else(|e| panic!("{} replays: {e}", path.display()));
        assert!(
            outcome.matches,
            "{}: recorded code {} but replay produced {}",
            path.display(),
            outcome.recorded_code,
            outcome.replayed_code
        );
        assert_eq!(
            outcome.verdict,
            expected_verdict,
            "{}: unexpected verdict class",
            path.display()
        );
        replayed += 1;
    }
    replayed
}

#[test]
fn injected_replays_produce_bundles_that_reverify_offline() {
    let scratch = Scratch::new("replay");
    let bundles = scratch.path("bundles");
    let metrics = scratch.path("metrics.prom");
    let events = scratch.path("events.jsonl");

    let outcome = run_fleet(&FleetConfig {
        devices: 12,
        rounds: 2,
        seed: 0xBAD5EED,
        replay_every: Some(3),
        metrics_out: Some(metrics.clone()),
        events_out: Some(events.clone()),
        bundle_dir: Some(bundles.clone()),
        ..FleetConfig::default()
    })
    .expect("fleet runs");
    assert!(outcome.clean(), "{outcome:?}");
    assert_eq!(outcome.rejected_replay, 8);

    // Every typed rejection produced exactly one bundle file, and every
    // bundle re-verifies offline to the identical typed verdict.
    assert_eq!(outcome.bundles, 8);
    assert_eq!(replay_all_bundles(&bundles, "replayed_nonce"), 8);

    // The metrics exposition is well-formed Prometheus text and carries
    // the fleet families the schema contract names.
    let text = fs::read_to_string(&metrics).expect("metrics written");
    let families = validate_prometheus_text(&text).expect("exposition validates");
    for family in ["tytan_fleet_reports", "tytan_fleet_bundles"] {
        assert!(families.iter().any(|f| f == family), "missing {family}");
    }

    // Every event line is canonical JSONL, and the stream narrates the
    // rejections it booked.
    let jsonl = fs::read_to_string(&events).expect("events written");
    let mut rejected = 0;
    for line in jsonl.lines() {
        let event = LogEvent::from_json(line).expect("canonical event line");
        if event.event == "verdict" && event.fields.detail == "replayed_nonce" {
            rejected += 1;
        }
    }
    assert_eq!(rejected, 8);
    assert!(outcome.events >= jsonl.lines().count() as u64);
}

#[test]
fn injected_detours_produce_bundles_that_reverify_offline() {
    let scratch = Scratch::new("detour");
    let bundles = scratch.path("bundles");

    let outcome = run_fleet(&FleetConfig {
        devices: 10,
        rounds: 1,
        seed: 0xC0FFEE,
        cfa: true,
        detour_every: Some(5),
        bundle_dir: Some(bundles.clone()),
        ..FleetConfig::default()
    })
    .expect("fleet runs");
    assert!(outcome.clean(), "{outcome:?}");
    assert_eq!(outcome.rejected_inadmissible, 2);

    // Detour rejections carry the edge log and admissible set in the
    // bundle, so offline replay walks the same CFG to the same verdict.
    assert_eq!(outcome.bundles, 2);
    assert_eq!(replay_all_bundles(&bundles, "inadmissible_edge"), 2);
}
