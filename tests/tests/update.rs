//! Runtime task update (the paper's §8 future work): the new version
//! loads while the old one keeps running, sealed state migrates to the
//! new identity, and the old version is retired only after the handover.

use tytan::platform::PlatformError;
use tytan::storage::StorageError;
use tytan::toolchain::SecureTaskBuilder;
use tytan::TaskSource;
use tytan_integration::{boot, counter_task, load, read_counter};

fn v2_task() -> TaskSource {
    // Same service, different implementation (increments by 2).
    SecureTaskBuilder::new(
        "service",
        "main:\n movi r1, counter\n\
         loop:\n ldw r2, [r1]\n addi r2, 2\n stw [r1], r2\n jmp loop\n",
    )
    .data("counter:\n .word 0\n")
    .build()
    .expect("assembles")
}

#[test]
fn update_keeps_service_available_and_migrates_state() {
    let mut platform = boot();
    let v1 = counter_task("service");
    let (h1, id1) = load(&mut platform, &v1, 2);
    platform.run_for(200_000).unwrap();
    platform
        .storage_store(h1, "service-state", b"generation-1")
        .unwrap();
    let progress_before_update = read_counter(&mut platform, h1, &v1);
    assert!(progress_before_update > 0);
    // The old instance's counter address survives its unload (the heap is
    // not scrubbed), letting us observe progress made during the update.
    let v1_counter_addr = platform.task_base(h1).unwrap() + v1.symbol_offset("counter").unwrap();

    let v2 = v2_task();
    let (h2, id2) = platform
        .update_task(h1, &v2, 2, 400_000_000, &["service-state"])
        .unwrap();
    assert_ne!(id1, id2, "new implementation, new identity");

    // The old version ran *during* the update load (availability).
    let progress_at_handover = platform.debug_read_word(v1_counter_addr).unwrap();
    assert!(
        progress_at_handover > progress_before_update,
        "v1 kept running during the update: {progress_before_update} -> {progress_at_handover}"
    );

    // Old version gone, new version running.
    assert!(platform.kernel().task(h1).is_none());
    platform.run_for(300_000).unwrap();
    assert!(read_counter(&mut platform, h2, &v2) > 0);

    // Sealed state followed the update.
    assert_eq!(
        platform.storage_retrieve(h2, "service-state").unwrap(),
        b"generation-1"
    );
}

#[test]
fn failed_update_leaves_old_version_running() {
    let mut platform = boot();
    let v1 = counter_task("service");
    let (h1, _) = load(&mut platform, &v1, 2);
    platform.run_for(100_000).unwrap();

    // An update to an image too large for the heap must fail cleanly.
    let huge = SecureTaskBuilder::new("service", "main:\nspin:\n jmp spin\n")
        .stack_len(rtos::layout::HEAP_END - rtos::layout::HEAP_BASE)
        .build()
        .unwrap();
    let result = platform.update_task(h1, &huge, 2, 50_000_000, &[]);
    assert!(result.is_err());
    assert!(platform.kernel().task(h1).is_some(), "old version survives");
    platform.run_for(100_000).unwrap();
    assert!(read_counter(&mut platform, h1, &v1) > 0);
}

#[test]
fn update_cannot_steal_unrelated_blobs() {
    let mut platform = boot();
    let owner = counter_task("owner");
    let (oh, _) = load(&mut platform, &owner, 2);
    platform
        .storage_store(oh, "private", b"owner-data")
        .unwrap();

    let victim = counter_task("service");
    // Different binary from `owner`? counter_task produces identical
    // binaries; use the v2 variant for a distinct identity.
    let v1 = v2_task();
    let (h1, _) = load(&mut platform, &v1, 2);
    let v2 = SecureTaskBuilder::new(
        "service",
        "main:\n movi r1, counter\n\
         loop:\n ldw r2, [r1]\n addi r2, 3\n stw [r1], r2\n jmp loop\n",
    )
    .data("counter:\n .word 0\n")
    .build()
    .unwrap();
    // Migrating a blob the old version does not own fails the update.
    let result = platform.update_task(h1, &v2, 2, 400_000_000, &["private"]);
    assert!(matches!(
        result,
        Err(PlatformError::Storage(StorageError::AccessDenied))
    ));
    let _ = victim;
}
