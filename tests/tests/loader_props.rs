//! Property tests over the dynamic loader: arbitrary well-formed images
//! load, measure position-independently, and unload without residue.

use proptest::prelude::*;
use tytan::platform::{Platform, PlatformConfig};
use tytan::toolchain::SecureTaskBuilder;
use tytan_crypto::{Digest, Sha1};

/// Generates a random but runnable task body: arithmetic on registers,
/// a counter bump in the data section, and a loop — plus a variable
/// amount of label-referencing padding to vary size and reloc count.
fn arb_body() -> impl Strategy<Value = (String, String)> {
    (proptest::collection::vec(0u8..5, 0..12), 0u32..6, 0u32..512).prop_map(
        |(ops, reloc_words, padding)| {
            let mut body = String::from(
                "main:\nloop:\n movi r1, counter\n ldw r2, [r1]\n addi r2, 1\n stw [r1], r2\n",
            );
            for op in &ops {
                body.push_str(match op {
                    0 => " add r3, r2\n",
                    1 => " xor r4, r3\n",
                    2 => " movi r5, 7\n",
                    3 => " shl r2, r5\n",
                    _ => " nop\n",
                });
            }
            body.push_str(" jmp loop\n");
            if reloc_words > 0 {
                body.push_str("table:\n");
                for _ in 0..reloc_words {
                    body.push_str(" .word main\n");
                }
            }
            if padding > 0 {
                body.push_str(&format!("pad:\n .space {padding}\n"));
            }
            (body, "counter:\n .word 0\n".to_string())
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arbitrary_tasks_load_run_and_unload_cleanly((body, data) in arb_body()) {
        let mut platform: Platform =
            Platform::boot(PlatformConfig::default()).expect("boots");
        let source = SecureTaskBuilder::new("prop-task", body)
            .data(data)
            .stack_len(256)
            .build()
            .expect("builds");

        // Identity equals the canonical host-side measurement regardless
        // of image shape.
        let expected = Sha1::digest(&source.image.measurement_bytes());

        let slots0 = platform.machine().mpu().used_slots();
        let token = platform.begin_load(&source, 2);
        let (handle, id) = platform.wait_load(token, 400_000_000).expect("loads");
        prop_assert_eq!(&platform.local_attest(id).expect("measured"), &expected);

        platform.run_for(200_000).expect("runs");
        prop_assert!(platform.faults().is_empty(), "no MPU violations");
        let base = platform.task_base(handle).expect("loaded");
        let counter_addr = base + source.symbol_offset("counter").expect("symbol");
        let counter = platform.debug_read_word(counter_addr).expect("readable");
        prop_assert!(counter > 0, "task made progress");

        platform.unload_task(handle).expect("unloads");
        prop_assert_eq!(platform.machine().mpu().used_slots(), slots0, "slots restored");

        // A second copy loads at a (possibly different) base with the
        // same identity.
        let token = platform.begin_load(&source, 2);
        let (_, id2) = platform.wait_load(token, 400_000_000).expect("reloads");
        prop_assert_eq!(id, id2, "position-independent identity");
    }
}
