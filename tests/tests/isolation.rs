//! Security-property integration tests: the isolation claims of §5
//! exercised with real guest code on the full platform.

use eampu::AccessKind;
use sp_emu::Fault;
use tytan::platform::PlatformConfig;
use tytan::toolchain::SecureTaskBuilder;
use tytan::Platform;
use tytan_integration::{boot, counter_task, load, read_counter};

#[test]
fn secure_task_memory_unreadable_by_other_task() {
    let mut platform = boot();
    let victim = counter_task("victim");
    let (vh, _) = load(&mut platform, &victim, 2);
    platform.run_for(100_000).unwrap();
    let secret_addr = platform.kernel().task(vh).unwrap().params.data.start();

    let spy = SecureTaskBuilder::new(
        "spy",
        format!("main:\n movi r1, {secret_addr:#x}\n ldw r2, [r1]\nspin:\n jmp spin\n"),
    )
    .build()
    .unwrap();
    let (sh, _) = load(&mut platform, &spy, 3);
    platform.run_for(300_000).unwrap();

    let fault = platform
        .faults()
        .iter()
        .find(|f| f.task == Some(sh))
        .expect("spy faulted");
    assert!(matches!(
        fault.fault,
        Fault::MpuAccess { addr, kind: AccessKind::Read, .. } if addr == secret_addr
    ));
    assert!(platform.kernel().task(sh).is_none(), "spy killed");
}

#[test]
fn secure_task_memory_unwritable_by_other_task() {
    let mut platform = boot();
    let victim = counter_task("victim");
    let (vh, _) = load(&mut platform, &victim, 2);
    platform.run_for(100_000).unwrap();
    let target = platform.kernel().task(vh).unwrap().params.data.start();
    let before = read_counter(&mut platform, vh, &victim);

    let vandal = SecureTaskBuilder::new(
        "vandal",
        format!(
            "main:\n movi r1, {target:#x}\n movi r2, 0xdead\n stw [r1], r2\nspin:\n jmp spin\n"
        ),
    )
    .build()
    .unwrap();
    let (wh, _) = load(&mut platform, &vandal, 3);
    platform.run_for(300_000).unwrap();

    assert!(platform.faults().iter().any(|f| f.task == Some(wh)));
    let after = read_counter(&mut platform, vh, &victim);
    assert!(after >= before, "victim data intact and advancing");
}

#[test]
fn jumping_into_secure_task_mid_code_faults() {
    let mut platform = boot();
    let victim = counter_task("victim");
    let (vh, _) = load(&mut platform, &victim, 2);
    let mid_code = platform.kernel().task(vh).unwrap().params.code.start() + 8;

    let hijacker = SecureTaskBuilder::new("hijacker", format!("main:\n jmp {mid_code:#x}\n"))
        .build()
        .unwrap();
    let (hh, _) = load(&mut platform, &hijacker, 3);
    platform.run_for(300_000).unwrap();

    let fault = platform
        .faults()
        .iter()
        .find(|f| f.task == Some(hh))
        .expect("hijacker faulted");
    assert!(matches!(fault.fault, Fault::MpuTransfer { to, .. } if to == mid_code));
}

#[test]
fn task_cannot_read_platform_key() {
    let mut platform = boot();
    let key_addr = tytan::platform::PLATFORM_KEY_BASE;
    let thief = SecureTaskBuilder::new(
        "keythief",
        format!("main:\n movi r1, {key_addr:#x}\n ldw r2, [r1]\nspin:\n jmp spin\n"),
    )
    .build()
    .unwrap();
    let (th, _) = load(&mut platform, &thief, 2);
    platform.run_for(300_000).unwrap();
    assert!(
        platform.faults().iter().any(|f| f.task == Some(th)),
        "platform-key read denied by the EA-MPU"
    );
}

#[test]
fn task_cannot_rewrite_idt() {
    let mut platform = boot();
    let idt_slot = rtos::layout::IDT_BASE + 4 * rtos::layout::TICK_VECTOR as u32;
    let attacker = SecureTaskBuilder::new(
        "idt-writer",
        format!(
            "main:\n movi r1, {idt_slot:#x}\n movi r2, main\n stw [r1], r2\nspin:\n jmp spin\n"
        ),
    )
    .build()
    .unwrap();
    let (ah, _) = load(&mut platform, &attacker, 2);
    platform.run_for(300_000).unwrap();
    assert!(
        platform.faults().iter().any(|f| f.task == Some(ah)),
        "IDT write denied (handler integrity, §4)"
    );
    // The tick handler still works: a fresh task runs normally.
    let probe = counter_task("probe");
    let (ph, _) = load(&mut platform, &probe, 2);
    platform.run_for(300_000).unwrap();
    assert!(read_counter(&mut platform, ph, &probe) > 0);
}

#[test]
fn register_wipe_hides_task_state_from_handlers() {
    // After the Int Mux save stub runs, the scratch registers visible at
    // the kernel trap are wiped (r0 holds only the vector number).
    let mut platform = boot();
    let secret_holder = SecureTaskBuilder::new(
        "holder",
        "main:\n movi r3, 0x5ec2e7\n movi r4, 0x5ec2e7\n movi r5, 0x5ec2e7\n\
         spin:\n jmp spin\n",
    )
    .build()
    .unwrap();
    load(&mut platform, &secret_holder, 2);
    platform.run_for(50_000).unwrap();

    // Drive to the next kernel trap arrival and inspect live registers.
    loop {
        match platform.machine_mut().run(10_000_000) {
            sp_emu::Event::FirmwareTrap { addr } if addr == rtos::layout::KERNEL_TRAP => break,
            sp_emu::Event::Fault(f) => panic!("fault: {f}"),
            _ => {}
        }
    }
    for reg in [
        sp32::Reg::R1,
        sp32::Reg::R2,
        sp32::Reg::R3,
        sp32::Reg::R4,
        sp32::Reg::R5,
    ] {
        assert_ne!(
            platform.machine().reg(reg),
            0x5ec2e7,
            "register {reg} wiped before the OS sees control"
        );
    }
}

#[test]
fn normal_task_accessible_to_os_but_not_to_peers() {
    use tytan::toolchain::build_normal_task;
    let mut platform = boot();
    let normal = build_normal_task("plain", "main:\nloop:\n jmp loop\n", "", 256).unwrap();
    let (nh, _) = load(&mut platform, &normal, 2);
    let data = platform.kernel().task(nh).unwrap().params.data;
    let kernel_actor = platform.kernel().config().kernel_actor;
    let mpu = platform.machine().mpu();
    assert!(mpu
        .check_access(kernel_actor, data.start(), AccessKind::Write)
        .is_allowed());
    assert!(!mpu
        .check_access(0x9_0000, data.start(), AccessKind::Read)
        .is_allowed());
}

#[test]
fn kill_on_fault_disabled_surfaces_the_fault() {
    let config = PlatformConfig {
        kill_on_fault: false,
        ..Default::default()
    };
    let mut platform: Platform = Platform::boot(config).unwrap();
    let victim = counter_task("victim");
    let source = SecureTaskBuilder::new(
        "crasher",
        "main:\n movi r1, 0x40\n ldw r2, [r1]\nspin:\n jmp spin\n",
    )
    .build()
    .unwrap();
    let vt = platform.begin_load(&victim, 2);
    platform.wait_load(vt, 200_000_000).unwrap();
    let ct = platform.begin_load(&source, 3);
    // The crasher faults as soon as it is scheduled — which may already
    // happen while wait_load drives the platform.
    let error = platform
        .wait_load(ct, 200_000_000)
        .err()
        .or_else(|| platform.run_for(500_000).err());
    assert!(
        error.is_some(),
        "fault propagates when kill_on_fault is off"
    );
}
