//! Fleet attestation service, end to end across crates.
//!
//! The fleet crate's own tests exercise its modules in isolation; here
//! the full stack runs together: real [`tytan::platform::Platform`]
//! devices booted under diversified keys, the framed wire protocol, the
//! batched verifier, and the orchestrated [`tytan_fleet::run_fleet`]
//! driver — at integration-test scale (tens of devices, not thousands;
//! the CI `fleet-smoke` job covers 1k).

use tytan::attest::{DeviceId, VerifyError};
use tytan_fleet::farm::{reference_digest, DeviceSim};
use tytan_fleet::proto::{decode, encode, Message, PROTOCOL_VERSION};
use tytan_fleet::verifier::FleetVerifier;
use tytan_fleet::{run_fleet, FleetConfig};
use tytan_trace::Tracer;

#[test]
fn small_fleet_round_is_clean_and_books_balance() {
    let outcome = run_fleet(&FleetConfig {
        devices: 16,
        rounds: 2,
        seed: 0xF1EE7,
        chunk: 3,
        ..FleetConfig::default()
    })
    .expect("fleet runs");
    assert!(outcome.clean(), "{outcome:?}");
    assert_eq!(outcome.accepted, 32);
    assert_eq!(outcome.reports, 32);
    assert_eq!(outcome.device_errors, 0);
    assert!(outcome.throughput > 0.0);
}

#[test]
fn injected_attacks_are_fully_booked_at_integration_scale() {
    let outcome = run_fleet(&FleetConfig {
        devices: 12,
        rounds: 2,
        seed: 0xBAD5EED,
        replay_every: Some(3),
        corrupt_every: Some(4),
        ..FleetConfig::default()
    })
    .expect("fleet runs");
    assert!(outcome.clean(), "{outcome:?}");
    assert_eq!(outcome.accepted, 24);
    // Devices 0,3,6,9 replay twice each; devices 0,4,8 forge twice each.
    assert_eq!(outcome.injected_replays, 8);
    assert_eq!(outcome.injected_corrupt, 6);
    assert_eq!(outcome.rejected_replay, 8);
    assert_eq!(outcome.rejected_bad_mac, 6);
    assert_eq!(outcome.rejected_nonce, 0);
    assert_eq!(outcome.rejected_digest, 0);
    assert_eq!(outcome.decode_errors, 0);
}

/// A real booted platform attests through the wire protocol into the
/// batched verifier — no hand-built reports anywhere in the loop.
#[test]
fn real_device_attests_through_the_wire_and_replay_is_typed() {
    let master = [0x42u8; 20];
    let (_, digest) = reference_digest().expect("reference boots");
    let device = DeviceId::from_u64(7);
    let mut sim = DeviceSim::provision(device, &master).expect("device boots");

    let mut verifier = FleetVerifier::new(master, digest, 0x5417, Tracer::null());
    verifier.provision(device);

    // Hello → Welcome + Challenge over the wire.
    let hello = encode(
        &Message::Hello {
            device,
            max_version: PROTOCOL_VERSION,
        },
        PROTOCOL_VERSION,
    );
    let replies = verifier.ingest(device, &hello);
    assert_eq!(replies.len(), 2);
    let (corr, nonce) = match decode(&replies[1]).expect("challenge decodes").0 {
        Message::Challenge { corr, nonce, .. } => (corr, nonce),
        other => panic!("expected challenge, got {other:?}"),
    };

    // The platform's own Remote Attest task answers the challenge.
    let report = sim.respond(&nonce).expect("platform attests");
    let frame = encode(
        &Message::Report {
            device,
            corr,
            report,
        },
        PROTOCOL_VERSION,
    );
    // Byte-by-byte delivery: reassembly plus verification in one pass.
    for byte in &frame {
        verifier.ingest(device, std::slice::from_ref(byte));
    }
    let entries = verifier.flush();
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].result, Ok(()));
    assert_eq!(verifier.accepted_total(), 1);

    // The identical frame again is a replay, typed as such.
    verifier.ingest(device, &frame);
    let entries = verifier.flush();
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].result, Err(VerifyError::ReplayedNonce));
    assert_eq!(verifier.accepted_total(), 1);
}

#[test]
fn same_seed_reproduces_the_same_fleet_books() {
    let config = FleetConfig {
        devices: 10,
        rounds: 1,
        seed: 99,
        replay_every: Some(5),
        ..FleetConfig::default()
    };
    let a = run_fleet(&config).expect("first run");
    let b = run_fleet(&config).expect("second run");
    assert!(a.clean() && b.clean());
    assert_eq!(a.accepted, b.accepted);
    assert_eq!(a.rejected_replay, b.rejected_replay);
    assert_eq!(a.reports, b.reports);
}
