//! The paper's adaptive cruise-control scenario (Figure 2 / Table 1).
//!
//! Three secure tasks: `t1` monitors the pedal sensor, `t2` (loaded on
//! demand) monitors the radar, `t0` runs the engine-control law. The demo
//! measures each task's achieved rate before, while, and after `t2`
//! loads — with TyTAN's interruptible loader and with the blocking
//! ablation — reproducing Table 1 interactively.
//!
//! Run with: `cargo run -p tytan-examples --bin cruise_control`

use sp_emu::devices::{Actuator, Sensor};
use tytan::platform::{Platform, PlatformConfig};
use tytan::usecase::CruiseControl;

const WINDOW: u64 = 960_000; // 20 ms at 48 MHz

fn run_scenario(interruptible: bool) -> Result<(), Box<dyn std::error::Error>> {
    let label = if interruptible {
        "TyTAN (interruptible load)"
    } else {
        "ablation (blocking load)"
    };
    println!("--- {label} ---");

    let config = PlatformConfig {
        interruptible_load: interruptible,
        ..Default::default()
    };
    let mut platform: Platform = Platform::boot(config)?;

    // Script the sensors: the driver presses the pedal, a car appears on
    // the radar at ~60 ms.
    platform
        .device_mut::<Sensor>("pedal")
        .unwrap()
        .set_trace(vec![(0, 30), (1_000_000, 55), (3_000_000, 70)]);
    platform
        .device_mut::<Sensor>("radar")
        .unwrap()
        .set_trace(vec![(0, 0), (2_880_000, 24)]);

    let mut scenario = CruiseControl::install(&mut platform)?;
    platform.run_for(200_000)?; // steady state

    let before = scenario.measure_window(&mut platform, WINDOW)?;
    println!(
        "before loading t2:  t1 {:5.2} kHz   t2 {:>5}   t0 {:5.2} kHz",
        before.t1_rate_khz_at_48mhz(),
        "-",
        before.t0_rate_khz_at_48mhz(),
    );

    // Driver activates cruise control: t2 loads while t0/t1 keep running.
    let (token, source) = scenario.activate_cruise_control(&mut platform);
    let during = scenario.measure_window(&mut platform, WINDOW)?;
    println!(
        "while loading t2:   t1 {:5.2} kHz   t2 {:>5}   t0 {:5.2} kHz",
        during.t1_rate_khz_at_48mhz(),
        "-",
        during.t0_rate_khz_at_48mhz(),
    );

    let (t2, _) = platform.wait_load(token, 200_000_000)?;
    scenario.finish_activation(&platform, t2, &source);
    platform.run_for(200_000)?;
    let after = scenario.measure_window(&mut platform, WINDOW)?;
    println!(
        "after loading t2:   t1 {:5.2} kHz   t2 {:5.2} kHz   t0 {:5.2} kHz",
        after.t1_rate_khz_at_48mhz(),
        after.t2_rate_khz_at_48mhz(),
        after.t0_rate_khz_at_48mhz(),
    );

    let log = platform.device::<Actuator>("actuator").unwrap().log();
    println!(
        "engine actuator received {} commands; final setpoint {}",
        log.len(),
        log.last().map(|&(_, v)| v as i32).unwrap_or(0),
    );
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    run_scenario(true)?;
    run_scenario(false)?;
    println!("note: with the blocking loader the t0/t1 rates collapse during the load —");
    println!("this is the deadline violation TyTAN's interruptible pipeline prevents (Table 1).");
    Ok(())
}
