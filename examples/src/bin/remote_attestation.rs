//! Multi-stakeholder remote attestation.
//!
//! Two mutually distrusting task providers deploy tasks on one device; a
//! remote verifier (e.g. the car manufacturer's backend) challenges the
//! device and verifies, per task, that exactly the expected binary runs.
//! A tampered task is detected both by its changed identity and by the
//! digest mismatch at the verifier.
//!
//! Run with: `cargo run -p tytan-examples --bin remote_attestation`

use tytan::attest::{AttestationReport, RemoteVerifier, VerifyError};
use tytan::platform::{Platform, PlatformConfig};
use tytan::toolchain::SecureTaskBuilder;
use tytan_crypto::{Digest, Sha1};

fn supplier_task() -> tytan::toolchain::TaskSource {
    SecureTaskBuilder::new(
        "supplier-abs-controller",
        "main:\n movi r1, state\n\
         loop:\n ldw r2, [r1]\n addi r2, 3\n stw [r1], r2\n jmp loop\n",
    )
    .data("state:\n .word 0\n")
    .build()
    .expect("assembles")
}

fn oem_task() -> tytan::toolchain::TaskSource {
    SecureTaskBuilder::new(
        "oem-telemetry",
        "main:\n movi r1, frames\n\
         loop:\n ldw r2, [r1]\n addi r2, 1\n stw [r1], r2\n\
         movi r1, SYS_DELAY\n movi r2, 2\n int SYS_VECTOR\n\
         movi r1, frames\n jmp loop\n",
    )
    .data("frames:\n .word 0\n")
    .build()
    .expect("assembles")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut platform: Platform = Platform::boot(PlatformConfig::default())?;

    // Each provider pre-computes the reference digest of its own binary.
    let supplier = supplier_task();
    let oem = oem_task();
    let supplier_ref = Sha1::digest(&supplier.image.measurement_bytes());
    let oem_ref = Sha1::digest(&oem.image.measurement_bytes());

    let st = platform.begin_load(&supplier, 2);
    let (_, supplier_id) = platform.wait_load(st, 100_000_000)?;
    let ot = platform.begin_load(&oem, 2);
    let (_, oem_id) = platform.wait_load(ot, 100_000_000)?;
    platform.run_for(500_000)?;
    println!("deployed supplier task {supplier_id} and OEM task {oem_id}");

    // The verifier holds K_a (provisioned by the manufacturer) and the
    // per-provider reference digests.
    let verifier = RemoteVerifier::new(platform.attestation_key());

    for (name, id, reference) in [
        ("supplier-abs-controller", supplier_id, &supplier_ref),
        ("oem-telemetry", oem_id, &oem_ref),
    ] {
        let nonce = format!("challenge-for-{name}");
        let report = platform.remote_attest(id, nonce.as_bytes())?;
        match verifier.verify(&report, nonce.as_bytes(), reference) {
            Ok(()) => println!("  {name}: attestation OK (id {id})"),
            Err(e) => println!("  {name}: attestation FAILED: {e}"),
        }
    }

    // Negative case 1: a tampered binary. One changed instruction gives a
    // different measured identity, so it cannot impersonate the original.
    let tampered_body = "main:\n movi r1, state\n\
         loop:\n ldw r2, [r1]\n addi r2, 4\n stw [r1], r2\n jmp loop\n";
    let tampered = SecureTaskBuilder::new("supplier-abs-controller", tampered_body)
        .data("state:\n .word 0\n")
        .build()?;
    let tt = platform.begin_load(&tampered, 2);
    let (_, tampered_id) = platform.wait_load(tt, 100_000_000)?;
    println!("tampered task loaded with identity {tampered_id} (≠ {supplier_id})");
    let report = platform.remote_attest(tampered_id, b"fresh-nonce")?;
    match verifier.verify(&report, b"fresh-nonce", &supplier_ref) {
        Err(VerifyError::DigestMismatch { .. }) => {
            println!("  verifier rejected the tampered binary: digest mismatch");
        }
        other => println!("  unexpected outcome: {other:?}"),
    }

    // Negative case 2: a replayed report fails the nonce check.
    let stale = platform.remote_attest(supplier_id, b"old-nonce")?;
    match verifier.verify(&stale, b"new-nonce", &supplier_ref) {
        Err(VerifyError::NonceMismatch) => println!("  replayed report rejected: stale nonce"),
        other => println!("  unexpected outcome: {other:?}"),
    }

    // Negative case 3: a forged MAC (wrong key) fails outright.
    let forged = AttestationReport {
        mac: vec![0u8; 20],
        ..stale
    };
    match verifier.verify(&forged, b"old-nonce", &supplier_ref) {
        Err(VerifyError::BadMac) => println!("  forged report rejected: bad MAC"),
        other => println!("  unexpected outcome: {other:?}"),
    }

    // Device-level attestation: one report covering the whole task set.
    let expected: Vec<_> = platform
        .rtm()
        .records()
        .map(|r| (r.id, r.digest.clone()))
        .collect();
    let device_report = platform.remote_attest_device(b"device-challenge");
    match verifier.verify_device(&device_report, b"device-challenge", &expected) {
        Ok(()) => println!(
            "device-level attestation OK: {} tasks covered by one MAC",
            device_report.tasks.len()
        ),
        Err(e) => println!("device-level attestation FAILED: {e}"),
    }

    println!("remote attestation demo complete");
    Ok(())
}
