//! Industrial-control scenario: a PLC-style scan task plus an
//! interrupt-driven safety supervisor.
//!
//! The paper's introduction motivates TyTAN with industrial control
//! systems and critical infrastructure. This demo runs:
//!
//! - `scan`: a secure task cyclically reading a pressure transducer and
//!   writing the valve actuator (classic PLC scan loop),
//! - `safety`: a secure supervisor that *suspends itself* and is woken by
//!   the transducer's over-pressure threshold interrupt, routed by the
//!   Int Mux straight into its mailbox — the OS never sees the event —
//!   whereupon it slams the valve shut and latches an alarm,
//!
//! and verifies the plant integrity with a device-level attestation
//! before "commissioning".
//!
//! Run with: `cargo run -p tytan-examples --bin plc_gateway`

use rtos::layout;
use sp_emu::devices::{Actuator, Sensor};
use tytan::attest::RemoteVerifier;
use tytan::platform::{Platform, PlatformConfig};
use tytan::toolchain::SecureTaskBuilder;

const OVERPRESSURE_VECTOR: u8 = 40;
// Must fit cmpi's sign-extended 16-bit immediate.
const TAG_OVERPRESSURE: u32 = 0x5afe;

fn scan_task() -> tytan::toolchain::TaskSource {
    // Every cycle: valve_command = pressure / 2, then sleep one tick.
    SecureTaskBuilder::new(
        "plc-scan",
        format!(
            "main:\n\
             loop:\n movi r1, {pressure:#x}\n ldw r2, [r1]\n\
             movi r3, 1\n shr r2, r3\n\
             movi r1, {valve:#x}\n stw [r1], r2\n\
             movi r1, scans\n ldw r2, [r1]\n addi r2, 1\n stw [r1], r2\n\
             movi r1, SYS_DELAY\n movi r2, 1\n int SYS_VECTOR\n\
             jmp loop\n",
            pressure = layout::PEDAL_BASE,
            valve = layout::ACTUATOR_BASE,
        ),
    )
    .data("scans:\n .word 0\n")
    .build()
    .expect("assembles")
}

fn safety_task() -> tytan::toolchain::TaskSource {
    // Suspends itself; the over-pressure IRQ (delivered into the mailbox
    // by the Int Mux) resumes it: close the valve, latch the alarm.
    SecureTaskBuilder::new(
        "safety-supervisor",
        format!(
            "main:\n\
             wait:\n movi r1, SYS_SUSPEND\n int SYS_VECTOR\n\
             movi r1, __mailbox\n ldw r2, [r1]\n cmpi r2, 0\n jz wait\n\
             ldw r3, [r1+16]\n cmpi r3, {tag}\n jnz clear\n\
             movi r4, {valve:#x}\n movi r5, 0\n stw [r4], r5\n\
             movi r4, alarms\n ldw r5, [r4]\n addi r5, 1\n stw [r4], r5\n\
             clear:\n xor r2, r2\n stw [r1], r2\n jmp wait\n",
            tag = TAG_OVERPRESSURE,
            valve = layout::ACTUATOR_BASE,
        ),
    )
    .data("alarms:\n .word 0\n")
    .build()
    .expect("assembles")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = PlatformConfig {
        device_irq_vectors: vec![OVERPRESSURE_VECTOR],
        ..Default::default()
    };
    let mut platform: Platform = Platform::boot(config)?;

    // The pressure trace: nominal, then a spike at ~40 ms, then recovery.
    platform
        .device_mut::<Sensor>("pedal")
        .unwrap()
        .set_trace(vec![
            (0, 60),
            (1_920_000, 140), // spike
            (2_400_000, 55),  // operator vents the line
        ]);
    platform
        .device_mut::<Sensor>("pedal")
        .unwrap()
        .set_threshold_irq(100, OVERPRESSURE_VECTOR);

    let scan = scan_task();
    let safety = safety_task();
    let st = platform.begin_load(&scan, 3);
    let (scan_handle, scan_id) = platform.wait_load(st, 400_000_000)?;
    let ft = platform.begin_load(&safety, 5);
    let (safety_handle, safety_id) = platform.wait_load(ft, 400_000_000)?;
    platform.bind_irq(OVERPRESSURE_VECTOR, safety_id, TAG_OVERPRESSURE);

    // Commissioning gate: the plant operator attests the whole device
    // before the line goes live.
    let verifier = RemoteVerifier::new(platform.attestation_key());
    let expected = vec![
        (scan_id, platform.local_attest(scan_id).unwrap()),
        (safety_id, platform.local_attest(safety_id).unwrap()),
    ];
    let report = platform.remote_attest_device(b"commissioning");
    verifier.verify_device(&report, b"commissioning", &expected)?;
    println!("commissioning attestation OK: scan {scan_id}, safety {safety_id}");

    // Run 60 ms of plant time.
    platform.run_for(2_880_000)?;

    let scan_base = platform.task_base(scan_handle).unwrap();
    let scans = platform.debug_read_word(scan_base + scan.symbol_offset("scans").unwrap())?;
    let safety_base = platform.task_base(safety_handle).unwrap();
    let alarms = platform.debug_read_word(safety_base + safety.symbol_offset("alarms").unwrap())?;
    println!("PLC completed {scans} scan cycles (~1.5 kHz)");
    println!("safety supervisor latched {alarms} over-pressure alarm(s)");

    let log = platform.device::<Actuator>("actuator").unwrap().log();
    let slammed_shut = log.iter().any(|&(_, v)| v == 0);
    println!(
        "valve history: {} commands; emergency close issued: {}",
        log.len(),
        slammed_shut,
    );
    assert!(alarms >= 1, "the spike must trip the supervisor");
    assert!(slammed_shut, "the supervisor must close the valve");
    println!("plc gateway demo complete");
    Ok(())
}
