//! Platform inspector: dumps the security state of a running TyTAN
//! device — EA-MPU rule table, RTM measurement list, scheduler state,
//! and a disassembly of a loaded task — the view a platform debugger
//! (with debug-port access) would give a developer.
//!
//! Run with: `cargo run -p tytan-examples --bin inspect`

use sp32::disasm::{disassemble, listing};
use tytan::platform::{Platform, PlatformConfig};
use tytan::usecase::CruiseControl;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut platform: Platform = Platform::boot(PlatformConfig::default())?;
    let mut scenario = CruiseControl::install(&mut platform)?;
    let (token, source) = scenario.activate_cruise_control(&mut platform);
    let (t2, _) = platform.wait_load(token, 400_000_000)?;
    scenario.finish_activation(&platform, t2, &source);
    platform.run_for(1_000_000)?;

    println!("================ TyTAN platform state ================");
    println!("cycles: {}", platform.machine().cycles());
    println!(
        "instructions retired: {}, interrupts: {}, faults: {}",
        platform.machine().stats().instructions,
        platform.machine().stats().interrupts,
        platform.machine().stats().faults,
    );
    println!();

    println!(
        "--- EA-MPU rule table ({} of {} slots used) ---",
        platform.machine().mpu().used_slots(),
        platform.machine().mpu().slot_count(),
    );
    for (slot, rule) in platform.machine().mpu().rules() {
        println!("  slot {slot:2}: {rule}");
    }
    println!();

    println!(
        "--- RTM measurement list ({} tasks) ---",
        platform.rtm().len()
    );
    for record in platform.rtm().records() {
        println!(
            "  id {} base {:#010x} mailbox {:#010x}  {}",
            record.id, record.base, record.mailbox, record.name,
        );
        println!("    digest {}", hex(&record.digest));
    }
    println!();

    println!("--- scheduler ---");
    println!("  tick: {}", platform.kernel().tick_count());
    for handle in platform.kernel().handles() {
        let tcb = platform.kernel().task(handle).expect("live");
        println!(
            "  {handle}: {:<18} prio {} state {:?} dispatches {}",
            tcb.name(),
            tcb.params.priority,
            tcb.state,
            tcb.dispatches,
        );
    }
    println!();

    // Disassemble the first instructions of t2's entry routine straight
    // from task memory (debug port).
    let base = platform.task_base(t2).expect("t2 loaded");
    let bytes = platform.machine().read_bytes(base, 64)?;
    let lines = disassemble(&bytes, base).map_err(|(_, e, addr)| {
        std::io::Error::other(format!("disassembly failed at {addr:#x}: {e}"))
    })?;
    println!("--- t2 entry routine (first 64 bytes at {base:#010x}) ---");
    print!("{}", listing(&lines));
    println!();

    println!("--- secure-boot measurement ---");
    println!("  trusted components: {}", hex(platform.boot_measurement()));
    Ok(())
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
