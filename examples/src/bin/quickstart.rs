//! Quickstart: boot TyTAN, load a secure task, attest it, message it.
//!
//! Run with: `cargo run -p tytan-examples --bin quickstart`

use tytan::attest::RemoteVerifier;
use tytan::platform::{Platform, PlatformConfig};
use tytan::toolchain::SecureTaskBuilder;
use tytan_crypto::TaskId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Secure boot: trusted components are measured and protected.
    let mut platform: Platform = Platform::boot(PlatformConfig::default())?;
    println!(
        "booted; trusted-component measurement: {}",
        hex(platform.boot_measurement())
    );

    // 2. Build a secure task with the TyTAN tool chain. The entry routine
    //    and mailbox are added automatically.
    let task = SecureTaskBuilder::new(
        "worker",
        "main:\n movi r1, counter\n\
         loop:\n ldw r2, [r1]\n addi r2, 1\n stw [r1], r2\n jmp loop\n",
    )
    .data("counter:\n .word 0\n")
    .stack_len(256)
    .build()?;

    // 3. Dynamic loading: relocation, EA-MPU configuration, interruptible
    //    RTM measurement — all while the platform keeps running.
    let token = platform.begin_load(&task, 2);
    let (handle, id) = platform.wait_load(token, 100_000_000)?;
    println!("loaded `worker` as {handle} with identity id_t = {id}");

    // 4. Let it run in isolation.
    platform.run_for(500_000)?;
    let base = platform.task_base(handle).expect("loaded");
    let counter = platform.debug_read_word(base + task.symbol_offset("counter").unwrap())?;
    println!("worker made {counter} iterations under EA-MPU isolation");

    // 5. Local attestation: read the RTM's measurement list.
    let digest = platform.local_attest(id).expect("measured");
    println!("local attestation digest: {}", hex(&digest));

    // 6. Remote attestation: challenge-response with a MAC under K_a.
    let verifier = RemoteVerifier::new(platform.attestation_key());
    let nonce = b"quickstart-nonce";
    let report = platform.remote_attest(id, nonce)?;
    verifier.verify(&report, nonce, &digest)?;
    println!("remote attestation verified for id_t = {}", report.id);

    // 7. Secure IPC: inject a message as the proxy would; the worker's
    //    mailbox now carries payload + authenticated sender identity.
    platform.inject_message(id, TaskId::from_u64(0x0e0e_0e0e_0e0e_0e0e), [1, 2, 3])?;
    let mailbox = platform.rtm().lookup(id).unwrap().mailbox;
    let word0 = platform.debug_read_word(mailbox + 16)?;
    println!("mailbox payload word 0 after IPC: {word0}");

    println!("quickstart complete");
    Ok(())
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
