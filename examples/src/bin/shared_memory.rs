//! Shared-memory IPC: bulk data transfer between two secure tasks.
//!
//! Register-based IPC carries 12 bytes; "to efficiently transfer large
//! amounts of data between tasks, the IPC proxy sets up shared memory
//! that is accessible only to the communicating tasks" (§3). This demo
//! sets up a window between a producer and a consumer, hands both the
//! address over ordinary IPC, streams a block of data across, and shows a
//! third task being denied access to the window.
//!
//! Run with: `cargo run -p tytan-examples --bin shared_memory`

use tytan::platform::{Platform, PlatformConfig};
use tytan::toolchain::SecureTaskBuilder;
use tytan_crypto::TaskId;

const WORDS: u32 = 16;

fn producer() -> tytan::toolchain::TaskSource {
    // Waits for the window address in its mailbox, fills the window with
    // i*3, then writes a sentinel after the data.
    SecureTaskBuilder::new(
        "producer",
        format!(
            "main:\n\
             wait:\n movi r1, __mailbox\n ldw r2, [r1]\n cmpi r2, 0\n jz wait\n\
             ldw r3, [r1+16]\n\
             movi r4, 0\n\
             fill:\n mov r5, r4\n movi r6, 3\n mul r5, r6\n\
             stw [r3], r5\n addi r3, 4\n addi r4, 1\n cmpi r4, {words}\n jnz fill\n\
             movi r5, 0xfeed\n stw [r3], r5\n\
             done:\n jmp done\n",
            words = WORDS
        ),
    )
    .build()
    .expect("assembles")
}

fn consumer() -> tytan::toolchain::TaskSource {
    // Waits for the address, spins on the sentinel, then sums the block.
    SecureTaskBuilder::new(
        "consumer",
        format!(
            "main:\n\
             wait:\n movi r1, __mailbox\n ldw r2, [r1]\n cmpi r2, 0\n jz wait\n\
             ldw r3, [r1+16]\n\
             movi r6, 0xfeed\n\
             poll:\n ldw r5, [r3+{sentinel}]\n cmp r5, r6\n jnz poll\n\
             movi r4, 0\n movi r0, 0\n\
             sum:\n ldw r5, [r3]\n add r0, r5\n addi r3, 4\n addi r4, 1\n\
             cmpi r4, {words}\n jnz sum\n\
             movi r1, total\n stw [r1], r0\n\
             done:\n jmp done\n",
            words = WORDS,
            sentinel = WORDS * 4,
        ),
    )
    .data("total:\n .word 0\n")
    .build()
    .expect("assembles")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut platform: Platform = Platform::boot(PlatformConfig::default())?;

    let producer_src = producer();
    let consumer_src = consumer();
    let pt = platform.begin_load(&producer_src, 2);
    let (ph, pid) = platform.wait_load(pt, 200_000_000)?;
    let ct = platform.begin_load(&consumer_src, 2);
    let (ch, cid) = platform.wait_load(ct, 200_000_000)?;

    // The IPC proxy sets up the window (one extra word for the sentinel)
    // and tells both parties where it is.
    let window = platform.setup_shared_memory(ph, ch, (WORDS + 1) * 4)?;
    println!("shared window at {window} between producer {pid} and consumer {cid}");
    let proxy = TaskId::from_u64(0);
    platform.inject_message(pid, proxy, [window.start(), 0, 0])?;
    platform.inject_message(cid, proxy, [window.start(), 0, 0])?;

    platform.run_for(3_000_000)?;

    let base = platform.task_base(ch).expect("consumer loaded");
    let total = platform.debug_read_word(base + consumer_src.symbol_offset("total").unwrap())?;
    let expected: u32 = (0..WORDS).map(|i| i * 3).sum();
    println!("consumer summed the streamed block: {total} (expected {expected})");
    assert_eq!(total, expected);

    // A third task trying to read the window is killed by the EA-MPU.
    let snooper = SecureTaskBuilder::new(
        "snooper",
        format!(
            "main:\n movi r1, {:#x}\n ldw r2, [r1]\nspin:\n jmp spin\n",
            window.start()
        ),
    )
    .build()?;
    let st = platform.begin_load(&snooper, 3);
    let (sh, _) = platform.wait_load(st, 200_000_000)?;
    platform.run_for(500_000)?;
    let killed = platform.kernel().task(sh).is_none();
    println!(
        "snooper task reading the window: {}",
        if killed {
            "EA-MPU violation, task killed"
        } else {
            "unexpectedly survived!"
        }
    );

    println!("shared-memory demo complete");
    Ok(())
}
