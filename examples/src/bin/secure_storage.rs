//! Secure storage: sealing data to a task's measured identity.
//!
//! A calibration task seals its state; a different task cannot unseal it;
//! after unload and reload of the *same binary*, the new instance — with
//! the same measured identity — unseals it again. An "updated" binary is
//! a different principal and is locked out (the property that makes
//! secure storage survive task restarts but not tampering).
//!
//! Run with: `cargo run -p tytan-examples --bin secure_storage`

use tytan::platform::{Platform, PlatformConfig, PlatformError};
use tytan::storage::StorageError;
use tytan::toolchain::SecureTaskBuilder;

fn calibration_task() -> tytan::toolchain::TaskSource {
    SecureTaskBuilder::new(
        "calibration",
        "main:\n movi r1, samples\n\
         loop:\n ldw r2, [r1]\n addi r2, 1\n stw [r1], r2\n jmp loop\n",
    )
    .data("samples:\n .word 0\n")
    .build()
    .expect("assembles")
}

fn snooper_task() -> tytan::toolchain::TaskSource {
    SecureTaskBuilder::new("snooper", "main:\nspin:\n jmp spin\n")
        .build()
        .expect("assembles")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut platform: Platform = Platform::boot(PlatformConfig::default())?;

    // Deploy the calibration task and seal its table.
    let cal = calibration_task();
    let token = platform.begin_load(&cal, 2);
    let (cal_handle, cal_id) = platform.wait_load(token, 100_000_000)?;
    platform.run_for(200_000)?;
    platform.storage_store(cal_handle, "engine-map", b"rpm:900,idle:650,afr:14.7")?;
    println!("calibration task {cal_id} sealed its engine map");

    // Another secure task cannot unseal it: its task key K_t differs.
    let snooper = snooper_task();
    let token = platform.begin_load(&snooper, 2);
    let (snooper_handle, snooper_id) = platform.wait_load(token, 100_000_000)?;
    match platform.storage_retrieve(snooper_handle, "engine-map") {
        Err(PlatformError::Storage(StorageError::AccessDenied)) => {
            println!("snooper {snooper_id} was cryptographically denied");
        }
        other => println!("unexpected: {other:?}"),
    }

    // Unload the calibration task entirely, then reload the same binary:
    // the measured identity matches, so the new instance unseals the map.
    platform.unload_task(cal_handle)?;
    println!("calibration task unloaded (memory reclaimed, rules cleared)");
    let token = platform.begin_load(&cal, 2);
    let (cal2_handle, cal2_id) = platform.wait_load(token, 100_000_000)?;
    assert_eq!(cal2_id, cal_id, "same binary, same identity");
    let map = platform.storage_retrieve(cal2_handle, "engine-map")?;
    println!(
        "reloaded instance {cal2_id} unsealed: {}",
        String::from_utf8_lossy(&map)
    );

    // An "updated" binary is a different principal.
    let updated = SecureTaskBuilder::new(
        "calibration",
        "main:\n movi r1, samples\n\
         loop:\n ldw r2, [r1]\n addi r2, 2\n stw [r1], r2\n jmp loop\n",
    )
    .data("samples:\n .word 0\n")
    .build()?;
    let token = platform.begin_load(&updated, 2);
    let (upd_handle, upd_id) = platform.wait_load(token, 100_000_000)?;
    match platform.storage_retrieve(upd_handle, "engine-map") {
        Err(PlatformError::Storage(StorageError::AccessDenied)) => {
            println!("updated binary {upd_id} is a different principal: access denied");
        }
        other => println!("unexpected: {other:?}"),
    }

    println!("secure storage demo complete");
    Ok(())
}
