//! Exports the shipped use-case task images as TTIF files, for the
//! `sp32-lint` CI job (and for poking at images with external tools).
//!
//! ```text
//! cargo run -p tytan-examples --bin export_images -- OUT_DIR
//! ```
//!
//! Writes one `<task-name>.ttif` per image into `OUT_DIR` and prints the
//! paths. These are the images `sp32-lint --deny warnings` must accept
//! (with the platform MMIO window allowed); see `.github/workflows`.

use std::path::Path;
use std::process::ExitCode;

use tytan::toolchain::TaskSource;
use tytan::usecase::{engine_control_source, pedal_monitor_source, radar_monitor_source};
use tytan_crypto::TaskId;

fn sources() -> Vec<TaskSource> {
    // The controller identity only influences the provisioned constants,
    // not the shape of the image; a fixed id keeps the export stable.
    let controller = TaskId::from_u64(1);
    vec![
        engine_control_source(),
        pedal_monitor_source(controller),
        radar_monitor_source(controller),
    ]
}

fn main() -> ExitCode {
    let Some(out_dir) = std::env::args().nth(1) else {
        eprintln!("usage: export_images OUT_DIR");
        return ExitCode::from(2);
    };
    let out_dir = Path::new(&out_dir);
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("export_images: cannot create {}: {e}", out_dir.display());
        return ExitCode::from(2);
    }
    for source in sources() {
        let path = out_dir.join(format!("{}.ttif", source.image.name()));
        if let Err(e) = std::fs::write(&path, source.image.to_bytes()) {
            eprintln!("export_images: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("{}", path.display());
    }
    ExitCode::SUCCESS
}
