//! Fleet-scale remote attestation for the TyTAN reproduction.
//!
//! The paper evaluates one device; real deployments attest thousands.
//! This crate closes that gap host-side: a **device farm** boots
//! thousands of independent [`tytan::platform::Platform`] instances on a
//! work-stealing thread pool ([`pool`]), each device streams
//! MAC-authenticated attestation reports over a framed, versioned wire
//! protocol ([`proto`]), and one **verifier service** ([`verifier`])
//! ingests every connection, batches HMAC verification across devices
//! (precomputed key schedules via [`tytan_crypto::batch_verify`]) and
//! enforces per-device nonce freshness so replays are rejected *typed*,
//! not silently.
//!
//! [`run_fleet`] wires the three together over in-memory channels that
//! deliberately fragment frames at odd boundaries (the decoder earns its
//! keep), drives the whole fleet to completion, and returns a
//! [`FleetOutcome`] with totals, rejection classes, throughput and
//! verify-latency quantiles — the numbers behind the
//! `fleet_throughput` benchmark table.
//!
//! # Examples
//!
//! ```
//! use tytan_fleet::{run_fleet, FleetConfig};
//!
//! let outcome = run_fleet(&FleetConfig {
//!     devices: 4,
//!     ..FleetConfig::default()
//! })
//! .expect("fleet runs");
//! assert_eq!(outcome.accepted, 4);
//! assert!(outcome.clean());
//! ```

pub mod farm;
pub mod pool;
pub mod proto;
pub mod recorder;
pub mod verifier;

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tytan::attest::DeviceId;
use tytan::platform::PlatformError;
use tytan_crypto::{Digest, Sha1};
use tytan_trace::events::{EventLog, LogFields, Severity};
use tytan_trace::metrics::{self, DeltaWindow};
use tytan_trace::Tracer;

use farm::DeviceSim;
use pool::WorkStealingPool;
use proto::{encode, FrameDecoder, Message, PROTOCOL_VERSION};
use verifier::FleetVerifier;

/// Parameters for one fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of simulated devices.
    pub devices: u64,
    /// Attestation rounds per device.
    pub rounds: u64,
    /// Seed for the fleet master secret and challenge salts. The same
    /// seed reproduces the same keys, nonces and injection pattern.
    pub seed: u64,
    /// Worker threads for the device farm (`0` = auto).
    pub workers: usize,
    /// Wire chunk size: frames are fragmented into chunks of this many
    /// bytes to exercise stream reassembly (`0` = whole frames).
    pub chunk: usize,
    /// Every `n`th device re-sends each accepted report verbatim — a
    /// replay attack the verifier must reject, typed.
    pub replay_every: Option<u64>,
    /// Every `n`th device also sends a MAC-corrupted copy of each
    /// report — a forgery the verifier must reject as `BadMac`.
    pub corrupt_every: Option<u64>,
    /// Control-flow attestation mode: devices arm the CF monitor, run a
    /// monitored slice, and answer challenges with
    /// [`proto::Message::CfaReport`] frames; the verifier replays every
    /// edge log against the fleet task's static CFG.
    pub cfa: bool,
    /// (CFA mode) every `n`th device first sends a copy of its report
    /// with one edge detoured off the static CFG — the MAC still
    /// verifies (it covers the chain head, not the raw log), so only
    /// edge replay can reject it, typed `InadmissibleEdge`.
    pub detour_every: Option<u64>,
    /// (CFA mode) guest cycles of monitored execution before attesting.
    pub monitored_cycles: u64,
    /// Highest protocol version devices advertise in their Hello,
    /// clamped to [`proto::PROTOCOL_VERSION`]. Lowering it to 3 forces
    /// the raw expanded CFA wire form (protocol v4 ships edge logs
    /// run-length compressed) — the compatibility leg CI keeps green.
    pub max_version: u8,
    /// Where to write the Prometheus metrics exposition after the run
    /// (`None` = don't write).
    pub metrics_out: Option<PathBuf>,
    /// Where to write the structured event stream as JSONL after the
    /// run (`None` = don't write).
    pub events_out: Option<PathBuf>,
    /// Directory receiving one forensic bundle file per typed rejection
    /// (`None` = bundles stay in memory only). Created if missing.
    pub bundle_dir: Option<PathBuf>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            devices: 8,
            rounds: 1,
            seed: 7,
            workers: 0,
            chunk: 13,
            replay_every: None,
            corrupt_every: None,
            cfa: false,
            detour_every: None,
            monitored_cycles: 50_000,
            max_version: PROTOCOL_VERSION,
            metrics_out: None,
            events_out: None,
            bundle_dir: None,
        }
    }
}

impl FleetConfig {
    /// The fleet master secret for this seed.
    pub fn master(&self) -> [u8; 20] {
        let mut h = Sha1::new();
        h.update(b"tytan-fleet-master-v1");
        h.update(&self.seed.to_be_bytes());
        h.finalize().try_into().expect("SHA-1 is 20 bytes")
    }

    /// The protocol version devices open their sessions at.
    fn device_version(&self) -> u8 {
        self.max_version
            .clamp(proto::MIN_PROTOCOL_VERSION, PROTOCOL_VERSION)
    }

    fn worker_count(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .clamp(2, 8)
    }

    fn replay_hit(&self, device: u64) -> bool {
        matches!(self.replay_every, Some(n) if n > 0 && device.is_multiple_of(n))
    }

    fn corrupt_hit(&self, device: u64) -> bool {
        matches!(self.corrupt_every, Some(n) if n > 0 && device.is_multiple_of(n))
    }

    fn detour_hit(&self, device: u64) -> bool {
        self.cfa && matches!(self.detour_every, Some(n) if n > 0 && device.is_multiple_of(n))
    }

    /// Replay copies this configuration injects across the whole run.
    pub fn injected_replays(&self) -> u64 {
        (0..self.devices).filter(|&d| self.replay_hit(d)).count() as u64 * self.rounds
    }

    /// Corrupt copies this configuration injects across the whole run.
    pub fn injected_corrupt(&self) -> u64 {
        (0..self.devices).filter(|&d| self.corrupt_hit(d)).count() as u64 * self.rounds
    }

    /// Detoured copies this configuration injects across the whole run.
    pub fn injected_detours(&self) -> u64 {
        (0..self.devices).filter(|&d| self.detour_hit(d)).count() as u64 * self.rounds
    }
}

/// What one fleet run produced.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Devices driven.
    pub devices: u64,
    /// Rounds per device.
    pub rounds: u64,
    /// Reports received by the verifier (genuine + injected copies).
    pub reports: u64,
    /// Reports accepted (MAC, freshness and digest all good).
    pub accepted: u64,
    /// Verbatim replays rejected with the typed replay error.
    pub rejected_replay: u64,
    /// Forged/corrupted MACs rejected.
    pub rejected_bad_mac: u64,
    /// Stale-nonce rejections (should be zero for honest fleets).
    pub rejected_nonce: u64,
    /// Wrong-software rejections (should be zero here).
    pub rejected_digest: u64,
    /// Reports from devices the verifier was never provisioned for.
    pub unknown_device: u64,
    /// Connections dropped on malformed frames.
    pub decode_errors: u64,
    /// Control-flow-attested reports received (subset of `reports`).
    pub cfa_reports: u64,
    /// Raw (expanded) control-flow edges the received logs cover.
    pub cfa_edges: u64,
    /// Run-length-encoded runs those logs actually shipped and refolded.
    pub cfa_runs: u64,
    /// Edge logs rejected because an edge left the static CFG.
    pub rejected_inadmissible: u64,
    /// Edge logs rejected at an unproven site (conservative mode).
    pub rejected_unproven: u64,
    /// Edge logs rejected because they do not refold to the chain head.
    pub rejected_chain: u64,
    /// Replay copies the run injected (expected `rejected_replay`).
    pub injected_replays: u64,
    /// Corrupt copies the run injected (expected `rejected_bad_mac`).
    pub injected_corrupt: u64,
    /// Detoured copies the run injected (expected `rejected_inadmissible`).
    pub injected_detours: u64,
    /// Device jobs that failed to boot, load or converse.
    pub device_errors: u64,
    /// Wall-clock time for the whole run (boots included).
    pub elapsed: Duration,
    /// Accepted attestations per second of wall-clock.
    pub throughput: f64,
    /// Median amortized per-report verify latency (ns).
    pub verify_p50_ns: u64,
    /// 99th-percentile amortized per-report verify latency (ns).
    pub verify_p99_ns: u64,
    /// Median batch verification latency (ns).
    pub batch_p50_ns: u64,
    /// 99th-percentile batch verification latency (ns).
    pub batch_p99_ns: u64,
    /// Verification batches flushed.
    pub batches: u64,
    /// Forensic bundles the flight recorder dumped (one per typed
    /// rejection of a provisioned device).
    pub bundles: u64,
    /// Structured events emitted (including any later shed).
    pub events: u64,
    /// Structured events shed because the bounded log was full.
    pub events_dropped: u64,
    /// Trace events the tracer's sink shed (bounded rings drop-oldest).
    pub trace_dropped: u64,
}

impl FleetOutcome {
    /// Whether the run did exactly what the configuration demanded: every
    /// genuine report accepted, every injected replay and forgery
    /// rejected as its own class, nothing unexplained anywhere.
    pub fn clean(&self) -> bool {
        self.accepted == self.devices * self.rounds
            && self.rejected_replay == self.injected_replays
            && self.rejected_bad_mac == self.injected_corrupt
            && self.rejected_inadmissible == self.injected_detours
            && self.rejected_nonce == 0
            && self.rejected_digest == 0
            && self.rejected_unproven == 0
            && self.rejected_chain == 0
            && self.unknown_device == 0
            && self.decode_errors == 0
            && self.device_errors == 0
    }
}

/// Transport events from device jobs to the verifier thread.
enum Inbound {
    /// A device connected; `reply` carries verifier → device bytes.
    Connect {
        device: DeviceId,
        reply: Sender<Vec<u8>>,
    },
    /// Bytes from a device's connection, fragmented arbitrarily.
    Data { device: DeviceId, bytes: Vec<u8> },
}

/// Sends one frame, fragmented into `chunk`-byte pieces (whole if 0).
fn send_chunked(tx: &Sender<Inbound>, device: DeviceId, frame: &[u8], chunk: usize) {
    let chunk = if chunk == 0 { frame.len() } else { chunk };
    for piece in frame.chunks(chunk.max(1)) {
        // A send failure means the verifier is gone; the job just ends.
        if tx
            .send(Inbound::Data {
                device,
                bytes: piece.to_vec(),
            })
            .is_err()
        {
            return;
        }
    }
}

/// One device's whole conversation: connect, hello, then `rounds` of
/// challenge → report (plus any injected replay/corrupt copies).
fn device_conversation(
    device: DeviceId,
    config: &FleetConfig,
    master: &[u8; 20],
    inbound: Sender<Inbound>,
) -> Result<(), String> {
    let mut sim =
        DeviceSim::provision(device, master).map_err(|e| format!("{device}: boot: {e:?}"))?;
    if config.cfa {
        sim.arm_cfa().map_err(|e| format!("{device}: arm: {e:?}"))?;
        sim.run(config.monitored_cycles)
            .map_err(|e| format!("{device}: monitored run: {e:?}"))?;
    }
    let (reply_tx, reply_rx) = std::sync::mpsc::channel::<Vec<u8>>();
    inbound
        .send(Inbound::Connect {
            device,
            reply: reply_tx,
        })
        .map_err(|_| "verifier gone".to_string())?;

    let device_version = config.device_version();
    let hello = encode(
        &Message::Hello {
            device,
            max_version: device_version,
        },
        device_version,
    );
    send_chunked(&inbound, device, &hello, config.chunk);

    let mut decoder = FrameDecoder::new();
    let next_message = |decoder: &mut FrameDecoder| -> Result<Message, String> {
        loop {
            match decoder.next_message() {
                Ok(Some(message)) => return Ok(message),
                Ok(None) => {
                    let bytes = reply_rx
                        .recv()
                        .map_err(|_| format!("{device}: verifier hung up"))?;
                    decoder.push(&bytes);
                }
                Err(e) => return Err(format!("{device}: reply stream: {e}")),
            }
        }
    };

    let version = match next_message(&mut decoder)? {
        Message::Welcome { version } => version,
        other => return Err(format!("{device}: expected welcome, got {other:?}")),
    };

    for round in 0..config.rounds {
        // Verdict frames for earlier rounds interleave with the next
        // challenge; skip them (the verifier is the source of truth).
        let (corr, nonce) = loop {
            match next_message(&mut decoder)? {
                Message::Challenge { corr, nonce, .. } => break (corr, nonce),
                Message::Verdict { .. } => continue,
                other => {
                    return Err(format!(
                        "{device}: round {round}: expected challenge, got {other:?}"
                    ))
                }
            }
        };
        if config.cfa {
            let report = sim
                .respond_cfa(&nonce)
                .map_err(|e| format!("{device}: cfa attest: {e:?}"))?;
            if config.detour_hit(device.as_u64()) {
                // One edge bent off the static CFG, sent *before* the
                // honest report so the freshness check cannot mask the
                // typed `InadmissibleEdge` rejection. The MAC covers
                // the chain head, not the raw log, so it still passes —
                // only edge replay catches this.
                let mut detoured = report.clone();
                match detoured.log.first_mut() {
                    // Knocking the destination off 4-byte alignment
                    // makes it inadmissible at every site kind.
                    Some(edge) => edge.1 ^= 2,
                    // An empty log means the monitored run was too
                    // short to gather evidence — surface it as a
                    // device error instead of panicking the worker.
                    None => return Err(format!("{device}: no edges to detour")),
                }
                let frame = encode(
                    &Message::CfaReport {
                        device,
                        corr,
                        report: detoured,
                    },
                    version,
                );
                send_chunked(&inbound, device, &frame, config.chunk);
            }
            let frame = encode(
                &Message::CfaReport {
                    device,
                    corr,
                    report,
                },
                version,
            );
            send_chunked(&inbound, device, &frame, config.chunk);
            if config.replay_hit(device.as_u64()) {
                send_chunked(&inbound, device, &frame, config.chunk);
            }
            continue;
        }
        let report = sim
            .respond(&nonce)
            .map_err(|e| format!("{device}: attest: {e:?}"))?;
        let frame = encode(
            &Message::Report {
                device,
                corr,
                report: report.clone(),
            },
            version,
        );
        send_chunked(&inbound, device, &frame, config.chunk);
        if config.replay_hit(device.as_u64()) {
            // The identical bytes again: a verbatim replay.
            send_chunked(&inbound, device, &frame, config.chunk);
        }
        if config.corrupt_hit(device.as_u64()) {
            let mut forged = report;
            forged.mac[0] ^= 0x80;
            let frame = encode(
                &Message::Report {
                    device,
                    corr,
                    report: forged,
                },
                version,
            );
            send_chunked(&inbound, device, &frame, config.chunk);
        }
    }
    Ok(())
}

/// Runs a whole fleet round: boots `config.devices` platforms on the
/// farm pool, streams their reports through the wire protocol into one
/// [`FleetVerifier`], and returns the aggregate outcome.
///
/// The verifier runs on the calling thread; device jobs run on the pool.
/// Determinism: keys, digests, nonces and injections depend only on
/// `config` (throughput and latency numbers are wall-clock, of course).
///
/// # Errors
///
/// Any [`PlatformError`] from the reference boot that provisions the
/// expected fleet digest. Per-device failures do not abort the run; they
/// are counted in [`FleetOutcome::device_errors`].
pub fn run_fleet(config: &FleetConfig) -> Result<FleetOutcome, PlatformError> {
    run_fleet_with_tracer(config, Tracer::null())
}

/// [`run_fleet`] reporting into a caller-supplied tracer (counters,
/// histograms and span events land in its registries).
pub fn run_fleet_with_tracer(
    config: &FleetConfig,
    tracer: Tracer,
) -> Result<FleetOutcome, PlatformError> {
    let master = config.master();
    let (_, expected_digest) = farm::reference_digest()?;

    let mut verifier = FleetVerifier::new(master, expected_digest, config.seed, tracer);
    let event_log = Arc::new(EventLog::new(1 << 16));
    verifier.attach_event_log(event_log.clone());
    if config.cfa {
        verifier.provision_edge_set(farm::fleet_admissible_edges());
    }
    for d in 0..config.devices {
        verifier.provision(DeviceId::from_u64(d));
    }

    let began = Instant::now();
    let pool = WorkStealingPool::new(config.worker_count());
    let device_errors = Arc::new(AtomicU64::new(0));
    let (inbound_tx, inbound_rx) = std::sync::mpsc::channel::<Inbound>();
    for d in 0..config.devices {
        let config = config.clone();
        let inbound = inbound_tx.clone();
        let device_errors = device_errors.clone();
        pool.spawn(move || {
            if device_conversation(DeviceId::from_u64(d), &config, &master, inbound).is_err() {
                device_errors.fetch_add(1, Ordering::Relaxed);
            }
        });
    }
    // The verifier's recv loop ends when every job has dropped its clone.
    drop(inbound_tx);

    serve(&mut verifier, inbound_rx, config, &event_log);
    pool.wait_idle();
    let elapsed = began.elapsed();

    if let Some(dir) = &config.bundle_dir {
        write_bundles(dir, &verifier.take_bundles());
    }
    if let Some(path) = &config.metrics_out {
        let text =
            metrics::prometheus_text(verifier.tracer().counters(), verifier.tracer().histograms());
        write_best_effort(path, &text);
    }
    if let Some(path) = &config.events_out {
        write_best_effort(path, &event_log.to_jsonl());
    }

    let counters = verifier.tracer().counters();
    let get = |name: &str| counters.get(name).unwrap_or(0);
    let hists = verifier.tracer().histograms();
    let verify = hists.get("lat_fleet_verify").map(|h| h.summary());
    let batch = hists.get("lat_fleet_batch").map(|h| h.summary());
    let accepted = get("fleet_accepted");
    Ok(FleetOutcome {
        devices: config.devices,
        rounds: config.rounds,
        reports: get("fleet_reports"),
        accepted,
        rejected_replay: get("fleet_rejected_replay"),
        rejected_bad_mac: get("fleet_rejected_bad_mac"),
        rejected_nonce: get("fleet_rejected_nonce"),
        rejected_digest: get("fleet_rejected_digest"),
        unknown_device: get("fleet_unknown_device"),
        decode_errors: get("fleet_decode_errors"),
        cfa_reports: get("fleet_cfa_reports"),
        cfa_edges: get("fleet_cfa_edges"),
        cfa_runs: get("fleet_cfa_runs"),
        rejected_inadmissible: get("fleet_rejected_inadmissible"),
        rejected_unproven: get("fleet_rejected_unproven"),
        rejected_chain: get("fleet_rejected_chain"),
        injected_replays: config.injected_replays(),
        injected_corrupt: config.injected_corrupt(),
        injected_detours: config.injected_detours(),
        device_errors: device_errors.load(Ordering::Relaxed),
        elapsed,
        throughput: accepted as f64 / elapsed.as_secs_f64().max(f64::EPSILON),
        verify_p50_ns: verify.map_or(0, |s| s.p50),
        verify_p99_ns: verify.map_or(0, |s| s.p99),
        batch_p50_ns: batch.map_or(0, |s| s.p50),
        batch_p99_ns: batch.map_or(0, |s| s.p99),
        batches: get("fleet_batches"),
        bundles: get("fleet_bundles"),
        events: event_log.emitted(),
        events_dropped: event_log.dropped(),
        trace_dropped: verifier.tracer().sink_dropped(),
    })
}

/// Writes `content` to `path`, reporting failures to stderr instead of
/// failing the run — observability outputs must never break the books.
fn write_best_effort(path: &Path, content: &str) {
    if let Err(e) = std::fs::write(path, content) {
        eprintln!("fleet: could not write {}: {e}", path.display());
    }
}

/// Writes each bundle as `bundle-<n>-dev<device>-<verdict>.json` under
/// `dir` (created if missing).
fn write_bundles(dir: &Path, bundles: &[recorder::ForensicBundle]) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("fleet: could not create {}: {e}", dir.display());
        return;
    }
    for (n, bundle) in bundles.iter().enumerate() {
        let name = format!("bundle-{n}-dev{}-{}.json", bundle.device, bundle.verdict);
        write_best_effort(&dir.join(name), &bundle.to_json());
    }
}

/// The verifier event loop: ingest until the inbound channel would
/// block, then flush the pending batch and dispatch verdicts plus the
/// next round's challenges. Adaptive batching — the batch is however
/// many reports arrived while the previous one verified — means the
/// loop never stalls a device that is waiting for its next challenge.
fn serve(
    verifier: &mut FleetVerifier,
    inbound: Receiver<Inbound>,
    config: &FleetConfig,
    event_log: &EventLog,
) {
    let mut replies: HashMap<DeviceId, Sender<Vec<u8>>> = HashMap::new();
    let mut rounds_done: HashMap<DeviceId, u64> = HashMap::new();
    // Windowed metric deltas: every WINDOW_BATCHES flushes, the movement
    // since the previous window lands in the event stream as rates.
    const WINDOW_BATCHES: u64 = 32;
    let mut window = DeltaWindow::new(verifier.tracer().counters());
    let mut batches_since_window = 0u64;
    let mut tick_window = |verifier: &FleetVerifier, batches: &mut u64| {
        *batches += 1;
        if *batches >= WINDOW_BATCHES {
            *batches = 0;
            let snapshot = window.tick(verifier.tracer().counters());
            event_log.emit(
                Severity::Info,
                "fleet.serve",
                "metrics.window",
                LogFields {
                    detail: snapshot.compact(),
                    ..LogFields::default()
                },
            );
        }
    };

    let send_to =
        |replies: &HashMap<DeviceId, Sender<Vec<u8>>>, device: DeviceId, frame: Vec<u8>| {
            if let Some(tx) = replies.get(&device) {
                // Chunk replies too: the device-side decoder reassembles.
                let chunk = if config.chunk == 0 {
                    frame.len().max(1)
                } else {
                    config.chunk
                };
                for piece in frame.chunks(chunk) {
                    if tx.send(piece.to_vec()).is_err() {
                        break;
                    }
                }
            }
        };

    let handle = |verifier: &mut FleetVerifier,
                  replies: &mut HashMap<DeviceId, Sender<Vec<u8>>>,
                  event: Inbound| match event {
        Inbound::Connect { device, reply } => {
            replies.insert(device, reply);
        }
        Inbound::Data { device, bytes } => {
            for frame in verifier.ingest(device, &bytes) {
                send_to(replies, device, frame);
            }
        }
    };

    loop {
        match inbound.recv() {
            Ok(event) => {
                handle(verifier, &mut replies, event);
                // Drain the burst without blocking.
                while let Ok(event) = inbound.try_recv() {
                    handle(verifier, &mut replies, event);
                }
            }
            Err(_) => {
                // Every device finished; verify whatever is still queued.
                for entry in verifier.flush() {
                    send_to(&replies, entry.device, entry.to_frame(PROTOCOL_VERSION));
                }
                return;
            }
        }
        let entries = verifier.flush();
        if !entries.is_empty() {
            tick_window(verifier, &mut batches_since_window);
        }
        for entry in entries {
            let device = entry.device;
            let accepted = entry.result.is_ok();
            send_to(&replies, device, entry.to_frame(PROTOCOL_VERSION));
            if accepted {
                let done = rounds_done.entry(device).or_insert(0);
                *done += 1;
                if *done < config.rounds {
                    if let Some(frame) = verifier.challenge_frame(device, PROTOCOL_VERSION) {
                        send_to(&replies, device, frame);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_fleet_is_clean() {
        let outcome = run_fleet(&FleetConfig {
            devices: 12,
            rounds: 2,
            workers: 3,
            ..FleetConfig::default()
        })
        .expect("fleet runs");
        assert_eq!(outcome.accepted, 24);
        assert_eq!(outcome.reports, 24);
        assert!(outcome.clean(), "outcome: {outcome:?}");
        assert!(outcome.batches > 0);
        assert!(outcome.throughput > 0.0);
    }

    #[test]
    fn injected_replays_are_all_rejected_typed() {
        let outcome = run_fleet(&FleetConfig {
            devices: 10,
            rounds: 2,
            replay_every: Some(2),
            ..FleetConfig::default()
        })
        .expect("fleet runs");
        assert_eq!(outcome.accepted, 20);
        assert_eq!(outcome.injected_replays, 10);
        assert_eq!(outcome.rejected_replay, 10);
        assert!(outcome.clean(), "outcome: {outcome:?}");
    }

    #[test]
    fn injected_forgeries_are_all_rejected_as_bad_mac() {
        let outcome = run_fleet(&FleetConfig {
            devices: 9,
            rounds: 1,
            corrupt_every: Some(3),
            ..FleetConfig::default()
        })
        .expect("fleet runs");
        assert_eq!(outcome.accepted, 9);
        assert_eq!(outcome.injected_corrupt, 3);
        assert_eq!(outcome.rejected_bad_mac, 3);
        assert!(outcome.clean(), "outcome: {outcome:?}");
    }

    #[test]
    fn whole_frame_transport_works_too() {
        let outcome = run_fleet(&FleetConfig {
            devices: 4,
            chunk: 0,
            ..FleetConfig::default()
        })
        .expect("fleet runs");
        assert!(outcome.clean(), "outcome: {outcome:?}");
    }

    #[test]
    fn cfa_fleet_is_clean_and_counts_cfa_reports() {
        let outcome = run_fleet(&FleetConfig {
            devices: 6,
            rounds: 2,
            cfa: true,
            ..FleetConfig::default()
        })
        .expect("fleet runs");
        assert_eq!(outcome.accepted, 12);
        assert_eq!(outcome.cfa_reports, 12);
        assert!(outcome.clean(), "outcome: {outcome:?}");
    }

    #[test]
    fn cfa_logs_arrive_run_compressed() {
        let outcome = run_fleet(&FleetConfig {
            devices: 4,
            cfa: true,
            ..FleetConfig::default()
        })
        .expect("fleet runs");
        assert!(outcome.clean(), "outcome: {outcome:?}");
        // The fleet task is a tight counter loop: its dominant back-edge
        // collapses into long runs, so runs must be far fewer than raw
        // edges.
        assert!(outcome.cfa_edges > 0);
        assert!(
            outcome.cfa_runs * 10 <= outcome.cfa_edges,
            "poor compression: {} runs for {} edges",
            outcome.cfa_runs,
            outcome.cfa_edges
        );
    }

    #[test]
    fn raw_v3_sessions_still_verify_with_detours() {
        // Devices capped at protocol 3 ship expanded logs; the verifier
        // recompresses on decode and everything still books clean —
        // including the typed rejection of the injected detours.
        let outcome = run_fleet(&FleetConfig {
            devices: 6,
            cfa: true,
            detour_every: Some(3),
            max_version: 3,
            ..FleetConfig::default()
        })
        .expect("fleet runs");
        assert_eq!(outcome.accepted, 6);
        assert_eq!(outcome.injected_detours, 2);
        assert_eq!(outcome.rejected_inadmissible, 2);
        assert!(outcome.clean(), "outcome: {outcome:?}");
    }

    #[test]
    fn injected_detours_are_rejected_as_inadmissible_edges() {
        let outcome = run_fleet(&FleetConfig {
            devices: 6,
            rounds: 2,
            cfa: true,
            detour_every: Some(2),
            ..FleetConfig::default()
        })
        .expect("fleet runs");
        assert_eq!(outcome.accepted, 12);
        assert_eq!(outcome.injected_detours, 6);
        assert_eq!(outcome.rejected_inadmissible, 6);
        assert_eq!(outcome.rejected_chain, 0);
        assert_eq!(outcome.rejected_bad_mac, 0, "the detoured MAC verifies");
        assert!(outcome.clean(), "outcome: {outcome:?}");
    }

    #[test]
    fn same_seed_same_books() {
        let config = FleetConfig {
            devices: 6,
            rounds: 1,
            replay_every: Some(3),
            corrupt_every: Some(2),
            ..FleetConfig::default()
        };
        let a = run_fleet(&config).expect("fleet runs");
        let b = run_fleet(&config).expect("fleet runs");
        // Wall-clock differs; the deterministic books must not.
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.reports, b.reports);
        assert_eq!(a.rejected_replay, b.rejected_replay);
        assert_eq!(a.rejected_bad_mac, b.rejected_bad_mac);
        assert!(a.clean() && b.clean());
    }
}
