//! The fleet flight recorder: bounded per-device forensic tapes and
//! self-contained rejection bundles.
//!
//! The verifier's counters say *how many* reports were rejected; the
//! flight recorder preserves *which bytes and which state* produced each
//! rejection. Per device it tapes a bounded tail of recent report frames
//! (truncated snippets — constant memory at fleet scale) and recent
//! verdicts; when a provisioned session rejects a report, the verifier
//! dumps a [`ForensicBundle`]: the full rejected frame, the session's
//! freshness state at rejection time, the frame/decision tails, the edge
//! log tail for control-flow evidence, and everything needed to
//! re-verify offline — the fleet master secret, the expected digest and
//! the admissible edge set.
//!
//! Embedding the master secret makes a bundle *self-contained*: the
//! `fleet replay-bundle` subcommand rebuilds the device's session from
//! the bundle alone and must reproduce the identical typed verdict.
//! This is sound here because the whole fleet is a simulation — the
//! "secret" is derived from a benchmark seed. A production deployment
//! would reference a key handle instead; the bundle format carries a
//! version field so that change stays compatible.
//!
//! Rejections from *unprovisioned* devices get no bundle: the verifier
//! has no key material for them, so the recorded `BadMac` is a roster
//! decision, not a cryptographic one, and a replay could not reproduce
//! it faithfully.

use std::collections::{HashMap, VecDeque};

use tytan::attest::{DeviceId, VerifierSession};
use tytan_lint::AdmissibleEdgeSet;
use tytan_trace::json::{self, Value};

use crate::farm::device_attestation_key;
use crate::proto::{self, verdict_code, Message};

/// Frames retained per device tape.
pub const FRAME_TAIL_CAP: usize = 4;

/// Bytes of each taped frame retained (frames are truncated to this; the
/// full length is recorded alongside).
pub const FRAME_SNIPPET_LEN: usize = 160;

/// Verdicts retained per device tape.
pub const DECISION_TAIL_CAP: usize = 16;

/// Control-flow log *runs* of a rejected report retained in a bundle.
/// A run covers up to `u32::MAX` raw edges, so the tail's raw coverage
/// is far deeper than the pre-compression 32-edge tail at the same cost.
pub const EDGE_TAIL_CAP: usize = 32;

/// Bundle format version written into every bundle. Version 2 switched
/// `edge_tail` from expanded `[from, to]` pairs to run-length-encoded
/// `[from, to, count]` triples, matching the protocol-v4 wire form.
pub const BUNDLE_FORMAT_VERSION: u64 = 2;

/// One taped frame: its correlation id, full wire length, and the first
/// [`FRAME_SNIPPET_LEN`] bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameRecord {
    /// Correlation id the frame carried (`0` for pre-v3 sessions).
    pub corr: u64,
    /// Full frame length on the wire.
    pub len: usize,
    /// Leading bytes of the frame (truncated at [`FRAME_SNIPPET_LEN`]).
    pub snippet: Vec<u8>,
}

/// One taped verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionRecord {
    /// Correlation id of the judged report.
    pub corr: u64,
    /// The [`verdict_code`] the verifier produced.
    pub code: u8,
}

#[derive(Debug, Default)]
struct DeviceTape {
    frames: VecDeque<FrameRecord>,
    decisions: VecDeque<DecisionRecord>,
    dropped: u64,
}

/// Bounded per-device forensic tapes plus the bundles produced so far.
#[derive(Debug, Default)]
pub struct FlightRecorder {
    tapes: HashMap<DeviceId, DeviceTape>,
    bundles: Vec<ForensicBundle>,
}

impl FlightRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        FlightRecorder::default()
    }

    /// Tapes an inbound report frame for `device`.
    pub fn note_frame(&mut self, device: DeviceId, corr: u64, frame: &[u8]) {
        let tape = self.tapes.entry(device).or_default();
        if tape.frames.len() == FRAME_TAIL_CAP {
            tape.frames.pop_front();
            tape.dropped += 1;
        }
        tape.frames.push_back(FrameRecord {
            corr,
            len: frame.len(),
            snippet: frame[..frame.len().min(FRAME_SNIPPET_LEN)].to_vec(),
        });
    }

    /// Tapes a verdict for `device`.
    pub fn note_decision(&mut self, device: DeviceId, corr: u64, code: u8) {
        let tape = self.tapes.entry(device).or_default();
        if tape.decisions.len() == DECISION_TAIL_CAP {
            tape.decisions.pop_front();
            tape.dropped += 1;
        }
        tape.decisions.push_back(DecisionRecord { corr, code });
    }

    /// Snapshot of `device`'s taped frames, oldest first.
    pub fn frame_tail(&self, device: DeviceId) -> Vec<FrameRecord> {
        self.tapes
            .get(&device)
            .map(|t| t.frames.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Snapshot of `device`'s taped verdicts, oldest first.
    pub fn decision_tail(&self, device: DeviceId) -> Vec<DecisionRecord> {
        self.tapes
            .get(&device)
            .map(|t| t.decisions.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Records shed across every tape (bounded tapes drop oldest).
    pub fn dropped(&self) -> u64 {
        self.tapes.values().map(|t| t.dropped).sum()
    }

    /// Adds a finished bundle.
    pub fn push_bundle(&mut self, bundle: ForensicBundle) {
        self.bundles.push(bundle);
    }

    /// Bundles produced so far (not consumed; see
    /// [`FlightRecorder::take_bundles`]).
    pub fn bundles(&self) -> &[ForensicBundle] {
        &self.bundles
    }

    /// Takes ownership of every bundle produced so far.
    pub fn take_bundles(&mut self) -> Vec<ForensicBundle> {
        std::mem::take(&mut self.bundles)
    }
}

/// A self-contained forensic record of one typed rejection. See the
/// module docs for the trust model behind embedding the master secret.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForensicBundle {
    /// The rejected device.
    pub device: u64,
    /// Correlation id of the rejected report.
    pub corr: u64,
    /// Verdict name (see [`verdict_code::name`]).
    pub verdict: String,
    /// The [`verdict_code`].
    pub code: u8,
    /// Fleet master secret the device's key derives from.
    pub master: [u8; 20],
    /// Reference digest every device must report.
    pub expected_digest: Vec<u8>,
    /// The complete rejected frame, exactly as received.
    pub frame: Vec<u8>,
    /// Recent report frames from this device (oldest first).
    pub frame_tail: Vec<FrameRecord>,
    /// Recent verdicts for this device (oldest first).
    pub decisions: Vec<DecisionRecord>,
    /// The session's consumed-nonce window at rejection time.
    pub consumed: Vec<Vec<u8>>,
    /// The session's outstanding challenge nonce at rejection time.
    pub outstanding: Option<Vec<u8>>,
    /// Tail of the rejected report's control-flow edge log (CFA only),
    /// as canonical `(from, to, count)` runs.
    pub edge_tail: Vec<(u32, u32, u32)>,
    /// The admissible edge set as its canonical JSON (CFA only).
    pub edge_set_json: Option<String>,
}

fn push_hex(out: &mut String, bytes: &[u8]) {
    out.push('"');
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out.push('"');
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn parse_hex(s: &str) -> Result<Vec<u8>, String> {
    // Byte-wise, not slice-wise: hostile input may put multi-byte
    // characters at arbitrary offsets, where `&s[i..i + 2]` would panic.
    if !s.is_ascii() {
        return Err("non-ASCII hex string".into());
    }
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex string".into());
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).map_err(|e| format!("bad hex: {e}")))
        .collect()
}

fn field<'a>(obj: &'a Value, key: &str) -> Result<&'a Value, String> {
    obj.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn u64_field(obj: &Value, key: &str) -> Result<u64, String> {
    // Large u64s (device ids, correlation ids) are encoded as decimal
    // strings — f64 JSON numbers lose precision past 2^53.
    field(obj, key)?
        .as_str()
        .ok_or_else(|| format!("field {key:?} is not a string"))?
        .parse::<u64>()
        .map_err(|e| format!("field {key:?}: {e}"))
}

fn hex_field(obj: &Value, key: &str) -> Result<Vec<u8>, String> {
    parse_hex(
        field(obj, key)?
            .as_str()
            .ok_or_else(|| format!("field {key:?} is not a string"))?,
    )
    .map_err(|e| format!("field {key:?}: {e}"))
}

impl ForensicBundle {
    /// Serializes the bundle as one self-contained JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"bundle_version\":\"{BUNDLE_FORMAT_VERSION}\","));
        out.push_str(&format!("\"device\":\"{}\",", self.device));
        out.push_str(&format!("\"corr\":\"{}\",", self.corr));
        out.push_str("\"verdict\":");
        push_json_string(&mut out, &self.verdict);
        out.push_str(&format!(",\"code\":{},", self.code));
        out.push_str("\"master\":");
        push_hex(&mut out, &self.master);
        out.push_str(",\"expected_digest\":");
        push_hex(&mut out, &self.expected_digest);
        out.push_str(",\"frame\":");
        push_hex(&mut out, &self.frame);
        out.push_str(",\"frame_tail\":[");
        for (i, f) in self.frame_tail.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"corr\":\"{}\",\"len\":{},\"snippet\":",
                f.corr, f.len
            ));
            push_hex(&mut out, &f.snippet);
            out.push('}');
        }
        out.push_str("],\"decisions\":[");
        for (i, d) in self.decisions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"corr\":\"{}\",\"code\":{}}}", d.corr, d.code));
        }
        out.push_str("],\"consumed\":[");
        for (i, nonce) in self.consumed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_hex(&mut out, nonce);
        }
        out.push_str("],\"outstanding\":");
        match &self.outstanding {
            Some(nonce) => push_hex(&mut out, nonce),
            None => out.push_str("null"),
        }
        out.push_str(",\"edge_tail\":[");
        for (i, (from, to, count)) in self.edge_tail.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{from},{to},{count}]"));
        }
        out.push_str("],\"edge_set\":");
        match &self.edge_set_json {
            Some(edges) => push_json_string(&mut out, edges),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }

    /// Parses a bundle serialized by [`ForensicBundle::to_json`].
    ///
    /// # Errors
    ///
    /// A description of the first malformed or missing field.
    pub fn from_json(input: &str) -> Result<ForensicBundle, String> {
        let doc = json::parse(input).map_err(|e| format!("bundle does not parse: {e:?}"))?;
        let version = u64_field(&doc, "bundle_version")?;
        if version != BUNDLE_FORMAT_VERSION {
            return Err(format!("unsupported bundle version {version}"));
        }
        let master: [u8; 20] = hex_field(&doc, "master")?
            .try_into()
            .map_err(|_| "master is not 20 bytes".to_string())?;
        let frame_tail = field(&doc, "frame_tail")?
            .as_array()
            .ok_or("frame_tail is not an array")?
            .iter()
            .map(|f| {
                Ok(FrameRecord {
                    corr: u64_field(f, "corr")?,
                    len: field(f, "len")?
                        .as_number()
                        .ok_or("frame len is not a number")? as usize,
                    snippet: hex_field(f, "snippet")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let decisions = field(&doc, "decisions")?
            .as_array()
            .ok_or("decisions is not an array")?
            .iter()
            .map(|d| {
                Ok(DecisionRecord {
                    corr: u64_field(d, "corr")?,
                    code: field(d, "code")?
                        .as_number()
                        .ok_or("decision code is not a number")? as u8,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let consumed = field(&doc, "consumed")?
            .as_array()
            .ok_or("consumed is not an array")?
            .iter()
            .map(|n| {
                parse_hex(n.as_str().ok_or("consumed nonce is not a string")?)
                    .map_err(|e| format!("consumed nonce: {e}"))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let outstanding = match field(&doc, "outstanding")? {
            Value::Null => None,
            v => Some(
                parse_hex(v.as_str().ok_or("outstanding is not a string")?)
                    .map_err(|e| format!("outstanding: {e}"))?,
            ),
        };
        let edge_tail = field(&doc, "edge_tail")?
            .as_array()
            .ok_or("edge_tail is not an array")?
            .iter()
            .map(|run| {
                let run = run.as_array().ok_or("edge run is not a triple")?;
                if run.len() != 3 {
                    return Err("edge run is not a triple".to_string());
                }
                let from = run[0].as_number().ok_or("run from is not a number")?;
                let to = run[1].as_number().ok_or("run to is not a number")?;
                let count = run[2].as_number().ok_or("run count is not a number")?;
                Ok((from as u32, to as u32, count as u32))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let edge_set_json = match field(&doc, "edge_set")? {
            Value::Null => None,
            v => Some(v.as_str().ok_or("edge_set is not a string")?.to_string()),
        };
        let code_value = field(&doc, "code")?
            .as_number()
            .ok_or("code is not a number")? as u8;
        Ok(ForensicBundle {
            device: u64_field(&doc, "device")?,
            corr: u64_field(&doc, "corr")?,
            verdict: field(&doc, "verdict")?
                .as_str()
                .ok_or("verdict is not a string")?
                .to_string(),
            code: code_value,
            master,
            expected_digest: hex_field(&doc, "expected_digest")?,
            frame: hex_field(&doc, "frame")?,
            frame_tail,
            decisions,
            consumed,
            outstanding,
            edge_tail,
            edge_set_json,
        })
    }
}

/// What re-verifying a bundle produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// The bundled device.
    pub device: u64,
    /// The bundled correlation id.
    pub corr: u64,
    /// Verdict code the bundle recorded.
    pub recorded_code: u8,
    /// Verdict code the replay produced.
    pub replayed_code: u8,
    /// Name of the replayed verdict.
    pub verdict: String,
    /// Whether the replay reproduced the recorded verdict exactly.
    pub matches: bool,
}

/// Deterministically re-verifies a bundled rejection: rebuilds the
/// device's session from the bundle's key material, installs the
/// rejection-time freshness state, decodes the bundled frame and submits
/// the report again. A faithful bundle replays to its recorded verdict.
///
/// # Errors
///
/// Malformed bundle JSON, an undecodable bundled frame, a bundled frame
/// that is not a report, or a CFA frame bundled without its edge set.
pub fn replay_bundle(input: &str) -> Result<ReplayOutcome, String> {
    let bundle = ForensicBundle::from_json(input)?;
    let device = DeviceId::from_u64(bundle.device);
    let ka = device_attestation_key(&bundle.master, device);
    let mut session = VerifierSession::new(device, ka, bundle.expected_digest.clone(), 0);
    session.restore_freshness(bundle.consumed.clone(), bundle.outstanding.clone());

    let (message, _) = proto::decode(&bundle.frame).map_err(|e| format!("bundled frame: {e}"))?;
    let result = match message {
        Message::Report { report, .. } => session.submit(&report),
        Message::CfaReport { report, .. } => {
            let edges_json = bundle
                .edge_set_json
                .as_deref()
                .ok_or("cfa bundle carries no edge set")?;
            let edges = AdmissibleEdgeSet::from_json(edges_json)
                .map_err(|e| format!("bundled edge set: {e}"))?;
            session.submit_cfa(&report, &edges)
        }
        other => return Err(format!("bundled frame is not a report: {other:?}")),
    };
    let replayed_code = crate::verifier::result_code(&result);
    Ok(ReplayOutcome {
        device: bundle.device,
        corr: bundle.corr,
        recorded_code: bundle.code,
        replayed_code,
        verdict: verdict_code::name(replayed_code).to_string(),
        matches: replayed_code == bundle.code && verdict_code::name(bundle.code) == bundle.verdict,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bundle() -> ForensicBundle {
        ForensicBundle {
            device: u64::MAX,
            corr: 0x0123_4567_89AB_CDEF,
            verdict: "replayed_nonce".into(),
            code: verdict_code::REPLAYED_NONCE,
            master: [0xA5; 20],
            expected_digest: vec![0x11; 20],
            frame: vec![1, 2, 3, 4, 5],
            frame_tail: vec![FrameRecord {
                corr: 7,
                len: 500,
                snippet: vec![0xDE, 0xAD],
            }],
            decisions: vec![DecisionRecord { corr: 7, code: 0 }],
            consumed: vec![vec![0xAA; 16], vec![0xBB; 16]],
            outstanding: Some(vec![0xCC; 16]),
            edge_tail: vec![(0, 8, 1), (8, 16, 250)],
            edge_set_json: Some("{\"fake\":true}".into()),
        }
    }

    #[test]
    fn bundle_json_round_trips() {
        let bundle = sample_bundle();
        let json = bundle.to_json();
        assert_eq!(ForensicBundle::from_json(&json), Ok(bundle));
        // And the encoding is stable.
        assert_eq!(ForensicBundle::from_json(&json).unwrap().to_json(), json);
    }

    #[test]
    fn bundle_without_cfa_fields_round_trips() {
        let bundle = ForensicBundle {
            edge_tail: Vec::new(),
            edge_set_json: None,
            outstanding: None,
            ..sample_bundle()
        };
        let json = bundle.to_json();
        assert!(json.contains("\"outstanding\":null"));
        assert!(json.contains("\"edge_set\":null"));
        assert_eq!(ForensicBundle::from_json(&json), Ok(bundle));
    }

    #[test]
    fn malformed_bundles_fail_typed() {
        assert!(ForensicBundle::from_json("not json").is_err());
        assert!(ForensicBundle::from_json("{}").is_err());
        let mut bundle = sample_bundle();
        bundle.verdict = "x".into();
        let wrong_version = bundle.to_json().replace(
            &format!("\"bundle_version\":\"{BUNDLE_FORMAT_VERSION}\""),
            "\"bundle_version\":\"999\"",
        );
        assert!(ForensicBundle::from_json(&wrong_version)
            .unwrap_err()
            .contains("version"));
    }

    #[test]
    fn tapes_are_bounded_and_count_drops() {
        let mut rec = FlightRecorder::new();
        let device = DeviceId::from_u64(3);
        for i in 0..10u64 {
            rec.note_frame(device, i, &[i as u8; 200]);
        }
        let tail = rec.frame_tail(device);
        assert_eq!(tail.len(), FRAME_TAIL_CAP);
        assert_eq!(tail[0].corr, 10 - FRAME_TAIL_CAP as u64);
        assert_eq!(tail[0].len, 200);
        assert_eq!(tail[0].snippet.len(), FRAME_SNIPPET_LEN);
        for i in 0..20u64 {
            rec.note_decision(device, i, 0);
        }
        assert_eq!(rec.decision_tail(device).len(), DECISION_TAIL_CAP);
        assert_eq!(
            rec.dropped(),
            (10 - FRAME_TAIL_CAP as u64) + (20 - DECISION_TAIL_CAP as u64)
        );
        // Unknown devices have empty tails.
        assert!(rec.frame_tail(DeviceId::from_u64(99)).is_empty());
    }
}
