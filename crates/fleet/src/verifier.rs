//! The fleet verifier service: many connections in, batched HMAC
//! verification, per-device freshness out.
//!
//! One [`FleetVerifier`] owns every device's
//! [`tytan::attest::VerifierSession`] plus a streaming
//! [`crate::proto::FrameDecoder`] per connection. Bytes arrive in
//! whatever chunks the transport produced ([`FleetVerifier::ingest`]);
//! decoded reports accumulate in a pending batch and are verified
//! together in [`FleetVerifier::flush`]: one
//! [`tytan_crypto::batch_verify`] pass over precomputed per-device key
//! schedules (the ipad/opad states are hashed once per *device*, not
//! once per report), then each verdict completes through the session's
//! stateful nonce check.
//!
//! Everything observable lands in the shared `tytan-trace` registries:
//! `fleet_*` counters for totals and each rejection class, and the
//! `lat_fleet_verify` / `lat_fleet_batch` histograms (nanoseconds) for
//! the latency tables.

use std::collections::HashMap;
use std::time::Instant;

use tytan::attest::{AttestationReport, CfaReport, DeviceId, VerifierSession, VerifyError};
use tytan_crypto::batch_verify;
use tytan_lint::AdmissibleEdgeSet;
use tytan_trace::{EventKind, HistId, Layer, Tracer};

use crate::farm::device_attestation_key;
use crate::proto::{encode, negotiate, verdict_code, CodecError, FrameDecoder, Message};

/// The verdict for one submitted report, as the orchestrator sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushEntry {
    /// The device whose report was judged.
    pub device: DeviceId,
    /// The session verdict ([`Ok`] means accepted and nonce consumed).
    pub result: Result<(), VerifyError>,
}

impl FlushEntry {
    /// The wire [`verdict_code`] for this entry.
    pub fn code(&self) -> u8 {
        match &self.result {
            Ok(()) => verdict_code::OK,
            Err(VerifyError::BadMac) => verdict_code::BAD_MAC,
            Err(VerifyError::ReplayedNonce) => verdict_code::REPLAYED_NONCE,
            Err(VerifyError::NonceMismatch) => verdict_code::NONCE_MISMATCH,
            Err(VerifyError::DigestMismatch { .. }) => verdict_code::DIGEST_MISMATCH,
            Err(VerifyError::InadmissibleEdge { .. }) => verdict_code::INADMISSIBLE_EDGE,
            Err(VerifyError::UnprovenSiteViolation { .. }) => verdict_code::UNPROVEN_SITE,
            Err(VerifyError::ChainMismatch) => verdict_code::CHAIN_MISMATCH,
        }
    }

    /// Encodes this entry as a `Verdict` frame.
    pub fn to_frame(&self, version: u8) -> Vec<u8> {
        encode(
            &Message::Verdict {
                device: self.device,
                accepted: self.result.is_ok(),
                code: self.code(),
            },
            version,
        )
    }
}

struct FleetCounters {
    hello: tytan_trace::CounterId,
    reports: tytan_trace::CounterId,
    cfa_reports: tytan_trace::CounterId,
    accepted: tytan_trace::CounterId,
    rejected_bad_mac: tytan_trace::CounterId,
    rejected_replay: tytan_trace::CounterId,
    rejected_nonce: tytan_trace::CounterId,
    rejected_digest: tytan_trace::CounterId,
    rejected_inadmissible: tytan_trace::CounterId,
    rejected_unproven: tytan_trace::CounterId,
    rejected_chain: tytan_trace::CounterId,
    cfa_unconfigured: tytan_trace::CounterId,
    unknown_device: tytan_trace::CounterId,
    decode_errors: tytan_trace::CounterId,
    batches: tytan_trace::CounterId,
}

/// One decoded report awaiting the batched flush — either kind shares
/// the MAC-then-session pipeline.
enum PendingReport {
    Plain(AttestationReport),
    Cfa(CfaReport),
}

impl PendingReport {
    fn mac_input(&self) -> Vec<u8> {
        match self {
            PendingReport::Plain(r) => r.mac_input(),
            PendingReport::Cfa(r) => r.mac_input(),
        }
    }

    fn mac(&self) -> &[u8] {
        match self {
            PendingReport::Plain(r) => &r.mac,
            PendingReport::Cfa(r) => &r.mac,
        }
    }
}

/// The host-side attestation verifier for a whole fleet.
pub struct FleetVerifier {
    master: [u8; 20],
    expected_digest: Vec<u8>,
    salt: u64,
    sessions: HashMap<DeviceId, VerifierSession>,
    decoders: HashMap<DeviceId, FrameDecoder>,
    pending: Vec<(DeviceId, PendingReport)>,
    edge_set: Option<AdmissibleEdgeSet>,
    tracer: Tracer,
    counters: FleetCounters,
    h_verify: HistId,
    h_batch: HistId,
}

impl std::fmt::Debug for FleetVerifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetVerifier")
            .field("sessions", &self.sessions.len())
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl FleetVerifier {
    /// Creates a verifier that derives per-device keys from `master` and
    /// expects every device to report `expected_digest`. `salt`
    /// decorrelates challenge streams across service runs.
    pub fn new(master: [u8; 20], expected_digest: Vec<u8>, salt: u64, tracer: Tracer) -> Self {
        let c = tracer.counters();
        let counters = FleetCounters {
            hello: c.register("fleet_hello"),
            reports: c.register("fleet_reports"),
            cfa_reports: c.register("fleet_cfa_reports"),
            accepted: c.register("fleet_accepted"),
            rejected_bad_mac: c.register("fleet_rejected_bad_mac"),
            rejected_replay: c.register("fleet_rejected_replay"),
            rejected_nonce: c.register("fleet_rejected_nonce"),
            rejected_digest: c.register("fleet_rejected_digest"),
            rejected_inadmissible: c.register("fleet_rejected_inadmissible"),
            rejected_unproven: c.register("fleet_rejected_unproven"),
            rejected_chain: c.register("fleet_rejected_chain"),
            cfa_unconfigured: c.register("fleet_cfa_unconfigured"),
            unknown_device: c.register("fleet_unknown_device"),
            decode_errors: c.register("fleet_decode_errors"),
            batches: c.register("fleet_batches"),
        };
        let h_verify = tracer.histograms().register("lat_fleet_verify");
        let h_batch = tracer.histograms().register("lat_fleet_batch");
        FleetVerifier {
            master,
            expected_digest,
            salt,
            sessions: HashMap::new(),
            decoders: HashMap::new(),
            pending: Vec::new(),
            edge_set: None,
            tracer,
            counters,
            h_verify,
            h_batch,
        }
    }

    /// Provisions a session for `device` (derives its shared `K_a` from
    /// the fleet master). Connections from unprovisioned devices are
    /// counted and ignored — the roster is explicit.
    pub fn provision(&mut self, device: DeviceId) {
        let ka = device_attestation_key(&self.master, device);
        // Per-device salt keeps nonce streams distinct even if two
        // sessions interleave challenges identically.
        let salt = self.salt ^ device.as_u64().rotate_left(32);
        self.sessions.insert(
            device,
            VerifierSession::new(device, ka, self.expected_digest.clone(), salt),
        );
    }

    /// Registers the admissible edge set `tytan-lint` extracted from
    /// the fleet's reference task image. Required before any
    /// [`crate::proto::Message::CfaReport`] can be verified: a CFA
    /// report arriving while no edge set is registered is counted
    /// (`fleet_cfa_unconfigured`) and dropped without a verdict — the
    /// service refuses to judge evidence it has no reference for.
    pub fn provision_edge_set(&mut self, edges: AdmissibleEdgeSet) {
        self.edge_set = Some(edges);
    }

    /// The registered admissible edge set, if any.
    pub fn edge_set(&self) -> Option<&AdmissibleEdgeSet> {
        self.edge_set.as_ref()
    }

    /// Number of provisioned sessions.
    pub fn provisioned(&self) -> usize {
        self.sessions.len()
    }

    /// Reports decoded but not yet verified.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// The session for `device`, if provisioned.
    pub fn session(&self, device: DeviceId) -> Option<&VerifierSession> {
        self.sessions.get(&device)
    }

    /// Issues a fresh challenge for `device` and returns it as an
    /// encoded `Challenge` frame (`None` for unknown devices).
    pub fn challenge_frame(&mut self, device: DeviceId, version: u8) -> Option<Vec<u8>> {
        let session = self.sessions.get_mut(&device)?;
        let nonce = session.challenge();
        Some(encode(&Message::Challenge { device, nonce }, version))
    }

    /// Feeds received bytes from `from`'s connection through its frame
    /// decoder and handles every complete message: `Hello` negotiates
    /// and returns reply frames, `Report`s join the pending batch.
    ///
    /// Returns frames to send back to `from` (negotiation replies).
    /// Decode failures poison that connection and bump
    /// `fleet_decode_errors`; they never propagate as panics.
    pub fn ingest(&mut self, from: DeviceId, bytes: &[u8]) -> Vec<Vec<u8>> {
        let decoder = self.decoders.entry(from).or_default();
        decoder.push(bytes);
        let mut replies = Vec::new();
        loop {
            let message = match self
                .decoders
                .get_mut(&from)
                .expect("entry above")
                .next_message()
            {
                Ok(Some(message)) => message,
                Ok(None) => break,
                Err(CodecError::Poisoned) => break,
                Err(_) => {
                    self.tracer.counters().add(self.counters.decode_errors, 1);
                    self.tracer
                        .emit(Layer::Fleet, 0, 0, EventKind::Mark("decode_error"));
                    break;
                }
            };
            match message {
                Message::Hello {
                    device,
                    max_version,
                } => {
                    self.tracer.counters().add(self.counters.hello, 1);
                    if !self.sessions.contains_key(&device) {
                        self.tracer.counters().add(self.counters.unknown_device, 1);
                        continue;
                    }
                    match negotiate(max_version) {
                        Ok(version) => {
                            replies.push(encode(&Message::Welcome { version }, version));
                            if let Some(frame) = self.challenge_frame(device, version) {
                                replies.push(frame);
                            }
                        }
                        Err(_) => {
                            self.tracer.counters().add(self.counters.decode_errors, 1);
                        }
                    }
                }
                Message::Report { device, report } => {
                    self.tracer.counters().add(self.counters.reports, 1);
                    self.pending.push((device, PendingReport::Plain(report)));
                }
                Message::CfaReport { device, report } => {
                    self.tracer.counters().add(self.counters.reports, 1);
                    self.tracer.counters().add(self.counters.cfa_reports, 1);
                    if self.edge_set.is_none() {
                        self.tracer
                            .counters()
                            .add(self.counters.cfa_unconfigured, 1);
                        continue;
                    }
                    self.pending.push((device, PendingReport::Cfa(report)));
                }
                // Welcome / Challenge / Verdict are verifier → device;
                // receiving one here is a protocol misuse we just count.
                Message::Welcome { .. } | Message::Challenge { .. } | Message::Verdict { .. } => {
                    self.tracer.counters().add(self.counters.decode_errors, 1);
                }
            }
        }
        replies
    }

    /// Verifies every pending report: one batched HMAC pass over the
    /// precomputed per-device key schedules, then the stateful session
    /// checks (freshness, replay window, digest) per report.
    pub fn flush(&mut self) -> Vec<FlushEntry> {
        let pending = std::mem::take(&mut self.pending);
        if pending.is_empty() {
            return Vec::new();
        }
        self.tracer.counters().add(self.counters.batches, 1);
        self.tracer
            .emit(Layer::Fleet, 0, 0, EventKind::Enter("flush"));
        let begin = Instant::now();

        // Phase 1: batched MAC verification. Unknown devices get no MAC
        // check at all — there is no key to check against.
        let inputs: Vec<Option<Vec<u8>>> = pending
            .iter()
            .map(|(device, report)| {
                self.sessions
                    .contains_key(device)
                    .then(|| report.mac_input())
            })
            .collect();
        let items = pending
            .iter()
            .zip(&inputs)
            .filter_map(|((device, report), input)| {
                let schedule = self.sessions.get(device)?.schedule();
                Some((schedule, input.as_deref()?, report.mac()))
            });
        let outcome = batch_verify(items);

        // Phase 2: complete each report through its session.
        let mut verdicts = outcome.ok.into_iter();
        let mut entries = Vec::with_capacity(pending.len());
        for ((device, report), input) in pending.iter().zip(&inputs) {
            let result = match self.sessions.get_mut(device) {
                Some(session) if input.is_some() => {
                    let mac_ok = verdicts.next().expect("one verdict per batched item");
                    match report {
                        PendingReport::Plain(report) => {
                            session.submit_with_mac_verdict(report, mac_ok)
                        }
                        PendingReport::Cfa(report) => {
                            let edges = self.edge_set.as_ref().expect("checked at ingest");
                            session.submit_cfa_with_mac_verdict(report, mac_ok, edges)
                        }
                    }
                }
                _ => {
                    self.tracer.counters().add(self.counters.unknown_device, 1);
                    Err(VerifyError::BadMac)
                }
            };
            let counter = match &result {
                Ok(()) => self.counters.accepted,
                Err(VerifyError::BadMac) => self.counters.rejected_bad_mac,
                Err(VerifyError::ReplayedNonce) => self.counters.rejected_replay,
                Err(VerifyError::NonceMismatch) => self.counters.rejected_nonce,
                Err(VerifyError::DigestMismatch { .. }) => self.counters.rejected_digest,
                Err(VerifyError::InadmissibleEdge { .. }) => self.counters.rejected_inadmissible,
                Err(VerifyError::UnprovenSiteViolation { .. }) => self.counters.rejected_unproven,
                Err(VerifyError::ChainMismatch) => self.counters.rejected_chain,
            };
            self.tracer.counters().add(counter, 1);
            entries.push(FlushEntry {
                device: *device,
                result,
            });
        }

        let elapsed = begin.elapsed().as_nanos() as u64;
        self.tracer.histograms().record(self.h_batch, elapsed);
        // Amortized per-report verify latency: the batch shares one
        // timestamp pair, so each report is charged its mean share.
        let per_report = elapsed / entries.len() as u64;
        for _ in 0..entries.len() {
            self.tracer.histograms().record(self.h_verify, per_report);
        }
        self.tracer
            .emit(Layer::Fleet, 0, 0, EventKind::Exit("flush"));
        entries
    }

    /// Sum of reports accepted across every session.
    pub fn accepted_total(&self) -> u64 {
        self.sessions.values().map(VerifierSession::accepted).sum()
    }

    /// Sum of reports rejected across every session.
    pub fn rejected_total(&self) -> u64 {
        self.sessions.values().map(VerifierSession::rejected).sum()
    }

    /// The tracer whose counters and histograms this verifier reports
    /// into.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::PROTOCOL_VERSION;
    use tytan_crypto::TaskId;

    const MASTER: [u8; 20] = [0xA5; 20];

    fn digest() -> Vec<u8> {
        vec![0x11; 20]
    }

    /// An honest report from `device` (MACed under its derived `K_a`).
    fn attest(device: DeviceId, nonce: &[u8]) -> AttestationReport {
        let digest = digest();
        let mut report = AttestationReport {
            id: TaskId::from_digest(&digest),
            digest,
            nonce: nonce.to_vec(),
            mac: Vec::new(),
        };
        let key = device_attestation_key(&MASTER, device).to_hmac_key();
        report.mac = key.sign(&report.mac_input());
        report
    }

    fn verifier_with(devices: u64) -> FleetVerifier {
        let mut v = FleetVerifier::new(MASTER, digest(), 7, Tracer::null());
        for d in 0..devices {
            v.provision(DeviceId::from_u64(d));
        }
        v
    }

    fn challenge_nonce(frame: &[u8]) -> Vec<u8> {
        match crate::proto::decode(frame).expect("challenge frame").0 {
            Message::Challenge { nonce, .. } => nonce,
            other => panic!("expected challenge, got {other:?}"),
        }
    }

    #[test]
    fn hello_negotiates_and_challenges() {
        let mut v = verifier_with(1);
        let device = DeviceId::from_u64(0);
        let hello = encode(
            &Message::Hello {
                device,
                max_version: PROTOCOL_VERSION,
            },
            PROTOCOL_VERSION,
        );
        let replies = v.ingest(device, &hello);
        assert_eq!(replies.len(), 2);
        assert_eq!(
            crate::proto::decode(&replies[0]).unwrap().0,
            Message::Welcome {
                version: PROTOCOL_VERSION
            }
        );
        assert!(matches!(
            crate::proto::decode(&replies[1]).unwrap().0,
            Message::Challenge { .. }
        ));
    }

    #[test]
    fn batch_of_reports_verifies_and_replays_are_typed() {
        let mut v = verifier_with(8);
        let mut frames = Vec::new();
        for d in 0..8u64 {
            let device = DeviceId::from_u64(d);
            let nonce =
                challenge_nonce(&v.challenge_frame(device, PROTOCOL_VERSION).expect("known"));
            let report = attest(device, &nonce);
            frames.push((
                device,
                encode(&Message::Report { device, report }, PROTOCOL_VERSION),
            ));
        }
        // Deliver byte-by-byte to exercise stream reassembly.
        for (device, frame) in &frames {
            for byte in frame {
                let replies = v.ingest(*device, std::slice::from_ref(byte));
                assert!(replies.is_empty());
            }
        }
        assert_eq!(v.pending(), 8);
        let entries = v.flush();
        assert!(entries.iter().all(|e| e.result.is_ok()));
        assert_eq!(v.accepted_total(), 8);

        // Replay the whole batch verbatim: every copy must be rejected
        // as a replay, none accepted.
        for (device, frame) in &frames {
            v.ingest(*device, frame);
        }
        let entries = v.flush();
        assert!(entries
            .iter()
            .all(|e| e.result == Err(VerifyError::ReplayedNonce)));
        assert_eq!(v.accepted_total(), 8);
        assert_eq!(v.tracer().counters().get("fleet_rejected_replay"), Some(8));
    }

    #[test]
    fn unknown_device_reports_never_verify() {
        let mut v = verifier_with(1);
        let ghost = DeviceId::from_u64(999);
        let report = attest(ghost, b"nonce");
        let frame = encode(
            &Message::Report {
                device: ghost,
                report,
            },
            PROTOCOL_VERSION,
        );
        v.ingest(ghost, &frame);
        let entries = v.flush();
        assert_eq!(entries.len(), 1);
        assert!(entries[0].result.is_err());
        assert_eq!(v.tracer().counters().get("fleet_unknown_device"), Some(1));
    }

    #[test]
    fn corrupt_stream_is_counted_and_poisoned() {
        let mut v = verifier_with(1);
        let device = DeviceId::from_u64(0);
        v.ingest(device, &[0xFF, 0xFF, 0xFF, 0xFF, 0x00]);
        assert_eq!(v.tracer().counters().get("fleet_decode_errors"), Some(1));
        // Further bytes on the poisoned connection are ignored, and the
        // error is not double-counted.
        let hello = encode(
            &Message::Hello {
                device,
                max_version: PROTOCOL_VERSION,
            },
            PROTOCOL_VERSION,
        );
        assert!(v.ingest(device, &hello).is_empty());
        assert_eq!(v.tracer().counters().get("fleet_decode_errors"), Some(1));
    }

    #[test]
    fn latency_histograms_populate_on_flush() {
        let mut v = verifier_with(1);
        let device = DeviceId::from_u64(0);
        let nonce = challenge_nonce(&v.challenge_frame(device, PROTOCOL_VERSION).expect("known"));
        let report = attest(device, &nonce);
        v.ingest(
            device,
            &encode(&Message::Report { device, report }, PROTOCOL_VERSION),
        );
        v.flush();
        let hists = v.tracer().histograms();
        assert_eq!(hists.get("lat_fleet_verify").unwrap().count(), 1);
        assert_eq!(hists.get("lat_fleet_batch").unwrap().count(), 1);
    }
}
