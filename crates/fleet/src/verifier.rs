//! The fleet verifier service: many connections in, batched HMAC
//! verification, per-device freshness out.
//!
//! One [`FleetVerifier`] owns every device's
//! [`tytan::attest::VerifierSession`] plus a streaming
//! [`crate::proto::FrameDecoder`] per connection. Bytes arrive in
//! whatever chunks the transport produced ([`FleetVerifier::ingest`]);
//! decoded reports accumulate in a pending batch and are verified
//! together in [`FleetVerifier::flush`]: one
//! [`tytan_crypto::batch_verify`] pass over precomputed per-device key
//! schedules (the ipad/opad states are hashed once per *device*, not
//! once per report), then each verdict completes through the session's
//! stateful nonce check.
//!
//! Everything observable lands in the shared `tytan-trace` registries:
//! `fleet_*` counters for totals and each rejection class, the
//! `lat_fleet_verify` / `lat_fleet_batch` histograms (nanoseconds) for
//! the latency tables, and — since the observability plane — per-stage
//! cost attribution (`lat_fleet_stage_*`: frame decode, batched HMAC,
//! freshness+digest, control-flow edge replay, chain refold), a
//! structured [`EventLog`] narrating challenges, reports and verdicts by
//! correlation id, and a [`FlightRecorder`] that dumps a
//! [`crate::recorder::ForensicBundle`] for every typed rejection of a
//! provisioned device.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use tytan::attest::{
    AttestationReport, CfaReport, DeviceId, VerifierSession, VerifyError, VerifyStageNanos,
};
use tytan_crypto::{batch_verify, RunRefolder};
use tytan_lint::AdmissibleEdgeSet;
use tytan_trace::events::{EventLog, LogFields, Severity};
use tytan_trace::{EventKind, HistId, Layer, Tracer};

use crate::farm::device_attestation_key;
use crate::proto::{
    encode, negotiate, verdict_code, CodecError, FrameDecoder, Message, PROTOCOL_VERSION,
};
use crate::recorder::{FlightRecorder, ForensicBundle, EDGE_TAIL_CAP};

/// Maps a session verdict to its wire [`verdict_code`]. Shared by
/// [`FlushEntry::code`] and bundle replay so the two can never disagree.
pub fn result_code(result: &Result<(), VerifyError>) -> u8 {
    match result {
        Ok(()) => verdict_code::OK,
        Err(VerifyError::BadMac) => verdict_code::BAD_MAC,
        Err(VerifyError::ReplayedNonce) => verdict_code::REPLAYED_NONCE,
        Err(VerifyError::NonceMismatch) => verdict_code::NONCE_MISMATCH,
        Err(VerifyError::DigestMismatch { .. }) => verdict_code::DIGEST_MISMATCH,
        Err(VerifyError::InadmissibleEdge { .. }) => verdict_code::INADMISSIBLE_EDGE,
        Err(VerifyError::UnprovenSiteViolation { .. }) => verdict_code::UNPROVEN_SITE,
        Err(VerifyError::ChainMismatch) => verdict_code::CHAIN_MISMATCH,
    }
}

/// The verdict for one submitted report, as the orchestrator sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushEntry {
    /// The device whose report was judged.
    pub device: DeviceId,
    /// Correlation id the report carried (`0` for pre-v3 sessions).
    pub corr: u64,
    /// The session verdict ([`Ok`] means accepted and nonce consumed).
    pub result: Result<(), VerifyError>,
}

impl FlushEntry {
    /// The wire [`verdict_code`] for this entry.
    pub fn code(&self) -> u8 {
        result_code(&self.result)
    }

    /// Encodes this entry as a `Verdict` frame.
    pub fn to_frame(&self, version: u8) -> Vec<u8> {
        encode(
            &Message::Verdict {
                device: self.device,
                corr: self.corr,
                accepted: self.result.is_ok(),
                code: self.code(),
            },
            version,
        )
    }
}

struct FleetCounters {
    hello: tytan_trace::CounterId,
    reports: tytan_trace::CounterId,
    cfa_reports: tytan_trace::CounterId,
    cfa_edges: tytan_trace::CounterId,
    cfa_runs: tytan_trace::CounterId,
    accepted: tytan_trace::CounterId,
    rejected_bad_mac: tytan_trace::CounterId,
    rejected_replay: tytan_trace::CounterId,
    rejected_nonce: tytan_trace::CounterId,
    rejected_digest: tytan_trace::CounterId,
    rejected_inadmissible: tytan_trace::CounterId,
    rejected_unproven: tytan_trace::CounterId,
    rejected_chain: tytan_trace::CounterId,
    cfa_unconfigured: tytan_trace::CounterId,
    unknown_device: tytan_trace::CounterId,
    decode_errors: tytan_trace::CounterId,
    batches: tytan_trace::CounterId,
    bundles: tytan_trace::CounterId,
}

/// One decoded report awaiting the batched flush — either kind shares
/// the MAC-then-session pipeline.
enum PendingReport {
    Plain(AttestationReport),
    Cfa(CfaReport),
}

impl PendingReport {
    fn mac_input(&self) -> Vec<u8> {
        match self {
            PendingReport::Plain(r) => r.mac_input(),
            PendingReport::Cfa(r) => r.mac_input(),
        }
    }

    fn mac(&self) -> &[u8] {
        match self {
            PendingReport::Plain(r) => &r.mac,
            PendingReport::Cfa(r) => &r.mac,
        }
    }
}

/// The host-side attestation verifier for a whole fleet.
pub struct FleetVerifier {
    master: [u8; 20],
    expected_digest: Vec<u8>,
    salt: u64,
    sessions: HashMap<DeviceId, VerifierSession>,
    decoders: HashMap<DeviceId, FrameDecoder>,
    pending: Vec<(DeviceId, u64, PendingReport)>,
    edge_set: Option<AdmissibleEdgeSet>,
    tracer: Tracer,
    counters: FleetCounters,
    h_verify: HistId,
    h_batch: HistId,
    h_stage_decode: HistId,
    h_stage_hmac: HistId,
    h_stage_freshness: HistId,
    h_stage_edge: HistId,
    h_stage_refold: HistId,
    /// Monotonic correlation-id mint; `0` is reserved for "none".
    next_corr: u64,
    /// Per-device Hello count — the session number in structured events.
    hello_counts: HashMap<DeviceId, u64>,
    recorder: FlightRecorder,
    event_log: Option<Arc<EventLog>>,
}

impl std::fmt::Debug for FleetVerifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetVerifier")
            .field("sessions", &self.sessions.len())
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl FleetVerifier {
    /// Creates a verifier that derives per-device keys from `master` and
    /// expects every device to report `expected_digest`. `salt`
    /// decorrelates challenge streams across service runs.
    pub fn new(master: [u8; 20], expected_digest: Vec<u8>, salt: u64, tracer: Tracer) -> Self {
        let c = tracer.counters();
        let counters = FleetCounters {
            hello: c.register("fleet_hello"),
            reports: c.register("fleet_reports"),
            cfa_reports: c.register("fleet_cfa_reports"),
            cfa_edges: c.register("fleet_cfa_edges"),
            cfa_runs: c.register("fleet_cfa_runs"),
            accepted: c.register("fleet_accepted"),
            rejected_bad_mac: c.register("fleet_rejected_bad_mac"),
            rejected_replay: c.register("fleet_rejected_replay"),
            rejected_nonce: c.register("fleet_rejected_nonce"),
            rejected_digest: c.register("fleet_rejected_digest"),
            rejected_inadmissible: c.register("fleet_rejected_inadmissible"),
            rejected_unproven: c.register("fleet_rejected_unproven"),
            rejected_chain: c.register("fleet_rejected_chain"),
            cfa_unconfigured: c.register("fleet_cfa_unconfigured"),
            unknown_device: c.register("fleet_unknown_device"),
            decode_errors: c.register("fleet_decode_errors"),
            batches: c.register("fleet_batches"),
            bundles: c.register("fleet_bundles"),
        };
        let h = tracer.histograms();
        let h_verify = h.register("lat_fleet_verify");
        let h_batch = h.register("lat_fleet_batch");
        let h_stage_decode = h.register("lat_fleet_stage_decode");
        let h_stage_hmac = h.register("lat_fleet_stage_hmac");
        let h_stage_freshness = h.register("lat_fleet_stage_freshness");
        let h_stage_edge = h.register("lat_fleet_stage_edge_replay");
        let h_stage_refold = h.register("lat_fleet_stage_refold");
        FleetVerifier {
            master,
            expected_digest,
            salt,
            sessions: HashMap::new(),
            decoders: HashMap::new(),
            pending: Vec::new(),
            edge_set: None,
            tracer,
            counters,
            h_verify,
            h_batch,
            h_stage_decode,
            h_stage_hmac,
            h_stage_freshness,
            h_stage_edge,
            h_stage_refold,
            next_corr: 0,
            hello_counts: HashMap::new(),
            recorder: FlightRecorder::new(),
            event_log: None,
        }
    }

    /// Attaches a structured event log; challenges, reports, verdicts
    /// and bundles are narrated into it with their correlation ids.
    pub fn attach_event_log(&mut self, log: Arc<EventLog>) {
        self.event_log = Some(log);
    }

    /// The flight recorder's forensic tapes.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Takes every forensic bundle produced since the last call.
    pub fn take_bundles(&mut self) -> Vec<ForensicBundle> {
        self.recorder.take_bundles()
    }

    fn log_event(
        &self,
        severity: Severity,
        event: &str,
        device: Option<DeviceId>,
        corr: u64,
        detail: String,
    ) {
        if let Some(log) = &self.event_log {
            let session = device.and_then(|d| self.hello_counts.get(&d).copied());
            log.emit(
                severity,
                "fleet.verifier",
                event,
                LogFields {
                    device: device.map(DeviceId::as_u64),
                    session,
                    corr: (corr != 0).then_some(corr),
                    detail,
                },
            );
        }
    }

    /// Provisions a session for `device` (derives its shared `K_a` from
    /// the fleet master). Connections from unprovisioned devices are
    /// counted and ignored — the roster is explicit.
    pub fn provision(&mut self, device: DeviceId) {
        let ka = device_attestation_key(&self.master, device);
        // Per-device salt keeps nonce streams distinct even if two
        // sessions interleave challenges identically.
        let salt = self.salt ^ device.as_u64().rotate_left(32);
        self.sessions.insert(
            device,
            VerifierSession::new(device, ka, self.expected_digest.clone(), salt),
        );
    }

    /// Registers the admissible edge set `tytan-lint` extracted from
    /// the fleet's reference task image. Required before any
    /// [`crate::proto::Message::CfaReport`] can be verified: a CFA
    /// report arriving while no edge set is registered is counted
    /// (`fleet_cfa_unconfigured`) and dropped without a verdict — the
    /// service refuses to judge evidence it has no reference for.
    pub fn provision_edge_set(&mut self, edges: AdmissibleEdgeSet) {
        self.edge_set = Some(edges);
    }

    /// The registered admissible edge set, if any.
    pub fn edge_set(&self) -> Option<&AdmissibleEdgeSet> {
        self.edge_set.as_ref()
    }

    /// Number of provisioned sessions.
    pub fn provisioned(&self) -> usize {
        self.sessions.len()
    }

    /// Reports decoded but not yet verified.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// The session for `device`, if provisioned.
    pub fn session(&self, device: DeviceId) -> Option<&VerifierSession> {
        self.sessions.get(&device)
    }

    /// Issues a fresh challenge for `device` and returns it as an
    /// encoded `Challenge` frame (`None` for unknown devices). Mints a
    /// fresh correlation id the device echoes in its answer, so one id
    /// follows the whole attestation round.
    pub fn challenge_frame(&mut self, device: DeviceId, version: u8) -> Option<Vec<u8>> {
        let session = self.sessions.get_mut(&device)?;
        let nonce = session.challenge();
        self.next_corr += 1;
        let corr = self.next_corr;
        self.log_event(
            Severity::Info,
            "challenge",
            Some(device),
            corr,
            format!("nonce {} bytes", nonce.len()),
        );
        Some(encode(
            &Message::Challenge {
                device,
                corr,
                nonce,
            },
            version,
        ))
    }

    /// Feeds received bytes from `from`'s connection through its frame
    /// decoder and handles every complete message: `Hello` negotiates
    /// and returns reply frames, `Report`s join the pending batch.
    ///
    /// Returns frames to send back to `from` (negotiation replies).
    /// Decode failures poison that connection and bump
    /// `fleet_decode_errors`; they never propagate as panics.
    pub fn ingest(&mut self, from: DeviceId, bytes: &[u8]) -> Vec<Vec<u8>> {
        let decoder = self.decoders.entry(from).or_default();
        decoder.push(bytes);
        let mut replies = Vec::new();
        loop {
            let decode_began = Instant::now();
            let next = self
                .decoders
                .get_mut(&from)
                .expect("entry above")
                .next_message_with_frame();
            let (message, frame) = match next {
                Ok(Some(decoded)) => {
                    self.tracer.histograms().record(
                        self.h_stage_decode,
                        decode_began.elapsed().as_nanos() as u64,
                    );
                    decoded
                }
                Ok(None) => break,
                Err(CodecError::Poisoned) => break,
                Err(err) => {
                    self.tracer.counters().add(self.counters.decode_errors, 1);
                    self.tracer
                        .emit(Layer::Fleet, 0, 0, EventKind::Mark("decode_error"));
                    self.log_event(
                        Severity::Warn,
                        "decode_error",
                        Some(from),
                        0,
                        format!("{err}"),
                    );
                    break;
                }
            };
            match message {
                Message::Hello {
                    device,
                    max_version,
                } => {
                    self.tracer.counters().add(self.counters.hello, 1);
                    *self.hello_counts.entry(device).or_insert(0) += 1;
                    if !self.sessions.contains_key(&device) {
                        self.tracer.counters().add(self.counters.unknown_device, 1);
                        self.log_event(
                            Severity::Warn,
                            "hello_unknown",
                            Some(device),
                            0,
                            "hello from unprovisioned device".to_string(),
                        );
                        continue;
                    }
                    match negotiate(max_version) {
                        Ok(version) => {
                            self.log_event(
                                Severity::Info,
                                "hello",
                                Some(device),
                                0,
                                format!("negotiated version {version}"),
                            );
                            replies.push(encode(&Message::Welcome { version }, version));
                            if let Some(frame) = self.challenge_frame(device, version) {
                                replies.push(frame);
                            }
                        }
                        Err(_) => {
                            self.tracer.counters().add(self.counters.decode_errors, 1);
                        }
                    }
                }
                Message::Report {
                    device,
                    corr,
                    report,
                } => {
                    self.tracer.counters().add(self.counters.reports, 1);
                    self.recorder.note_frame(device, corr, &frame);
                    self.log_event(
                        Severity::Debug,
                        "report",
                        Some(device),
                        corr,
                        format!("frame {} bytes", frame.len()),
                    );
                    self.pending
                        .push((device, corr, PendingReport::Plain(report)));
                }
                Message::CfaReport {
                    device,
                    corr,
                    report,
                } => {
                    self.tracer.counters().add(self.counters.reports, 1);
                    self.tracer.counters().add(self.counters.cfa_reports, 1);
                    self.recorder.note_frame(device, corr, &frame);
                    if self.edge_set.is_none() {
                        self.tracer
                            .counters()
                            .add(self.counters.cfa_unconfigured, 1);
                        self.log_event(
                            Severity::Warn,
                            "cfa_unconfigured",
                            Some(device),
                            corr,
                            "cfa report dropped: no edge set registered".to_string(),
                        );
                        continue;
                    }
                    // Two counters, two semantics: `cfa_edges` stays on the
                    // raw expanded-edge count (replay work admitted, and
                    // the long-lived bench baseline), `cfa_runs` counts
                    // what actually crossed the wire and gets refolded.
                    self.tracer
                        .counters()
                        .add(self.counters.cfa_edges, report.raw_edges());
                    self.tracer
                        .counters()
                        .add(self.counters.cfa_runs, report.log.len() as u64);
                    self.log_event(
                        Severity::Debug,
                        "cfa_report",
                        Some(device),
                        corr,
                        format!(
                            "frame {} bytes, {} edges in {} runs",
                            frame.len(),
                            report.raw_edges(),
                            report.log.len()
                        ),
                    );
                    self.pending
                        .push((device, corr, PendingReport::Cfa(report)));
                }
                // Welcome / Challenge / Verdict are verifier → device;
                // receiving one here is a protocol misuse we just count.
                Message::Welcome { .. } | Message::Challenge { .. } | Message::Verdict { .. } => {
                    self.tracer.counters().add(self.counters.decode_errors, 1);
                }
            }
        }
        replies
    }

    /// Builds the forensic bundle for one rejected report of a
    /// provisioned session. The freshness snapshot is taken after the
    /// rejection, which equals the verification-time state: rejections
    /// never consume nonces.
    #[allow(clippy::too_many_arguments)]
    fn build_bundle(
        session: &VerifierSession,
        master: [u8; 20],
        expected_digest: &[u8],
        edge_set: Option<&AdmissibleEdgeSet>,
        recorder: &FlightRecorder,
        device: DeviceId,
        corr: u64,
        report: &PendingReport,
        code: u8,
    ) -> ForensicBundle {
        let (frame, edge_tail, edge_set_json) = match report {
            PendingReport::Plain(r) => (
                encode(
                    &Message::Report {
                        device,
                        corr,
                        report: r.clone(),
                    },
                    PROTOCOL_VERSION,
                ),
                Vec::new(),
                None,
            ),
            PendingReport::Cfa(r) => (
                encode(
                    &Message::CfaReport {
                        device,
                        corr,
                        report: r.clone(),
                    },
                    PROTOCOL_VERSION,
                ),
                r.log[r.log.len().saturating_sub(EDGE_TAIL_CAP)..].to_vec(),
                edge_set.map(AdmissibleEdgeSet::to_json),
            ),
        };
        ForensicBundle {
            device: device.as_u64(),
            corr,
            verdict: verdict_code::name(code).to_string(),
            code,
            master,
            expected_digest: expected_digest.to_vec(),
            frame,
            frame_tail: recorder.frame_tail(device),
            decisions: recorder.decision_tail(device),
            consumed: session.consumed_nonces(),
            outstanding: session.outstanding_nonce().map(<[u8]>::to_vec),
            edge_tail,
            edge_set_json,
        }
    }

    /// Verifies every pending report: one batched HMAC pass over the
    /// precomputed per-device key schedules, then the stateful session
    /// checks (freshness, replay window, digest) per report. Every typed
    /// rejection of a provisioned device also dumps a forensic bundle
    /// into the flight recorder.
    pub fn flush(&mut self) -> Vec<FlushEntry> {
        let pending = std::mem::take(&mut self.pending);
        if pending.is_empty() {
            return Vec::new();
        }
        self.tracer.counters().add(self.counters.batches, 1);
        self.tracer
            .emit(Layer::Fleet, 0, 0, EventKind::Enter("flush"));
        let begin = Instant::now();

        // Phase 1: batched MAC verification. Unknown devices get no MAC
        // check at all — there is no key to check against.
        let inputs: Vec<Option<Vec<u8>>> = pending
            .iter()
            .map(|(device, _, report)| {
                self.sessions
                    .contains_key(device)
                    .then(|| report.mac_input())
            })
            .collect();
        let items = pending
            .iter()
            .zip(&inputs)
            .filter_map(|((device, _, report), input)| {
                let schedule = self.sessions.get(device)?.schedule();
                Some((schedule, input.as_deref()?, report.mac()))
            });
        let hmac_began = Instant::now();
        let outcome = batch_verify(items);
        let hmac_elapsed = hmac_began.elapsed().as_nanos() as u64;
        let batched = inputs.iter().filter(|i| i.is_some()).count() as u64;
        // The batch shares one timestamp pair; each report is charged
        // its mean share of the HMAC pass.
        if let Some(share) = hmac_elapsed.checked_div(batched) {
            for _ in 0..batched {
                self.tracer.histograms().record(self.h_stage_hmac, share);
            }
        }

        // Phase 2: complete each report through its session. One
        // refolder serves the whole flush, so the SHA-1 run-block
        // template is set up once per batch, not once per report.
        let mut refolder = RunRefolder::new();
        let mut verdicts = outcome.ok.into_iter();
        let mut entries = Vec::with_capacity(pending.len());
        let mut bundles = Vec::new();
        for ((device, corr, report), input) in pending.iter().zip(&inputs) {
            let mut stages = VerifyStageNanos::default();
            let mut mac_ok_known = false;
            let result = match self.sessions.get_mut(device) {
                Some(session) if input.is_some() => {
                    let mac_ok = verdicts.next().expect("one verdict per batched item");
                    mac_ok_known = mac_ok;
                    let result = match report {
                        PendingReport::Plain(report) => {
                            session.submit_with_mac_verdict_timed(report, mac_ok, Some(&mut stages))
                        }
                        PendingReport::Cfa(report) => {
                            let edges = self.edge_set.as_ref().expect("checked at ingest");
                            session.submit_cfa_with_mac_verdict_timed(
                                report,
                                mac_ok,
                                edges,
                                Some(&mut refolder),
                                Some(&mut stages),
                            )
                        }
                    };
                    if result.is_err() {
                        bundles.push(Self::build_bundle(
                            session,
                            self.master,
                            &self.expected_digest,
                            self.edge_set.as_ref(),
                            &self.recorder,
                            *device,
                            *corr,
                            report,
                            result_code(&result),
                        ));
                    }
                    result
                }
                _ => {
                    self.tracer.counters().add(self.counters.unknown_device, 1);
                    Err(VerifyError::BadMac)
                }
            };
            // Per-stage attribution: record a stage only when it ran.
            // MAC failures short-circuit before freshness; control-flow
            // stages exist only for CFA reports; an inadmissible edge
            // stops before the refold.
            if mac_ok_known {
                self.tracer
                    .histograms()
                    .record(self.h_stage_freshness, stages.freshness);
                if matches!(report, PendingReport::Cfa(_)) {
                    let reached_edges = matches!(
                        &result,
                        Ok(())
                            | Err(VerifyError::InadmissibleEdge { .. })
                            | Err(VerifyError::UnprovenSiteViolation { .. })
                            | Err(VerifyError::ChainMismatch)
                    );
                    if reached_edges {
                        self.tracer
                            .histograms()
                            .record(self.h_stage_edge, stages.edge_replay);
                        let reached_refold =
                            matches!(&result, Ok(()) | Err(VerifyError::ChainMismatch));
                        if reached_refold {
                            self.tracer
                                .histograms()
                                .record(self.h_stage_refold, stages.chain_refold);
                        }
                    }
                }
            }
            let counter = match &result {
                Ok(()) => self.counters.accepted,
                Err(VerifyError::BadMac) => self.counters.rejected_bad_mac,
                Err(VerifyError::ReplayedNonce) => self.counters.rejected_replay,
                Err(VerifyError::NonceMismatch) => self.counters.rejected_nonce,
                Err(VerifyError::DigestMismatch { .. }) => self.counters.rejected_digest,
                Err(VerifyError::InadmissibleEdge { .. }) => self.counters.rejected_inadmissible,
                Err(VerifyError::UnprovenSiteViolation { .. }) => self.counters.rejected_unproven,
                Err(VerifyError::ChainMismatch) => self.counters.rejected_chain,
            };
            self.tracer.counters().add(counter, 1);
            let code = result_code(&result);
            self.recorder.note_decision(*device, *corr, code);
            self.log_event(
                if result.is_ok() {
                    Severity::Info
                } else {
                    Severity::Warn
                },
                "verdict",
                Some(*device),
                *corr,
                verdict_code::name(code).to_string(),
            );
            entries.push(FlushEntry {
                device: *device,
                corr: *corr,
                result,
            });
        }
        for bundle in bundles {
            self.tracer.counters().add(self.counters.bundles, 1);
            self.log_event(
                Severity::Error,
                "bundle",
                Some(DeviceId::from_u64(bundle.device)),
                bundle.corr,
                format!("forensic bundle: {}", bundle.verdict),
            );
            self.recorder.push_bundle(bundle);
        }

        let elapsed = begin.elapsed().as_nanos() as u64;
        self.tracer.histograms().record(self.h_batch, elapsed);
        // Amortized per-report verify latency: the batch shares one
        // timestamp pair, so each report is charged its mean share.
        let per_report = elapsed / entries.len() as u64;
        for _ in 0..entries.len() {
            self.tracer.histograms().record(self.h_verify, per_report);
        }
        self.tracer
            .emit(Layer::Fleet, 0, 0, EventKind::Exit("flush"));
        entries
    }

    /// Sum of reports accepted across every session.
    pub fn accepted_total(&self) -> u64 {
        self.sessions.values().map(VerifierSession::accepted).sum()
    }

    /// Sum of reports rejected across every session.
    pub fn rejected_total(&self) -> u64 {
        self.sessions.values().map(VerifierSession::rejected).sum()
    }

    /// The tracer whose counters and histograms this verifier reports
    /// into.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::replay_bundle;
    use tytan_crypto::TaskId;

    const MASTER: [u8; 20] = [0xA5; 20];

    fn digest() -> Vec<u8> {
        vec![0x11; 20]
    }

    /// An honest report from `device` (MACed under its derived `K_a`).
    fn attest(device: DeviceId, nonce: &[u8]) -> AttestationReport {
        let digest = digest();
        let mut report = AttestationReport {
            id: TaskId::from_digest(&digest),
            digest,
            nonce: nonce.to_vec(),
            mac: Vec::new(),
        };
        let key = device_attestation_key(&MASTER, device).to_hmac_key();
        report.mac = key.sign(&report.mac_input());
        report
    }

    fn verifier_with(devices: u64) -> FleetVerifier {
        let mut v = FleetVerifier::new(MASTER, digest(), 7, Tracer::null());
        for d in 0..devices {
            v.provision(DeviceId::from_u64(d));
        }
        v
    }

    fn challenge_parts(frame: &[u8]) -> (u64, Vec<u8>) {
        match crate::proto::decode(frame).expect("challenge frame").0 {
            Message::Challenge { corr, nonce, .. } => (corr, nonce),
            other => panic!("expected challenge, got {other:?}"),
        }
    }

    #[test]
    fn hello_negotiates_and_challenges() {
        let mut v = verifier_with(1);
        let device = DeviceId::from_u64(0);
        let hello = encode(
            &Message::Hello {
                device,
                max_version: PROTOCOL_VERSION,
            },
            PROTOCOL_VERSION,
        );
        let replies = v.ingest(device, &hello);
        assert_eq!(replies.len(), 2);
        assert_eq!(
            crate::proto::decode(&replies[0]).unwrap().0,
            Message::Welcome {
                version: PROTOCOL_VERSION
            }
        );
        assert!(matches!(
            crate::proto::decode(&replies[1]).unwrap().0,
            Message::Challenge { .. }
        ));
    }

    #[test]
    fn batch_of_reports_verifies_and_replays_are_typed() {
        let mut v = verifier_with(8);
        let mut frames = Vec::new();
        for d in 0..8u64 {
            let device = DeviceId::from_u64(d);
            let (corr, nonce) =
                challenge_parts(&v.challenge_frame(device, PROTOCOL_VERSION).expect("known"));
            let report = attest(device, &nonce);
            frames.push((
                device,
                corr,
                encode(
                    &Message::Report {
                        device,
                        corr,
                        report,
                    },
                    PROTOCOL_VERSION,
                ),
            ));
        }
        // Deliver byte-by-byte to exercise stream reassembly.
        for (device, _, frame) in &frames {
            for byte in frame {
                let replies = v.ingest(*device, std::slice::from_ref(byte));
                assert!(replies.is_empty());
            }
        }
        assert_eq!(v.pending(), 8);
        let entries = v.flush();
        assert!(entries.iter().all(|e| e.result.is_ok()));
        // The verdict carries back the corr the report carried in.
        for (entry, (_, corr, _)) in entries.iter().zip(&frames) {
            assert_eq!(entry.corr, *corr);
            assert!(matches!(
                crate::proto::decode(&entry.to_frame(PROTOCOL_VERSION)).unwrap().0,
                Message::Verdict { corr: c, accepted: true, .. } if c == *corr
            ));
        }
        assert_eq!(v.accepted_total(), 8);

        // Replay the whole batch verbatim: every copy must be rejected
        // as a replay, none accepted.
        for (device, _, frame) in &frames {
            v.ingest(*device, frame);
        }
        let entries = v.flush();
        assert!(entries
            .iter()
            .all(|e| e.result == Err(VerifyError::ReplayedNonce)));
        assert_eq!(v.accepted_total(), 8);
        assert_eq!(v.tracer().counters().get("fleet_rejected_replay"), Some(8));
    }

    #[test]
    fn unknown_device_reports_never_verify() {
        let mut v = verifier_with(1);
        let ghost = DeviceId::from_u64(999);
        let report = attest(ghost, b"nonce");
        let frame = encode(
            &Message::Report {
                device: ghost,
                corr: 5,
                report,
            },
            PROTOCOL_VERSION,
        );
        v.ingest(ghost, &frame);
        let entries = v.flush();
        assert_eq!(entries.len(), 1);
        assert!(entries[0].result.is_err());
        assert_eq!(v.tracer().counters().get("fleet_unknown_device"), Some(1));
        // No bundle: the verifier has no key material for ghosts, so a
        // replay could not reproduce the roster decision.
        assert!(v.recorder().bundles().is_empty());
    }

    #[test]
    fn corrupt_stream_is_counted_and_poisoned() {
        let mut v = verifier_with(1);
        let device = DeviceId::from_u64(0);
        v.ingest(device, &[0xFF, 0xFF, 0xFF, 0xFF, 0x00]);
        assert_eq!(v.tracer().counters().get("fleet_decode_errors"), Some(1));
        // Further bytes on the poisoned connection are ignored, and the
        // error is not double-counted.
        let hello = encode(
            &Message::Hello {
                device,
                max_version: PROTOCOL_VERSION,
            },
            PROTOCOL_VERSION,
        );
        assert!(v.ingest(device, &hello).is_empty());
        assert_eq!(v.tracer().counters().get("fleet_decode_errors"), Some(1));
    }

    #[test]
    fn latency_histograms_populate_on_flush() {
        let mut v = verifier_with(1);
        let device = DeviceId::from_u64(0);
        let (corr, nonce) =
            challenge_parts(&v.challenge_frame(device, PROTOCOL_VERSION).expect("known"));
        let report = attest(device, &nonce);
        v.ingest(
            device,
            &encode(
                &Message::Report {
                    device,
                    corr,
                    report,
                },
                PROTOCOL_VERSION,
            ),
        );
        v.flush();
        let hists = v.tracer().histograms();
        assert_eq!(hists.get("lat_fleet_verify").unwrap().count(), 1);
        assert_eq!(hists.get("lat_fleet_batch").unwrap().count(), 1);
        // Per-stage attribution for an accepted plain report: decode,
        // HMAC share and freshness ran; no control-flow stages.
        assert_eq!(hists.get("lat_fleet_stage_decode").unwrap().count(), 1);
        assert_eq!(hists.get("lat_fleet_stage_hmac").unwrap().count(), 1);
        assert_eq!(hists.get("lat_fleet_stage_freshness").unwrap().count(), 1);
        assert_eq!(hists.get("lat_fleet_stage_edge_replay").unwrap().count(), 0);
        assert_eq!(hists.get("lat_fleet_stage_refold").unwrap().count(), 0);
    }

    #[test]
    fn rejections_produce_bundles_that_replay_to_the_same_verdict() {
        let mut v = verifier_with(2);
        let device = DeviceId::from_u64(0);
        let (corr, nonce) =
            challenge_parts(&v.challenge_frame(device, PROTOCOL_VERSION).expect("known"));
        let report = attest(device, &nonce);
        let frame = encode(
            &Message::Report {
                device,
                corr,
                report: report.clone(),
            },
            PROTOCOL_VERSION,
        );
        // Honest report accepted, then its verbatim replay rejected.
        v.ingest(device, &frame);
        v.ingest(device, &frame);
        // And a corrupt copy from the second device.
        let other = DeviceId::from_u64(1);
        let (corr2, nonce2) =
            challenge_parts(&v.challenge_frame(other, PROTOCOL_VERSION).expect("known"));
        let mut forged = attest(other, &nonce2);
        forged.mac[0] ^= 0x80;
        v.ingest(
            other,
            &encode(
                &Message::Report {
                    device: other,
                    corr: corr2,
                    report: forged,
                },
                PROTOCOL_VERSION,
            ),
        );
        let entries = v.flush();
        assert_eq!(entries.len(), 3);
        assert_eq!(v.tracer().counters().get("fleet_bundles"), Some(2));
        let bundles = v.take_bundles();
        assert_eq!(bundles.len(), 2);
        assert_eq!(bundles[0].verdict, "replayed_nonce");
        assert_eq!(bundles[1].verdict, "bad_mac");
        for bundle in &bundles {
            let outcome = replay_bundle(&bundle.to_json()).expect("bundle replays");
            assert!(
                outcome.matches,
                "bundle {} replayed to {} (recorded {})",
                bundle.verdict, outcome.replayed_code, outcome.recorded_code
            );
        }
        // Taking drains.
        assert!(v.take_bundles().is_empty());
    }

    #[test]
    fn event_log_narrates_the_round_with_one_corr() {
        let mut v = verifier_with(1);
        let log = Arc::new(EventLog::new(64));
        v.attach_event_log(log.clone());
        let device = DeviceId::from_u64(0);
        let hello = encode(
            &Message::Hello {
                device,
                max_version: PROTOCOL_VERSION,
            },
            PROTOCOL_VERSION,
        );
        let replies = v.ingest(device, &hello);
        let (corr, nonce) = challenge_parts(&replies[1]);
        let report = attest(device, &nonce);
        v.ingest(
            device,
            &encode(
                &Message::Report {
                    device,
                    corr,
                    report,
                },
                PROTOCOL_VERSION,
            ),
        );
        v.flush();
        let events = log.events();
        let with_corr: Vec<_> = events
            .iter()
            .filter(|e| e.fields.corr == Some(corr))
            .collect();
        // challenge, report, verdict all share the round's corr.
        let kinds: Vec<&str> = with_corr.iter().map(|e| e.event.as_str()).collect();
        assert_eq!(kinds, vec!["challenge", "report", "verdict"]);
        // Every event from this round names the device and session 1.
        for e in &with_corr {
            assert_eq!(e.fields.device, Some(0));
            assert_eq!(e.fields.session, Some(1));
        }
    }
}
