//! The device farm: simulated TyTAN devices for fleet-scale runs.
//!
//! Every device is a full [`Platform`] — real secure boot, real RTM
//! measurement, real attestation key derivation — not a mock that signs
//! whatever it is handed. Devices are provisioned with per-device
//! platform keys derived from a fleet master secret keyed by
//! [`DeviceId`] ([`device_platform_key`]), mirroring how a manufacturer
//! diversifies one injection secret across a production run; the
//! verifier derives the same keys from the same master and never stores
//! per-device state beyond its [`tytan::attest::VerifierSession`].
//!
//! All devices run the same task image, so one [`reference_digest`] boot
//! provisions the expected measurement for the whole fleet.

use tytan::attest::{AttestationReport, CfaReport, DeviceId, ATTEST_PURPOSE};
use tytan::platform::{Platform, PlatformConfig, PlatformError};
use tytan::toolchain::{SecureTaskBuilder, TaskSource};
use tytan_crypto::{Digest, PlatformKey, Sha1, SymmetricKey, TaskId};
use tytan_lint::AdmissibleEdgeSet;

/// Load budget (guest cycles) for the fleet task.
const LOAD_BUDGET: u64 = 400_000_000;

/// Derives the per-device platform key `K_p(d)` from the fleet master
/// secret: `SHA-1(master ‖ id)`, the standard key-diversification shape.
/// Both the factory (device side) and the verifier compute this; neither
/// ships the master to the field.
pub fn device_platform_key(master: &[u8; 20], device: DeviceId) -> [u8; 20] {
    let mut h = Sha1::new();
    h.update(master);
    h.update(&device.to_bytes());
    h.finalize().try_into().expect("SHA-1 is 20 bytes")
}

/// Derives the per-device attestation key `K_a(d)` the verifier shares
/// with device `d` (symmetric setting, as in the paper).
pub fn device_attestation_key(master: &[u8; 20], device: DeviceId) -> SymmetricKey {
    PlatformKey::from_bytes(device_platform_key(master, device)).derive(ATTEST_PURPOSE)
}

/// The task image every fleet device runs: a counter loop, the same
/// shape the paper's use case keeps resident.
pub fn fleet_task_source() -> TaskSource {
    SecureTaskBuilder::new(
        "fleet-task",
        "main:\n movi r1, counter\n\
         loop:\n ldw r2, [r1]\n addi r2, 1\n stw [r1], r2\n jmp loop\n",
    )
    .data("counter:\n .word 0\n")
    .build()
    .expect("fleet task assembles")
}

/// The admissible edge set `tytan-lint` extracts from the fleet task's
/// reference image: the static CFG the verifier replays every reported
/// control-flow log against. Pure static analysis — no platform boots.
pub fn fleet_admissible_edges() -> AdmissibleEdgeSet {
    tytan_lint::admissible_edges(&fleet_task_source().image)
}

/// Boots one reference platform and returns the fleet task's measured
/// identity and digest. Every honest device reports exactly this digest
/// (measurement depends on the binary, not the platform key), so the
/// verifier provisions it fleet-wide.
///
/// # Errors
///
/// Any [`PlatformError`] from the reference boot or load.
pub fn reference_digest() -> Result<(TaskId, Vec<u8>), PlatformError> {
    let sim = DeviceSim::provision(DeviceId::from_u64(0), &[0u8; 20])?;
    let digest = sim
        .platform
        .local_attest(sim.task)
        .ok_or(PlatformError::NoSuchTask)?;
    Ok((sim.task, digest))
}

/// One simulated device: a booted platform with the fleet task loaded
/// and measured, ready to answer challenges.
pub struct DeviceSim {
    device: DeviceId,
    platform: Platform,
    task: TaskId,
}

impl std::fmt::Debug for DeviceSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceSim")
            .field("device", &self.device)
            .field("task", &self.task)
            .finish()
    }
}

impl DeviceSim {
    /// Boots a device: secure boot under its diversified platform key,
    /// then loads and measures the fleet task.
    ///
    /// # Errors
    ///
    /// Any [`PlatformError`] from boot or load.
    pub fn provision(device: DeviceId, master: &[u8; 20]) -> Result<Self, PlatformError> {
        let config = PlatformConfig {
            platform_key: device_platform_key(master, device),
            ..PlatformConfig::default()
        };
        let mut platform = Platform::boot(config)?;
        let token = platform.begin_load(&fleet_task_source(), 2);
        let (_, task) = platform.wait_load(token, LOAD_BUDGET)?;
        Ok(DeviceSim {
            device,
            platform,
            task,
        })
    }

    /// This device's identity.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// The measured identity of the fleet task on this device.
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// Answers a challenge: a MAC-authenticated report over the fleet
    /// task's measurement for `nonce`, produced by the platform's own
    /// Remote Attest task.
    ///
    /// # Errors
    ///
    /// Any [`PlatformError`] from the attestation call.
    pub fn respond(&mut self, nonce: &[u8]) -> Result<AttestationReport, PlatformError> {
        self.platform.remote_attest(self.task, nonce)
    }

    /// Arms the control-flow monitor over the fleet task's code region,
    /// starting a fresh edge log.
    ///
    /// # Errors
    ///
    /// Any [`PlatformError`] from the arm.
    pub fn arm_cfa(&mut self) -> Result<(), PlatformError> {
        self.platform.arm_cf_monitor(self.task)
    }

    /// Runs the platform for `cycles` guest cycles (the monitored task
    /// executes and accumulates control-flow evidence).
    ///
    /// # Errors
    ///
    /// Any [`PlatformError`] from execution.
    pub fn run(&mut self, cycles: u64) -> Result<(), PlatformError> {
        self.platform.run_for(cycles)
    }

    /// Answers a challenge with a control-flow-attested report sealing
    /// everything the armed monitor has recorded.
    ///
    /// # Errors
    ///
    /// Any [`PlatformError`]; notably
    /// [`PlatformError::NoCfEvidence`] if [`DeviceSim::arm_cfa`] was
    /// never called or the log overflowed.
    pub fn respond_cfa(&mut self, nonce: &[u8]) -> Result<CfaReport, PlatformError> {
        self.platform.remote_attest_cfa(self.task, nonce)
    }

    /// The underlying platform (tests use this to tamper with task RAM
    /// and demonstrate detour detection).
    pub fn platform_mut(&mut self) -> &mut Platform {
        &mut self.platform
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytan::attest::VerifierSession;

    #[test]
    fn key_diversification_is_per_device() {
        let master = [7u8; 20];
        let a = device_platform_key(&master, DeviceId::from_u64(1));
        let b = device_platform_key(&master, DeviceId::from_u64(2));
        assert_ne!(a, b);
        assert_eq!(a, device_platform_key(&master, DeviceId::from_u64(1)));
        let other_master = [8u8; 20];
        assert_ne!(a, device_platform_key(&other_master, DeviceId::from_u64(1)));
    }

    #[test]
    fn provisioned_device_attests_against_derived_key() {
        let master = [3u8; 20];
        let device = DeviceId::from_u64(42);
        let (_, digest) = reference_digest().expect("reference boots");
        let mut sim = DeviceSim::provision(device, &master).expect("device boots");
        let mut session =
            VerifierSession::new(device, device_attestation_key(&master, device), digest, 99);
        let nonce = session.challenge();
        let report = sim.respond(&nonce).expect("attests");
        assert_eq!(session.submit(&report), Ok(()));
    }

    #[test]
    fn provisioned_device_cfa_attests_and_replays_cleanly() {
        let master = [6u8; 20];
        let device = DeviceId::from_u64(13);
        let (_, digest) = reference_digest().expect("reference boots");
        let edges = fleet_admissible_edges();
        let mut sim = DeviceSim::provision(device, &master).expect("device boots");
        sim.arm_cfa().expect("task is measured");
        sim.run(50_000).expect("monitored run");
        let mut session =
            VerifierSession::new(device, device_attestation_key(&master, device), digest, 42);
        let nonce = session.challenge();
        let report = sim.respond_cfa(&nonce).expect("attests with evidence");
        assert!(
            !report.log.is_empty(),
            "the looping task must record taken edges"
        );
        assert_eq!(session.submit_cfa(&report, &edges), Ok(()));
    }

    #[test]
    fn cross_device_key_confusion_is_caught() {
        // A report MACed under device 1's key must not verify in device
        // 2's session even though digest and nonce format agree.
        let master = [5u8; 20];
        let (_, digest) = reference_digest().expect("reference boots");
        let mut sim = DeviceSim::provision(DeviceId::from_u64(1), &master).expect("boots");
        let mut session = VerifierSession::new(
            DeviceId::from_u64(2),
            device_attestation_key(&master, DeviceId::from_u64(2)),
            digest,
            99,
        );
        let nonce = session.challenge();
        let report = sim.respond(&nonce).expect("attests");
        assert_eq!(
            session.submit(&report),
            Err(tytan::attest::VerifyError::BadMac)
        );
    }
}
