//! The fleet attestation wire protocol.
//!
//! Reports travel from thousands of devices to one verifier over byte
//! streams that fragment and concatenate arbitrarily, so the protocol is
//! framed and versioned:
//!
//! ```text
//! [len: u32 LE] [version: u8] [type: u8] [payload: (len - 2) bytes]
//! ```
//!
//! `len` covers everything after itself (version byte, type byte and
//! payload) and is bounded by [`MAX_FRAME_LEN`], so a corrupted length
//! prefix cannot make the decoder buffer unboundedly. Every frame carries
//! the protocol version; the session-level agreement is negotiated once
//! via [`Message::Hello`] / [`Message::Welcome`] (see [`negotiate`]), and
//! any frame outside the supported window is a typed
//! [`CodecError::UnsupportedVersion`] — never a silent misparse.
//!
//! Decoding is strict: unknown message types, short payloads, trailing
//! payload bytes, oversized nonces and non-canonical report encodings are
//! all distinct [`CodecError`]s. The streaming [`FrameDecoder`] reassembles
//! frames across arbitrary chunk boundaries and poisons itself on the
//! first error — a corrupted connection is dropped, not resynchronized.
//!
//! # Examples
//!
//! ```
//! use tytan::attest::DeviceId;
//! use tytan_fleet::proto::{encode, FrameDecoder, Message, PROTOCOL_VERSION};
//!
//! let msg = Message::Hello { device: DeviceId::from_u64(7), max_version: PROTOCOL_VERSION };
//! let bytes = encode(&msg, PROTOCOL_VERSION);
//!
//! let mut decoder = FrameDecoder::new();
//! for chunk in bytes.chunks(3) {
//!     decoder.push(chunk);
//! }
//! assert_eq!(decoder.next_message().unwrap(), Some(msg));
//! assert_eq!(decoder.next_message().unwrap(), None);
//! ```

use tytan::attest::{AttestationReport, CfaReport, DeviceId, CF_LOG_CAP};

/// The newest protocol version this implementation speaks.
///
/// Version 2 adds control-flow attestation: [`Message::CfaReport`] and
/// the reserved type-byte range [`FIRST_V2_TYPE`]`..=`[`LAST_RESERVED_TYPE`].
/// Version 3 adds correlation ids (see [`CORR_VERSION`]): challenges,
/// reports and verdicts carry a verifier-minted `corr` so one id follows
/// an attestation across the wire, the verifier's logs and any forensic
/// bundle it produces.
/// Version 4 ships [`Message::CfaReport`] edge logs run-length
/// compressed (see [`CFA_RLE_VERSION`]).
pub const PROTOCOL_VERSION: u8 = 4;

/// The oldest protocol version this implementation still accepts.
pub const MIN_PROTOCOL_VERSION: u8 = 1;

/// First protocol version whose [`Message::Challenge`],
/// [`Message::Report`], [`Message::CfaReport`] and [`Message::Verdict`]
/// frames carry a correlation id. At older versions the field is omitted
/// on encode and decodes as `0` — downgraded sessions keep working, they
/// just lose end-to-end correlation.
pub const CORR_VERSION: u8 = 3;

/// First protocol version whose [`Message::CfaReport`] payload carries
/// the edge log as canonical `(from, to, count)` run triples instead of
/// the fully expanded `(from, to)` stream. The report's seal (MAC over
/// chain head + raw edge count) is encoding-independent, so the *same*
/// sealed report ships at either version; a downgraded session pays
/// bandwidth, never a re-attestation. Both forms decode to the identical
/// in-memory report — the raw form is canonically recompressed on
/// decode.
pub const CFA_RLE_VERSION: u8 = 4;

/// Upper bound on `len` (version + type + payload). Frames beyond this
/// are rejected before any payload is buffered. Sized for the largest
/// legal [`Message::CfaReport`] frame, whichever wire form is bigger:
/// at version 4 an edge log at the prover-side cap
/// ([`tytan::attest::CF_LOG_CAP`], re-exported from the emulator crate)
/// degenerates to 65 536 count-1 runs × 12 bytes = 768 KiB of run
/// table; at versions 2–3 the same log ships expanded as 65 536 edges
/// × 8 bytes = 512 KiB. Either way, plus three 64 KiB length-framed
/// fields (digest, nonce, MAC) and headers, the worst case stays under
/// 1 MiB — checked at compile time below, so a cap change cannot
/// silently make legal reports unframeable.
pub const MAX_FRAME_LEN: usize = 1 << 20;

const _: () = {
    // Worst-case CfaReport payload: id + three length-framed 64 KiB
    // fields + chain head + run/edge count + the log itself.
    let fields = 8 + (4 + (1 << 16)) * 3 + 20 + 4;
    let log_v4 = 12 * CF_LOG_CAP; // count-1 runs, 12 bytes each
    let log_v3 = 8 * CF_LOG_CAP; // expanded edges, 8 bytes each
    let log = if log_v4 > log_v3 { log_v4 } else { log_v3 };
    // Frame: version + type + device + correlation id + inner length.
    assert!(2 + 8 + 8 + 4 + fields + log <= MAX_FRAME_LEN);
};

/// Upper bound on a challenge nonce carried in a frame.
pub const MAX_NONCE_LEN: usize = 64;

/// Typed decode failures. Every way a frame can be malformed maps to a
/// distinct variant; decoding never panics and never guesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended inside a frame header or payload. `need` is the
    /// total bytes required to finish decoding what `have` started.
    Truncated {
        /// Bytes available.
        have: usize,
        /// Bytes required.
        need: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME_LEN`] (or is too short to
    /// hold the version and type bytes).
    BadLength {
        /// The declared length.
        len: usize,
    },
    /// The frame's version byte is outside the supported window.
    UnsupportedVersion {
        /// The version on the wire.
        got: u8,
        /// Oldest accepted version.
        min: u8,
        /// Newest accepted version.
        max: u8,
    },
    /// The type byte names no known message.
    UnknownMessageType(u8),
    /// The payload does not parse as the message type's body.
    MalformedPayload(&'static str),
    /// The payload parsed but left unconsumed bytes — frames are exact.
    TrailingBytes {
        /// Unconsumed byte count.
        extra: usize,
    },
    /// The decoder already reported an error for this stream; the
    /// connection must be dropped, not resumed.
    Poisoned,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { have, need } => {
                write!(f, "truncated frame: have {have} bytes, need {need}")
            }
            CodecError::BadLength { len } => write!(f, "bad frame length {len}"),
            CodecError::UnsupportedVersion { got, min, max } => {
                write!(
                    f,
                    "unsupported protocol version {got} (supported {min}..={max})"
                )
            }
            CodecError::UnknownMessageType(t) => write!(f, "unknown message type {t:#04x}"),
            CodecError::MalformedPayload(what) => write!(f, "malformed payload: {what}"),
            CodecError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after payload")
            }
            CodecError::Poisoned => write!(f, "stream already failed"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Verdict detail codes carried by [`Message::Verdict`] (the wire form of
/// `tytan::attest::VerifyError`).
pub mod verdict_code {
    /// Report accepted.
    pub const OK: u8 = 0;
    /// MAC verification failed.
    pub const BAD_MAC: u8 = 1;
    /// Verbatim replay of an already-accepted report.
    pub const REPLAYED_NONCE: u8 = 2;
    /// Nonce does not match the outstanding challenge.
    pub const NONCE_MISMATCH: u8 = 3;
    /// Measurement digest does not match the reference.
    pub const DIGEST_MISMATCH: u8 = 4;
    /// The device has no provisioned session.
    pub const UNKNOWN_DEVICE: u8 = 5;
    /// A control-flow edge in the log is not admitted by the static CFG.
    pub const INADMISSIBLE_EDGE: u8 = 6;
    /// An unproven-site edge landed outside reachable instruction starts.
    pub const UNPROVEN_SITE: u8 = 7;
    /// The edge log does not refold to the MAC'd chain head.
    pub const CHAIN_MISMATCH: u8 = 8;

    /// Stable lowercase name for a verdict code — the vocabulary the
    /// structured event log and forensic bundles use.
    pub fn name(code: u8) -> &'static str {
        match code {
            OK => "ok",
            BAD_MAC => "bad_mac",
            REPLAYED_NONCE => "replayed_nonce",
            NONCE_MISMATCH => "nonce_mismatch",
            DIGEST_MISMATCH => "digest_mismatch",
            UNKNOWN_DEVICE => "unknown_device",
            INADMISSIBLE_EDGE => "inadmissible_edge",
            UNPROVEN_SITE => "unproven_site",
            CHAIN_MISMATCH => "chain_mismatch",
            _ => "unknown_code",
        }
    }
}

/// A protocol message. One frame carries exactly one message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Device → verifier: opens a session, advertising the newest
    /// protocol version the device speaks.
    Hello {
        /// The connecting device.
        device: DeviceId,
        /// Newest version the device supports.
        max_version: u8,
    },
    /// Verifier → device: accepts the session at the negotiated version.
    Welcome {
        /// The agreed protocol version for this session.
        version: u8,
    },
    /// Verifier → device: a fresh challenge nonce.
    Challenge {
        /// The challenged device.
        device: DeviceId,
        /// Verifier-minted correlation id for this attestation round
        /// (version 3+ on the wire; `0` when the session predates it).
        corr: u64,
        /// The nonce to attest against.
        nonce: Vec<u8>,
    },
    /// Device → verifier: an attestation report answering a challenge.
    Report {
        /// The reporting device.
        device: DeviceId,
        /// The correlation id echoed from the challenge being answered.
        corr: u64,
        /// The MAC-authenticated report.
        report: AttestationReport,
    },
    /// Verifier → device: the outcome for one submitted report.
    Verdict {
        /// The judged device.
        device: DeviceId,
        /// The correlation id of the judged report.
        corr: u64,
        /// Whether the report was accepted.
        accepted: bool,
        /// A [`verdict_code`] detailing the outcome.
        code: u8,
    },
    /// Device → verifier: a control-flow-attested report answering a
    /// challenge (protocol version 2+).
    CfaReport {
        /// The reporting device.
        device: DeviceId,
        /// The correlation id echoed from the challenge being answered.
        corr: u64,
        /// The MAC-authenticated report with its edge log.
        report: CfaReport,
    },
}

const TYPE_HELLO: u8 = 1;
const TYPE_WELCOME: u8 = 2;
const TYPE_CHALLENGE: u8 = 3;
const TYPE_REPORT: u8 = 4;
const TYPE_VERDICT: u8 = 5;
const TYPE_CFA_REPORT: u8 = 6;

/// First message-type byte that requires protocol version 2. A version-1
/// frame carrying a type in [`FIRST_V2_TYPE`]`..=`[`LAST_RESERVED_TYPE`]
/// is rejected as [`CodecError::UnsupportedVersion`] — a version-1-only
/// verifier gives senders of new report types a typed version error, not
/// a confusing "unknown message".
pub const FIRST_V2_TYPE: u8 = 6;

/// Last type byte of the reserved versioned range. Types 7–15 are held
/// back for future versioned report kinds; today they decode as
/// [`CodecError::UnknownMessageType`] at version 2 and as
/// [`CodecError::UnsupportedVersion`] at version 1.
pub const LAST_RESERVED_TYPE: u8 = 15;

impl Message {
    fn type_byte(&self) -> u8 {
        match self {
            Message::Hello { .. } => TYPE_HELLO,
            Message::Welcome { .. } => TYPE_WELCOME,
            Message::Challenge { .. } => TYPE_CHALLENGE,
            Message::Report { .. } => TYPE_REPORT,
            Message::Verdict { .. } => TYPE_VERDICT,
            Message::CfaReport { .. } => TYPE_CFA_REPORT,
        }
    }

    /// The minimum protocol version that can carry this message.
    pub fn min_version(&self) -> u8 {
        if self.type_byte() >= FIRST_V2_TYPE {
            2
        } else {
            1
        }
    }

    /// The message's correlation id, `0` for the kinds that carry none.
    pub fn corr(&self) -> u64 {
        match self {
            Message::Hello { .. } | Message::Welcome { .. } => 0,
            Message::Challenge { corr, .. }
            | Message::Report { corr, .. }
            | Message::Verdict { corr, .. }
            | Message::CfaReport { corr, .. } => *corr,
        }
    }

    fn payload(&self, version: u8) -> Vec<u8> {
        // Correlation ids ride immediately after the device id from
        // version 3 on; older versions never see the field.
        let push_corr = |out: &mut Vec<u8>, corr: &u64| {
            if version >= CORR_VERSION {
                out.extend_from_slice(&corr.to_be_bytes());
            }
        };
        let mut out = Vec::new();
        match self {
            Message::Hello {
                device,
                max_version,
            } => {
                out.extend_from_slice(&device.to_bytes());
                out.push(*max_version);
            }
            Message::Welcome { version } => out.push(*version),
            Message::Challenge {
                device,
                corr,
                nonce,
            } => {
                out.extend_from_slice(&device.to_bytes());
                push_corr(&mut out, corr);
                out.extend_from_slice(&(nonce.len() as u16).to_le_bytes());
                out.extend_from_slice(nonce);
            }
            Message::Report {
                device,
                corr,
                report,
            } => {
                out.extend_from_slice(&device.to_bytes());
                push_corr(&mut out, corr);
                let bytes = report.to_bytes();
                out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(&bytes);
            }
            Message::Verdict {
                device,
                corr,
                accepted,
                code,
            } => {
                out.extend_from_slice(&device.to_bytes());
                push_corr(&mut out, corr);
                out.push(u8::from(*accepted));
                out.push(*code);
            }
            Message::CfaReport {
                device,
                corr,
                report,
            } => {
                out.extend_from_slice(&device.to_bytes());
                push_corr(&mut out, corr);
                // The log rides compressed from CFA_RLE_VERSION on;
                // older sessions get the expanded raw stream. Same
                // sealed report either way.
                let bytes = if version >= CFA_RLE_VERSION {
                    report.to_bytes()
                } else {
                    report.to_bytes_v3()
                };
                out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(&bytes);
            }
        }
        out
    }
}

/// Negotiates the session protocol version from the device's advertised
/// maximum: the newest version both sides speak.
///
/// # Errors
///
/// [`CodecError::UnsupportedVersion`] when the windows do not overlap.
pub fn negotiate(device_max: u8) -> Result<u8, CodecError> {
    if device_max < MIN_PROTOCOL_VERSION {
        return Err(CodecError::UnsupportedVersion {
            got: device_max,
            min: MIN_PROTOCOL_VERSION,
            max: PROTOCOL_VERSION,
        });
    }
    Ok(device_max.min(PROTOCOL_VERSION))
}

/// Encodes `message` as one complete frame at `version`. At versions
/// below [`CORR_VERSION`] any correlation id is silently omitted — the
/// downgrade loses observability, never interoperability.
pub fn encode(message: &Message, version: u8) -> Vec<u8> {
    let payload = message.payload(version);
    let len = 2 + payload.len();
    let mut out = Vec::with_capacity(4 + len);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    out.push(version);
    out.push(message.type_byte());
    out.extend_from_slice(&payload);
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.bytes.len() < n {
            return Err(CodecError::MalformedPayload("field extends past payload"));
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u16_le(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32_le(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn device(&mut self) -> Result<DeviceId, CodecError> {
        Ok(DeviceId::from_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn finish(self) -> Result<(), CodecError> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes {
                extra: self.bytes.len(),
            })
        }
    }
}

/// Reads a correlation id when `version` carries one, `0` otherwise
/// (pre-[`CORR_VERSION`] frames have no correlation field).
fn corr_field(r: &mut Reader<'_>, version: u8) -> Result<u64, CodecError> {
    if version >= CORR_VERSION {
        Ok(u64::from_be_bytes(r.take(8)?.try_into().expect("8 bytes")))
    } else {
        Ok(0)
    }
}

fn decode_payload(type_byte: u8, payload: &[u8], version: u8) -> Result<Message, CodecError> {
    let mut r = Reader { bytes: payload };
    let message = match type_byte {
        TYPE_HELLO => Message::Hello {
            device: r.device()?,
            max_version: r.u8()?,
        },
        TYPE_WELCOME => Message::Welcome { version: r.u8()? },
        TYPE_CHALLENGE => {
            let device = r.device()?;
            let corr = corr_field(&mut r, version)?;
            let len = r.u16_le()? as usize;
            if len > MAX_NONCE_LEN {
                return Err(CodecError::MalformedPayload("nonce too long"));
            }
            Message::Challenge {
                device,
                corr,
                nonce: r.take(len)?.to_vec(),
            }
        }
        TYPE_REPORT => {
            let device = r.device()?;
            let corr = corr_field(&mut r, version)?;
            let len = r.u32_le()? as usize;
            let bytes = r.take(len)?;
            let report = AttestationReport::from_bytes(bytes)
                .ok_or(CodecError::MalformedPayload("report does not parse"))?;
            // Canonical-encoding check: `from_bytes` tolerates trailing
            // bytes inside its slice; the frame does not.
            if report.to_bytes().len() != len {
                return Err(CodecError::MalformedPayload("report not canonical"));
            }
            Message::Report {
                device,
                corr,
                report,
            }
        }
        TYPE_VERDICT => {
            let device = r.device()?;
            let corr = corr_field(&mut r, version)?;
            let accepted = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(CodecError::MalformedPayload("verdict flag not boolean")),
            };
            Message::Verdict {
                device,
                corr,
                accepted,
                code: r.u8()?,
            }
        }
        TYPE_CFA_REPORT => {
            let device = r.device()?;
            let corr = corr_field(&mut r, version)?;
            let len = r.u32_le()? as usize;
            let bytes = r.take(len)?;
            // Version selects the wire form of the edge log: compressed
            // run triples from CFA_RLE_VERSION, expanded pairs before.
            // Both decode to the same canonical in-memory report.
            let (report, reencoded_len) = if version >= CFA_RLE_VERSION {
                let report = CfaReport::from_bytes(bytes)
                    .ok_or(CodecError::MalformedPayload("cfa report does not parse"))?;
                let len = report.to_bytes().len();
                (report, len)
            } else {
                let report = CfaReport::from_bytes_v3(bytes)
                    .ok_or(CodecError::MalformedPayload("cfa report does not parse"))?;
                let len = report.to_bytes_v3().len();
                (report, len)
            };
            if reencoded_len != len {
                return Err(CodecError::MalformedPayload("cfa report not canonical"));
            }
            Message::CfaReport {
                device,
                corr,
                report,
            }
        }
        other => return Err(CodecError::UnknownMessageType(other)),
    };
    r.finish()?;
    Ok(message)
}

/// Decodes exactly one frame from the front of `bytes`, returning the
/// message and the number of bytes consumed.
///
/// # Errors
///
/// Any [`CodecError`]; [`CodecError::Truncated`] means more bytes may
/// complete the frame, every other variant is fatal for the stream.
pub fn decode(bytes: &[u8]) -> Result<(Message, usize), CodecError> {
    decode_with_window(bytes, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION)
}

/// [`decode`] against an explicit accepted-version window `min..=max`.
///
/// This is what a deployed verifier built against an *older* protocol
/// revision effectively runs: compatibility tests call it with
/// `(1, 1)` to prove that version-2 frames (and any frame carrying a
/// type byte in the reserved range [`FIRST_V2_TYPE`]`..=`
/// [`LAST_RESERVED_TYPE`]) are rejected as the typed
/// [`CodecError::UnsupportedVersion`] rather than misparsed.
///
/// # Errors
///
/// As [`decode`].
pub fn decode_with_window(bytes: &[u8], min: u8, max: u8) -> Result<(Message, usize), CodecError> {
    if bytes.len() < 4 {
        return Err(CodecError::Truncated {
            have: bytes.len(),
            need: 4,
        });
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
    if !(2..=MAX_FRAME_LEN).contains(&len) {
        return Err(CodecError::BadLength { len });
    }
    let total = 4 + len;
    if bytes.len() < total {
        return Err(CodecError::Truncated {
            have: bytes.len(),
            need: total,
        });
    }
    let version = bytes[4];
    if !(min..=max).contains(&version) {
        return Err(CodecError::UnsupportedVersion {
            got: version,
            min,
            max,
        });
    }
    let type_byte = bytes[5];
    // Reserved versioned range: a version-1 frame cannot carry a
    // version-2 message type. Typed as a version problem so old
    // verifiers (max = 1) and confused senders both get an actionable
    // error instead of "unknown message".
    if (FIRST_V2_TYPE..=LAST_RESERVED_TYPE).contains(&type_byte) && version < 2 {
        return Err(CodecError::UnsupportedVersion {
            got: version,
            min: 2,
            max,
        });
    }
    let message = decode_payload(type_byte, &bytes[6..total], version)?;
    Ok((message, total))
}

/// A streaming frame reassembler: push byte chunks in whatever sizes the
/// transport delivers, pull complete messages out.
///
/// The first hard decode error poisons the decoder — every subsequent
/// call returns [`CodecError::Poisoned`]. A framed stream that has lost
/// sync cannot be trusted to resynchronize, so the connection owning this
/// decoder must be dropped.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    poisoned: bool,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends received bytes. Accepts any chunking, including empty.
    pub fn push(&mut self, bytes: &[u8]) {
        if !self.poisoned {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Whether a hard decode error has been observed.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Bytes buffered but not yet decoded.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Decodes the next complete message, `Ok(None)` if more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// The first hard [`CodecError`] poisons the decoder;
    /// [`CodecError::Poisoned`] thereafter.
    pub fn next_message(&mut self) -> Result<Option<Message>, CodecError> {
        Ok(self.next_message_with_frame()?.map(|(message, _)| message))
    }

    /// Like [`FrameDecoder::next_message`], also returning the raw frame
    /// bytes the message was decoded from — the fleet flight recorder
    /// tapes exact wire bytes, not re-encodings.
    ///
    /// # Errors
    ///
    /// As [`FrameDecoder::next_message`].
    pub fn next_message_with_frame(&mut self) -> Result<Option<(Message, Vec<u8>)>, CodecError> {
        if self.poisoned {
            return Err(CodecError::Poisoned);
        }
        match decode(&self.buf) {
            Ok((message, consumed)) => {
                let frame = self.buf.drain(..consumed).collect();
                Ok(Some((message, frame)))
            }
            Err(CodecError::Truncated { .. }) => Ok(None),
            Err(err) => {
                self.poisoned = true;
                self.buf.clear();
                Err(err)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tytan_crypto::TaskId;

    fn sample_messages() -> Vec<Message> {
        let report = AttestationReport {
            id: TaskId::from_u64(0xFEED),
            digest: vec![7u8; 20],
            nonce: vec![1, 2, 3, 4],
            mac: vec![9u8; 20],
        };
        vec![
            Message::Hello {
                device: DeviceId::from_u64(3),
                max_version: PROTOCOL_VERSION,
            },
            Message::Welcome {
                version: PROTOCOL_VERSION,
            },
            Message::Challenge {
                device: DeviceId::from_u64(u64::MAX),
                corr: u64::MAX,
                nonce: vec![0xAB; 16],
            },
            Message::Challenge {
                device: DeviceId::from_u64(0),
                corr: 0,
                nonce: Vec::new(),
            },
            Message::Report {
                device: DeviceId::from_u64(77),
                corr: 0x1122_3344_5566_7788,
                report,
            },
            Message::Verdict {
                device: DeviceId::from_u64(5),
                corr: 42,
                accepted: true,
                code: verdict_code::OK,
            },
            Message::Verdict {
                device: DeviceId::from_u64(5),
                corr: 43,
                accepted: false,
                code: verdict_code::REPLAYED_NONCE,
            },
            Message::CfaReport {
                device: DeviceId::from_u64(11),
                corr: 7,
                report: sample_cfa_report(),
            },
        ]
    }

    fn sample_cfa_report() -> CfaReport {
        CfaReport {
            id: TaskId::from_u64(0xBEEF),
            digest: vec![6u8; 20],
            nonce: vec![5, 6, 7, 8],
            log: vec![(0, 8, 1), (8, 16, 300), (16, 12, 1)],
            chain_head: [0xC4; 20],
            mac: vec![8u8; 20],
        }
    }

    #[test]
    fn every_message_round_trips() {
        for msg in sample_messages() {
            let bytes = encode(&msg, PROTOCOL_VERSION);
            let (decoded, consumed) = decode(&bytes).expect("decodes");
            assert_eq!(decoded, msg);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn streaming_decoder_reassembles_any_chunking() {
        let mut wire = Vec::new();
        for msg in sample_messages() {
            wire.extend_from_slice(&encode(&msg, PROTOCOL_VERSION));
        }
        for chunk_size in [1, 2, 3, 5, 7, 64, wire.len()] {
            let mut decoder = FrameDecoder::new();
            let mut out = Vec::new();
            for chunk in wire.chunks(chunk_size) {
                decoder.push(chunk);
                while let Some(msg) = decoder.next_message().expect("clean stream") {
                    out.push(msg);
                }
            }
            assert_eq!(out, sample_messages(), "chunk size {chunk_size}");
        }
    }

    #[test]
    fn truncated_frames_wait_instead_of_failing() {
        let bytes = encode(
            &Message::Welcome {
                version: PROTOCOL_VERSION,
            },
            PROTOCOL_VERSION,
        );
        for cut in 0..bytes.len() {
            let mut decoder = FrameDecoder::new();
            decoder.push(&bytes[..cut]);
            assert_eq!(
                decoder.next_message().expect("not an error"),
                None,
                "cut {cut}"
            );
            decoder.push(&bytes[cut..]);
            assert!(
                decoder.next_message().expect("completes").is_some(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn version_outside_window_is_typed() {
        let mut bytes = encode(
            &Message::Welcome {
                version: PROTOCOL_VERSION,
            },
            PROTOCOL_VERSION,
        );
        bytes[4] = PROTOCOL_VERSION + 1;
        assert_eq!(
            decode(&bytes),
            Err(CodecError::UnsupportedVersion {
                got: PROTOCOL_VERSION + 1,
                min: MIN_PROTOCOL_VERSION,
                max: PROTOCOL_VERSION,
            })
        );
        bytes[4] = 0;
        assert!(matches!(
            decode(&bytes),
            Err(CodecError::UnsupportedVersion { got: 0, .. })
        ));
    }

    #[test]
    fn negotiation_picks_newest_common_version() {
        assert_eq!(negotiate(PROTOCOL_VERSION), Ok(PROTOCOL_VERSION));
        assert_eq!(negotiate(PROTOCOL_VERSION + 9), Ok(PROTOCOL_VERSION));
        // A version-1-only device still negotiates a v1 session.
        assert_eq!(negotiate(1), Ok(1));
        assert!(matches!(
            negotiate(MIN_PROTOCOL_VERSION.wrapping_sub(1)),
            Err(CodecError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn v1_frame_with_reserved_type_is_a_typed_version_error() {
        let msg = Message::CfaReport {
            device: DeviceId::from_u64(11),
            corr: 0,
            report: sample_cfa_report(),
        };
        assert_eq!(msg.min_version(), 2);
        // A confused (or malicious) sender stamps version 1 on a
        // reserved-range type: typed as a version problem.
        let frame = encode(&msg, 1);
        assert_eq!(
            decode(&frame),
            Err(CodecError::UnsupportedVersion {
                got: 1,
                min: 2,
                max: PROTOCOL_VERSION,
            })
        );
        // The whole reserved range behaves the same at version 1.
        for reserved in FIRST_V2_TYPE..=LAST_RESERVED_TYPE {
            let mut frame = encode(&Message::Welcome { version: 1 }, 1);
            frame[5] = reserved;
            assert!(
                matches!(
                    decode(&frame),
                    Err(CodecError::UnsupportedVersion { got: 1, min: 2, .. })
                ),
                "type {reserved}"
            );
        }
    }

    #[test]
    fn old_verifier_window_rejects_new_report_frames_as_unsupported_version() {
        // A verifier built before version 2 accepts only 1..=1; a
        // version-2 CFA frame must fail with the typed version error,
        // not a misparse, so the device can fall back to plain reports.
        let frame = encode(
            &Message::CfaReport {
                device: DeviceId::from_u64(3),
                corr: 0,
                report: sample_cfa_report(),
            },
            PROTOCOL_VERSION,
        );
        assert_eq!(
            decode_with_window(&frame, 1, 1),
            Err(CodecError::UnsupportedVersion {
                got: PROTOCOL_VERSION,
                min: 1,
                max: 1,
            })
        );
        // The same old window still decodes v1 traffic unchanged.
        let v1 = encode(&Message::Welcome { version: 1 }, 1);
        assert!(decode_with_window(&v1, 1, 1).is_ok());
    }

    #[test]
    fn cfa_frames_ship_compressed_at_v4_and_raw_at_v3() {
        let msg = Message::CfaReport {
            device: DeviceId::from_u64(11),
            corr: 7,
            report: sample_cfa_report(),
        };
        let v4 = encode(&msg, PROTOCOL_VERSION);
        let v3 = encode(&msg, 3);
        // 3 runs × 12 bytes vs 302 raw edges × 8 bytes.
        assert!(v4.len() < v3.len() / 10, "{} vs {}", v4.len(), v3.len());
        // Both wire forms decode to the identical in-memory message —
        // same sealed report, same canonical run log.
        let (from_v4, _) = decode(&v4).expect("v4 decodes");
        let (from_v3, _) = decode(&v3).expect("v3 decodes");
        assert_eq!(from_v4, msg);
        assert_eq!(from_v3, msg);
    }

    #[test]
    fn non_canonical_v4_run_log_is_rejected() {
        // Hand-build a v4 CFA frame whose inner report splits a run
        // into two adjacent runs of the same edge: the raw stream and
        // the MAC'd edge count are unchanged, but the encoding is not
        // canonical and must not decode.
        let device = DeviceId::from_u64(11);
        let report = sample_cfa_report();
        let mut split = report.clone();
        split.log = vec![(0, 8, 1), (8, 16, 299), (8, 16, 1), (16, 12, 1)];
        assert_eq!(split.raw_edges(), report.raw_edges());
        let mut frame = Vec::new();
        let inner = split.to_bytes();
        let mut payload = Vec::new();
        payload.extend_from_slice(&device.to_bytes());
        payload.extend_from_slice(&7u64.to_be_bytes());
        payload.extend_from_slice(&(inner.len() as u32).to_le_bytes());
        payload.extend_from_slice(&inner);
        frame.extend_from_slice(&((2 + payload.len()) as u32).to_le_bytes());
        frame.push(PROTOCOL_VERSION);
        frame.push(FIRST_V2_TYPE); // TYPE_CFA_REPORT
        frame.extend_from_slice(&payload);
        assert!(matches!(
            decode(&frame),
            Err(CodecError::MalformedPayload(_))
        ));
    }

    #[test]
    fn pre_corr_versions_drop_the_correlation_id() {
        // Encoding at version 2 omits the field; decoding yields 0. A
        // downgraded session loses correlation, nothing else.
        for version in [1, 2] {
            let msg = Message::Challenge {
                device: DeviceId::from_u64(9),
                corr: 0xDEAD_BEEF,
                nonce: vec![1, 2, 3],
            };
            let bytes = encode(&msg, version);
            let (decoded, consumed) = decode(&bytes).expect("decodes");
            assert_eq!(consumed, bytes.len());
            assert_eq!(
                decoded,
                Message::Challenge {
                    device: DeviceId::from_u64(9),
                    corr: 0,
                    nonce: vec![1, 2, 3],
                },
                "version {version}"
            );
        }
        // A v3 frame is 8 bytes longer than the same message at v2.
        let msg = Message::Verdict {
            device: DeviceId::from_u64(1),
            corr: 5,
            accepted: true,
            code: verdict_code::OK,
        };
        assert_eq!(encode(&msg, CORR_VERSION).len(), encode(&msg, 2).len() + 8);
    }

    #[test]
    fn corr_accessor_reports_the_carried_id() {
        for msg in sample_messages() {
            match &msg {
                Message::Hello { .. } | Message::Welcome { .. } => {
                    assert_eq!(msg.corr(), 0);
                }
                Message::Challenge { corr, .. }
                | Message::Report { corr, .. }
                | Message::Verdict { corr, .. }
                | Message::CfaReport { corr, .. } => assert_eq!(msg.corr(), *corr),
            }
        }
    }

    #[test]
    fn v2_only_verifier_window_rejects_v3_frames_as_unsupported_version() {
        // A verifier built before correlation ids accepts 1..=2; a v3
        // frame fails with the typed version error so the device can
        // re-negotiate down (and the corr bytes are never misparsed as
        // nonce length or report length).
        let frame = encode(
            &Message::Challenge {
                device: DeviceId::from_u64(4),
                corr: 77,
                nonce: vec![0xAA; 8],
            },
            PROTOCOL_VERSION,
        );
        assert_eq!(
            decode_with_window(&frame, 1, 2),
            Err(CodecError::UnsupportedVersion {
                got: PROTOCOL_VERSION,
                min: 1,
                max: 2,
            })
        );
        // The v2 encoding of the same message still decodes in that
        // window (corr degrades to 0).
        let v2 = encode(
            &Message::Challenge {
                device: DeviceId::from_u64(4),
                corr: 77,
                nonce: vec![0xAA; 8],
            },
            2,
        );
        assert!(matches!(
            decode_with_window(&v2, 1, 2),
            Ok((Message::Challenge { corr: 0, .. }, _))
        ));
    }

    #[test]
    fn oversized_length_prefix_rejected_before_buffering() {
        let mut bytes = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 16]);
        assert_eq!(
            decode(&bytes),
            Err(CodecError::BadLength {
                len: MAX_FRAME_LEN + 1
            })
        );
        // Too-short lengths (cannot hold version + type) are equally bad.
        assert_eq!(
            decode(&1u32.to_le_bytes()),
            Err(CodecError::BadLength { len: 1 })
        );
    }

    #[test]
    fn poisoned_decoder_stays_poisoned() {
        let mut decoder = FrameDecoder::new();
        let mut bytes = encode(
            &Message::Welcome {
                version: PROTOCOL_VERSION,
            },
            PROTOCOL_VERSION,
        );
        bytes[5] = 0xEE; // unknown type
        decoder.push(&bytes);
        assert_eq!(
            decoder.next_message(),
            Err(CodecError::UnknownMessageType(0xEE))
        );
        assert!(decoder.is_poisoned());
        decoder.push(&encode(
            &Message::Welcome {
                version: PROTOCOL_VERSION,
            },
            PROTOCOL_VERSION,
        ));
        assert_eq!(decoder.next_message(), Err(CodecError::Poisoned));
    }

    #[test]
    fn non_canonical_report_encoding_rejected() {
        let report = AttestationReport {
            id: TaskId::from_u64(1),
            digest: vec![2u8; 20],
            nonce: vec![3u8; 8],
            mac: vec![4u8; 20],
        };
        let device = DeviceId::from_u64(9);
        let mut frame = encode(
            &Message::Report {
                device,
                corr: 0,
                report,
            },
            PROTOCOL_VERSION,
        );
        // Grow the inner length prefix and pad: `from_bytes` would accept
        // the prefix, the canonical check must not. Header, device and
        // (version 3) correlation id precede the inner length.
        let inner_len_at = 4 + 2 + 8 + 8;
        let inner = u32::from_le_bytes(frame[inner_len_at..inner_len_at + 4].try_into().unwrap());
        frame[inner_len_at..inner_len_at + 4].copy_from_slice(&(inner + 2).to_le_bytes());
        frame.extend_from_slice(&[0, 0]);
        let len = (frame.len() - 4) as u32;
        frame[..4].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(
            decode(&frame),
            Err(CodecError::MalformedPayload(_))
        ));
    }

    proptest! {
        // Round trip under proptest-chosen fields.
        #[test]
        fn prop_challenge_round_trips(
            device in any::<u64>(),
            corr in any::<u64>(),
            nonce in proptest::collection::vec(any::<u8>(), 0..MAX_NONCE_LEN),
        ) {
            let msg = Message::Challenge {
                device: DeviceId::from_u64(device),
                corr,
                nonce,
            };
            let bytes = encode(&msg, PROTOCOL_VERSION);
            prop_assert_eq!(decode(&bytes), Ok((msg, bytes.len())));
        }

        // Arbitrary bytes never panic the decoder: either a message, a
        // wait-for-more, or a typed error.
        #[test]
        fn prop_garbage_never_panics(
            bytes in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            let mut decoder = FrameDecoder::new();
            decoder.push(&bytes);
            while let Ok(Some(_)) = decoder.next_message() {}
        }

        // A single flipped bit in a valid frame is caught or yields a
        // different (still well-formed) message — never a panic, and any
        // successfully decoded frame consumes exactly its own bytes.
        #[test]
        fn prop_bit_flips_never_panic(
            msg_index in 0usize..8,
            bit in 0usize..4096,
        ) {
            let msg = sample_messages().remove(msg_index);
            let mut bytes = encode(&msg, PROTOCOL_VERSION);
            let bit = bit % (bytes.len() * 8);
            bytes[bit / 8] ^= 1 << (bit % 8);
            match decode(&bytes) {
                Ok((_, consumed)) => prop_assert!(consumed <= bytes.len()),
                Err(CodecError::Truncated { have, need }) => {
                    // Only a length-prefix flip can make the frame look
                    // longer than what was sent.
                    prop_assert!(bit < 32);
                    prop_assert!(need > have);
                }
                Err(_) => {}
            }
        }

        // Chunk boundaries never change what a stream decodes to.
        #[test]
        fn prop_chunking_is_transparent(
            split in 1usize..64,
            count in 1usize..5,
        ) {
            let mut wire = Vec::new();
            let expected: Vec<Message> = (0..count)
                .map(|i| Message::Challenge {
                    device: DeviceId::from_u64(i as u64),
                    corr: i as u64,
                    nonce: vec![i as u8; i],
                })
                .collect();
            for msg in &expected {
                wire.extend_from_slice(&encode(msg, PROTOCOL_VERSION));
            }
            let mut decoder = FrameDecoder::new();
            let mut out = Vec::new();
            for chunk in wire.chunks(split) {
                decoder.push(chunk);
                while let Some(msg) = decoder.next_message().expect("clean stream") {
                    out.push(msg);
                }
            }
            prop_assert_eq!(out, expected);
        }
    }
}
