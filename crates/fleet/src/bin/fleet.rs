//! Fleet attestation driver CLI.
//!
//! Boots a fleet of simulated TyTAN devices, streams their attestation
//! reports through the framed wire protocol into the batched verifier
//! service, and prints the outcome. Exits non-zero unless the run was
//! *clean*: every genuine report accepted, every injected replay and
//! forgery rejected as its own class, zero decode errors — which is
//! exactly what the `fleet-smoke` CI job asserts.
//!
//! In `--cfa` mode every device arms the control-flow monitor, runs a
//! monitored slice, and answers with `CfaReport` frames; the verifier
//! replays each edge log against the fleet task's static CFG, and
//! `--detour-every N` makes every `N`th device first send a copy with
//! one edge bent off the CFG, which must be rejected as the typed
//! `InadmissibleEdge` for the run to count as clean.
//!
//! Observability outputs: `--metrics-out FILE` writes the Prometheus
//! exposition after the run, `--events-out FILE` the structured JSONL
//! event stream, and `--bundle-dir DIR` one forensic bundle per typed
//! rejection. Two subcommands work on those artifacts:
//!
//! - `fleet replay-bundle FILE...` re-verifies each bundle offline and
//!   exits zero only if every one reproduces its recorded verdict;
//! - `fleet check-metrics FILE --schema SCHEMA` validates a metrics
//!   exposition against the checked-in required-family schema.
//!
//! ```text
//! fleet [--devices N] [--rounds N] [--seed N] [--workers N]
//!       [--chunk N] [--replay-every N] [--corrupt-every N]
//!       [--cfa] [--detour-every N] [--monitored-cycles N]
//!       [--metrics-out FILE] [--events-out FILE] [--bundle-dir DIR]
//!       [--json]
//! fleet replay-bundle FILE...
//! fleet check-metrics FILE --schema SCHEMA
//! ```

use std::process::ExitCode;

use tytan_fleet::recorder::replay_bundle;
use tytan_fleet::{run_fleet, FleetConfig, FleetOutcome};
use tytan_trace::json::Value;
use tytan_trace::metrics::validate_prometheus_text;

/// `fleet replay-bundle FILE...`: re-verifies each forensic bundle
/// offline; success means every bundle reproduces its recorded verdict.
fn cmd_replay_bundle(paths: Vec<String>) -> ExitCode {
    if paths.is_empty() {
        eprintln!("fleet replay-bundle: no bundle files given");
        return ExitCode::FAILURE;
    }
    let mut failures = 0u64;
    for path in &paths {
        let input = match std::fs::read_to_string(path) {
            Ok(input) => input,
            Err(e) => {
                eprintln!("fleet replay-bundle: {path}: {e}");
                failures += 1;
                continue;
            }
        };
        match replay_bundle(&input) {
            Ok(outcome) if outcome.matches => {
                println!(
                    "{path}: device {} corr {} -> {} (reproduced)",
                    outcome.device, outcome.corr, outcome.verdict
                );
            }
            Ok(outcome) => {
                eprintln!(
                    "{path}: MISMATCH — recorded code {} but replay produced {}",
                    outcome.recorded_code, outcome.replayed_code
                );
                failures += 1;
            }
            Err(e) => {
                eprintln!("{path}: bundle rejected: {e}");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("fleet replay-bundle: {failures} of {} failed", paths.len());
        ExitCode::FAILURE
    }
}

/// `fleet check-metrics FILE --schema SCHEMA`: validates a Prometheus
/// exposition file and checks every family the schema requires exists.
fn cmd_check_metrics(rest: Vec<String>) -> ExitCode {
    let mut file = None;
    let mut schema = None;
    let mut iter = rest.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--schema" => schema = iter.next(),
            other => {
                if file.replace(other.to_string()).is_some() {
                    eprintln!("fleet check-metrics: more than one metrics file given");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    let (Some(file), Some(schema)) = (file, schema) else {
        eprintln!("usage: fleet check-metrics FILE --schema SCHEMA");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&file) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("fleet check-metrics: {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let families = match validate_prometheus_text(&text) {
        Ok(families) => families,
        Err(e) => {
            eprintln!("fleet check-metrics: {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let schema_text = match std::fs::read_to_string(&schema) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("fleet check-metrics: {schema}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let required = match required_families(&schema_text) {
        Ok(required) => required,
        Err(e) => {
            eprintln!("fleet check-metrics: {schema}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut missing = 0u64;
    for family in &required {
        if !families.iter().any(|f| f == family) {
            eprintln!("fleet check-metrics: required family {family} missing");
            missing += 1;
        }
    }
    if missing == 0 {
        println!(
            "{file}: {} families, all {} required present",
            families.len(),
            required.len()
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Parses the `required_families` list out of the metrics schema file.
fn required_families(schema: &str) -> Result<Vec<String>, String> {
    let value = tytan_trace::json::parse(schema).map_err(|e| e.to_string())?;
    let list = value
        .get("required_families")
        .and_then(Value::as_array)
        .ok_or("schema has no required_families array")?;
    list.iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| "required_families entries must be strings".to_string())
        })
        .collect()
}

fn print_json(outcome: &FleetOutcome) {
    println!("{{");
    println!("  \"devices\": {},", outcome.devices);
    println!("  \"rounds\": {},", outcome.rounds);
    println!("  \"reports\": {},", outcome.reports);
    println!("  \"accepted\": {},", outcome.accepted);
    println!("  \"rejected_replay\": {},", outcome.rejected_replay);
    println!("  \"rejected_bad_mac\": {},", outcome.rejected_bad_mac);
    println!("  \"rejected_nonce\": {},", outcome.rejected_nonce);
    println!("  \"rejected_digest\": {},", outcome.rejected_digest);
    println!("  \"unknown_device\": {},", outcome.unknown_device);
    println!("  \"decode_errors\": {},", outcome.decode_errors);
    println!("  \"cfa_reports\": {},", outcome.cfa_reports);
    println!(
        "  \"rejected_inadmissible\": {},",
        outcome.rejected_inadmissible
    );
    println!("  \"rejected_unproven\": {},", outcome.rejected_unproven);
    println!("  \"rejected_chain\": {},", outcome.rejected_chain);
    println!("  \"injected_replays\": {},", outcome.injected_replays);
    println!("  \"injected_corrupt\": {},", outcome.injected_corrupt);
    println!("  \"injected_detours\": {},", outcome.injected_detours);
    println!("  \"device_errors\": {},", outcome.device_errors);
    println!("  \"elapsed_ms\": {},", outcome.elapsed.as_millis());
    println!("  \"throughput_atts_per_s\": {:.1},", outcome.throughput);
    println!("  \"verify_p50_ns\": {},", outcome.verify_p50_ns);
    println!("  \"verify_p99_ns\": {},", outcome.verify_p99_ns);
    println!("  \"batch_p50_ns\": {},", outcome.batch_p50_ns);
    println!("  \"batch_p99_ns\": {},", outcome.batch_p99_ns);
    println!("  \"batches\": {},", outcome.batches);
    println!("  \"bundles\": {},", outcome.bundles);
    println!("  \"events\": {},", outcome.events);
    println!("  \"events_dropped\": {},", outcome.events_dropped);
    println!("  \"trace_dropped\": {},", outcome.trace_dropped);
    println!("  \"clean\": {}", outcome.clean());
    println!("}}");
}

fn print_human(outcome: &FleetOutcome) {
    println!(
        "fleet: {} devices x {} rounds -> {} reports in {:.2?}",
        outcome.devices, outcome.rounds, outcome.reports, outcome.elapsed
    );
    println!(
        "  accepted {}  ({:.0} atts/s)",
        outcome.accepted, outcome.throughput
    );
    println!(
        "  rejected: replay {} (injected {}), bad-mac {} (injected {}), nonce {}, digest {}",
        outcome.rejected_replay,
        outcome.injected_replays,
        outcome.rejected_bad_mac,
        outcome.injected_corrupt,
        outcome.rejected_nonce,
        outcome.rejected_digest,
    );
    if outcome.cfa_reports > 0 {
        println!(
            "  cfa: {} cf-attested reports, inadmissible {} (detours injected {}), \
             chain {}, unproven {}",
            outcome.cfa_reports,
            outcome.rejected_inadmissible,
            outcome.injected_detours,
            outcome.rejected_chain,
            outcome.rejected_unproven,
        );
    }
    println!(
        "  verify latency p50 {} ns, p99 {} ns  ({} batches, batch p99 {} ns)",
        outcome.verify_p50_ns, outcome.verify_p99_ns, outcome.batches, outcome.batch_p99_ns
    );
    println!(
        "  forensics: {} bundles, {} events ({} shed), trace drops {}",
        outcome.bundles, outcome.events, outcome.events_dropped, outcome.trace_dropped
    );
    println!(
        "  decode errors {}, unknown devices {}, device errors {}",
        outcome.decode_errors, outcome.unknown_device, outcome.device_errors
    );
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let run_config = match args.next() {
        Some(first) if first == "replay-bundle" => {
            return cmd_replay_bundle(args.collect());
        }
        Some(first) if first == "check-metrics" => {
            return cmd_check_metrics(args.collect());
        }
        Some(first) => {
            // Not a subcommand: re-parse from scratch including `first`.
            let rebuilt: Vec<String> = std::iter::once(first).chain(args).collect();
            parse_args_from(rebuilt)
        }
        None => parse_args_from(Vec::new()),
    };
    let (config, json) = match run_config {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("fleet: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match run_fleet(&config) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("fleet: reference boot failed: {e:?}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        print_json(&outcome);
    } else {
        print_human(&outcome);
    }
    if outcome.clean() {
        ExitCode::SUCCESS
    } else {
        eprintln!("fleet: NOT CLEAN — unexplained acceptances or rejections (see counts above)");
        ExitCode::FAILURE
    }
}

/// Parses run flags from an owned argument list (after subcommand
/// dispatch has consumed the first argument).
fn parse_args_from(argv: Vec<String>) -> Result<(FleetConfig, bool), String> {
    let mut config = FleetConfig {
        devices: 1000,
        ..FleetConfig::default()
    };
    let mut json = false;
    let mut args = argv.into_iter();
    fn value(args: &mut impl Iterator<Item = String>, name: &str) -> Result<u64, String> {
        args.next()
            .ok_or_else(|| format!("{name} needs a value"))?
            .parse::<u64>()
            .map_err(|e| format!("{name}: {e}"))
    }
    fn path(
        args: &mut impl Iterator<Item = String>,
        name: &str,
    ) -> Result<std::path::PathBuf, String> {
        args.next()
            .map(std::path::PathBuf::from)
            .ok_or_else(|| format!("{name} needs a path"))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--devices" => config.devices = value(&mut args, "--devices")?,
            "--rounds" => config.rounds = value(&mut args, "--rounds")?,
            "--seed" => config.seed = value(&mut args, "--seed")?,
            "--workers" => config.workers = value(&mut args, "--workers")? as usize,
            "--chunk" => config.chunk = value(&mut args, "--chunk")? as usize,
            "--replay-every" => config.replay_every = Some(value(&mut args, "--replay-every")?),
            "--corrupt-every" => config.corrupt_every = Some(value(&mut args, "--corrupt-every")?),
            "--cfa" => config.cfa = true,
            "--detour-every" => config.detour_every = Some(value(&mut args, "--detour-every")?),
            "--monitored-cycles" => {
                config.monitored_cycles = value(&mut args, "--monitored-cycles")?
            }
            "--metrics-out" => config.metrics_out = Some(path(&mut args, "--metrics-out")?),
            "--events-out" => config.events_out = Some(path(&mut args, "--events-out")?),
            "--bundle-dir" => config.bundle_dir = Some(path(&mut args, "--bundle-dir")?),
            "--json" => json = true,
            "--help" | "-h" => {
                println!(
                    "usage: fleet [--devices N] [--rounds N] [--seed N] [--workers N] \
                     [--chunk N] [--replay-every N] [--corrupt-every N] \
                     [--cfa] [--detour-every N] [--monitored-cycles N] \
                     [--metrics-out FILE] [--events-out FILE] [--bundle-dir DIR] [--json]\n\
                     \x20      fleet replay-bundle FILE...\n\
                     \x20      fleet check-metrics FILE --schema SCHEMA"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok((config, json))
}
