//! Fleet attestation driver CLI.
//!
//! Boots a fleet of simulated TyTAN devices, streams their attestation
//! reports through the framed wire protocol into the batched verifier
//! service, and prints the outcome. Exits non-zero unless the run was
//! *clean*: every genuine report accepted, every injected replay and
//! forgery rejected as its own class, zero decode errors — which is
//! exactly what the `fleet-smoke` CI job asserts.
//!
//! In `--cfa` mode every device arms the control-flow monitor, runs a
//! monitored slice, and answers with `CfaReport` frames; the verifier
//! replays each edge log against the fleet task's static CFG, and
//! `--detour-every N` makes every `N`th device first send a copy with
//! one edge bent off the CFG, which must be rejected as the typed
//! `InadmissibleEdge` for the run to count as clean.
//!
//! ```text
//! fleet [--devices N] [--rounds N] [--seed N] [--workers N]
//!       [--chunk N] [--replay-every N] [--corrupt-every N]
//!       [--cfa] [--detour-every N] [--monitored-cycles N] [--json]
//! ```

use std::process::ExitCode;

use tytan_fleet::{run_fleet, FleetConfig, FleetOutcome};

fn parse_args() -> Result<(FleetConfig, bool), String> {
    let mut config = FleetConfig {
        devices: 1000,
        ..FleetConfig::default()
    };
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<u64, String> {
            args.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match arg.as_str() {
            "--devices" => config.devices = value("--devices")?,
            "--rounds" => config.rounds = value("--rounds")?,
            "--seed" => config.seed = value("--seed")?,
            "--workers" => config.workers = value("--workers")? as usize,
            "--chunk" => config.chunk = value("--chunk")? as usize,
            "--replay-every" => config.replay_every = Some(value("--replay-every")?),
            "--corrupt-every" => config.corrupt_every = Some(value("--corrupt-every")?),
            "--cfa" => config.cfa = true,
            "--detour-every" => config.detour_every = Some(value("--detour-every")?),
            "--monitored-cycles" => config.monitored_cycles = value("--monitored-cycles")?,
            "--json" => json = true,
            "--help" | "-h" => {
                println!(
                    "usage: fleet [--devices N] [--rounds N] [--seed N] [--workers N] \
                     [--chunk N] [--replay-every N] [--corrupt-every N] \
                     [--cfa] [--detour-every N] [--monitored-cycles N] [--json]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok((config, json))
}

fn print_json(outcome: &FleetOutcome) {
    println!("{{");
    println!("  \"devices\": {},", outcome.devices);
    println!("  \"rounds\": {},", outcome.rounds);
    println!("  \"reports\": {},", outcome.reports);
    println!("  \"accepted\": {},", outcome.accepted);
    println!("  \"rejected_replay\": {},", outcome.rejected_replay);
    println!("  \"rejected_bad_mac\": {},", outcome.rejected_bad_mac);
    println!("  \"rejected_nonce\": {},", outcome.rejected_nonce);
    println!("  \"rejected_digest\": {},", outcome.rejected_digest);
    println!("  \"unknown_device\": {},", outcome.unknown_device);
    println!("  \"decode_errors\": {},", outcome.decode_errors);
    println!("  \"cfa_reports\": {},", outcome.cfa_reports);
    println!(
        "  \"rejected_inadmissible\": {},",
        outcome.rejected_inadmissible
    );
    println!("  \"rejected_unproven\": {},", outcome.rejected_unproven);
    println!("  \"rejected_chain\": {},", outcome.rejected_chain);
    println!("  \"injected_replays\": {},", outcome.injected_replays);
    println!("  \"injected_corrupt\": {},", outcome.injected_corrupt);
    println!("  \"injected_detours\": {},", outcome.injected_detours);
    println!("  \"device_errors\": {},", outcome.device_errors);
    println!("  \"elapsed_ms\": {},", outcome.elapsed.as_millis());
    println!("  \"throughput_atts_per_s\": {:.1},", outcome.throughput);
    println!("  \"verify_p50_ns\": {},", outcome.verify_p50_ns);
    println!("  \"verify_p99_ns\": {},", outcome.verify_p99_ns);
    println!("  \"batch_p50_ns\": {},", outcome.batch_p50_ns);
    println!("  \"batch_p99_ns\": {},", outcome.batch_p99_ns);
    println!("  \"batches\": {},", outcome.batches);
    println!("  \"clean\": {}", outcome.clean());
    println!("}}");
}

fn print_human(outcome: &FleetOutcome) {
    println!(
        "fleet: {} devices x {} rounds -> {} reports in {:.2?}",
        outcome.devices, outcome.rounds, outcome.reports, outcome.elapsed
    );
    println!(
        "  accepted {}  ({:.0} atts/s)",
        outcome.accepted, outcome.throughput
    );
    println!(
        "  rejected: replay {} (injected {}), bad-mac {} (injected {}), nonce {}, digest {}",
        outcome.rejected_replay,
        outcome.injected_replays,
        outcome.rejected_bad_mac,
        outcome.injected_corrupt,
        outcome.rejected_nonce,
        outcome.rejected_digest,
    );
    if outcome.cfa_reports > 0 {
        println!(
            "  cfa: {} cf-attested reports, inadmissible {} (detours injected {}), \
             chain {}, unproven {}",
            outcome.cfa_reports,
            outcome.rejected_inadmissible,
            outcome.injected_detours,
            outcome.rejected_chain,
            outcome.rejected_unproven,
        );
    }
    println!(
        "  verify latency p50 {} ns, p99 {} ns  ({} batches, batch p99 {} ns)",
        outcome.verify_p50_ns, outcome.verify_p99_ns, outcome.batches, outcome.batch_p99_ns
    );
    println!(
        "  decode errors {}, unknown devices {}, device errors {}",
        outcome.decode_errors, outcome.unknown_device, outcome.device_errors
    );
}

fn main() -> ExitCode {
    let (config, json) = match parse_args() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("fleet: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match run_fleet(&config) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("fleet: reference boot failed: {e:?}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        print_json(&outcome);
    } else {
        print_human(&outcome);
    }
    if outcome.clean() {
        ExitCode::SUCCESS
    } else {
        eprintln!("fleet: NOT CLEAN — unexplained acceptances or rejections (see counts above)");
        ExitCode::FAILURE
    }
}
