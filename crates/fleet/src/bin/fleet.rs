//! Fleet attestation driver CLI.
//!
//! Boots a fleet of simulated TyTAN devices, streams their attestation
//! reports through the framed wire protocol into the batched verifier
//! service, and prints the outcome. Exits non-zero unless the run was
//! *clean*: every genuine report accepted, every injected replay and
//! forgery rejected as its own class, zero decode errors — which is
//! exactly what the `fleet-smoke` CI job asserts.
//!
//! Every failure is typed and carries its own exit code, so CI and
//! scripts can branch on *why* a run failed without scraping stderr:
//!
//! | exit | meaning                                                |
//! |------|--------------------------------------------------------|
//! | 0    | success                                                |
//! | 1    | verification failed (run not clean, bundle mismatch,   |
//! |      | metrics family missing)                                |
//! | 2    | usage error (bad flag or missing argument)             |
//! | 3    | reference platform failed to boot                      |
//! | 4    | I/O error reading or writing an artifact               |
//!
//! In `--cfa` mode every device arms the control-flow monitor, runs a
//! monitored slice, and answers with `CfaReport` frames; the verifier
//! replays each edge log against the fleet task's static CFG, and
//! `--detour-every N` makes every `N`th device first send a copy with
//! one edge bent off the CFG, which must be rejected as the typed
//! `InadmissibleEdge` for the run to count as clean.
//!
//! Observability outputs: `--metrics-out FILE` writes the Prometheus
//! exposition after the run, `--events-out FILE` the structured JSONL
//! event stream, and `--bundle-dir DIR` one forensic bundle per typed
//! rejection. Two subcommands work on those artifacts:
//!
//! - `fleet replay-bundle FILE...` re-verifies each bundle offline and
//!   exits zero only if every one reproduces its recorded verdict;
//! - `fleet check-metrics FILE --schema SCHEMA` validates a metrics
//!   exposition against the checked-in required-family schema.
//!
//! ```text
//! fleet [--devices N] [--rounds N] [--seed N] [--workers N]
//!       [--chunk N] [--replay-every N] [--corrupt-every N]
//!       [--cfa] [--detour-every N] [--monitored-cycles N]
//!       [--max-version N] [--metrics-out FILE] [--events-out FILE]
//!       [--bundle-dir DIR] [--json]
//! fleet replay-bundle FILE...
//! fleet check-metrics FILE --schema SCHEMA
//! ```

use std::process::ExitCode;

use tytan_fleet::recorder::replay_bundle;
use tytan_fleet::{run_fleet, FleetConfig, FleetOutcome};
use tytan_trace::json::Value;
use tytan_trace::metrics::validate_prometheus_text;

/// Every way a fleet invocation can fail, each with its own exit code
/// (see the module docs). Replaces the old single catch-all
/// `ExitCode::FAILURE` so callers never have to parse stderr.
#[derive(Debug)]
enum FleetError {
    /// Verification did not hold: a run booked unexplained rejections,
    /// a bundle replay mismatched, or a required metrics family was
    /// missing.
    NotClean(String),
    /// The command line was malformed.
    Usage(String),
    /// The reference platform boot that provisions the fleet failed.
    Boot(String),
    /// An artifact file could not be read.
    Io(String),
}

impl FleetError {
    fn exit_code(&self) -> u8 {
        match self {
            FleetError::NotClean(_) => 1,
            FleetError::Usage(_) => 2,
            FleetError::Boot(_) => 3,
            FleetError::Io(_) => 4,
        }
    }
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::NotClean(what) => write!(f, "{what}"),
            FleetError::Usage(what) => write!(f, "usage: {what}"),
            FleetError::Boot(what) => write!(f, "reference boot failed: {what}"),
            FleetError::Io(what) => write!(f, "{what}"),
        }
    }
}

/// `fleet replay-bundle FILE...`: re-verifies each forensic bundle
/// offline; success means every bundle reproduces its recorded verdict.
/// Unreadable files are I/O failures; mismatches and rejected bundles
/// are verification failures (I/O wins when both occur).
fn cmd_replay_bundle(paths: Vec<String>) -> Result<(), FleetError> {
    if paths.is_empty() {
        return Err(FleetError::Usage("fleet replay-bundle FILE...".to_string()));
    }
    let mut io_failures = 0u64;
    let mut mismatches = 0u64;
    for path in &paths {
        let input = match std::fs::read_to_string(path) {
            Ok(input) => input,
            Err(e) => {
                eprintln!("fleet replay-bundle: {path}: {e}");
                io_failures += 1;
                continue;
            }
        };
        match replay_bundle(&input) {
            Ok(outcome) if outcome.matches => {
                println!(
                    "{path}: device {} corr {} -> {} (reproduced)",
                    outcome.device, outcome.corr, outcome.verdict
                );
            }
            Ok(outcome) => {
                eprintln!(
                    "{path}: MISMATCH — recorded code {} but replay produced {}",
                    outcome.recorded_code, outcome.replayed_code
                );
                mismatches += 1;
            }
            Err(e) => {
                eprintln!("{path}: bundle rejected: {e}");
                mismatches += 1;
            }
        }
    }
    let failures = io_failures + mismatches;
    if failures == 0 {
        return Ok(());
    }
    let what = format!("replay-bundle: {failures} of {} failed", paths.len());
    if io_failures > 0 {
        Err(FleetError::Io(what))
    } else {
        Err(FleetError::NotClean(what))
    }
}

/// `fleet check-metrics FILE --schema SCHEMA`: validates a Prometheus
/// exposition file and checks every family the schema requires exists.
fn cmd_check_metrics(rest: Vec<String>) -> Result<(), FleetError> {
    let mut file = None;
    let mut schema = None;
    let mut iter = rest.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--schema" => schema = iter.next(),
            other => {
                if file.replace(other.to_string()).is_some() {
                    return Err(FleetError::Usage(
                        "check-metrics: more than one metrics file given".to_string(),
                    ));
                }
            }
        }
    }
    let (Some(file), Some(schema)) = (file, schema) else {
        return Err(FleetError::Usage(
            "fleet check-metrics FILE --schema SCHEMA".to_string(),
        ));
    };
    let text = std::fs::read_to_string(&file)
        .map_err(|e| FleetError::Io(format!("check-metrics: {file}: {e}")))?;
    let families = validate_prometheus_text(&text)
        .map_err(|e| FleetError::NotClean(format!("check-metrics: {file}: {e}")))?;
    let schema_text = std::fs::read_to_string(&schema)
        .map_err(|e| FleetError::Io(format!("check-metrics: {schema}: {e}")))?;
    let required = required_families(&schema_text)
        .map_err(|e| FleetError::NotClean(format!("check-metrics: {schema}: {e}")))?;
    let mut missing = 0u64;
    for family in &required {
        if !families.iter().any(|f| f == family) {
            eprintln!("fleet check-metrics: required family {family} missing");
            missing += 1;
        }
    }
    if missing == 0 {
        println!(
            "{file}: {} families, all {} required present",
            families.len(),
            required.len()
        );
        Ok(())
    } else {
        Err(FleetError::NotClean(format!(
            "check-metrics: {missing} required families missing"
        )))
    }
}

/// Parses the `required_families` list out of the metrics schema file.
fn required_families(schema: &str) -> Result<Vec<String>, String> {
    let value = tytan_trace::json::parse(schema).map_err(|e| e.to_string())?;
    let list = value
        .get("required_families")
        .and_then(Value::as_array)
        .ok_or("schema has no required_families array")?;
    list.iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| "required_families entries must be strings".to_string())
        })
        .collect()
}

fn print_json(outcome: &FleetOutcome) {
    println!("{{");
    println!("  \"devices\": {},", outcome.devices);
    println!("  \"rounds\": {},", outcome.rounds);
    println!("  \"reports\": {},", outcome.reports);
    println!("  \"accepted\": {},", outcome.accepted);
    println!("  \"rejected_replay\": {},", outcome.rejected_replay);
    println!("  \"rejected_bad_mac\": {},", outcome.rejected_bad_mac);
    println!("  \"rejected_nonce\": {},", outcome.rejected_nonce);
    println!("  \"rejected_digest\": {},", outcome.rejected_digest);
    println!("  \"unknown_device\": {},", outcome.unknown_device);
    println!("  \"decode_errors\": {},", outcome.decode_errors);
    println!("  \"cfa_reports\": {},", outcome.cfa_reports);
    println!("  \"cfa_edges\": {},", outcome.cfa_edges);
    println!("  \"cfa_runs\": {},", outcome.cfa_runs);
    println!(
        "  \"rejected_inadmissible\": {},",
        outcome.rejected_inadmissible
    );
    println!("  \"rejected_unproven\": {},", outcome.rejected_unproven);
    println!("  \"rejected_chain\": {},", outcome.rejected_chain);
    println!("  \"injected_replays\": {},", outcome.injected_replays);
    println!("  \"injected_corrupt\": {},", outcome.injected_corrupt);
    println!("  \"injected_detours\": {},", outcome.injected_detours);
    println!("  \"device_errors\": {},", outcome.device_errors);
    println!("  \"elapsed_ms\": {},", outcome.elapsed.as_millis());
    println!("  \"throughput_atts_per_s\": {:.1},", outcome.throughput);
    println!("  \"verify_p50_ns\": {},", outcome.verify_p50_ns);
    println!("  \"verify_p99_ns\": {},", outcome.verify_p99_ns);
    println!("  \"batch_p50_ns\": {},", outcome.batch_p50_ns);
    println!("  \"batch_p99_ns\": {},", outcome.batch_p99_ns);
    println!("  \"batches\": {},", outcome.batches);
    println!("  \"bundles\": {},", outcome.bundles);
    println!("  \"events\": {},", outcome.events);
    println!("  \"events_dropped\": {},", outcome.events_dropped);
    println!("  \"trace_dropped\": {},", outcome.trace_dropped);
    println!("  \"clean\": {}", outcome.clean());
    println!("}}");
}

fn print_human(outcome: &FleetOutcome) {
    println!(
        "fleet: {} devices x {} rounds -> {} reports in {:.2?}",
        outcome.devices, outcome.rounds, outcome.reports, outcome.elapsed
    );
    println!(
        "  accepted {}  ({:.0} atts/s)",
        outcome.accepted, outcome.throughput
    );
    println!(
        "  rejected: replay {} (injected {}), bad-mac {} (injected {}), nonce {}, digest {}",
        outcome.rejected_replay,
        outcome.injected_replays,
        outcome.rejected_bad_mac,
        outcome.injected_corrupt,
        outcome.rejected_nonce,
        outcome.rejected_digest,
    );
    if outcome.cfa_reports > 0 {
        println!(
            "  cfa: {} cf-attested reports, inadmissible {} (detours injected {}), \
             chain {}, unproven {}",
            outcome.cfa_reports,
            outcome.rejected_inadmissible,
            outcome.injected_detours,
            outcome.rejected_chain,
            outcome.rejected_unproven,
        );
        println!(
            "  cfa logs: {} raw edges in {} runs ({:.1}x compression)",
            outcome.cfa_edges,
            outcome.cfa_runs,
            outcome.cfa_edges as f64 / (outcome.cfa_runs as f64).max(1.0),
        );
    }
    println!(
        "  verify latency p50 {} ns, p99 {} ns  ({} batches, batch p99 {} ns)",
        outcome.verify_p50_ns, outcome.verify_p99_ns, outcome.batches, outcome.batch_p99_ns
    );
    println!(
        "  forensics: {} bundles, {} events ({} shed), trace drops {}",
        outcome.bundles, outcome.events, outcome.events_dropped, outcome.trace_dropped
    );
    println!(
        "  decode errors {}, unknown devices {}, device errors {}",
        outcome.decode_errors, outcome.unknown_device, outcome.device_errors
    );
}

fn main() -> ExitCode {
    match dispatch() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fleet: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

fn dispatch() -> Result<(), FleetError> {
    let mut args = std::env::args().skip(1);
    let argv = match args.next() {
        Some(first) if first == "replay-bundle" => {
            return cmd_replay_bundle(args.collect());
        }
        Some(first) if first == "check-metrics" => {
            return cmd_check_metrics(args.collect());
        }
        // Not a subcommand: re-parse from scratch including `first`.
        Some(first) => std::iter::once(first).chain(args).collect(),
        None => Vec::new(),
    };
    let (config, json) = parse_args_from(argv).map_err(FleetError::Usage)?;
    let outcome = run_fleet(&config).map_err(|e| FleetError::Boot(format!("{e:?}")))?;
    if json {
        print_json(&outcome);
    } else {
        print_human(&outcome);
    }
    if outcome.clean() {
        Ok(())
    } else {
        Err(FleetError::NotClean(
            "NOT CLEAN — unexplained acceptances or rejections (see counts above)".to_string(),
        ))
    }
}

/// Parses run flags from an owned argument list (after subcommand
/// dispatch has consumed the first argument).
fn parse_args_from(argv: Vec<String>) -> Result<(FleetConfig, bool), String> {
    let mut config = FleetConfig {
        devices: 1000,
        ..FleetConfig::default()
    };
    let mut json = false;
    let mut args = argv.into_iter();
    fn value(args: &mut impl Iterator<Item = String>, name: &str) -> Result<u64, String> {
        args.next()
            .ok_or_else(|| format!("{name} needs a value"))?
            .parse::<u64>()
            .map_err(|e| format!("{name}: {e}"))
    }
    fn path(
        args: &mut impl Iterator<Item = String>,
        name: &str,
    ) -> Result<std::path::PathBuf, String> {
        args.next()
            .map(std::path::PathBuf::from)
            .ok_or_else(|| format!("{name} needs a path"))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--devices" => config.devices = value(&mut args, "--devices")?,
            "--rounds" => config.rounds = value(&mut args, "--rounds")?,
            "--seed" => config.seed = value(&mut args, "--seed")?,
            "--workers" => config.workers = value(&mut args, "--workers")? as usize,
            "--chunk" => config.chunk = value(&mut args, "--chunk")? as usize,
            "--replay-every" => config.replay_every = Some(value(&mut args, "--replay-every")?),
            "--corrupt-every" => config.corrupt_every = Some(value(&mut args, "--corrupt-every")?),
            "--cfa" => config.cfa = true,
            "--detour-every" => config.detour_every = Some(value(&mut args, "--detour-every")?),
            "--monitored-cycles" => {
                config.monitored_cycles = value(&mut args, "--monitored-cycles")?
            }
            "--max-version" => {
                let v = value(&mut args, "--max-version")?;
                config.max_version =
                    u8::try_from(v).map_err(|_| format!("--max-version: {v} out of range"))?;
            }
            "--metrics-out" => config.metrics_out = Some(path(&mut args, "--metrics-out")?),
            "--events-out" => config.events_out = Some(path(&mut args, "--events-out")?),
            "--bundle-dir" => config.bundle_dir = Some(path(&mut args, "--bundle-dir")?),
            "--json" => json = true,
            "--help" | "-h" => {
                println!(
                    "usage: fleet [--devices N] [--rounds N] [--seed N] [--workers N] \
                     [--chunk N] [--replay-every N] [--corrupt-every N] \
                     [--cfa] [--detour-every N] [--monitored-cycles N] [--max-version N] \
                     [--metrics-out FILE] [--events-out FILE] [--bundle-dir DIR] [--json]\n\
                     \x20      fleet replay-bundle FILE...\n\
                     \x20      fleet check-metrics FILE --schema SCHEMA"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok((config, json))
}
