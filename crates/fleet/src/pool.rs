//! A std-only work-stealing thread pool for the device farm.
//!
//! The farm runs thousands of short device jobs (boot, load, attest,
//! disconnect). Each worker owns a deque: it pops its own work LIFO (the
//! freshest job's platform state is the hottest in cache) and steals from
//! other workers FIFO (the oldest queued job is the least likely to be
//! popped by its owner next). Spawns distribute round-robin so no single
//! queue becomes the bottleneck under a burst of submissions.
//!
//! Everything is `std`: queues are `Mutex<VecDeque>`, sleeping workers
//! park on a condvar, and [`WorkStealingPool::wait_idle`] blocks until
//! every spawned job has *finished* (not merely been dequeued).
//!
//! # Examples
//!
//! ```
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//! use tytan_fleet::pool::WorkStealingPool;
//!
//! let pool = WorkStealingPool::new(4);
//! let done = Arc::new(AtomicUsize::new(0));
//! for _ in 0..100 {
//!     let done = done.clone();
//!     pool.spawn(move || {
//!         done.fetch_add(1, Ordering::Relaxed);
//!     });
//! }
//! pool.wait_idle();
//! assert_eq!(done.load(Ordering::Relaxed), 100);
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    /// One deque per worker. Owners pop the back (LIFO), thieves pop the
    /// front (FIFO).
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Jobs spawned but not yet finished (queued + running).
    inflight: AtomicUsize,
    /// Round-robin spawn cursor.
    next: AtomicUsize,
    shutdown: AtomicBool,
    /// Workers sleep here when every queue is empty.
    work_lock: Mutex<()>,
    work_cv: Condvar,
    /// `wait_idle` sleeps here until `inflight` drains to zero.
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
}

impl Shared {
    /// Pops a job for worker `who`: own queue LIFO first, then steal
    /// FIFO from the others.
    fn find_job(&self, who: usize) -> Option<Job> {
        if let Some(job) = self.queues[who].lock().expect("pool queue").pop_back() {
            return Some(job);
        }
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (who + offset) % n;
            if let Some(job) = self.queues[victim].lock().expect("pool queue").pop_front() {
                return Some(job);
            }
        }
        None
    }

    fn finish_one(&self) {
        if self.inflight.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.idle_lock.lock().expect("pool idle lock");
            self.idle_cv.notify_all();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, who: usize) {
    loop {
        if let Some(job) = shared.find_job(who) {
            // A panicking job must not kill the worker (stranding every
            // job still queued behind it) or leak its inflight slot
            // (wedging `wait_idle` forever). Contain it and move on.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            shared.finish_one();
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Sleep with a short timeout rather than spinning: device jobs
        // block their worker mid-conversation (waiting on a challenge),
        // and a hot-spinning sibling would starve the verifier thread on
        // small machines. Spawns notify under `work_lock`, so the timeout
        // only bounds the rare lost-wakeup window.
        let guard = shared.work_lock.lock().expect("pool work lock");
        if !shared.shutdown.load(Ordering::Acquire) {
            let _ = shared
                .work_cv
                .wait_timeout(guard, Duration::from_millis(1))
                .expect("pool work cv");
        }
    }
}

/// A fixed-size pool of worker threads with per-worker stealing deques.
pub struct WorkStealingPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkStealingPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkStealingPool")
            .field("workers", &self.workers.len())
            .field("inflight", &self.shared.inflight.load(Ordering::Relaxed))
            .finish()
    }
}

impl WorkStealingPool {
    /// Spawns a pool of `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            inflight: AtomicUsize::new(0),
            next: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            work_lock: Mutex::new(()),
            work_cv: Condvar::new(),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|who| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("fleet-worker-{who}"))
                    .spawn(move || worker_loop(shared, who))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkStealingPool {
            shared,
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues `job` on the next queue round-robin.
    pub fn spawn<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.shared.inflight.fetch_add(1, Ordering::AcqRel);
        let slot = self.shared.next.fetch_add(1, Ordering::Relaxed) % self.workers.len();
        self.shared.queues[slot]
            .lock()
            .expect("pool queue")
            .push_back(Box::new(job));
        let _guard = self.shared.work_lock.lock().expect("pool work lock");
        self.shared.work_cv.notify_all();
    }

    /// Jobs spawned but not yet finished.
    pub fn inflight(&self) -> usize {
        self.shared.inflight.load(Ordering::Acquire)
    }

    /// Blocks until every spawned job has finished.
    pub fn wait_idle(&self) {
        let mut guard = self.shared.idle_lock.lock().expect("pool idle lock");
        while self.shared.inflight.load(Ordering::Acquire) > 0 {
            let (next, _) = self
                .shared
                .idle_cv
                .wait_timeout(guard, Duration::from_millis(1))
                .expect("pool idle cv");
            guard = next;
        }
    }
}

impl Drop for WorkStealingPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.shared.work_lock.lock().expect("pool work lock");
            self.shared.work_cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_job_once() {
        let pool = WorkStealingPool::new(4);
        let hits = Arc::new(Mutex::new(vec![0u32; 500]));
        for i in 0..500 {
            let hits = hits.clone();
            pool.spawn(move || {
                hits.lock().unwrap()[i] += 1;
            });
        }
        pool.wait_idle();
        assert!(hits.lock().unwrap().iter().all(|&h| h == 1));
    }

    #[test]
    fn jobs_can_spawn_jobs() {
        let pool = Arc::new(WorkStealingPool::new(2));
        let count = Arc::new(AtomicUsize::new(0));
        {
            let pool2 = pool.clone();
            let count = count.clone();
            pool.spawn(move || {
                for _ in 0..10 {
                    let count = count.clone();
                    pool2.spawn(move || {
                        count.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        // Wait until the outer job has enqueued the inner ones, then for
        // everything to drain.
        while count.load(Ordering::Relaxed) < 10 {
            std::thread::yield_now();
        }
        pool.wait_idle();
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn single_worker_pool_still_drains() {
        let pool = WorkStealingPool::new(1);
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let count = count.clone();
            pool.spawn(move || {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(count.load(Ordering::Relaxed), 50);
        assert_eq!(pool.inflight(), 0);
    }

    #[test]
    fn panicking_job_neither_kills_its_worker_nor_wedges_wait_idle() {
        let pool = WorkStealingPool::new(1);
        pool.spawn(|| panic!("synthetic"));
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let count = count.clone();
            pool.spawn(move || {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(count.load(Ordering::Relaxed), 10);
        assert_eq!(pool.inflight(), 0);
    }

    #[test]
    fn wait_idle_on_empty_pool_returns_immediately() {
        let pool = WorkStealingPool::new(3);
        pool.wait_idle();
        assert_eq!(pool.inflight(), 0);
    }

    #[test]
    fn stealing_moves_work_off_a_blocked_worker() {
        // Saturate the pool with one long job per worker except one, then
        // verify short jobs spawned onto arbitrary queues all finish while
        // a long job is still running: someone stole them.
        let pool = WorkStealingPool::new(2);
        let release = Arc::new(AtomicBool::new(false));
        {
            let release = release.clone();
            pool.spawn(move || {
                while !release.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            });
        }
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let count = count.clone();
            pool.spawn(move || {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        // All 20 short jobs finish even though one worker is pinned:
        // round-robin put half of them on the blocked worker's queue, so
        // the free worker must have stolen them.
        while count.load(Ordering::Relaxed) < 20 {
            std::thread::yield_now();
        }
        release.store(true, Ordering::Release);
        pool.wait_idle();
        assert_eq!(count.load(Ordering::Relaxed), 20);
    }
}
