//! The paper's automotive use case (Figure 2, Table 1).
//!
//! A simulated adaptive cruise-control system: secure task `t1`
//! permanently monitors the accelerator-pedal position sensor; secure task
//! `t2` is loaded *on demand* when the driver activates cruise control and
//! then monitors the radar range sensor; secure task `t0` controls the
//! vehicle speed from the data `t1`/`t2` deliver over secure IPC. Loading
//! `t2` takes much longer than a scheduling period, so Table 1 verifies
//! that `t0` and `t1` hold their 1.5 kHz rate before, while, and after
//! `t2` loads — which requires the whole load pipeline to be
//! interruptible.
//!
//! # Examples
//!
//! ```
//! use tytan::platform::{Platform, PlatformConfig};
//! use tytan::usecase::CruiseControl;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut platform: Platform = Platform::boot(PlatformConfig::default())?;
//! let mut scenario = CruiseControl::install(&mut platform)?;
//! let before = scenario.measure_window(&mut platform, 500_000)?;
//! assert!(before.t0_rate_khz_at_48mhz() > 1.0);
//! # Ok(())
//! # }
//! ```

use crate::platform::{LoadToken, Platform, PlatformError};
use crate::toolchain::{task_id_equs, SecureTaskBuilder, TaskSource};
use rtos::{layout, TaskHandle};
use tytan_crypto::{Digest, TaskId};

/// Message tag identifying the pedal monitor as the value source.
pub const TAG_PEDAL: u32 = 1;
/// Message tag identifying the radar monitor as the value source.
pub const TAG_RADAR: u32 = 2;

/// Builds `t0`, the engine-control task: consumes pedal/radar readings
/// from its mailbox, drives the actuator, and bumps `counter` once per
/// scheduling cycle (the quantity Table 1 rates).
pub fn engine_control_source() -> TaskSource {
    let body = format!(
        "main:\n\
         loop:\n\
         \x20movi r1, __mailbox\n\
         \x20ldw r2, [r1]\n\
         \x20cmpi r2, 0\n\
         \x20jz compute\n\
         \x20ldw r3, [r1+16]\n\
         \x20ldw r4, [r1+20]\n\
         \x20xor r2, r2\n\
         \x20stw [r1], r2\n\
         \x20cmpi r4, {tag_radar}\n\
         \x20jz save_radar\n\
         \x20movi r5, pedal_val\n\
         \x20stw [r5], r3\n\
         \x20jmp compute\n\
         save_radar:\n\
         \x20movi r5, radar_val\n\
         \x20stw [r5], r3\n\
         compute:\n\
         \x20movi r1, pedal_val\n\
         \x20ldw r2, [r1]\n\
         \x20movi r1, radar_val\n\
         \x20ldw r3, [r1]\n\
         \x20movi r4, 1\n\
         \x20shr r3, r4\n\
         \x20sub r2, r3\n\
         \x20movi r1, {actuator:#x}\n\
         \x20stw [r1], r2\n\
         \x20movi r1, counter\n\
         \x20ldw r2, [r1]\n\
         \x20addi r2, 1\n\
         \x20stw [r1], r2\n\
         \x20movi r1, SYS_DELAY\n\
         \x20movi r2, 1\n\
         \x20int SYS_VECTOR\n\
         \x20jmp loop\n",
        tag_radar = TAG_RADAR,
        actuator = layout::ACTUATOR_BASE,
    );
    SecureTaskBuilder::new("t0-engine-control", body)
        .data("pedal_val:\n .word 0\nradar_val:\n .word 0\ncounter:\n .word 0\n")
        .stack_len(512)
        .build()
        .expect("engine-control body assembles")
}

fn monitor_body(sensor_base: u32, tag: u32, controller_equs: &str, padding: &str) -> String {
    format!(
        "{controller_equs}\
         main:\n\
         loop:\n\
         \x20movi r1, {sensor_base:#x}\n\
         \x20ldw r3, [r1]\n\
         \x20movi r1, CONTROLLER_HI\n\
         \x20movi r2, CONTROLLER_LO\n\
         \x20movi r4, {tag}\n\
         \x20movi r5, 0\n\
         \x20movi r6, 0\n\
         \x20int IPC_VECTOR\n\
         \x20movi r1, counter\n\
         \x20ldw r2, [r1]\n\
         \x20addi r2, 1\n\
         \x20stw [r1], r2\n\
         \x20movi r1, SYS_DELAY\n\
         \x20movi r2, 1\n\
         \x20int SYS_VECTOR\n\
         \x20jmp loop\n\
         {padding}"
    )
}

/// Builds `t1`, the pedal-position monitor, provisioned with the
/// controller's identity (footnote 3 of the paper).
pub fn pedal_monitor_source(controller: TaskId) -> TaskSource {
    let body = monitor_body(
        layout::PEDAL_BASE,
        TAG_PEDAL,
        &task_id_equs("CONTROLLER", controller),
        "",
    );
    SecureTaskBuilder::new("t1-pedal-monitor", body)
        .data("counter:\n .word 0\n")
        .stack_len(512)
        .build()
        .expect("pedal-monitor body assembles")
}

/// Builds `t2`, the radar monitor loaded on demand. The image is padded
/// to ≈ 3,962 bytes with 9 relocation sites, matching footnote 11 of the
/// paper, so its load takes realistically long relative to the 1.5 kHz
/// schedule.
pub fn radar_monitor_source(controller: TaskId) -> TaskSource {
    // Extra relocation sites: a jump table referencing labels.
    // 4 template relocs + movi counter + jmp loop + 3 table entries = the
    // paper's 9 relocations (fn. 11).
    let padding = "table:\n\
         .word main, loop, counter\n\
         .space 3200\n";
    let body = monitor_body(
        layout::RADAR_BASE,
        TAG_RADAR,
        &task_id_equs("CONTROLLER", controller),
        padding,
    );
    SecureTaskBuilder::new("t2-radar-monitor", body)
        .data("counter:\n .word 0\n")
        .stack_len(512)
        .build()
        .expect("radar-monitor body assembles")
}

/// Per-window rates of the scenario tasks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowRates {
    /// Cycles the window spanned.
    pub window_cycles: u64,
    /// `t0` loop iterations in the window.
    pub t0_iterations: u64,
    /// `t1` loop iterations in the window.
    pub t1_iterations: u64,
    /// `t2` loop iterations in the window (0 while not loaded).
    pub t2_iterations: u64,
}

impl WindowRates {
    fn rate_khz(iterations: u64, window_cycles: u64) -> f64 {
        if window_cycles == 0 {
            return 0.0;
        }
        // 48 MHz clock, as in the paper's FPGA instantiation.
        iterations as f64 * 48_000.0 / window_cycles as f64
    }

    /// `t0`'s achieved rate in kHz assuming the paper's 48 MHz clock.
    pub fn t0_rate_khz_at_48mhz(&self) -> f64 {
        Self::rate_khz(self.t0_iterations, self.window_cycles)
    }

    /// `t1`'s achieved rate in kHz.
    pub fn t1_rate_khz_at_48mhz(&self) -> f64 {
        Self::rate_khz(self.t1_iterations, self.window_cycles)
    }

    /// `t2`'s achieved rate in kHz.
    pub fn t2_rate_khz_at_48mhz(&self) -> f64 {
        Self::rate_khz(self.t2_iterations, self.window_cycles)
    }
}

/// The installed cruise-control scenario.
#[derive(Debug)]
pub struct CruiseControl {
    /// Engine-control task.
    pub t0: TaskHandle,
    /// Pedal-monitor task.
    pub t1: TaskHandle,
    /// Radar-monitor task, once cruise control is activated.
    pub t2: Option<TaskHandle>,
    t0_counter: u32,
    t1_counter: u32,
    t2_counter: Option<u32>,
    controller_id: TaskId,
}

impl CruiseControl {
    /// Loads `t0` and `t1` and waits for them to be scheduled.
    ///
    /// # Errors
    ///
    /// Propagates load failures.
    pub fn install<D: Digest>(platform: &mut Platform<D>) -> Result<Self, PlatformError> {
        let t0_source = engine_control_source();
        let controller_id = TaskId::from_digest(&D::digest(&t0_source.image.measurement_bytes()));
        let t1_source = pedal_monitor_source(controller_id);

        let t0_token = platform.begin_load(&t0_source, 3);
        let (t0, measured_id) = platform.wait_load(t0_token, 100_000_000)?;
        debug_assert_eq!(measured_id, controller_id);
        let t1_token = platform.begin_load(&t1_source, 3);
        let (t1, _) = platform.wait_load(t1_token, 100_000_000)?;

        let t0_base = platform.task_base(t0).expect("t0 loaded");
        let t1_base = platform.task_base(t1).expect("t1 loaded");
        Ok(CruiseControl {
            t0,
            t1,
            t2: None,
            t0_counter: t0_base + t0_source.symbol_offset("counter").expect("counter"),
            t1_counter: t1_base + t1_source.symbol_offset("counter").expect("counter"),
            t2_counter: None,
            controller_id,
        })
    }

    /// The engine controller's identity (`id_{t0}`).
    pub fn controller_id(&self) -> TaskId {
        self.controller_id
    }

    /// Begins loading `t2` (driver activated cruise control); returns the
    /// token plus the symbol offset needed once loaded.
    pub fn activate_cruise_control<D: Digest>(
        &mut self,
        platform: &mut Platform<D>,
    ) -> (LoadToken, TaskSource) {
        let source = radar_monitor_source(self.controller_id);
        let token = platform.begin_load(&source, 3);
        (token, source)
    }

    /// Records `t2` once its load completed.
    pub fn finish_activation<D: Digest>(
        &mut self,
        platform: &Platform<D>,
        handle: TaskHandle,
        source: &TaskSource,
    ) {
        let base = platform.task_base(handle).expect("t2 loaded");
        self.t2 = Some(handle);
        self.t2_counter = Some(base + source.symbol_offset("counter").expect("counter"));
    }

    fn counters<D: Digest>(
        &self,
        platform: &mut Platform<D>,
    ) -> Result<(u64, u64, u64), PlatformError> {
        let t0 = platform.debug_read_word(self.t0_counter)? as u64;
        let t1 = platform.debug_read_word(self.t1_counter)? as u64;
        let t2 = match self.t2_counter {
            Some(addr) => platform.debug_read_word(addr)? as u64,
            None => 0,
        };
        Ok((t0, t1, t2))
    }

    /// Runs the platform for `cycles` and reports each task's achieved
    /// iteration rate in the window.
    ///
    /// # Errors
    ///
    /// Propagates platform faults.
    pub fn measure_window<D: Digest>(
        &mut self,
        platform: &mut Platform<D>,
        cycles: u64,
    ) -> Result<WindowRates, PlatformError> {
        let start_cycle = platform.machine().cycles();
        let (t0_a, t1_a, t2_a) = self.counters(platform)?;
        platform.run_for(cycles)?;
        let (t0_b, t1_b, t2_b) = self.counters(platform)?;
        Ok(WindowRates {
            window_cycles: platform.machine().cycles() - start_cycle,
            t0_iterations: t0_b - t0_a,
            t1_iterations: t1_b - t1_a,
            t2_iterations: t2_b - t2_a,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{LoadStatus, PlatformConfig};

    #[test]
    fn t2_image_matches_paper_footnote11_scale() {
        let source = radar_monitor_source(TaskId::from_u64(1));
        let size = source.image.total_memory_size();
        assert!(
            (3_500..=4_500).contains(&size),
            "t2 total memory {size} ≈ paper's 3,962 bytes"
        );
        assert!(source.image.reloc_count() >= 9, "≥9 relocations like fn.11");
    }

    #[test]
    fn tasks_hold_rate_before_during_and_after_load() {
        let mut platform: Platform = Platform::boot(PlatformConfig::default()).unwrap();
        let mut scenario = CruiseControl::install(&mut platform).unwrap();
        // Warm-up so both tasks are in steady state.
        platform.run_for(200_000).unwrap();

        let before = scenario.measure_window(&mut platform, 640_000).unwrap();
        assert!(before.t0_iterations >= 15, "t0 before: {before:?}");
        assert!(before.t1_iterations >= 15, "t1 before: {before:?}");

        // Activate cruise control; measure WHILE t2 loads.
        let (token, source) = scenario.activate_cruise_control(&mut platform);
        let during = scenario.measure_window(&mut platform, 640_000).unwrap();
        assert!(
            during.t0_iterations as f64 >= before.t0_iterations as f64 * 0.8,
            "t0 held its rate during load: {before:?} vs {during:?}"
        );
        assert!(
            during.t1_iterations as f64 >= before.t1_iterations as f64 * 0.8,
            "t1 held its rate during load: {before:?} vs {during:?}"
        );

        // Finish the load and measure AFTER.
        let (t2, _) = platform.wait_load(token, 100_000_000).unwrap();
        scenario.finish_activation(&platform, t2, &source);
        let after = scenario.measure_window(&mut platform, 640_000).unwrap();
        assert!(after.t0_iterations >= 15, "t0 after: {after:?}");
        assert!(after.t2_iterations >= 15, "t2 runs after load: {after:?}");
    }

    #[test]
    fn blocking_load_ablation_misses_deadlines() {
        let config = PlatformConfig {
            interruptible_load: false,
            ..Default::default()
        };
        let mut platform: Platform = Platform::boot(config).unwrap();
        let mut scenario = CruiseControl::install(&mut platform).unwrap();
        platform.run_for(200_000).unwrap();
        let before = scenario.measure_window(&mut platform, 640_000).unwrap();

        let (token, _source) = scenario.activate_cruise_control(&mut platform);
        let during = scenario.measure_window(&mut platform, 640_000).unwrap();
        // The uninterruptible load starves t0/t1: they lose most cycles.
        assert!(
            (during.t0_iterations as f64) < before.t0_iterations as f64 * 0.7,
            "ablation shows deadline misses: {before:?} vs {during:?}"
        );
        // The load itself still completes.
        platform.run_for(5_000_000).unwrap();
        assert!(matches!(
            platform.load_status(token).unwrap(),
            LoadStatus::Done { .. }
        ));
    }

    #[test]
    fn controller_receives_sensor_values() {
        use sp_emu::devices::{Actuator, Sensor};
        let mut platform: Platform = Platform::boot(PlatformConfig::default()).unwrap();
        platform
            .device_mut::<Sensor>("pedal")
            .unwrap()
            .set_trace(vec![(0, 40)]);
        let mut scenario = CruiseControl::install(&mut platform).unwrap();
        scenario.measure_window(&mut platform, 2_000_000).unwrap();
        let log = platform.device::<Actuator>("actuator").unwrap().log();
        assert!(!log.is_empty(), "controller drove the actuator");
        // With pedal=40 and radar=0 the control output settles at 40.
        assert_eq!(log.last().unwrap().1, 40);
    }
}
