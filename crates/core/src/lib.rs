//! TyTAN: a tiny trust anchor for tiny devices — full-system reproduction.
//!
//! This crate implements the security architecture of *TyTAN: Tiny Trust
//! Anchor for Tiny Devices* (Brasser et al., DAC 2015) on the simulated
//! Siskiyou-Peak-like platform of the companion crates. TyTAN provides,
//! for low-end embedded systems:
//!
//! 1. a **hardware-assisted dynamic root of trust** with secure task
//!    loading at runtime ([`loader`], [`rtm`]),
//! 2. **secure inter-process communication** with sender and receiver
//!    authentication ([`platform`]'s IPC proxy, [`toolchain::mailbox`]),
//! 3. **local and remote attestation** ([`attest`]), and
//! 4. **real-time guarantees**: every trusted component is interruptible
//!    or bounded (the interruptible [`loader::LoadJob`] and
//!    [`rtm::MeasureJob`], the bounded [`eampu`] driver in [`driver`]).
//!
//! The entry point is [`platform::Platform`]: boot it, build tasks with
//! [`toolchain::SecureTaskBuilder`], load them dynamically, and run.
//!
//! # Examples
//!
//! ```
//! use tytan::platform::{Platform, PlatformConfig};
//! use tytan::toolchain::SecureTaskBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut platform: Platform = Platform::boot(PlatformConfig::default())?;
//! let task = SecureTaskBuilder::new(
//!     "counter",
//!     "main:\n movi r1, counter\n\
//!      loop:\n ldw r2, [r1]\n addi r2, 1\n stw [r1], r2\n jmp loop\n",
//! )
//! .data("counter:\n .word 0\n")
//! .build()?;
//! let token = platform.begin_load(&task, 2);
//! let (handle, id) = platform.wait_load(token, 50_000_000)?;
//! platform.run_for(500_000)?;
//!
//! // The task ran in isolation and its identity is attested.
//! assert!(platform.local_attest(id).is_some());
//! # let _ = handle;
//! # Ok(())
//! # }
//! ```

pub mod allocator;
pub mod attest;
pub mod driver;
pub mod footprint;
pub mod loader;
pub mod platform;
pub mod rtm;
pub mod storage;
pub mod toolchain;
pub mod usecase;

pub use attest::{AttestationReport, RemoteAttestor, RemoteVerifier, VerifyError};
pub use loader::{LoadError, LoadPhase, LoadReport};
pub use platform::{LoadStatus, LoadToken, Platform, PlatformConfig, PlatformError};
pub use rtm::{MeasurementRecord, Rtm};
pub use storage::{SecureStorage, StorageError};
pub use toolchain::{SecureTaskBuilder, TaskSource};
