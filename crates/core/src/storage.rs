//! The secure-storage task.
//!
//! "Secure storage is realized as a secure task. For each task a task key
//! `K_t = HMAC(id_t | K_p)` is generated which is bound to the task
//! identity and the platform. … a task that tries to access data stored
//! before will only succeed if it has the same `id_t` as the task that
//! stored the data" (§3).
//!
//! Access control is therefore *cryptographic*, not list-based: blobs are
//! stored by name in an open directory, sealed under the depositor's
//! `K_t`; a caller with a different identity can fetch the blob but cannot
//! unseal it. Because `id_t` is the measurement digest, an updated or
//! tampered task binary is automatically a different principal.

use std::collections::BTreeMap;
use std::fmt;
use tytan_crypto::{PlatformKey, SealedBlob, SealingCipher, TaskId, UnsealError};

/// Errors from secure-storage operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// No blob is stored under that name.
    NotFound,
    /// The blob exists but the caller's task key cannot unseal it: the
    /// caller's identity differs from the depositor's.
    AccessDenied,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NotFound => write!(f, "no blob stored under this name"),
            StorageError::AccessDenied => {
                write!(f, "caller identity cannot unseal this blob")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// The secure-storage service state.
///
/// # Examples
///
/// ```
/// use tytan::storage::SecureStorage;
/// use tytan_crypto::{PlatformKey, TaskId};
///
/// # fn main() -> Result<(), tytan::storage::StorageError> {
/// let mut storage = SecureStorage::new(PlatformKey::from_bytes([1; 20]));
/// let me = TaskId::from_u64(0xaaaa);
/// let other = TaskId::from_u64(0xbbbb);
///
/// storage.store(me, "config", b"v=1");
/// assert_eq!(storage.retrieve(me, "config")?, b"v=1");
/// assert!(storage.retrieve(other, "config").is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SecureStorage {
    platform_key: PlatformKey,
    blobs: BTreeMap<String, SealedBlob>,
    seal_counter: u64,
}

impl SecureStorage {
    /// Creates the storage service bound to the platform key.
    pub fn new(platform_key: PlatformKey) -> Self {
        SecureStorage {
            platform_key,
            blobs: BTreeMap::new(),
            seal_counter: 0,
        }
    }

    fn cipher_for(&self, caller: TaskId) -> SealingCipher {
        SealingCipher::new(self.platform_key.derive_task_key(&caller.to_bytes()))
    }

    /// Seals `data` under the caller's task key and stores it as `name`,
    /// replacing any previous blob with that name.
    pub fn store(&mut self, caller: TaskId, name: &str, data: &[u8]) {
        self.seal_counter += 1;
        let blob = self.cipher_for(caller).seal(data, self.seal_counter);
        self.blobs.insert(name.to_string(), blob);
    }

    /// Retrieves and unseals the blob stored as `name` with the caller's
    /// task key.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::NotFound`] if no blob exists, or
    /// [`StorageError::AccessDenied`] if the caller's identity cannot
    /// unseal it.
    pub fn retrieve(&self, caller: TaskId, name: &str) -> Result<Vec<u8>, StorageError> {
        let blob = self.blobs.get(name).ok_or(StorageError::NotFound)?;
        self.cipher_for(caller)
            .unseal(blob)
            .map_err(|UnsealError::TagMismatch| StorageError::AccessDenied)
    }

    /// Deletes the blob stored as `name` if the caller can unseal it
    /// (only the owning identity may delete).
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::NotFound`] or [`StorageError::AccessDenied`].
    pub fn delete(&mut self, caller: TaskId, name: &str) -> Result<(), StorageError> {
        self.retrieve(caller, name)?;
        self.blobs.remove(name);
        Ok(())
    }

    /// Re-seals the blob stored as `name` from one identity to another —
    /// the storage-migration half of a task *update*: the storage task
    /// (which holds `K_p`) unseals with the old task key and seals with
    /// the new one, so the updated binary inherits its predecessor's
    /// state. The caller (the platform's update path) is responsible for
    /// authorising the migration.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::NotFound`] or, if `from` is not the
    /// current owner, [`StorageError::AccessDenied`].
    pub fn reseal(&mut self, name: &str, from: TaskId, to: TaskId) -> Result<(), StorageError> {
        let plaintext = self.retrieve(from, name)?;
        self.store(to, name, &plaintext);
        Ok(())
    }

    /// Number of stored blobs.
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }

    /// The stored blob names (the directory is public; contents are not).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.blobs.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storage() -> SecureStorage {
        SecureStorage::new(PlatformKey::from_bytes([5u8; 20]))
    }

    const ME: TaskId = TaskId::from_u64(0x1111_2222_3333_4444);
    const OTHER: TaskId = TaskId::from_u64(0x5555_6666_7777_8888);

    #[test]
    fn store_retrieve_roundtrip() {
        let mut s = storage();
        s.store(ME, "state", b"hello");
        assert_eq!(s.retrieve(ME, "state").unwrap(), b"hello");
    }

    #[test]
    fn different_identity_denied() {
        let mut s = storage();
        s.store(ME, "state", b"secret");
        assert_eq!(s.retrieve(OTHER, "state"), Err(StorageError::AccessDenied));
    }

    #[test]
    fn same_identity_across_reload_succeeds() {
        // Two storage interactions with the same id (same binary reloaded)
        // share the task key.
        let mut s = storage();
        s.store(ME, "cal", b"table");
        let same_binary_reloaded = TaskId::from_u64(ME.as_u64());
        assert_eq!(s.retrieve(same_binary_reloaded, "cal").unwrap(), b"table");
    }

    #[test]
    fn missing_name_not_found() {
        let s = storage();
        assert_eq!(s.retrieve(ME, "nope"), Err(StorageError::NotFound));
    }

    #[test]
    fn overwrite_replaces_contents() {
        let mut s = storage();
        s.store(ME, "k", b"v1");
        s.store(ME, "k", b"v2");
        assert_eq!(s.retrieve(ME, "k").unwrap(), b"v2");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn overwrite_by_other_identity_locks_out_original() {
        // The directory is open: another task may overwrite a name — but
        // it cannot *read* the original, and after overwriting the
        // original owner is locked out (availability, not secrecy, is the
        // limit of the scheme; matches the paper's model).
        let mut s = storage();
        s.store(ME, "k", b"mine");
        s.store(OTHER, "k", b"theirs");
        assert_eq!(s.retrieve(ME, "k"), Err(StorageError::AccessDenied));
        assert_eq!(s.retrieve(OTHER, "k").unwrap(), b"theirs");
    }

    #[test]
    fn delete_requires_ownership() {
        let mut s = storage();
        s.store(ME, "k", b"v");
        assert_eq!(s.delete(OTHER, "k"), Err(StorageError::AccessDenied));
        assert_eq!(s.delete(ME, "k"), Ok(()));
        assert!(s.is_empty());
        assert_eq!(s.delete(ME, "k"), Err(StorageError::NotFound));
    }

    #[test]
    fn different_platforms_isolate_blobs() {
        let mut a = SecureStorage::new(PlatformKey::from_bytes([1u8; 20]));
        let b = SecureStorage::new(PlatformKey::from_bytes([2u8; 20]));
        a.store(ME, "k", b"v");
        // Simulate moving the sealed blob to another device: same id,
        // different platform key.
        let blob = a.blobs.get("k").unwrap().clone();
        let mut b = b;
        b.blobs.insert("k".into(), blob);
        assert_eq!(b.retrieve(ME, "k"), Err(StorageError::AccessDenied));
    }

    #[test]
    fn names_are_public() {
        let mut s = storage();
        s.store(ME, "a", b"1");
        s.store(OTHER, "b", b"2");
        let names: Vec<&str> = s.names().collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
