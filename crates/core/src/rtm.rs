//! The Root of Trust for Measurement (RTM) task.
//!
//! The RTM computes the hash digest of each created task — the task's
//! identity `id_t` (§3) — and maintains the list of loaded tasks, their
//! identities, and their memory locations (the list the IPC proxy consults
//! to find a receiver, §4).
//!
//! Two properties drive the design:
//!
//! - **Interruptibility** (real time): measurement state is a resumable
//!   [`MeasureJob`]; each [`MeasureJob::step`] hashes a bounded number of
//!   64-byte blocks, so the RTM can be preempted between slices (Table 7's
//!   per-block cost model).
//! - **Position independence**: the loader relocates tasks, so the RTM
//!   *reverts* the relocation of every site while hashing (§4), making
//!   `id_t` independent of the load address.

use eampu::Region;
use rtos::TaskHandle;
use sp_emu::{Fault, Machine};
use std::collections::BTreeMap;
use tytan_crypto::{Digest, TaskId};
use tytan_image::TaskImage;

/// One entry in the RTM's list of loaded tasks.
#[derive(Debug, Clone)]
pub struct MeasurementRecord {
    /// The measured identity (truncated digest).
    pub id: TaskId,
    /// The full measurement digest.
    pub digest: Vec<u8>,
    /// The scheduler handle of the task.
    pub handle: TaskHandle,
    /// The task's load base.
    pub base: u32,
    /// Absolute address of the task's mailbox.
    pub mailbox: u32,
    /// The task's code region.
    pub code: Region,
    /// The task's data region.
    pub data: Region,
    /// Human-readable name (not part of the identity).
    pub name: String,
}

/// The RTM's task list: identity → record.
///
/// The EA-MPU ensures only the RTM task can modify this list (§3); in the
/// model that is enforced by ownership — only the platform's loader path
/// holds a mutable borrow.
#[derive(Debug, Default)]
pub struct Rtm {
    records: BTreeMap<TaskId, MeasurementRecord>,
}

impl Rtm {
    /// Creates an empty task list.
    pub fn new() -> Self {
        Rtm::default()
    }

    /// Registers a measured task, replacing any record with the same id.
    pub fn register(&mut self, record: MeasurementRecord) {
        self.records.insert(record.id, record);
    }

    /// Looks a task up by identity (receiver lookup for the IPC proxy).
    pub fn lookup(&self, id: TaskId) -> Option<&MeasurementRecord> {
        self.records.get(&id)
    }

    /// Looks a task up by scheduler handle (sender identification).
    pub fn lookup_by_handle(&self, handle: TaskHandle) -> Option<&MeasurementRecord> {
        self.records.values().find(|r| r.handle == handle)
    }

    /// Removes a task's record on unload.
    pub fn remove_by_handle(&mut self, handle: TaskHandle) -> Option<MeasurementRecord> {
        let id = self
            .records
            .values()
            .find(|r| r.handle == handle)
            .map(|r| r.id)?;
        self.records.remove(&id)
    }

    /// Iterates over all records.
    pub fn records(&self) -> impl Iterator<Item = &MeasurementRecord> {
        self.records.values()
    }

    /// Number of loaded, measured tasks.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no task is registered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Progress of an interruptible measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasureProgress {
    /// More blocks remain; call [`MeasureJob::step`] again.
    InProgress {
        /// Bytes hashed so far.
        hashed: u32,
        /// Total bytes to hash.
        total: u32,
    },
    /// Hashing finished; call [`MeasureJob::finish`].
    Done,
}

/// A resumable measurement of a loaded task image.
///
/// The job hashes the canonical measurement input — the structural header
/// followed by the loaded text+data read back from task memory with every
/// relocation site reverted — block by block, charging the firmware cost
/// model per block and per reverted site.
#[derive(Debug, Clone)]
pub struct MeasureJob<D: Digest> {
    hasher: D,
    base: u32,
    load_base_for_revert: u32,
    header: Vec<u8>,
    header_fed: bool,
    relocs: Vec<u32>,
    loadable_len: u32,
    offset: u32,
    started: bool,
    /// Number of times the job was resumed after yielding (diagnostics for
    /// the Table 7 interruption discussion).
    pub slices: u32,
}

impl<D: Digest> MeasureJob<D> {
    /// Prepares a measurement of `image` loaded (and relocated) at `base`.
    pub fn new(image: &TaskImage, base: u32) -> Self {
        let mut relocs = image.relocs().to_vec();
        relocs.sort_unstable();
        MeasureJob {
            hasher: D::new(),
            base,
            load_base_for_revert: base,
            header: measurement_header(image),
            header_fed: false,
            relocs,
            loadable_len: image.loadable_len(),
            offset: 0,
            started: false,
            slices: 0,
        }
    }

    /// Total bytes the job will hash.
    pub fn total_len(&self) -> u32 {
        self.header.len() as u32 + self.loadable_len
    }

    /// Hashes up to `max_blocks` 64-byte blocks, reading task memory as
    /// `actor` (the RTM's code address) and charging the machine clock.
    ///
    /// # Errors
    ///
    /// Returns a fault if the RTM's EA-MPU rules do not grant it read
    /// access to the task's memory.
    pub fn step(
        &mut self,
        machine: &mut Machine,
        actor: u32,
        max_blocks: u32,
    ) -> Result<MeasureProgress, Fault> {
        let costs = machine.firmware_costs();
        if !self.started {
            self.started = true;
            machine.tick(costs.measure_base);
            // Table 7's constant revert-loop setup cost (~100 cycles) is
            // paid even when no site needs reverting.
            machine.tick(costs.measure_revert_base);
        }
        if !self.header_fed {
            // Hashing the 24-byte structural header is part of the fixed
            // measure_base cost (Table 7's 4,300-cycle constant).
            self.hasher.update(&self.header.clone());
            self.header_fed = true;
        }
        self.slices += 1;

        for _ in 0..max_blocks {
            if self.offset >= self.loadable_len {
                return Ok(MeasureProgress::Done);
            }
            let len = 64.min(self.loadable_len - self.offset);
            let mut block = Vec::with_capacity(len as usize);
            let mut addr = self.base + self.offset;
            let end = addr + len;
            while addr < end {
                let word = machine.checked_read_word(actor, addr)?;
                let take = (end - addr).min(4);
                block.extend_from_slice(&word.to_le_bytes()[..take as usize]);
                addr += take;
            }
            // Revert relocation sites intersecting this block so the
            // measurement is position independent (§4).
            let block_start = self.offset;
            for &site in &self.relocs {
                if site + 4 > block_start && site < block_start + len {
                    revert_site_in_block(
                        &mut block,
                        block_start,
                        site,
                        self.load_base_for_revert,
                        machine,
                        actor,
                        self.base,
                    )?;
                    machine.tick(costs.measure_per_revert);
                }
            }
            self.hasher.update(&block);
            self.offset += len;
            machine.tick(costs.measure_per_block);
        }
        if self.offset >= self.loadable_len {
            Ok(MeasureProgress::Done)
        } else {
            Ok(MeasureProgress::InProgress {
                hashed: self.header.len() as u32 + self.offset,
                total: self.total_len(),
            })
        }
    }

    /// Finalizes the digest.
    ///
    /// # Panics
    ///
    /// Panics if hashing has not reached [`MeasureProgress::Done`].
    pub fn finish(self) -> Vec<u8> {
        assert!(
            self.offset >= self.loadable_len && self.header_fed,
            "measurement not complete"
        );
        self.hasher.finalize()
    }
}

/// The structural header the RTM prepends (matches
/// [`TaskImage::measurement_bytes`]).
fn measurement_header(image: &TaskImage) -> Vec<u8> {
    let mut out = Vec::with_capacity(24);
    out.extend_from_slice(&(image.is_secure() as u32).to_le_bytes());
    out.extend_from_slice(&image.entry_offset().to_le_bytes());
    out.extend_from_slice(&(image.text().len() as u32).to_le_bytes());
    out.extend_from_slice(&(image.data().len() as u32).to_le_bytes());
    out.extend_from_slice(&image.bss_len().to_le_bytes());
    out.extend_from_slice(&image.stack_len().to_le_bytes());
    out
}

/// Reverts one relocation site within an in-flight block buffer. The site
/// may straddle the block boundary, in which case the full word is
/// re-read from memory, reverted, and the in-block bytes patched.
#[allow(clippy::too_many_arguments)]
fn revert_site_in_block(
    block: &mut [u8],
    block_start: u32,
    site: u32,
    load_base: u32,
    machine: &mut Machine,
    actor: u32,
    task_base: u32,
) -> Result<(), Fault> {
    let relocated = machine.checked_read_word(actor, task_base + site)?;
    let reverted = relocated.wrapping_sub(load_base).to_le_bytes();
    for (i, byte) in reverted.iter().enumerate() {
        let abs = site + i as u32;
        if abs >= block_start && abs < block_start + block.len() as u32 {
            block[(abs - block_start) as usize] = *byte;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toolchain::SecureTaskBuilder;
    use eampu::Region;
    use sp_emu::MachineConfig;
    use tytan_crypto::{Sha1, Sha256};
    use tytan_image::apply_relocations;

    fn loaded_machine(image: &TaskImage, base: u32) -> Machine {
        let mut machine = Machine::new(MachineConfig::default());
        let mut bytes = image.loadable_bytes();
        apply_relocations(&mut bytes, image.relocs(), base);
        machine.load_image(base, &bytes).unwrap();
        machine
    }

    fn sample_image() -> TaskImage {
        SecureTaskBuilder::new(
            "t",
            "main:\n movi r1, __mailbox\n movi r2, main\nspin:\n jmp spin\n",
        )
        .build()
        .unwrap()
        .image
    }

    fn measure_all<D: Digest>(image: &TaskImage, base: u32, per_slice: u32) -> (Vec<u8>, u32) {
        let mut machine = loaded_machine(image, base);
        let mut job = MeasureJob::<D>::new(image, base);
        loop {
            match job.step(&mut machine, 0, per_slice).unwrap() {
                MeasureProgress::Done => break,
                MeasureProgress::InProgress { .. } => {}
            }
        }
        let slices = job.slices;
        (job.finish(), slices)
    }

    #[test]
    fn measurement_matches_canonical_image_bytes() {
        let image = sample_image();
        let (digest, _) = measure_all::<Sha1>(&image, 0x4000, 64);
        assert_eq!(digest, Sha1::digest(&image.measurement_bytes()));
    }

    #[test]
    fn measurement_is_position_independent() {
        let image = sample_image();
        let (at_a, _) = measure_all::<Sha1>(&image, 0x4000, 64);
        let (at_b, _) = measure_all::<Sha1>(&image, 0x9a00, 64);
        assert_eq!(at_a, at_b);
    }

    #[test]
    fn sliced_measurement_equals_monolithic() {
        let image = sample_image();
        let (mono, mono_slices) = measure_all::<Sha1>(&image, 0x4000, 1024);
        let (sliced, slices) = measure_all::<Sha1>(&image, 0x4000, 1);
        assert_eq!(mono, sliced);
        assert!(slices > mono_slices, "one-block slices resume many times");
    }

    #[test]
    fn tampered_code_changes_identity() {
        let image = sample_image();
        let base = 0x4000;
        let mut machine = loaded_machine(&image, base);
        // Flip one instruction byte after loading.
        let original = machine.read_word(base + 8).unwrap();
        machine.write_word(base + 8, original ^ 1).unwrap();
        let mut job = MeasureJob::<Sha1>::new(&image, base);
        while job.step(&mut machine, 0, 64).unwrap() != MeasureProgress::Done {}
        assert_ne!(job.finish(), Sha1::digest(&image.measurement_bytes()));
    }

    #[test]
    fn digest_is_pluggable_per_paper_footnote() {
        let image = sample_image();
        let (sha1, _) = measure_all::<Sha1>(&image, 0x4000, 64);
        let (sha256, _) = measure_all::<Sha256>(&image, 0x4000, 64);
        assert_eq!(sha1.len(), 20);
        assert_eq!(sha256.len(), 32);
        assert_eq!(sha256, Sha256::digest(&image.measurement_bytes()));
    }

    #[test]
    fn measurement_charges_per_block_costs() {
        let image = sample_image();
        let base = 0x4000;
        let mut machine = loaded_machine(&image, base);
        let start = machine.cycles();
        let mut job = MeasureJob::<Sha1>::new(&image, base);
        while job.step(&mut machine, 0, 64).unwrap() != MeasureProgress::Done {}
        let elapsed = machine.cycles() - start;
        let costs = machine.firmware_costs();
        // Per-block charges cover the loadable bytes; the 24-byte header
        // is inside the fixed base cost.
        let blocks = u64::from(image.loadable_len().div_ceil(64));
        let reverts = image.reloc_count() as u64;
        let expected_min = costs.measure_base
            + blocks * costs.measure_per_block
            + reverts * costs.measure_per_revert;
        assert!(
            elapsed >= expected_min,
            "elapsed {elapsed} >= {expected_min}"
        );
    }

    #[test]
    fn rtm_list_operations() {
        let mut rtm = Rtm::new();
        assert!(rtm.is_empty());
        let record = MeasurementRecord {
            id: TaskId::from_u64(7),
            digest: vec![0; 20],
            handle: TaskHandle::from_index(3),
            base: 0x4000,
            mailbox: 0x4100,
            code: Region::new(0x4000, 0x100),
            data: Region::new(0x4100, 0x100),
            name: "t".into(),
        };
        rtm.register(record.clone());
        assert_eq!(rtm.len(), 1);
        assert_eq!(rtm.lookup(TaskId::from_u64(7)).unwrap().base, 0x4000);
        assert_eq!(
            rtm.lookup_by_handle(TaskHandle::from_index(3))
                .unwrap()
                .name,
            "t"
        );
        assert!(rtm.lookup(TaskId::from_u64(8)).is_none());
        let removed = rtm.remove_by_handle(TaskHandle::from_index(3)).unwrap();
        assert_eq!(removed.id, TaskId::from_u64(7));
        assert!(rtm.is_empty());
        assert!(rtm.remove_by_handle(TaskHandle::from_index(3)).is_none());
    }
}
