//! First-fit allocator for dynamic task memory.
//!
//! Loading a task at runtime first requires "allocation of memory for the
//! new task" (§4). FreeRTOS operates on physical memory, so the allocator
//! hands out physical regions from the task heap; freed regions coalesce
//! with their neighbours to limit fragmentation across load/unload cycles.

use eampu::Region;
use std::fmt;

/// Allocation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// No free block is large enough.
    OutOfMemory {
        /// The request that failed.
        requested: u32,
        /// The largest currently available block.
        largest_free: u32,
    },
    /// A zero-sized allocation was requested.
    ZeroSize,
    /// The freed region was not allocated by this allocator.
    NotAllocated {
        /// The bogus base address.
        base: u32,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory {
                requested,
                largest_free,
            } => {
                write!(
                    f,
                    "out of memory: need {requested} bytes, largest free {largest_free}"
                )
            }
            AllocError::ZeroSize => write!(f, "zero-size allocation"),
            AllocError::NotAllocated { base } => {
                write!(f, "free of unallocated region at {base:#010x}")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// First-fit physical-memory allocator with coalescing free.
///
/// # Examples
///
/// ```
/// use tytan::allocator::Allocator;
///
/// # fn main() -> Result<(), tytan::allocator::AllocError> {
/// let mut heap = Allocator::new(0x4000, 0x1000);
/// let a = heap.alloc(0x100)?;
/// let b = heap.alloc(0x200)?;
/// heap.free(a.start())?;
/// // The freed first-fit hole is reused.
/// let c = heap.alloc(0x80)?;
/// assert_eq!(c.start(), a.start());
/// # let _ = b;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Allocator {
    heap: Region,
    /// Sorted, non-adjacent free blocks.
    free: Vec<Region>,
    /// Live allocations.
    allocated: Vec<Region>,
}

impl Allocator {
    /// Creates an allocator over `[base, base + len)`.
    pub fn new(base: u32, len: u32) -> Self {
        let heap = Region::new(base, len);
        Allocator {
            heap,
            free: vec![heap],
            allocated: Vec::new(),
        }
    }

    /// The heap region being managed.
    pub fn heap(&self) -> Region {
        self.heap
    }

    /// Total free bytes (may be fragmented).
    pub fn free_bytes(&self) -> u32 {
        self.free.iter().map(|r| r.len()).sum()
    }

    /// The largest single allocatable block.
    pub fn largest_free(&self) -> u32 {
        self.free.iter().map(|r| r.len()).max().unwrap_or(0)
    }

    /// Number of live allocations.
    pub fn allocation_count(&self) -> usize {
        self.allocated.len()
    }

    /// Allocates `size` bytes (rounded up to 4-byte alignment), first-fit.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::ZeroSize`] or [`AllocError::OutOfMemory`].
    pub fn alloc(&mut self, size: u32) -> Result<Region, AllocError> {
        if size == 0 {
            return Err(AllocError::ZeroSize);
        }
        let size = (size + 3) & !3;
        let position =
            self.free
                .iter()
                .position(|r| r.len() >= size)
                .ok_or(AllocError::OutOfMemory {
                    requested: size,
                    largest_free: self.largest_free(),
                })?;
        let block = self.free[position];
        let region = Region::new(block.start(), size);
        if block.len() == size {
            self.free.remove(position);
        } else {
            self.free[position] = Region::new(block.start() + size, block.len() - size);
        }
        self.allocated.push(region);
        Ok(region)
    }

    /// Frees the allocation starting at `base`, coalescing neighbours.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::NotAllocated`] if `base` is not the start of a
    /// live allocation.
    pub fn free(&mut self, base: u32) -> Result<(), AllocError> {
        let position = self
            .allocated
            .iter()
            .position(|r| r.start() == base)
            .ok_or(AllocError::NotAllocated { base })?;
        let region = self.allocated.swap_remove(position);
        let at = self.free.partition_point(|r| r.start() < region.start());
        self.free.insert(at, region);
        self.coalesce();
        Ok(())
    }

    fn coalesce(&mut self) {
        let mut merged: Vec<Region> = Vec::with_capacity(self.free.len());
        for &block in &self.free {
            match merged.last_mut() {
                Some(last) if last.end() == block.start() => {
                    *last = Region::from_bounds(last.start(), block.end());
                }
                _ => merged.push(block),
            }
        }
        self.free = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sequential_allocations_do_not_overlap() {
        let mut a = Allocator::new(0x4000, 0x1000);
        let x = a.alloc(0x100).unwrap();
        let y = a.alloc(0x100).unwrap();
        assert!(!x.overlaps(y));
        assert_eq!(a.free_bytes(), 0x1000 - 0x200);
    }

    #[test]
    fn alignment_rounds_up() {
        let mut a = Allocator::new(0, 64);
        let r = a.alloc(5).unwrap();
        assert_eq!(r.len(), 8);
    }

    #[test]
    fn zero_size_rejected() {
        let mut a = Allocator::new(0, 64);
        assert_eq!(a.alloc(0), Err(AllocError::ZeroSize));
    }

    #[test]
    fn out_of_memory_reports_largest_block() {
        let mut a = Allocator::new(0, 0x100);
        a.alloc(0x80).unwrap();
        let err = a.alloc(0x100).unwrap_err();
        assert_eq!(
            err,
            AllocError::OutOfMemory {
                requested: 0x100,
                largest_free: 0x80
            }
        );
    }

    #[test]
    fn free_coalesces_with_both_neighbours() {
        let mut a = Allocator::new(0, 0x300);
        let x = a.alloc(0x100).unwrap();
        let y = a.alloc(0x100).unwrap();
        let z = a.alloc(0x100).unwrap();
        a.free(x.start()).unwrap();
        a.free(z.start()).unwrap();
        assert_eq!(a.free_bytes(), 0x200);
        assert_eq!(a.largest_free(), 0x100, "fragmented around y");
        a.free(y.start()).unwrap();
        assert_eq!(a.largest_free(), 0x300, "fully coalesced");
    }

    #[test]
    fn double_free_rejected() {
        let mut a = Allocator::new(0, 0x100);
        let x = a.alloc(0x10).unwrap();
        a.free(x.start()).unwrap();
        assert_eq!(
            a.free(x.start()),
            Err(AllocError::NotAllocated { base: x.start() })
        );
    }

    #[test]
    fn free_of_interior_address_rejected() {
        let mut a = Allocator::new(0, 0x100);
        let x = a.alloc(0x10).unwrap();
        assert!(matches!(
            a.free(x.start() + 4),
            Err(AllocError::NotAllocated { .. })
        ));
    }

    #[test]
    fn load_unload_cycles_do_not_leak() {
        let mut a = Allocator::new(0x4000, 0x1000);
        for _ in 0..100 {
            let x = a.alloc(0x400).unwrap();
            let y = a.alloc(0x400).unwrap();
            a.free(x.start()).unwrap();
            a.free(y.start()).unwrap();
        }
        assert_eq!(a.free_bytes(), 0x1000);
        assert_eq!(a.largest_free(), 0x1000);
        assert_eq!(a.allocation_count(), 0);
    }

    proptest! {
        #[test]
        fn prop_allocations_disjoint_and_inside_heap(sizes in proptest::collection::vec(1u32..128, 1..20)) {
            let mut a = Allocator::new(0x1000, 0x2000);
            let mut live = Vec::new();
            for size in sizes {
                if let Ok(r) = a.alloc(size) {
                    for other in &live {
                        prop_assert!(!r.overlaps(*other));
                    }
                    prop_assert!(a.heap().contains_region(r));
                    live.push(r);
                }
            }
        }

        #[test]
        fn prop_free_restores_all_bytes(sizes in proptest::collection::vec(1u32..256, 1..16)) {
            let mut a = Allocator::new(0, 0x4000);
            let mut live = Vec::new();
            for size in sizes {
                if let Ok(r) = a.alloc(size) {
                    live.push(r);
                }
            }
            for r in live {
                a.free(r.start()).unwrap();
            }
            prop_assert_eq!(a.free_bytes(), 0x4000);
            prop_assert_eq!(a.largest_free(), 0x4000);
        }
    }
}
