//! The TyTAN tool chain: builds task images with the standard entry routine.
//!
//! Secure tasks "can be invoked only with a dedicated entry routine. …
//! Since the entry routine is similar for all secure tasks, it is
//! automatically included by the TyTAN tool chain and does not need to be
//! implemented by the task programmer" (§4). [`SecureTaskBuilder`] is that
//! tool chain: it wraps the task developer's SP32 body with
//!
//! - the entry routine, which checks the invocation reason delivered in
//!   `r0` ([`rtos::kernel::entry_reason`]) and either starts `main`,
//!   restores the interrupted context from the task's own stack, or
//!   branches to the developer's `on_message` handler; and
//! - the task **mailbox**: a 64-byte slot in the task's data section where
//!   the IPC proxy deposits incoming messages and the authenticated sender
//!   identity (§4's "writes m and idS to the memory of R").
//!
//! The body may reference the `__mailbox` label and the `SYS_*`/vector
//! constants the template provides.
//!
//! # Examples
//!
//! ```
//! use tytan::toolchain::SecureTaskBuilder;
//!
//! # fn main() -> Result<(), tytan::toolchain::BuildError> {
//! let source = SecureTaskBuilder::new(
//!     "sensor",
//!     "main:\n movi r1, 0\nloop:\n addi r1, 1\n jmp loop\n",
//! )
//! .stack_len(256)
//! .build()?;
//! assert!(source.image.is_secure());
//! assert_eq!(source.image.entry_offset(), 0);
//! # Ok(())
//! # }
//! ```

use rtos::layout;
use sp32::asm::{assemble, AssembleError, Program};
use std::fmt;
use tytan_image::{ImageError, TaskImage};

/// Byte size of a task mailbox.
pub const MAILBOX_LEN: u32 = 64;

/// Word offsets inside a task mailbox.
pub mod mailbox {
    /// 0 = empty, 1 = a message is pending.
    pub const FLAG: u32 = 0;
    /// High word of the authenticated sender identity `id_S`.
    pub const SENDER_HI: u32 = 4;
    /// Low word of the authenticated sender identity `id_S`.
    pub const SENDER_LO: u32 = 8;
    /// Payload length in bytes (≤ 12 for register transport).
    pub const LEN: u32 = 12;
    /// First payload word (three words follow).
    pub const PAYLOAD: u32 = 16;
}

/// Errors from the task tool chain.
#[derive(Debug)]
pub enum BuildError {
    /// The body failed to assemble (line numbers refer to the *combined*
    /// template + body source).
    Assemble(AssembleError),
    /// The body defines no `main` label.
    NoMain,
    /// `handles_messages` was requested but the body defines no
    /// `on_message` label.
    NoOnMessage,
    /// The assembled image failed validation.
    Image(ImageError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Assemble(e) => write!(f, "assembly failed: {e}"),
            BuildError::NoMain => write!(f, "task body defines no `main` label"),
            BuildError::NoOnMessage => {
                write!(
                    f,
                    "handles_messages set but body defines no `on_message` label"
                )
            }
            BuildError::Image(e) => write!(f, "image validation failed: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<AssembleError> for BuildError {
    fn from(e: AssembleError) -> Self {
        BuildError::Assemble(e)
    }
}

impl From<ImageError> for BuildError {
    fn from(e: ImageError) -> Self {
        BuildError::Image(e)
    }
}

/// A built task: the loadable image plus tool-chain metadata.
#[derive(Debug, Clone)]
pub struct TaskSource {
    /// The relocatable image the loader consumes.
    pub image: TaskImage,
    /// Offset of the mailbox from the task's load base.
    pub mailbox_offset: u32,
    /// The assembled program (symbols are offsets from the load base).
    pub program: Program,
}

impl TaskSource {
    /// Offset of a label from the task's load base.
    pub fn symbol_offset(&self, label: &str) -> Option<u32> {
        self.program.symbol(label)
    }
}

/// Builder for secure tasks (entry routine + mailbox included).
#[derive(Debug, Clone)]
pub struct SecureTaskBuilder {
    name: String,
    body: String,
    data: String,
    stack_len: u32,
    handles_messages: bool,
}

impl SecureTaskBuilder {
    /// Starts a build for a task named `name` with the given SP32 body.
    ///
    /// The body must define `main:`; it may define `on_message:` (see
    /// [`SecureTaskBuilder::handles_messages`]).
    pub fn new(name: impl Into<String>, body: impl Into<String>) -> Self {
        SecureTaskBuilder {
            name: name.into(),
            body: body.into(),
            data: String::new(),
            stack_len: 512,
            handles_messages: false,
        }
    }

    /// Appends assembly directives (labels, `.word`, `.space`) to the
    /// task's *writable data section*. Code may reference these labels;
    /// mutable task state must live here — the text section is immutable
    /// under the EA-MPU (code integrity).
    pub fn data(mut self, data: impl Into<String>) -> Self {
        self.data = data.into();
        self
    }

    /// Sets the stack size in bytes (default 512).
    pub fn stack_len(mut self, len: u32) -> Self {
        self.stack_len = len;
        self
    }

    /// Declares that the body defines `on_message:`, making the entry
    /// routine branch there on IPC delivery. Without this, message
    /// invocations restart `main`.
    pub fn handles_messages(mut self, yes: bool) -> Self {
        self.handles_messages = yes;
        self
    }

    /// Assembles the template + body into a secure [`TaskSource`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::NoMain`], [`BuildError::NoOnMessage`],
    /// assembly errors, or image validation errors.
    pub fn build(self) -> Result<TaskSource, BuildError> {
        if !self.handles_messages && self.body.contains("on_message:") {
            // Allowed, just unused; no error.
        }
        let msg_target = if self.handles_messages {
            "on_message"
        } else {
            "main"
        };
        let source = format!(
            ".equ SYS_VECTOR, {sys:#x}\n\
             .equ IPC_VECTOR, {ipc:#x}\n\
             .equ SYS_YIELD, 0\n\
             .equ SYS_DELAY, 1\n\
             .equ SYS_SUSPEND, 2\n\
             __entry:\n\
             \x20cmpi r0, 1\n\
             \x20jz __restore\n\
             \x20cmpi r0, 2\n\
             \x20jz __msg\n\
             \x20sti\n\
             \x20jmp main\n\
             __restore:\n\
             \x20pop r6\n\
             \x20pop r5\n\
             \x20pop r4\n\
             \x20pop r3\n\
             \x20pop r2\n\
             \x20pop r1\n\
             \x20pop r0\n\
             \x20iret\n\
             __msg:\n\
             \x20sti\n\
             \x20jmp {msg_target}\n\
             {body}\n\
             .align 4\n\
             __mailbox:\n\
             \x20.space {mailbox_len}\n\
             {data}\n",
            sys = layout::SYSCALL_VECTOR,
            ipc = layout::IPC_VECTOR,
            body = self.body,
            mailbox_len = MAILBOX_LEN,
            data = self.data,
        );
        let program = match assemble(&source, 0) {
            Ok(program) => program,
            // The template references `main` (and possibly `on_message`);
            // report their absence as the dedicated error.
            Err(e) if e.message.contains("undefined symbol `main`") => {
                return Err(BuildError::NoMain)
            }
            Err(e) if e.message.contains("undefined symbol `on_message`") => {
                return Err(BuildError::NoOnMessage)
            }
            Err(e) => return Err(e.into()),
        };
        let mailbox_offset = program
            .symbol("__mailbox")
            .expect("template defines __mailbox");

        // Split: everything before the mailbox is immutable text; the
        // mailbox and the user data section are writable data.
        let text = program.bytes[..mailbox_offset as usize].to_vec();
        let mut data = program.bytes[mailbox_offset as usize..].to_vec();
        while data.len() % 4 != 0 {
            data.push(0);
        }
        let image = TaskImage::new(
            self.name,
            true,
            0,
            text,
            data,
            0,
            self.stack_len,
            program.reloc_sites.clone(),
        )?;
        Ok(TaskSource {
            image,
            mailbox_offset,
            program,
        })
    }
}

/// Builds a *normal* task (no entry routine or mailbox; the OS prepares
/// and restores its context directly).
///
/// The body must define `main:`, which becomes the image entry point.
///
/// # Errors
///
/// Returns [`BuildError::NoMain`], assembly or image validation errors.
pub fn build_normal_task(
    name: impl Into<String>,
    body: &str,
    data: &str,
    stack_len: u32,
) -> Result<TaskSource, BuildError> {
    let source = format!(
        ".equ SYS_VECTOR, {sys:#x}\n\
         .equ SYS_YIELD, 0\n\
         .equ SYS_DELAY, 1\n\
         .equ SYS_SUSPEND, 2\n\
         {body}\n\
         .align 4\n\
         __data:\n\
         {data}\n",
        sys = layout::SYSCALL_VECTOR,
    );
    let program = assemble(&source, 0)?;
    let entry = program.symbol("main").ok_or(BuildError::NoMain)?;
    let split = program.symbol("__data").expect("template defines __data");
    let text = program.bytes[..split as usize].to_vec();
    let mut data_bytes = program.bytes[split as usize..].to_vec();
    while data_bytes.len() % 4 != 0 {
        data_bytes.push(0);
    }
    let image = TaskImage::new(
        name,
        false,
        entry,
        text,
        data_bytes,
        0,
        stack_len,
        program.reloc_sites.clone(),
    )?;
    Ok(TaskSource {
        image,
        mailbox_offset: 0,
        program,
    })
}

/// Renders a peer's [`tytan_crypto::TaskId`] as `.equ` constants
/// (`<prefix>_HI` / `<prefix>_LO`) for embedding in a sender's body —
/// "provisioning S with idR is left to the task developer" (§3 fn. 3).
pub fn task_id_equs(prefix: &str, id: tytan_crypto::TaskId) -> String {
    let (hi, lo) = id.to_register_words();
    format!(".equ {prefix}_HI, {hi:#010x}\n.equ {prefix}_LO, {lo:#010x}\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytan_crypto::TaskId;

    const BODY: &str = "main:\n movi r1, 1\nspin:\n jmp spin\n";

    #[test]
    fn builds_secure_task_with_entry_at_zero() {
        let source = SecureTaskBuilder::new("t", BODY).build().unwrap();
        assert!(source.image.is_secure());
        assert_eq!(source.image.entry_offset(), 0);
        // main lies after the entry routine.
        assert!(source.symbol_offset("main").unwrap() > 0);
    }

    #[test]
    fn mailbox_sits_at_start_of_data_section() {
        let source = SecureTaskBuilder::new("t", BODY).build().unwrap();
        assert_eq!(source.mailbox_offset, source.image.text().len() as u32);
        assert_eq!(source.image.data().len() as u32, MAILBOX_LEN);
    }

    #[test]
    fn missing_main_rejected() {
        let err = SecureTaskBuilder::new("t", "start:\n hlt\n")
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::NoMain));
    }

    #[test]
    fn handles_messages_requires_on_message() {
        let err = SecureTaskBuilder::new("t", BODY)
            .handles_messages(true)
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::NoOnMessage));

        let body = format!("{BODY}on_message:\n jmp main\n");
        let source = SecureTaskBuilder::new("t", body)
            .handles_messages(true)
            .build()
            .unwrap();
        assert!(source.symbol_offset("on_message").is_some());
    }

    #[test]
    fn body_can_reference_mailbox_label() {
        let body = "main:\n movi r1, __mailbox\n ldw r2, [r1]\n jmp main\n";
        let source = SecureTaskBuilder::new("t", body).build().unwrap();
        // The mailbox reference is a relocation site.
        assert!(source.image.reloc_count() >= 1);
    }

    #[test]
    fn identical_bodies_produce_identical_measurements() {
        let a = SecureTaskBuilder::new("a", BODY).build().unwrap();
        let b = SecureTaskBuilder::new("b", BODY).build().unwrap();
        // Names differ but measurements match (name excluded).
        assert_eq!(a.image.measurement_bytes(), b.image.measurement_bytes());
    }

    #[test]
    fn different_stack_sizes_change_identity() {
        let a = SecureTaskBuilder::new("t", BODY)
            .stack_len(256)
            .build()
            .unwrap();
        let b = SecureTaskBuilder::new("t", BODY)
            .stack_len(512)
            .build()
            .unwrap();
        assert_ne!(a.image.measurement_bytes(), b.image.measurement_bytes());
    }

    #[test]
    fn normal_task_entry_is_main() {
        let source = build_normal_task("n", BODY, "", 128).unwrap();
        assert!(!source.image.is_secure());
        assert_eq!(
            source.image.entry_offset(),
            source.symbol_offset("main").unwrap()
        );
    }

    #[test]
    fn task_id_equs_render() {
        let id = TaskId::from_u64(0xdead_beef_0000_0042);
        let equs = task_id_equs("PEER", id);
        assert!(equs.contains(".equ PEER_HI, 0xdeadbeef"));
        assert!(equs.contains(".equ PEER_LO, 0x00000042"));
    }

    #[test]
    fn syscall_constants_usable_in_body() {
        let body = "main:\n movi r1, SYS_DELAY\n movi r2, 5\n int SYS_VECTOR\n jmp main\n";
        assert!(SecureTaskBuilder::new("t", body).build().is_ok());
    }
}
