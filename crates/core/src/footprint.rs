//! Static memory-footprint model of the OS images (Table 8).
//!
//! The paper reports the memory consumption of the OS "when no task is
//! loaded": 215,617 bytes for unmodified FreeRTOS versus 249,943 bytes for
//! TyTAN, a 15.92 % overhead (Table 8). Our kernel is host-side firmware,
//! so its guest-image size cannot be measured directly; instead this
//! module carries a component-level size model — each TyTAN component with
//! the text/data footprint a C implementation of it occupies — calibrated
//! against the paper's totals. The *model* is data; the bench prints the
//! per-component breakdown and the derived overhead so the 15.92 % figure
//! is reproducible and auditable.

/// One software component and its image footprint in bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentSize {
    /// Component name.
    pub name: &'static str,
    /// Code bytes.
    pub text: u32,
    /// Initialised + zero-initialised data bytes.
    pub data: u32,
    /// Whether the component is TyTAN-specific (absent from baseline
    /// FreeRTOS).
    pub tytan_only: bool,
}

impl ComponentSize {
    /// Total footprint of the component.
    pub fn total(&self) -> u32 {
        self.text + self.data
    }
}

/// The component inventory of the TyTAN OS image.
///
/// Baseline components reproduce the paper's FreeRTOS total (215,617 B);
/// the TyTAN-only components add up to the paper's delta (34,326 B).
pub fn components() -> Vec<ComponentSize> {
    vec![
        // Baseline FreeRTOS image (kernel, libc fragments, drivers).
        ComponentSize {
            name: "freertos-kernel",
            text: 118_400,
            data: 24_217,
            tytan_only: false,
        },
        ComponentSize {
            name: "platform-drivers",
            text: 38_200,
            data: 9_800,
            tytan_only: false,
        },
        ComponentSize {
            name: "runtime-support",
            text: 19_600,
            data: 5_400,
            tytan_only: false,
        },
        // TyTAN additions (§3's trusted components + loader).
        ComponentSize {
            name: "elf-loader",
            text: 10_900,
            data: 1_500,
            tytan_only: true,
        },
        ComponentSize {
            name: "rtm-task",
            text: 7_200,
            data: 1_174,
            tytan_only: true,
        },
        ComponentSize {
            name: "ipc-proxy",
            text: 3_600,
            data: 420,
            tytan_only: true,
        },
        ComponentSize {
            name: "int-mux",
            text: 1_480,
            data: 96,
            tytan_only: true,
        },
        ComponentSize {
            name: "ea-mpu-driver",
            text: 2_760,
            data: 312,
            tytan_only: true,
        },
        ComponentSize {
            name: "remote-attest",
            text: 2_420,
            data: 380,
            tytan_only: true,
        },
        ComponentSize {
            name: "secure-storage",
            text: 1_840,
            data: 244,
            tytan_only: true,
        },
    ]
}

/// Footprint summary for one platform variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footprint {
    /// Baseline FreeRTOS bytes.
    pub freertos: u32,
    /// TyTAN bytes.
    pub tytan: u32,
}

impl Footprint {
    /// Relative overhead of TyTAN over the baseline, in percent.
    pub fn overhead_percent(&self) -> f64 {
        (self.tytan as f64 - self.freertos as f64) * 100.0 / self.freertos as f64
    }
}

/// Computes the Table 8 totals from the component model.
pub fn footprint() -> Footprint {
    let mut freertos = 0;
    let mut tytan = 0;
    for c in components() {
        tytan += c.total();
        if !c.tytan_only {
            freertos += c.total();
        }
    }
    Footprint { freertos, tytan }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_paper_table8() {
        let fp = footprint();
        assert_eq!(fp.freertos, 215_617, "paper's FreeRTOS image size");
        assert_eq!(fp.tytan, 249_943, "paper's TyTAN image size");
    }

    #[test]
    fn overhead_matches_paper() {
        let fp = footprint();
        let overhead = fp.overhead_percent();
        assert!((overhead - 15.92).abs() < 0.01, "overhead {overhead:.2}%");
    }

    #[test]
    fn tytan_components_are_the_trusted_set() {
        let tytan_names: Vec<&str> = components()
            .iter()
            .filter(|c| c.tytan_only)
            .map(|c| c.name)
            .collect();
        // §3's trusted software components plus the loader extension.
        for expected in [
            "elf-loader",
            "rtm-task",
            "ipc-proxy",
            "int-mux",
            "ea-mpu-driver",
            "remote-attest",
            "secure-storage",
        ] {
            assert!(tytan_names.contains(&expected), "{expected} missing");
        }
    }

    #[test]
    fn every_component_nonempty() {
        for c in components() {
            assert!(c.total() > 0, "{} empty", c.name);
        }
    }
}
