//! Local and remote attestation.
//!
//! Local attestation on TyTAN uses the task identity `id_t` directly: the
//! EA-MPU guarantees only the RTM can write the measurement list, so a
//! local component reading `id_t` from the list needs no further
//! authentication (§3). Remote attestation authenticates the measurement
//! with a MAC under the attestation key `K_a`, which is derived from the
//! platform key and accessible only to the Remote Attest task (§3).

use crate::rtm::MeasurementRecord;
use tytan_crypto::{HmacKey, HmacSchedule, RunRefolder, Sha1, SymmetricKey, TaskId};
use tytan_lint::{AdmissibleEdgeSet, CfaViolation};

/// The prover-side raw edge-log cap, re-exported for layers (the fleet
/// wire protocol) that size buffers against report extremes but do not
/// depend on the emulator crate directly.
pub use sp_emu::CF_LOG_CAP;

/// The key-derivation purpose label for `K_a`.
pub const ATTEST_PURPOSE: &[u8] = b"tytan-remote-attestation-v1";

/// A remote-attestation report: `(id_t, digest, nonce)` authenticated by
/// `MAC(K_a, ·)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttestationReport {
    /// The attested task identity.
    pub id: TaskId,
    /// The full measurement digest of the task.
    pub digest: Vec<u8>,
    /// The verifier's challenge nonce (freshness).
    pub nonce: Vec<u8>,
    /// `HMAC(K_a, id ‖ digest ‖ nonce)` with length framing.
    pub mac: Vec<u8>,
}

impl AttestationReport {
    /// Serializes the report for transport.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.id.to_bytes());
        out.extend_from_slice(&(self.digest.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.digest);
        out.extend_from_slice(&(self.nonce.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&(self.mac.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.mac);
        out
    }

    /// Parses a report serialized with [`AttestationReport::to_bytes`].
    ///
    /// Returns `None` on truncation.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        fn take<'a>(bytes: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
            if bytes.len() < n {
                return None;
            }
            let (head, tail) = bytes.split_at(n);
            *bytes = tail;
            Some(head)
        }
        fn take_vec(bytes: &mut &[u8]) -> Option<Vec<u8>> {
            let len = u32::from_le_bytes(take(bytes, 4)?.try_into().ok()?) as usize;
            if len > 1 << 16 {
                return None;
            }
            Some(take(bytes, len)?.to_vec())
        }
        let mut rest = bytes;
        let id = TaskId::from_u64(u64::from_be_bytes(take(&mut rest, 8)?.try_into().ok()?));
        let digest = take_vec(&mut rest)?;
        let nonce = take_vec(&mut rest)?;
        let mac = take_vec(&mut rest)?;
        Some(AttestationReport {
            id,
            digest,
            nonce,
            mac,
        })
    }

    /// The exact byte string the report's MAC covers
    /// (`id ‖ digest ‖ nonce` with length framing).
    ///
    /// Exposed so bulk verifiers — the fleet service batches MAC checks
    /// across many devices via [`tytan_crypto::batch_verify`] — can
    /// compute inputs up front and feed precomputed key schedules,
    /// instead of going through [`RemoteVerifier::verify`] one report at
    /// a time.
    pub fn mac_input(&self) -> Vec<u8> {
        mac_input(self.id, &self.digest, &self.nonce)
    }
}

fn mac_input(id: TaskId, digest: &[u8], nonce: &[u8]) -> Vec<u8> {
    let mut input = Vec::with_capacity(8 + 8 + digest.len() + nonce.len());
    input.extend_from_slice(&id.to_bytes());
    input.extend_from_slice(&(digest.len() as u32).to_le_bytes());
    input.extend_from_slice(digest);
    input.extend_from_slice(&(nonce.len() as u32).to_le_bytes());
    input.extend_from_slice(nonce);
    input
}

/// The Remote Attest task: holds `K_a` and produces reports.
#[derive(Debug)]
pub struct RemoteAttestor {
    key: HmacKey,
}

impl RemoteAttestor {
    /// Creates the attestor from the derived attestation key `K_a`.
    pub fn new(ka: SymmetricKey) -> Self {
        RemoteAttestor {
            key: ka.to_hmac_key(),
        }
    }

    /// Produces a report over an RTM record for the verifier's `nonce`.
    pub fn attest(&self, record: &MeasurementRecord, nonce: &[u8]) -> AttestationReport {
        let mac = self.key.sign(&mac_input(record.id, &record.digest, nonce));
        AttestationReport {
            id: record.id,
            digest: record.digest.clone(),
            nonce: nonce.to_vec(),
            mac,
        }
    }
}

/// A device-level report: the MAC-authenticated list of every loaded
/// task's identity and digest ("prove the integrity of its software
/// state to another device", §2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceReport {
    /// `(id, digest)` for every measured task, sorted by id.
    pub tasks: Vec<(TaskId, Vec<u8>)>,
    /// The verifier's challenge nonce.
    pub nonce: Vec<u8>,
    /// `HMAC(K_a, task list ‖ nonce)`.
    pub mac: Vec<u8>,
}

fn device_mac_input(tasks: &[(TaskId, Vec<u8>)], nonce: &[u8]) -> Vec<u8> {
    let mut input = Vec::new();
    input.extend_from_slice(&(tasks.len() as u32).to_le_bytes());
    for (id, digest) in tasks {
        input.extend_from_slice(&id.to_bytes());
        input.extend_from_slice(&(digest.len() as u32).to_le_bytes());
        input.extend_from_slice(digest);
    }
    input.extend_from_slice(&(nonce.len() as u32).to_le_bytes());
    input.extend_from_slice(nonce);
    input
}

impl RemoteAttestor {
    /// Produces a device-level report over every record in the RTM list.
    pub fn attest_device<'a>(
        &self,
        records: impl Iterator<Item = &'a crate::rtm::MeasurementRecord>,
        nonce: &[u8],
    ) -> DeviceReport {
        let mut tasks: Vec<(TaskId, Vec<u8>)> = records.map(|r| (r.id, r.digest.clone())).collect();
        tasks.sort_by_key(|(id, _)| *id);
        let mac = self.key.sign(&device_mac_input(&tasks, nonce));
        DeviceReport {
            tasks,
            nonce: nonce.to_vec(),
            mac,
        }
    }
}

impl RemoteVerifier {
    /// Verifies a device-level report and checks that the reported task
    /// set is exactly `expected` (sorted or not).
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::BadMac`], [`VerifyError::NonceMismatch`],
    /// or [`VerifyError::DigestMismatch`] if the task sets differ.
    pub fn verify_device(
        &self,
        report: &DeviceReport,
        nonce: &[u8],
        expected: &[(TaskId, Vec<u8>)],
    ) -> Result<(), VerifyError> {
        if !self
            .key
            .verify(&device_mac_input(&report.tasks, &report.nonce), &report.mac)
        {
            return Err(VerifyError::BadMac);
        }
        if report.nonce != nonce {
            return Err(VerifyError::NonceMismatch);
        }
        let mut expected = expected.to_vec();
        expected.sort_by_key(|(id, _)| *id);
        if report.tasks != expected {
            return Err(VerifyError::DigestMismatch {
                expected: expected.iter().flat_map(|(_, d)| d.clone()).collect(),
                reported: report.tasks.iter().flat_map(|(_, d)| d.clone()).collect(),
            });
        }
        Ok(())
    }
}

/// Why verification failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The MAC does not verify under `K_a`: forged or corrupted report.
    BadMac,
    /// The nonce does not match the verifier's challenge (replay).
    NonceMismatch,
    /// The nonce was already consumed by an accepted report: a verbatim
    /// replay of an earlier, genuine attestation (session-tracked;
    /// distinguishes "old answer re-sent" from a plain stale nonce).
    ReplayedNonce,
    /// The digest differs from the verifier's reference value for this
    /// software: the device runs unexpected code.
    DigestMismatch {
        /// The digest the verifier expected.
        expected: Vec<u8>,
        /// The digest the device reported.
        reported: Vec<u8>,
    },
    /// A control-flow edge in the reported log is not admitted by the
    /// static CFG of the attested image: a jump/call to a target the
    /// binary cannot legally reach, or a return that disagrees with the
    /// shadow stack (ROP).
    InadmissibleEdge {
        /// Index of the offending edge in the log.
        index: usize,
        /// Task-relative source pc.
        from: u32,
        /// Task-relative destination pc.
        to: u32,
    },
    /// An edge from an indirect-branch site the static analysis could
    /// not bound lands somewhere that is not even a reachable
    /// instruction start.
    UnprovenSiteViolation {
        /// Index of the offending edge in the log.
        index: usize,
        /// Task-relative source pc (the unproven site).
        from: u32,
        /// Task-relative destination pc.
        to: u32,
    },
    /// Refolding the reported edge log does not reproduce the MAC'd
    /// chain head: the log was tampered with (edges substituted,
    /// reordered, dropped or appended) after the device sealed the run.
    ChainMismatch,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::BadMac => write!(f, "report MAC verification failed"),
            VerifyError::NonceMismatch => write!(f, "nonce mismatch (possible replay)"),
            VerifyError::ReplayedNonce => {
                write!(f, "nonce already consumed (verbatim report replay)")
            }
            VerifyError::DigestMismatch { .. } => {
                write!(f, "measurement digest differs from reference")
            }
            VerifyError::InadmissibleEdge { index, from, to } => write!(
                f,
                "control-flow edge {index}: {from:#x} -> {to:#x} is not admitted by the \
                 static CFG"
            ),
            VerifyError::UnprovenSiteViolation { index, from, to } => write!(
                f,
                "control-flow edge {index}: unproven site {from:#x} -> {to:#x} is not a \
                 reachable instruction start"
            ),
            VerifyError::ChainMismatch => {
                write!(
                    f,
                    "refolded edge log does not reproduce the attested chain head"
                )
            }
        }
    }
}

impl From<CfaViolation> for VerifyError {
    fn from(v: CfaViolation) -> VerifyError {
        match v {
            CfaViolation::InadmissibleEdge { index, from, to } => {
                VerifyError::InadmissibleEdge { index, from, to }
            }
            CfaViolation::UnprovenSiteViolation { index, from, to } => {
                VerifyError::UnprovenSiteViolation { index, from, to }
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// The remote verifier: shares `K_a` (symmetric setting, as in the paper)
/// and knows the reference digest of the software it expects.
#[derive(Debug)]
pub struct RemoteVerifier {
    key: HmacKey,
}

impl RemoteVerifier {
    /// Creates a verifier holding the shared attestation key.
    pub fn new(ka: SymmetricKey) -> Self {
        RemoteVerifier {
            key: ka.to_hmac_key(),
        }
    }

    /// Verifies a report against the challenge `nonce` and the reference
    /// digest of the expected task binary.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::BadMac`], [`VerifyError::NonceMismatch`], or
    /// [`VerifyError::DigestMismatch`] (checked in that order, so a forged
    /// report never reaches the digest comparison).
    pub fn verify(
        &self,
        report: &AttestationReport,
        nonce: &[u8],
        expected_digest: &[u8],
    ) -> Result<(), VerifyError> {
        let input = mac_input(report.id, &report.digest, &report.nonce);
        if !self.key.verify(&input, &report.mac) {
            return Err(VerifyError::BadMac);
        }
        if report.nonce != nonce {
            return Err(VerifyError::NonceMismatch);
        }
        if report.digest != expected_digest {
            return Err(VerifyError::DigestMismatch {
                expected: expected_digest.to_vec(),
                reported: report.digest.clone(),
            });
        }
        Ok(())
    }
}

// ------------------------------------------- control-flow attestation

/// A control-flow-attested report: the static measurement of
/// [`AttestationReport`] extended with the run's control-flow evidence.
///
/// The device MACs `(id, digest, nonce, chain_head, edge count)` under
/// `K_a` — the raw edge log travels in the clear and is *implicitly*
/// authenticated, because the verifier refolds it through [`CfChain`]
/// and compares against the MAC'd head ([`VerifyError::ChainMismatch`]
/// on any discrepancy). The verifier then replays the log against the
/// [`AdmissibleEdgeSet`] that `tytan-lint` extracted from the same
/// image, so a run that detours through statically-illegal edges —
/// even one that leaves every code byte (and therefore the measurement
/// digest) untouched, as ROP/JOP does — fails with a typed
/// [`VerifyError::InadmissibleEdge`] or
/// [`VerifyError::UnprovenSiteViolation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfaReport {
    /// The attested task identity.
    pub id: TaskId,
    /// The full measurement digest of the task (static evidence).
    pub digest: Vec<u8>,
    /// The verifier's challenge nonce (freshness).
    pub nonce: Vec<u8>,
    /// The task-relative taken-edge log in execution order, as its
    /// canonical maximal-run decomposition `(from, to, count)` — the
    /// form the monitor records and the chain is defined over.
    pub log: Vec<(u32, u32, u32)>,
    /// The [`CfChain`] head over `log` as sealed by the device.
    pub chain_head: [u8; 20],
    /// `HMAC(K_a, "CFA1" ‖ id ‖ digest ‖ nonce ‖ chain_head ‖ #raw edges)`.
    /// Encoding-independent: the raw edge count, not the run count, so
    /// the same sealed report can ship raw (protocol v3) or compressed
    /// (v4).
    pub mac: Vec<u8>,
}

fn cfa_mac_input(
    id: TaskId,
    digest: &[u8],
    nonce: &[u8],
    chain_head: &[u8; 20],
    edges: u32,
) -> Vec<u8> {
    // Domain-separated from the plain report MAC so a CFA report can
    // never be replayed as a static report or vice versa.
    let mut input = Vec::with_capacity(4 + 8 + 8 + digest.len() + nonce.len() + 24);
    input.extend_from_slice(b"CFA1");
    input.extend_from_slice(&id.to_bytes());
    input.extend_from_slice(&(digest.len() as u32).to_le_bytes());
    input.extend_from_slice(digest);
    input.extend_from_slice(&(nonce.len() as u32).to_le_bytes());
    input.extend_from_slice(nonce);
    input.extend_from_slice(chain_head);
    input.extend_from_slice(&edges.to_le_bytes());
    input
}

fn take<'a>(bytes: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if bytes.len() < n {
        return None;
    }
    let (head, tail) = bytes.split_at(n);
    *bytes = tail;
    Some(head)
}

fn take_vec(bytes: &mut &[u8]) -> Option<Vec<u8>> {
    let len = u32::from_le_bytes(take(bytes, 4)?.try_into().ok()?) as usize;
    if len > 1 << 16 {
        return None;
    }
    Some(take(bytes, len)?.to_vec())
}

fn take_u32(bytes: &mut &[u8]) -> Option<u32> {
    Some(u32::from_le_bytes(take(bytes, 4)?.try_into().ok()?))
}

impl CfaReport {
    /// Total raw edges the run-encoded log covers (sum of run counts).
    /// This — not the run count — is what the MAC binds, keeping the
    /// seal independent of how the log is encoded on the wire.
    pub fn raw_edges(&self) -> u64 {
        self.log.iter().map(|&(_, _, n)| u64::from(n)).sum()
    }

    /// Serializes the report in the compressed (protocol v4) form:
    /// `(from, to, count)` run triples.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.id.to_bytes());
        out.extend_from_slice(&(self.digest.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.digest);
        out.extend_from_slice(&(self.nonce.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&self.chain_head);
        out.extend_from_slice(&(self.log.len() as u32).to_le_bytes());
        for (from, to, count) in &self.log {
            out.extend_from_slice(&from.to_le_bytes());
            out.extend_from_slice(&to.to_le_bytes());
            out.extend_from_slice(&count.to_le_bytes());
        }
        out.extend_from_slice(&(self.mac.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.mac);
        out
    }

    /// Serializes the report in the legacy raw (protocol ≤ v3) form:
    /// the fully expanded `(from, to)` edge stream. Same seal — the MAC
    /// covers the chain head and the raw edge count, both
    /// encoding-independent.
    pub fn to_bytes_v3(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.id.to_bytes());
        out.extend_from_slice(&(self.digest.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.digest);
        out.extend_from_slice(&(self.nonce.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&self.chain_head);
        out.extend_from_slice(&(self.raw_edges() as u32).to_le_bytes());
        for (from, to) in tytan_crypto::expand_runs(&self.log) {
            out.extend_from_slice(&from.to_le_bytes());
            out.extend_from_slice(&to.to_le_bytes());
        }
        out.extend_from_slice(&(self.mac.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.mac);
        out
    }

    /// Parses a report serialized with [`CfaReport::to_bytes`]
    /// (compressed form).
    ///
    /// Returns `None` on truncation, oversized length prefixes, a raw
    /// edge total above the prover-side cap [`sp_emu::CF_LOG_CAP`]
    /// (summed in u64 — hostile counts cannot wrap past the check and
    /// are never expanded), or a non-canonical run list (a zero count,
    /// or adjacent runs sharing an edge): the monitor only emits
    /// maximal runs, so each sealed log has exactly one valid encoding.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut rest = bytes;
        let id = TaskId::from_u64(u64::from_be_bytes(take(&mut rest, 8)?.try_into().ok()?));
        let digest = take_vec(&mut rest)?;
        let nonce = take_vec(&mut rest)?;
        let chain_head: [u8; 20] = take(&mut rest, 20)?.try_into().ok()?;
        let runs = take_u32(&mut rest)? as usize;
        if runs > sp_emu::CF_LOG_CAP {
            return None;
        }
        let mut log = Vec::with_capacity(runs);
        let mut total: u64 = 0;
        for _ in 0..runs {
            let from = take_u32(&mut rest)?;
            let to = take_u32(&mut rest)?;
            let count = take_u32(&mut rest)?;
            if count == 0 {
                return None;
            }
            if let Some(&(pf, pt, _)) = log.last() {
                if (pf, pt) == (from, to) {
                    return None;
                }
            }
            total += u64::from(count);
            if total > sp_emu::CF_LOG_CAP as u64 {
                return None;
            }
            log.push((from, to, count));
        }
        let mac = take_vec(&mut rest)?;
        Some(CfaReport {
            id,
            digest,
            nonce,
            log,
            chain_head,
            mac,
        })
    }

    /// Parses a report serialized with [`CfaReport::to_bytes_v3`] (raw
    /// form), canonically run-length-compressing the edge stream.
    ///
    /// Returns `None` on truncation, oversized length prefixes, or an
    /// edge count above the prover-side cap [`sp_emu::CF_LOG_CAP`].
    pub fn from_bytes_v3(bytes: &[u8]) -> Option<Self> {
        let mut rest = bytes;
        let id = TaskId::from_u64(u64::from_be_bytes(take(&mut rest, 8)?.try_into().ok()?));
        let digest = take_vec(&mut rest)?;
        let nonce = take_vec(&mut rest)?;
        let chain_head: [u8; 20] = take(&mut rest, 20)?.try_into().ok()?;
        let count = take_u32(&mut rest)? as usize;
        if count > sp_emu::CF_LOG_CAP {
            return None;
        }
        let mut raw = Vec::with_capacity(count);
        for _ in 0..count {
            let from = take_u32(&mut rest)?;
            let to = take_u32(&mut rest)?;
            raw.push((from, to));
        }
        let mac = take_vec(&mut rest)?;
        Some(CfaReport {
            id,
            digest,
            nonce,
            log: tytan_crypto::compress_log(raw),
            chain_head,
            mac,
        })
    }

    /// The exact byte string the report's MAC covers (see
    /// [`AttestationReport::mac_input`] for why this is public).
    pub fn mac_input(&self) -> Vec<u8> {
        cfa_mac_input(
            self.id,
            &self.digest,
            &self.nonce,
            &self.chain_head,
            self.raw_edges() as u32,
        )
    }
}

impl RemoteAttestor {
    /// Produces a control-flow-attested report: the RTM record's static
    /// measurement plus the monitored run's edge log and sealed chain
    /// head.
    pub fn attest_cfa(
        &self,
        record: &MeasurementRecord,
        nonce: &[u8],
        log: &[(u32, u32, u32)],
        chain_head: [u8; 20],
    ) -> CfaReport {
        let raw_edges: u64 = log.iter().map(|&(_, _, n)| u64::from(n)).sum();
        let mac = self.key.sign(&cfa_mac_input(
            record.id,
            &record.digest,
            nonce,
            &chain_head,
            raw_edges as u32,
        ));
        CfaReport {
            id: record.id,
            digest: record.digest.clone(),
            nonce: nonce.to_vec(),
            log: log.to_vec(),
            chain_head,
            mac,
        }
    }
}

/// Nanosecond wall-clock cost of each verifier stage for one report —
/// the fleet service's verify-cost attribution. Stages the report never
/// reaches (a plain report has no control-flow evidence; a bad MAC
/// short-circuits everything) stay zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyStageNanos {
    /// Freshness (replay window + outstanding nonce) and digest compare.
    pub freshness: u64,
    /// Edge-log replay against the static CFG (admissibility and
    /// shadow-stack return checks).
    pub edge_replay: u64,
    /// Refolding the edge log through [`CfChain`] and comparing heads.
    pub chain_refold: u64,
}

/// Stamps `stages`' field chosen by `pick` with the wall-clock cost of
/// `f`, when attribution is requested.
fn staged<T>(
    stages: &mut Option<&mut VerifyStageNanos>,
    pick: fn(&mut VerifyStageNanos) -> &mut u64,
    f: impl FnOnce() -> T,
) -> T {
    match stages {
        Some(stages) => {
            let begin = std::time::Instant::now();
            let out = f();
            *pick(stages) += begin.elapsed().as_nanos() as u64;
            out
        }
        None => f(),
    }
}

/// Replays the run-encoded `log` against the static CFG and checks it
/// refolds to the MAC'd `chain_head`. Shared by the stateless and
/// session verifiers; assumes MAC/nonce/digest were already checked.
/// When `stages` is supplied, the two phases are attributed separately.
///
/// Both phases run over runs, never the expanded stream: replay checks
/// each run's edge once (its admissibility cannot change with
/// repetition; only the shadow stack sees counts), and the refold uses
/// the caller's [`RunRefolder`] so the per-run SHA-1 midstate setup is
/// paid once per verifier, not once per run.
fn check_cf_evidence(
    log: &[(u32, u32, u32)],
    chain_head: &[u8; 20],
    edges: &AdmissibleEdgeSet,
    refolder: &mut RunRefolder,
    mut stages: Option<&mut VerifyStageNanos>,
) -> Result<(), VerifyError> {
    // Admissibility first: an injected detour is reported as the typed
    // CFG violation it is, not as the chain damage it also causes.
    staged(
        &mut stages,
        |s| &mut s.edge_replay,
        || edges.replay_runs(log),
    )?;
    let refolds = staged(
        &mut stages,
        |s| &mut s.chain_refold,
        || refolder.refold(log.iter().copied()) == *chain_head,
    );
    if !refolds {
        return Err(VerifyError::ChainMismatch);
    }
    Ok(())
}

impl RemoteVerifier {
    /// Verifies a control-flow-attested report against the challenge
    /// `nonce`, the reference `expected_digest`, and the admissible
    /// edge set `edges` extracted by `tytan-lint` from the reference
    /// image.
    ///
    /// # Errors
    ///
    /// In check order: [`VerifyError::BadMac`],
    /// [`VerifyError::NonceMismatch`], [`VerifyError::DigestMismatch`],
    /// then the control-flow evidence —
    /// [`VerifyError::InadmissibleEdge`] /
    /// [`VerifyError::UnprovenSiteViolation`] from replaying the log
    /// against the static CFG, and [`VerifyError::ChainMismatch`] if
    /// the (admissible) log does not refold to the MAC'd chain head.
    pub fn verify_cfa(
        &self,
        report: &CfaReport,
        nonce: &[u8],
        expected_digest: &[u8],
        edges: &AdmissibleEdgeSet,
    ) -> Result<(), VerifyError> {
        if !self.key.verify(&report.mac_input(), &report.mac) {
            return Err(VerifyError::BadMac);
        }
        if report.nonce != nonce {
            return Err(VerifyError::NonceMismatch);
        }
        if report.digest != expected_digest {
            return Err(VerifyError::DigestMismatch {
                expected: expected_digest.to_vec(),
                reported: report.digest.clone(),
            });
        }
        check_cf_evidence(
            &report.log,
            &report.chain_head,
            edges,
            &mut RunRefolder::new(),
            None,
        )
    }
}

// ---------------------------------------------------------------- fleet

/// Identity of one device in an attested fleet.
///
/// Devices are provisioned with per-device platform keys derived from a
/// fleet master secret keyed by this id (see `tytan-fleet`), so the id is
/// both the wire address and the key-derivation input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(u64);

impl DeviceId {
    /// Wraps a raw 64-bit device identity.
    pub const fn from_u64(v: u64) -> Self {
        DeviceId(v)
    }

    /// The raw 64-bit identity.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Big-endian wire encoding.
    pub fn to_bytes(self) -> [u8; 8] {
        self.0.to_be_bytes()
    }

    /// Decodes the big-endian wire encoding.
    pub fn from_bytes(bytes: [u8; 8]) -> Self {
        DeviceId(u64::from_be_bytes(bytes))
    }
}

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dev-{:016x}", self.0)
    }
}

/// How many consumed nonces a [`VerifierSession`] remembers for typed
/// replay classification. Older replays still fail (the nonce no longer
/// matches the outstanding challenge) — they just report
/// [`VerifyError::NonceMismatch`] instead of the more specific
/// [`VerifyError::ReplayedNonce`].
pub const REPLAY_WINDOW: usize = 64;

/// Per-device verifier state for fleet attestation: the device's key
/// schedule, its reference digest, the outstanding challenge nonce, and
/// a bounded window of consumed nonces for replay rejection.
///
/// The session enforces nonce freshness *statefully*, which the
/// stateless [`RemoteVerifier`] cannot: every challenge it issues is
/// unique (a session-salted counter), a report only verifies against the
/// one outstanding challenge, and an accepted report **consumes** its
/// nonce — submitting the same genuine report twice yields
/// [`VerifyError::ReplayedNonce`] on the second copy.
///
/// # Examples
///
/// ```
/// use tytan::attest::{DeviceId, VerifierSession, VerifyError, ATTEST_PURPOSE};
/// use tytan_crypto::PlatformKey;
///
/// let ka = PlatformKey::from_bytes([7u8; 20]).derive(ATTEST_PURPOSE);
/// let mut session =
///     VerifierSession::new(DeviceId::from_u64(1), ka, vec![0xAA; 20], 99);
/// let nonce = session.challenge();
/// assert_ne!(nonce, session.challenge()); // every challenge is fresh
/// ```
#[derive(Debug)]
pub struct VerifierSession {
    device: DeviceId,
    schedule: HmacSchedule<Sha1>,
    expected_digest: Vec<u8>,
    salt: u64,
    counter: u64,
    outstanding: Option<Vec<u8>>,
    consumed: std::collections::VecDeque<Vec<u8>>,
    accepted: u64,
    rejected: u64,
}

impl VerifierSession {
    /// Creates a session for `device` holding its shared attestation key
    /// `K_a` and the reference digest of the software it must run.
    /// `salt` decorrelates nonce streams across sessions and service
    /// restarts.
    pub fn new(device: DeviceId, ka: SymmetricKey, expected_digest: Vec<u8>, salt: u64) -> Self {
        VerifierSession {
            device,
            schedule: ka.to_hmac_key().schedule(),
            expected_digest,
            salt,
            counter: 0,
            outstanding: None,
            consumed: std::collections::VecDeque::with_capacity(REPLAY_WINDOW),
            accepted: 0,
            rejected: 0,
        }
    }

    /// The device this session verifies.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// The precomputed HMAC key schedule (for batched MAC verification
    /// via [`tytan_crypto::batch_verify`]).
    pub fn schedule(&self) -> &HmacSchedule<Sha1> {
        &self.schedule
    }

    /// Reports accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Reports rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Issues a fresh challenge nonce, replacing any outstanding one (a
    /// device that never answered simply gets a new challenge; the old
    /// nonce can no longer be answered).
    pub fn challenge(&mut self) -> Vec<u8> {
        // SplitMix64-style mix of (salt, device, counter): unique per
        // (session, round) and not guessable from prior nonces without
        // the salt. 16 bytes on the wire.
        let mut z = self
            .salt
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.device.0.rotate_left(17))
            .wrapping_add(self.counter.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let mut nonce = Vec::with_capacity(16);
        nonce.extend_from_slice(&z.to_be_bytes());
        nonce.extend_from_slice(&self.counter.to_be_bytes());
        self.counter += 1;
        self.outstanding = Some(nonce.clone());
        nonce
    }

    /// Verifies `report` against the outstanding challenge, consuming the
    /// nonce on success.
    ///
    /// # Errors
    ///
    /// [`VerifyError::BadMac`] (checked first, so forged reports learn
    /// nothing about session state), [`VerifyError::ReplayedNonce`] for a
    /// verbatim replay of an accepted report,
    /// [`VerifyError::NonceMismatch`] for any other stale or unknown
    /// nonce, [`VerifyError::DigestMismatch`] for wrong software.
    pub fn submit(&mut self, report: &AttestationReport) -> Result<(), VerifyError> {
        let mac_ok = self.schedule.verify(&report.mac_input(), &report.mac);
        self.submit_with_mac_verdict(report, mac_ok)
    }

    /// Like [`VerifierSession::submit`], with the MAC verdict computed
    /// externally — the fleet service batches MAC checks across many
    /// sessions with [`tytan_crypto::batch_verify`] and completes each
    /// report here.
    ///
    /// # Errors
    ///
    /// As [`VerifierSession::submit`].
    pub fn submit_with_mac_verdict(
        &mut self,
        report: &AttestationReport,
        mac_ok: bool,
    ) -> Result<(), VerifyError> {
        self.submit_with_mac_verdict_timed(report, mac_ok, None)
    }

    /// Like [`VerifierSession::submit_with_mac_verdict`], attributing
    /// per-stage wall-clock cost into `stages` when supplied. The
    /// untimed paths pass `None` and pay one `Option` branch.
    ///
    /// # Errors
    ///
    /// As [`VerifierSession::submit`].
    pub fn submit_with_mac_verdict_timed(
        &mut self,
        report: &AttestationReport,
        mac_ok: bool,
        stages: Option<&mut VerifyStageNanos>,
    ) -> Result<(), VerifyError> {
        let result = self.check(report, mac_ok, stages);
        match result {
            Ok(()) => self.accepted += 1,
            Err(_) => self.rejected += 1,
        }
        result
    }

    fn check(
        &mut self,
        report: &AttestationReport,
        mac_ok: bool,
        mut stages: Option<&mut VerifyStageNanos>,
    ) -> Result<(), VerifyError> {
        if !mac_ok {
            return Err(VerifyError::BadMac);
        }
        staged(
            &mut stages,
            |s| &mut s.freshness,
            || {
                self.freshness(&report.nonce)?;
                if report.digest != self.expected_digest {
                    return Err(VerifyError::DigestMismatch {
                        expected: self.expected_digest.clone(),
                        reported: report.digest.clone(),
                    });
                }
                Ok(())
            },
        )?;
        self.consume_outstanding();
        Ok(())
    }

    /// Verifies a control-flow-attested report against the outstanding
    /// challenge and the admissible edge set `edges`, consuming the
    /// nonce on success.
    ///
    /// # Errors
    ///
    /// As [`RemoteVerifier::verify_cfa`], plus
    /// [`VerifyError::ReplayedNonce`] for a verbatim replay of an
    /// accepted report.
    pub fn submit_cfa(
        &mut self,
        report: &CfaReport,
        edges: &AdmissibleEdgeSet,
    ) -> Result<(), VerifyError> {
        let mac_ok = self.schedule.verify(&report.mac_input(), &report.mac);
        self.submit_cfa_with_mac_verdict(report, mac_ok, edges)
    }

    /// Like [`VerifierSession::submit_cfa`], with the MAC verdict
    /// computed externally (batched fleet verification).
    ///
    /// # Errors
    ///
    /// As [`VerifierSession::submit_cfa`].
    pub fn submit_cfa_with_mac_verdict(
        &mut self,
        report: &CfaReport,
        mac_ok: bool,
        edges: &AdmissibleEdgeSet,
    ) -> Result<(), VerifyError> {
        self.submit_cfa_with_mac_verdict_timed(report, mac_ok, edges, None, None)
    }

    /// Like [`VerifierSession::submit_cfa_with_mac_verdict`], attributing
    /// per-stage wall-clock cost into `stages` when supplied, and
    /// refolding through a caller-held [`RunRefolder`] so a batch
    /// verifier amortizes the per-run SHA-1 midstate setup across every
    /// report in a flush. `None` builds a throwaway refolder.
    ///
    /// # Errors
    ///
    /// As [`VerifierSession::submit_cfa`].
    pub fn submit_cfa_with_mac_verdict_timed(
        &mut self,
        report: &CfaReport,
        mac_ok: bool,
        edges: &AdmissibleEdgeSet,
        refolder: Option<&mut RunRefolder>,
        stages: Option<&mut VerifyStageNanos>,
    ) -> Result<(), VerifyError> {
        let mut local = RunRefolder::new();
        let refolder = refolder.unwrap_or(&mut local);
        let result = self.check_cfa(report, mac_ok, edges, refolder, stages);
        match result {
            Ok(()) => self.accepted += 1,
            Err(_) => self.rejected += 1,
        }
        result
    }

    fn check_cfa(
        &mut self,
        report: &CfaReport,
        mac_ok: bool,
        edges: &AdmissibleEdgeSet,
        refolder: &mut RunRefolder,
        mut stages: Option<&mut VerifyStageNanos>,
    ) -> Result<(), VerifyError> {
        if !mac_ok {
            return Err(VerifyError::BadMac);
        }
        staged(
            &mut stages,
            |s| &mut s.freshness,
            || {
                self.freshness(&report.nonce)?;
                if report.digest != self.expected_digest {
                    return Err(VerifyError::DigestMismatch {
                        expected: self.expected_digest.clone(),
                        reported: report.digest.clone(),
                    });
                }
                Ok(())
            },
        )?;
        check_cf_evidence(&report.log, &report.chain_head, edges, refolder, stages)?;
        self.consume_outstanding();
        Ok(())
    }

    /// Typed freshness check against the consumed window and the
    /// outstanding challenge. Does not consume.
    fn freshness(&self, nonce: &[u8]) -> Result<(), VerifyError> {
        if self.consumed.iter().any(|n| n.as_slice() == nonce) {
            return Err(VerifyError::ReplayedNonce);
        }
        match &self.outstanding {
            Some(out) if out.as_slice() == nonce => Ok(()),
            _ => Err(VerifyError::NonceMismatch),
        }
    }

    /// Consumes the outstanding nonce into the bounded replay window:
    /// the same report can never verify again.
    fn consume_outstanding(&mut self) {
        let nonce = self.outstanding.take().expect("freshness matched");
        if self.consumed.len() == REPLAY_WINDOW {
            self.consumed.pop_front();
        }
        self.consumed.push_back(nonce);
    }

    /// Snapshot of the consumed-nonce replay window, oldest first — the
    /// freshness state a forensic bundle must carry to re-verify a
    /// rejected report deterministically.
    pub fn consumed_nonces(&self) -> Vec<Vec<u8>> {
        self.consumed.iter().cloned().collect()
    }

    /// The currently outstanding (unanswered) challenge nonce, if any.
    pub fn outstanding_nonce(&self) -> Option<&[u8]> {
        self.outstanding.as_deref()
    }

    /// Restores freshness state captured by [`VerifierSession::consumed_nonces`]
    /// and [`VerifierSession::outstanding_nonce`] — bundle replay rebuilds a
    /// session and installs the rejection-time state before resubmitting
    /// the recorded frame. `consumed` is truncated to the newest
    /// [`REPLAY_WINDOW`] entries.
    pub fn restore_freshness(&mut self, consumed: Vec<Vec<u8>>, outstanding: Option<Vec<u8>>) {
        let skip = consumed.len().saturating_sub(REPLAY_WINDOW);
        self.consumed = consumed.into_iter().skip(skip).collect();
        self.outstanding = outstanding;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eampu::Region;
    use rtos::TaskHandle;
    use tytan_crypto::PlatformKey;

    fn record(digest: Vec<u8>) -> MeasurementRecord {
        MeasurementRecord {
            id: TaskId::from_digest(&digest),
            digest,
            handle: TaskHandle::from_index(0),
            base: 0x4000,
            mailbox: 0x4100,
            code: Region::new(0x4000, 0x100),
            data: Region::new(0x4100, 0x100),
            name: "t".into(),
        }
    }

    fn keypair() -> (RemoteAttestor, RemoteVerifier) {
        let kp = PlatformKey::from_bytes([3u8; 20]);
        let ka = kp.derive(ATTEST_PURPOSE);
        (RemoteAttestor::new(ka.clone()), RemoteVerifier::new(ka))
    }

    #[test]
    fn honest_report_verifies() {
        let (attestor, verifier) = keypair();
        let digest = vec![7u8; 20];
        let report = attestor.attest(&record(digest.clone()), b"nonce-1");
        assert_eq!(verifier.verify(&report, b"nonce-1", &digest), Ok(()));
    }

    #[test]
    fn forged_mac_rejected() {
        let (attestor, verifier) = keypair();
        let digest = vec![7u8; 20];
        let mut report = attestor.attest(&record(digest.clone()), b"n");
        report.mac[0] ^= 1;
        assert_eq!(
            verifier.verify(&report, b"n", &digest),
            Err(VerifyError::BadMac)
        );
    }

    #[test]
    fn tampered_digest_breaks_mac() {
        let (attestor, verifier) = keypair();
        let digest = vec![7u8; 20];
        let mut report = attestor.attest(&record(digest.clone()), b"n");
        report.digest[0] ^= 1;
        assert_eq!(
            verifier.verify(&report, b"n", &digest),
            Err(VerifyError::BadMac)
        );
    }

    #[test]
    fn replayed_nonce_rejected() {
        let (attestor, verifier) = keypair();
        let digest = vec![7u8; 20];
        let report = attestor.attest(&record(digest.clone()), b"old-nonce");
        assert_eq!(
            verifier.verify(&report, b"fresh-nonce", &digest),
            Err(VerifyError::NonceMismatch)
        );
    }

    #[test]
    fn wrong_software_detected() {
        let (attestor, verifier) = keypair();
        let report = attestor.attest(&record(vec![7u8; 20]), b"n");
        let expected = vec![8u8; 20];
        assert!(matches!(
            verifier.verify(&report, b"n", &expected),
            Err(VerifyError::DigestMismatch { .. })
        ));
    }

    #[test]
    fn wrong_platform_key_rejected() {
        let (attestor, _) = keypair();
        let other_kp = PlatformKey::from_bytes([4u8; 20]);
        let other_verifier = RemoteVerifier::new(other_kp.derive(ATTEST_PURPOSE));
        let digest = vec![7u8; 20];
        let report = attestor.attest(&record(digest.clone()), b"n");
        assert_eq!(
            other_verifier.verify(&report, b"n", &digest),
            Err(VerifyError::BadMac)
        );
    }

    #[test]
    fn device_report_verifies_and_detects_set_changes() {
        let (attestor, verifier) = keypair();
        let a = record(vec![1u8; 20]);
        let b = {
            let mut r = record(vec![2u8; 20]);
            r.handle = TaskHandle::from_index(1);
            r
        };
        let records = [a.clone(), b.clone()];
        let report = attestor.attest_device(records.iter(), b"dev-nonce");
        let expected = vec![(a.id, a.digest.clone()), (b.id, b.digest.clone())];
        assert_eq!(
            verifier.verify_device(&report, b"dev-nonce", &expected),
            Ok(())
        );

        // Missing task detected.
        let short = vec![(a.id, a.digest.clone())];
        assert!(matches!(
            verifier.verify_device(&report, b"dev-nonce", &short),
            Err(VerifyError::DigestMismatch { .. })
        ));
        // Forged MAC detected.
        let mut forged = report.clone();
        forged.mac[0] ^= 1;
        assert_eq!(
            verifier.verify_device(&forged, b"dev-nonce", &expected),
            Err(VerifyError::BadMac)
        );
        // Replay detected.
        assert_eq!(
            verifier.verify_device(&report, b"other", &expected),
            Err(VerifyError::NonceMismatch)
        );
    }

    #[test]
    fn device_report_order_independent_expectations() {
        let (attestor, verifier) = keypair();
        let a = record(vec![1u8; 20]);
        let b = {
            let mut r = record(vec![2u8; 20]);
            r.handle = TaskHandle::from_index(1);
            r
        };
        let report = attestor.attest_device([a.clone(), b.clone()].iter(), b"n");
        // Expected list given in reverse order still verifies.
        let expected = vec![(b.id, b.digest.clone()), (a.id, a.digest.clone())];
        assert_eq!(verifier.verify_device(&report, b"n", &expected), Ok(()));
    }

    #[test]
    fn report_serialization_roundtrip() {
        let (attestor, _) = keypair();
        let report = attestor.attest(&record(vec![9u8; 20]), b"serialize-me");
        let parsed = AttestationReport::from_bytes(&report.to_bytes()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn truncated_report_rejected() {
        let (attestor, _) = keypair();
        let bytes = attestor.attest(&record(vec![9u8; 20]), b"n").to_bytes();
        for len in 0..bytes.len() {
            assert!(
                AttestationReport::from_bytes(&bytes[..len]).is_none(),
                "len {len}"
            );
        }
    }

    fn fleet_session() -> (RemoteAttestor, VerifierSession, MeasurementRecord) {
        let kp = PlatformKey::from_bytes([9u8; 20]);
        let ka = kp.derive(ATTEST_PURPOSE);
        let digest = vec![5u8; 20];
        let session = VerifierSession::new(
            DeviceId::from_u64(0xD0D0),
            ka.clone(),
            digest.clone(),
            0x5EED,
        );
        (RemoteAttestor::new(ka), session, record(digest))
    }

    #[test]
    fn session_accepts_fresh_report_and_rejects_its_replay() {
        let (attestor, mut session, rec) = fleet_session();
        let nonce = session.challenge();
        let report = attestor.attest(&rec, &nonce);
        assert_eq!(session.submit(&report), Ok(()));
        // The verbatim replay of the *accepted* report is typed as such.
        assert_eq!(session.submit(&report), Err(VerifyError::ReplayedNonce));
        assert_eq!(session.accepted(), 1);
        assert_eq!(session.rejected(), 1);
    }

    #[test]
    fn session_rejects_answer_to_a_superseded_challenge() {
        let (attestor, mut session, rec) = fleet_session();
        let old = session.challenge();
        let fresh = session.challenge(); // supersedes `old`
        let stale = attestor.attest(&rec, &old);
        assert_eq!(session.submit(&stale), Err(VerifyError::NonceMismatch));
        let good = attestor.attest(&rec, &fresh);
        assert_eq!(session.submit(&good), Ok(()));
    }

    #[test]
    fn session_challenges_never_repeat() {
        let (_, mut session, _) = fleet_session();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(session.challenge()), "duplicate nonce");
        }
    }

    #[test]
    fn session_rejects_forged_mac_and_wrong_software() {
        let (attestor, mut session, rec) = fleet_session();
        let nonce = session.challenge();
        let mut forged = attestor.attest(&rec, &nonce);
        forged.mac[7] ^= 1;
        assert_eq!(session.submit(&forged), Err(VerifyError::BadMac));
        // Honest MAC over the wrong binary: the attestor (who holds the
        // key) reports a different measurement than the reference.
        let wrong = attestor.attest(&record(vec![6u8; 20]), &nonce);
        assert!(matches!(
            session.submit(&wrong),
            Err(VerifyError::DigestMismatch { .. })
        ));
        // The challenge was not consumed by the failures.
        let good = attestor.attest(&rec, &nonce);
        assert_eq!(session.submit(&good), Ok(()));
    }

    #[test]
    fn session_replay_window_is_bounded() {
        let (attestor, mut session, rec) = fleet_session();
        let first_nonce = session.challenge();
        let first = attestor.attest(&rec, &first_nonce);
        assert_eq!(session.submit(&first), Ok(()));
        // Push the first nonce out of the bounded window.
        for _ in 0..REPLAY_WINDOW {
            let nonce = session.challenge();
            let report = attestor.attest(&rec, &nonce);
            assert_eq!(session.submit(&report), Ok(()));
        }
        // Still rejected — just as a generic stale nonce now.
        assert_eq!(session.submit(&first), Err(VerifyError::NonceMismatch));
    }

    #[test]
    fn session_batched_mac_verdict_path_matches_inline() {
        let (attestor, mut session, rec) = fleet_session();
        let nonce = session.challenge();
        let report = attestor.attest(&rec, &nonce);
        let mac_ok = tytan_crypto::batch_verify(std::iter::once((
            session.schedule(),
            report.mac_input().as_slice(),
            report.mac.as_slice(),
        )))
        .all_ok();
        assert!(mac_ok);
        assert_eq!(session.submit_with_mac_verdict(&report, mac_ok), Ok(()));
        assert_eq!(
            session.submit_with_mac_verdict(&report, false),
            Err(VerifyError::BadMac)
        );
    }

    #[test]
    fn session_timed_submit_attributes_freshness_only_for_plain_reports() {
        let (attestor, mut session, rec) = fleet_session();
        let nonce = session.challenge();
        let report = attestor.attest(&rec, &nonce);
        let mut stages = VerifyStageNanos::default();
        assert_eq!(
            session.submit_with_mac_verdict_timed(&report, true, Some(&mut stages)),
            Ok(())
        );
        // Plain reports never reach the control-flow stages.
        assert_eq!(stages.edge_replay, 0);
        assert_eq!(stages.chain_refold, 0);
        // A bad MAC short-circuits before any staged work.
        let mut stages = VerifyStageNanos::default();
        assert_eq!(
            session.submit_with_mac_verdict_timed(&report, false, Some(&mut stages)),
            Err(VerifyError::BadMac)
        );
        assert_eq!(stages, VerifyStageNanos::default());
    }

    #[test]
    fn session_freshness_state_snapshots_and_restores() {
        let (attestor, mut session, rec) = fleet_session();
        let nonce = session.challenge();
        let report = attestor.attest(&rec, &nonce);
        assert_eq!(session.submit(&report), Ok(()));
        let next = session.challenge();
        let consumed = session.consumed_nonces();
        let outstanding = session.outstanding_nonce().map(<[u8]>::to_vec);
        assert_eq!(consumed, vec![nonce]);
        assert_eq!(outstanding.as_deref(), Some(next.as_slice()));

        // A rebuilt session with the restored state reproduces both the
        // typed replay rejection and the acceptance of the live answer.
        let (_, mut rebuilt, _) = fleet_session();
        rebuilt.restore_freshness(consumed, outstanding);
        assert_eq!(rebuilt.submit(&report), Err(VerifyError::ReplayedNonce));
        let live = attestor.attest(&rec, &next);
        assert_eq!(rebuilt.submit(&live), Ok(()));
    }

    #[test]
    fn restore_freshness_truncates_to_the_replay_window() {
        let (_, mut session, _) = fleet_session();
        let consumed: Vec<Vec<u8>> = (0..REPLAY_WINDOW as u64 + 10)
            .map(|i| i.to_be_bytes().to_vec())
            .collect();
        session.restore_freshness(consumed.clone(), None);
        let kept = session.consumed_nonces();
        assert_eq!(kept.len(), REPLAY_WINDOW);
        assert_eq!(kept, consumed[10..].to_vec());
    }

    mod cfa {
        use super::*;
        use tytan_crypto::CfChain;
        use tytan_lint::SiteKind;

        /// A hand-built admissible edge set for a tiny synthetic image:
        ///
        /// ```text
        ///  0: jmp  8
        ///  8: call 16   (ret 12)
        /// 12: jmp  20
        /// 16: ret
        /// 20: <unproven indirect>
        /// ```
        fn demo_edges() -> AdmissibleEdgeSet {
            AdmissibleEdgeSet {
                image_name: "demo".into(),
                entry: 0,
                text_len: 24,
                instr_pcs: [0u32, 8, 12, 16, 20].into_iter().collect(),
                sites: [
                    (0u32, SiteKind::Jump { target: 8 }),
                    (
                        8,
                        SiteKind::Call {
                            target: 16,
                            ret: 12,
                        },
                    ),
                    (12, SiteKind::Jump { target: 20 }),
                    (16, SiteKind::Return),
                    (20, SiteKind::Unproven),
                ]
                .into_iter()
                .collect(),
                external_sites: Default::default(),
            }
        }

        /// The honest run as count-1 runs (no edge repeats).
        fn honest_log() -> Vec<(u32, u32, u32)> {
            vec![(0, 8, 1), (8, 16, 1), (16, 12, 1), (12, 20, 1), (20, 0, 1)]
        }

        fn cfa_fixture() -> (RemoteAttestor, RemoteVerifier, MeasurementRecord) {
            let (attestor, verifier) = keypair();
            (attestor, verifier, record(vec![7u8; 20]))
        }

        #[test]
        fn honest_cfa_report_verifies() {
            let (attestor, verifier, rec) = cfa_fixture();
            let log = honest_log();
            let head = CfChain::fold_runs(log.iter().copied());
            let report = attestor.attest_cfa(&rec, b"n", &log, head);
            assert_eq!(
                verifier.verify_cfa(&report, b"n", &rec.digest, &demo_edges()),
                Ok(())
            );
        }

        #[test]
        fn detour_is_typed_inadmissible_edge() {
            let (attestor, verifier, rec) = cfa_fixture();
            // The return at 16 detours to 20 instead of the shadow-stack
            // return address 12 — a ROP-style pivot over real code bytes.
            let mut log = honest_log();
            log[2] = (16, 20, 1);
            let head = CfChain::fold_runs(log.iter().copied());
            let report = attestor.attest_cfa(&rec, b"n", &log, head);
            assert_eq!(
                verifier.verify_cfa(&report, b"n", &rec.digest, &demo_edges()),
                Err(VerifyError::InadmissibleEdge {
                    index: 2,
                    from: 16,
                    to: 20
                })
            );
        }

        #[test]
        fn unproven_site_violation_is_typed() {
            let (attestor, verifier, rec) = cfa_fixture();
            // The unbounded indirect at 20 lands mid-instruction.
            let mut log = honest_log();
            log[4] = (20, 5, 1);
            let head = CfChain::fold_runs(log.iter().copied());
            let report = attestor.attest_cfa(&rec, b"n", &log, head);
            assert_eq!(
                verifier.verify_cfa(&report, b"n", &rec.digest, &demo_edges()),
                Err(VerifyError::UnprovenSiteViolation {
                    index: 4,
                    from: 20,
                    to: 5
                })
            );
        }

        #[test]
        fn admissible_substitution_is_chain_mismatch() {
            let (attestor, verifier, rec) = cfa_fixture();
            let log = honest_log();
            let head = CfChain::fold_runs(log.iter().copied());
            let mut report = attestor.attest_cfa(&rec, b"n", &log, head);
            // Swap in a different but statically-admissible log of the
            // same length: every edge replays, only the chain disagrees.
            report.log = vec![(0, 8, 1), (8, 16, 1), (16, 12, 1), (12, 20, 1), (20, 8, 1)];
            assert_eq!(
                verifier.verify_cfa(&report, b"n", &rec.digest, &demo_edges()),
                Err(VerifyError::ChainMismatch)
            );
        }

        #[test]
        fn truncated_log_breaks_mac() {
            let (attestor, verifier, rec) = cfa_fixture();
            let log = honest_log();
            let head = CfChain::fold_runs(log.iter().copied());
            let mut report = attestor.attest_cfa(&rec, b"n", &log, head);
            report.log.pop(); // edge count is MAC'd
            assert_eq!(
                verifier.verify_cfa(&report, b"n", &rec.digest, &demo_edges()),
                Err(VerifyError::BadMac)
            );
        }

        #[test]
        fn cfa_and_static_macs_are_domain_separated() {
            let (attestor, verifier, rec) = cfa_fixture();
            let report = attestor.attest_cfa(&rec, b"n", &[], CfChain::new().head());
            // A CFA MAC spliced into a static report never verifies.
            let spliced = AttestationReport {
                id: report.id,
                digest: report.digest.clone(),
                nonce: report.nonce.clone(),
                mac: report.mac.clone(),
            };
            assert_eq!(
                verifier.verify(&spliced, b"n", &rec.digest),
                Err(VerifyError::BadMac)
            );
        }

        #[test]
        fn cfa_report_serialization_roundtrip_and_truncation() {
            let (attestor, _, rec) = cfa_fixture();
            let log = honest_log();
            let head = CfChain::fold_runs(log.iter().copied());
            let report = attestor.attest_cfa(&rec, b"serialize-me", &log, head);
            let bytes = report.to_bytes();
            assert_eq!(CfaReport::from_bytes(&bytes), Some(report));
            for len in 0..bytes.len() {
                assert!(CfaReport::from_bytes(&bytes[..len]).is_none(), "len {len}");
            }
        }

        #[test]
        fn session_cfa_accepts_fresh_and_rejects_replay_and_detour() {
            let (attestor, mut session, rec) = fleet_session();
            let edges = demo_edges();
            let log = honest_log();
            let head = CfChain::fold_runs(log.iter().copied());

            let nonce = session.challenge();
            let report = attestor.attest_cfa(&rec, &nonce, &log, head);
            assert_eq!(session.submit_cfa(&report, &edges), Ok(()));
            assert_eq!(
                session.submit_cfa(&report, &edges),
                Err(VerifyError::ReplayedNonce)
            );

            // A detour against a fresh challenge does not consume it.
            let nonce = session.challenge();
            let mut bad_log = honest_log();
            bad_log[2] = (16, 20, 1);
            let bad_head = CfChain::fold_runs(bad_log.iter().copied());
            let bad = attestor.attest_cfa(&rec, &nonce, &bad_log, bad_head);
            assert!(matches!(
                session.submit_cfa(&bad, &edges),
                Err(VerifyError::InadmissibleEdge { .. })
            ));
            let good = attestor.attest_cfa(&rec, &nonce, &log, head);
            assert_eq!(session.submit_cfa(&good, &edges), Ok(()));
            assert_eq!(session.accepted(), 2);
            assert_eq!(session.rejected(), 2);
        }

        #[test]
        fn session_timed_cfa_submit_attributes_all_three_stages() {
            let (attestor, mut session, rec) = fleet_session();
            let edges = demo_edges();
            let log = honest_log();
            let head = CfChain::fold_runs(log.iter().copied());
            let nonce = session.challenge();
            let report = attestor.attest_cfa(&rec, &nonce, &log, head);
            let mut stages = VerifyStageNanos::default();
            assert_eq!(
                session.submit_cfa_with_mac_verdict_timed(
                    &report,
                    true,
                    &edges,
                    None,
                    Some(&mut stages)
                ),
                Ok(())
            );
            // All three stages ran; Instant is monotonic but can tick 0ns,
            // so assert structure (the plain path asserts zeros) rather
            // than strict positivity.
            let _ = (stages.freshness, stages.edge_replay, stages.chain_refold);

            // A detour stops at edge replay: the refold stage never runs.
            let nonce = session.challenge();
            let mut bad_log = honest_log();
            bad_log[2] = (16, 20, 1);
            let bad_head = CfChain::fold_runs(bad_log.iter().copied());
            let bad = attestor.attest_cfa(&rec, &nonce, &bad_log, bad_head);
            let mut stages = VerifyStageNanos::default();
            assert!(matches!(
                session.submit_cfa_with_mac_verdict_timed(
                    &bad,
                    true,
                    &edges,
                    None,
                    Some(&mut stages)
                ),
                Err(VerifyError::InadmissibleEdge { .. })
            ));
            assert_eq!(stages.chain_refold, 0);
        }

        /// The prover-side and verifier-side sentinel constants are
        /// defined in separate crates (the emulator cannot depend on
        /// the lint crate or vice versa); this is the one place both
        /// are visible, so the equality is pinned here.
        #[test]
        fn out_of_region_sentinel_agrees_across_prover_and_verifier() {
            assert_eq!(sp_emu::OUT_OF_REGION, tytan_lint::OUT_OF_REGION);
        }

        #[test]
        fn v3_and_v4_wire_forms_carry_the_same_sealed_report() {
            let (attestor, verifier, rec) = cfa_fixture();
            // A loop-heavy log: the jump at 12 re-fires 400 times.
            let mut log = honest_log();
            log[3] = (12, 20, 400);
            let head = CfChain::fold_runs(log.iter().copied());
            let report = attestor.attest_cfa(&rec, b"n", &log, head);

            let v4 = report.to_bytes();
            let v3 = report.to_bytes_v3();
            // Compression is real: 5 runs vs 404 raw edges on the wire.
            assert!(v4.len() < v3.len() / 10);

            // Both decode back to the identical sealed report — same
            // MAC, same chain head, same canonical log — and verify.
            let from_v4 = CfaReport::from_bytes(&v4).unwrap();
            let from_v3 = CfaReport::from_bytes_v3(&v3).unwrap();
            assert_eq!(from_v4, report);
            assert_eq!(from_v3, report);
            assert_eq!(
                verifier.verify_cfa(&from_v4, b"n", &rec.digest, &demo_edges()),
                Ok(())
            );
            assert_eq!(
                verifier.verify_cfa(&from_v3, b"n", &rec.digest, &demo_edges()),
                Ok(())
            );
        }

        #[test]
        fn v4_decode_rejects_non_canonical_and_oversized_runs() {
            let (attestor, _, rec) = cfa_fixture();
            let reencode = |log: Vec<(u32, u32, u32)>| {
                let head = CfChain::fold_runs(log.iter().copied());
                let mut report = attestor.attest_cfa(&rec, b"n", &honest_log(), head);
                report.log = log;
                CfaReport::from_bytes(&report.to_bytes())
            };
            // A zero-count run encodes nothing and is not canonical.
            assert_eq!(reencode(vec![(0, 8, 0)]), None);
            // Adjacent runs of the same edge must have been coalesced.
            assert_eq!(reencode(vec![(0, 8, 1), (0, 8, 1)]), None);
            // One run over the raw cap.
            assert_eq!(reencode(vec![(0, 8, sp_emu::CF_LOG_CAP as u32 + 1)]), None);
            // Two huge counts whose u64 sum exceeds the cap (and would
            // wrap a u32 summation).
            assert_eq!(reencode(vec![(0, 8, u32::MAX), (8, 16, u32::MAX)]), None);
        }

        #[test]
        fn split_run_forgery_is_caught_by_the_chain() {
            // Splitting a run preserves the raw edge stream and the raw
            // edge count, so the MAC still verifies — but the chain is
            // defined over the *canonical* decomposition, so the heads
            // disagree. (The wire codec independently rejects the split
            // encoding as non-canonical; this pins the cryptographic
            // backstop underneath it.)
            let (attestor, verifier, rec) = cfa_fixture();
            let mut log = honest_log();
            log[3] = (12, 20, 400);
            let head = CfChain::fold_runs(log.iter().copied());
            let mut report = attestor.attest_cfa(&rec, b"n", &log, head);
            report.log[3] = (12, 20, 399);
            report.log.insert(3, (12, 20, 1));
            assert_eq!(report.raw_edges(), 404);
            assert_eq!(
                verifier.verify_cfa(&report, b"n", &rec.digest, &demo_edges()),
                Err(VerifyError::ChainMismatch)
            );
        }

        #[test]
        fn violation_indices_are_raw_stream_positions() {
            // A detour *after* a long run is attributed at its raw
            // expanded index, not its run index, so forensics line up
            // with what the device actually executed.
            let (attestor, verifier, rec) = cfa_fixture();
            let mut log = honest_log();
            log[3] = (12, 20, 400);
            log[4] = (20, 5, 1); // unproven indirect lands mid-instruction
            let head = CfChain::fold_runs(log.iter().copied());
            let report = attestor.attest_cfa(&rec, b"n", &log, head);
            assert_eq!(
                verifier.verify_cfa(&report, b"n", &rec.digest, &demo_edges()),
                Err(VerifyError::UnprovenSiteViolation {
                    index: 403,
                    from: 20,
                    to: 5
                })
            );
        }

        #[test]
        fn undeclared_region_exit_is_typed_inadmissible() {
            // The monitor's sentinel edges survive sealing and reach the
            // verifier: a detour out of the monitored region at a site
            // with no declared external call is rejected, typed, at the
            // exit edge.
            let (attestor, verifier, rec) = cfa_fixture();
            let out = sp_emu::OUT_OF_REGION;
            let mut log = honest_log();
            log.truncate(2);
            log.push((16, out, 1)); // return detours out of the region
            log.push((out, 12, 1)); // ...and comes back
            let head = CfChain::fold_runs(log.iter().copied());
            let report = attestor.attest_cfa(&rec, b"n", &log, head);
            assert_eq!(
                verifier.verify_cfa(&report, b"n", &rec.digest, &demo_edges()),
                Err(VerifyError::InadmissibleEdge {
                    index: 2,
                    from: 16,
                    to: out
                })
            );
        }
    }

    mod from_bytes_corrupt_inputs {
        use super::*;
        use proptest::prelude::*;

        fn sample_report(seed: u64) -> AttestationReport {
            AttestationReport {
                id: TaskId::from_u64(seed),
                digest: (0..20).map(|i| (seed as u8).wrapping_add(i)).collect(),
                nonce: (0..(seed % 32) as u8).collect(),
                mac: (0..20).map(|i| (seed as u8) ^ i).collect(),
            }
        }

        proptest! {
            // Arbitrary garbage never panics, and anything that parses
            // must survive a serialization round trip.
            #[test]
            fn garbage_parses_to_none_or_roundtrips(
                bytes in proptest::collection::vec(any::<u8>(), 0..256)
            ) {
                if let Some(report) = AttestationReport::from_bytes(&bytes) {
                    prop_assert_eq!(
                        AttestationReport::from_bytes(&report.to_bytes()),
                        Some(report)
                    );
                }
            }

            // A single flipped bit in a valid encoding either still
            // parses (payload bytes) or is rejected — never a panic, and
            // never a report that re-encodes to the *original* bytes.
            #[test]
            fn bit_flipped_reports_never_panic(seed in any::<u64>(), bit in 0usize..2048) {
                let original = sample_report(seed).to_bytes();
                let mut flipped = original.clone();
                let bit = bit % (flipped.len() * 8);
                flipped[bit / 8] ^= 1 << (bit % 8);
                if let Some(report) = AttestationReport::from_bytes(&flipped) {
                    prop_assert!(report.to_bytes() != original);
                }
            }

            // Every strict prefix of a valid encoding is rejected.
            #[test]
            fn truncations_rejected(seed in any::<u64>(), cut in 0usize..1024) {
                let bytes = sample_report(seed).to_bytes();
                let cut = cut % bytes.len();
                prop_assert_eq!(AttestationReport::from_bytes(&bytes[..cut]), None);
            }

            // Oversized length prefixes (> 64 KiB fields) are rejected
            // rather than allocating unboundedly.
            #[test]
            fn oversized_length_prefix_rejected(
                len in ((1u32 << 16) + 1)..u32::MAX,
                seed in any::<u64>(),
            ) {
                let mut bytes = Vec::new();
                bytes.extend_from_slice(&seed.to_be_bytes());
                bytes.extend_from_slice(&len.to_le_bytes());
                bytes.extend_from_slice(&[0u8; 64]);
                prop_assert_eq!(AttestationReport::from_bytes(&bytes), None);
            }
        }
    }

    mod cfa_codec_properties {
        use super::*;
        use proptest::prelude::*;
        use tytan_crypto::{compress_log, expand_runs, CfChain};

        proptest! {
            // Arbitrary raw logs: canonical compression round-trips, and
            // the run-fold equals the raw fold — the equivalence that
            // lets one sealed report ship at either protocol version.
            #[test]
            fn compressed_and_raw_logs_seal_identically(
                raw in proptest::collection::vec((0u32..64, 0u32..64), 0..200)
            ) {
                let runs = compress_log(raw.iter().copied());
                let expanded: Vec<(u32, u32)> = expand_runs(&runs).collect();
                prop_assert_eq!(&expanded, &raw);
                prop_assert_eq!(
                    CfChain::fold_runs(runs.iter().copied()),
                    CfChain::fold_all(raw)
                );
            }

            // v4 garbage never panics; anything that parses re-encodes
            // to itself (canonical-form validation makes the decode a
            // bijection on its image).
            #[test]
            fn cfa_garbage_parses_to_none_or_roundtrips(
                bytes in proptest::collection::vec(any::<u8>(), 0..512)
            ) {
                if let Some(report) = CfaReport::from_bytes(&bytes) {
                    prop_assert_eq!(CfaReport::from_bytes(&report.to_bytes()), Some(report));
                }
            }

            // Same for the legacy raw decoder — and whatever it accepts
            // is canonical after recompression, so it round-trips
            // through *both* wire forms.
            #[test]
            fn cfa_v3_garbage_parses_to_none_or_roundtrips(
                bytes in proptest::collection::vec(any::<u8>(), 0..512)
            ) {
                if let Some(report) = CfaReport::from_bytes_v3(&bytes) {
                    prop_assert_eq!(
                        CfaReport::from_bytes(&report.to_bytes()),
                        Some(report.clone())
                    );
                    prop_assert_eq!(
                        CfaReport::from_bytes_v3(&report.to_bytes_v3()),
                        Some(report)
                    );
                }
            }
        }
    }
}
