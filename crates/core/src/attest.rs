//! Local and remote attestation.
//!
//! Local attestation on TyTAN uses the task identity `id_t` directly: the
//! EA-MPU guarantees only the RTM can write the measurement list, so a
//! local component reading `id_t` from the list needs no further
//! authentication (§3). Remote attestation authenticates the measurement
//! with a MAC under the attestation key `K_a`, which is derived from the
//! platform key and accessible only to the Remote Attest task (§3).

use crate::rtm::MeasurementRecord;
use tytan_crypto::{HmacKey, SymmetricKey, TaskId};

/// The key-derivation purpose label for `K_a`.
pub const ATTEST_PURPOSE: &[u8] = b"tytan-remote-attestation-v1";

/// A remote-attestation report: `(id_t, digest, nonce)` authenticated by
/// `MAC(K_a, ·)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttestationReport {
    /// The attested task identity.
    pub id: TaskId,
    /// The full measurement digest of the task.
    pub digest: Vec<u8>,
    /// The verifier's challenge nonce (freshness).
    pub nonce: Vec<u8>,
    /// `HMAC(K_a, id ‖ digest ‖ nonce)` with length framing.
    pub mac: Vec<u8>,
}

impl AttestationReport {
    /// Serializes the report for transport.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.id.to_bytes());
        out.extend_from_slice(&(self.digest.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.digest);
        out.extend_from_slice(&(self.nonce.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&(self.mac.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.mac);
        out
    }

    /// Parses a report serialized with [`AttestationReport::to_bytes`].
    ///
    /// Returns `None` on truncation.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        fn take<'a>(bytes: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
            if bytes.len() < n {
                return None;
            }
            let (head, tail) = bytes.split_at(n);
            *bytes = tail;
            Some(head)
        }
        fn take_vec(bytes: &mut &[u8]) -> Option<Vec<u8>> {
            let len = u32::from_le_bytes(take(bytes, 4)?.try_into().ok()?) as usize;
            if len > 1 << 16 {
                return None;
            }
            Some(take(bytes, len)?.to_vec())
        }
        let mut rest = bytes;
        let id = TaskId::from_u64(u64::from_be_bytes(take(&mut rest, 8)?.try_into().ok()?));
        let digest = take_vec(&mut rest)?;
        let nonce = take_vec(&mut rest)?;
        let mac = take_vec(&mut rest)?;
        Some(AttestationReport {
            id,
            digest,
            nonce,
            mac,
        })
    }
}

fn mac_input(id: TaskId, digest: &[u8], nonce: &[u8]) -> Vec<u8> {
    let mut input = Vec::with_capacity(8 + 8 + digest.len() + nonce.len());
    input.extend_from_slice(&id.to_bytes());
    input.extend_from_slice(&(digest.len() as u32).to_le_bytes());
    input.extend_from_slice(digest);
    input.extend_from_slice(&(nonce.len() as u32).to_le_bytes());
    input.extend_from_slice(nonce);
    input
}

/// The Remote Attest task: holds `K_a` and produces reports.
#[derive(Debug)]
pub struct RemoteAttestor {
    key: HmacKey,
}

impl RemoteAttestor {
    /// Creates the attestor from the derived attestation key `K_a`.
    pub fn new(ka: SymmetricKey) -> Self {
        RemoteAttestor {
            key: ka.to_hmac_key(),
        }
    }

    /// Produces a report over an RTM record for the verifier's `nonce`.
    pub fn attest(&self, record: &MeasurementRecord, nonce: &[u8]) -> AttestationReport {
        let mac = self.key.sign(&mac_input(record.id, &record.digest, nonce));
        AttestationReport {
            id: record.id,
            digest: record.digest.clone(),
            nonce: nonce.to_vec(),
            mac,
        }
    }
}

/// A device-level report: the MAC-authenticated list of every loaded
/// task's identity and digest ("prove the integrity of its software
/// state to another device", §2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceReport {
    /// `(id, digest)` for every measured task, sorted by id.
    pub tasks: Vec<(TaskId, Vec<u8>)>,
    /// The verifier's challenge nonce.
    pub nonce: Vec<u8>,
    /// `HMAC(K_a, task list ‖ nonce)`.
    pub mac: Vec<u8>,
}

fn device_mac_input(tasks: &[(TaskId, Vec<u8>)], nonce: &[u8]) -> Vec<u8> {
    let mut input = Vec::new();
    input.extend_from_slice(&(tasks.len() as u32).to_le_bytes());
    for (id, digest) in tasks {
        input.extend_from_slice(&id.to_bytes());
        input.extend_from_slice(&(digest.len() as u32).to_le_bytes());
        input.extend_from_slice(digest);
    }
    input.extend_from_slice(&(nonce.len() as u32).to_le_bytes());
    input.extend_from_slice(nonce);
    input
}

impl RemoteAttestor {
    /// Produces a device-level report over every record in the RTM list.
    pub fn attest_device<'a>(
        &self,
        records: impl Iterator<Item = &'a crate::rtm::MeasurementRecord>,
        nonce: &[u8],
    ) -> DeviceReport {
        let mut tasks: Vec<(TaskId, Vec<u8>)> = records.map(|r| (r.id, r.digest.clone())).collect();
        tasks.sort_by_key(|(id, _)| *id);
        let mac = self.key.sign(&device_mac_input(&tasks, nonce));
        DeviceReport {
            tasks,
            nonce: nonce.to_vec(),
            mac,
        }
    }
}

impl RemoteVerifier {
    /// Verifies a device-level report and checks that the reported task
    /// set is exactly `expected` (sorted or not).
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::BadMac`], [`VerifyError::NonceMismatch`],
    /// or [`VerifyError::DigestMismatch`] if the task sets differ.
    pub fn verify_device(
        &self,
        report: &DeviceReport,
        nonce: &[u8],
        expected: &[(TaskId, Vec<u8>)],
    ) -> Result<(), VerifyError> {
        if !self
            .key
            .verify(&device_mac_input(&report.tasks, &report.nonce), &report.mac)
        {
            return Err(VerifyError::BadMac);
        }
        if report.nonce != nonce {
            return Err(VerifyError::NonceMismatch);
        }
        let mut expected = expected.to_vec();
        expected.sort_by_key(|(id, _)| *id);
        if report.tasks != expected {
            return Err(VerifyError::DigestMismatch {
                expected: expected.iter().flat_map(|(_, d)| d.clone()).collect(),
                reported: report.tasks.iter().flat_map(|(_, d)| d.clone()).collect(),
            });
        }
        Ok(())
    }
}

/// Why verification failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The MAC does not verify under `K_a`: forged or corrupted report.
    BadMac,
    /// The nonce does not match the verifier's challenge (replay).
    NonceMismatch,
    /// The digest differs from the verifier's reference value for this
    /// software: the device runs unexpected code.
    DigestMismatch {
        /// The digest the verifier expected.
        expected: Vec<u8>,
        /// The digest the device reported.
        reported: Vec<u8>,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::BadMac => write!(f, "report MAC verification failed"),
            VerifyError::NonceMismatch => write!(f, "nonce mismatch (possible replay)"),
            VerifyError::DigestMismatch { .. } => {
                write!(f, "measurement digest differs from reference")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// The remote verifier: shares `K_a` (symmetric setting, as in the paper)
/// and knows the reference digest of the software it expects.
#[derive(Debug)]
pub struct RemoteVerifier {
    key: HmacKey,
}

impl RemoteVerifier {
    /// Creates a verifier holding the shared attestation key.
    pub fn new(ka: SymmetricKey) -> Self {
        RemoteVerifier {
            key: ka.to_hmac_key(),
        }
    }

    /// Verifies a report against the challenge `nonce` and the reference
    /// digest of the expected task binary.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::BadMac`], [`VerifyError::NonceMismatch`], or
    /// [`VerifyError::DigestMismatch`] (checked in that order, so a forged
    /// report never reaches the digest comparison).
    pub fn verify(
        &self,
        report: &AttestationReport,
        nonce: &[u8],
        expected_digest: &[u8],
    ) -> Result<(), VerifyError> {
        let input = mac_input(report.id, &report.digest, &report.nonce);
        if !self.key.verify(&input, &report.mac) {
            return Err(VerifyError::BadMac);
        }
        if report.nonce != nonce {
            return Err(VerifyError::NonceMismatch);
        }
        if report.digest != expected_digest {
            return Err(VerifyError::DigestMismatch {
                expected: expected_digest.to_vec(),
                reported: report.digest.clone(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eampu::Region;
    use rtos::TaskHandle;
    use tytan_crypto::PlatformKey;

    fn record(digest: Vec<u8>) -> MeasurementRecord {
        MeasurementRecord {
            id: TaskId::from_digest(&digest),
            digest,
            handle: TaskHandle::from_index(0),
            base: 0x4000,
            mailbox: 0x4100,
            code: Region::new(0x4000, 0x100),
            data: Region::new(0x4100, 0x100),
            name: "t".into(),
        }
    }

    fn keypair() -> (RemoteAttestor, RemoteVerifier) {
        let kp = PlatformKey::from_bytes([3u8; 20]);
        let ka = kp.derive(ATTEST_PURPOSE);
        (RemoteAttestor::new(ka.clone()), RemoteVerifier::new(ka))
    }

    #[test]
    fn honest_report_verifies() {
        let (attestor, verifier) = keypair();
        let digest = vec![7u8; 20];
        let report = attestor.attest(&record(digest.clone()), b"nonce-1");
        assert_eq!(verifier.verify(&report, b"nonce-1", &digest), Ok(()));
    }

    #[test]
    fn forged_mac_rejected() {
        let (attestor, verifier) = keypair();
        let digest = vec![7u8; 20];
        let mut report = attestor.attest(&record(digest.clone()), b"n");
        report.mac[0] ^= 1;
        assert_eq!(
            verifier.verify(&report, b"n", &digest),
            Err(VerifyError::BadMac)
        );
    }

    #[test]
    fn tampered_digest_breaks_mac() {
        let (attestor, verifier) = keypair();
        let digest = vec![7u8; 20];
        let mut report = attestor.attest(&record(digest.clone()), b"n");
        report.digest[0] ^= 1;
        assert_eq!(
            verifier.verify(&report, b"n", &digest),
            Err(VerifyError::BadMac)
        );
    }

    #[test]
    fn replayed_nonce_rejected() {
        let (attestor, verifier) = keypair();
        let digest = vec![7u8; 20];
        let report = attestor.attest(&record(digest.clone()), b"old-nonce");
        assert_eq!(
            verifier.verify(&report, b"fresh-nonce", &digest),
            Err(VerifyError::NonceMismatch)
        );
    }

    #[test]
    fn wrong_software_detected() {
        let (attestor, verifier) = keypair();
        let report = attestor.attest(&record(vec![7u8; 20]), b"n");
        let expected = vec![8u8; 20];
        assert!(matches!(
            verifier.verify(&report, b"n", &expected),
            Err(VerifyError::DigestMismatch { .. })
        ));
    }

    #[test]
    fn wrong_platform_key_rejected() {
        let (attestor, _) = keypair();
        let other_kp = PlatformKey::from_bytes([4u8; 20]);
        let other_verifier = RemoteVerifier::new(other_kp.derive(ATTEST_PURPOSE));
        let digest = vec![7u8; 20];
        let report = attestor.attest(&record(digest.clone()), b"n");
        assert_eq!(
            other_verifier.verify(&report, b"n", &digest),
            Err(VerifyError::BadMac)
        );
    }

    #[test]
    fn device_report_verifies_and_detects_set_changes() {
        let (attestor, verifier) = keypair();
        let a = record(vec![1u8; 20]);
        let b = {
            let mut r = record(vec![2u8; 20]);
            r.handle = TaskHandle::from_index(1);
            r
        };
        let records = [a.clone(), b.clone()];
        let report = attestor.attest_device(records.iter(), b"dev-nonce");
        let expected = vec![(a.id, a.digest.clone()), (b.id, b.digest.clone())];
        assert_eq!(
            verifier.verify_device(&report, b"dev-nonce", &expected),
            Ok(())
        );

        // Missing task detected.
        let short = vec![(a.id, a.digest.clone())];
        assert!(matches!(
            verifier.verify_device(&report, b"dev-nonce", &short),
            Err(VerifyError::DigestMismatch { .. })
        ));
        // Forged MAC detected.
        let mut forged = report.clone();
        forged.mac[0] ^= 1;
        assert_eq!(
            verifier.verify_device(&forged, b"dev-nonce", &expected),
            Err(VerifyError::BadMac)
        );
        // Replay detected.
        assert_eq!(
            verifier.verify_device(&report, b"other", &expected),
            Err(VerifyError::NonceMismatch)
        );
    }

    #[test]
    fn device_report_order_independent_expectations() {
        let (attestor, verifier) = keypair();
        let a = record(vec![1u8; 20]);
        let b = {
            let mut r = record(vec![2u8; 20]);
            r.handle = TaskHandle::from_index(1);
            r
        };
        let report = attestor.attest_device([a.clone(), b.clone()].iter(), b"n");
        // Expected list given in reverse order still verifies.
        let expected = vec![(b.id, b.digest.clone()), (a.id, a.digest.clone())];
        assert_eq!(verifier.verify_device(&report, b"n", &expected), Ok(()));
    }

    #[test]
    fn report_serialization_roundtrip() {
        let (attestor, _) = keypair();
        let report = attestor.attest(&record(vec![9u8; 20]), b"serialize-me");
        let parsed = AttestationReport::from_bytes(&report.to_bytes()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn truncated_report_rejected() {
        let (attestor, _) = keypair();
        let bytes = attestor.attest(&record(vec![9u8; 20]), b"n").to_bytes();
        for len in 0..bytes.len() {
            assert!(
                AttestationReport::from_bytes(&bytes[..len]).is_none(),
                "len {len}"
            );
        }
    }
}
