//! The TyTAN platform: secure boot, trusted components, and the run loop.
//!
//! [`Platform`] assembles every piece of Figure 1 of the paper on top of
//! the simulated core:
//!
//! - **Secure boot**: the trusted software components (interrupt
//!   multiplexer stubs, entry thunks) are loaded, measured against the
//!   manufacturer's reference value, and protected by static EA-MPU rules
//!   before anything untrusted runs; the platform key is installed in a
//!   region only trusted code can read.
//! - **Int Mux**: all interrupt vectors route through trusted save stubs
//!   that store the interrupted context to the task's own stack and wipe
//!   the registers (Table 2) before the untrusted OS sees control.
//! - **Dynamic loading**: [`Platform::begin_load`] starts an interruptible
//!   [`LoadJob`]; slices run whenever the kernel idles, so concurrently
//!   scheduled tasks keep their deadlines while a task loads (Table 1).
//! - **Secure IPC**: the `INT 0x30` proxy authenticates the sender from
//!   the hardware interrupt origin, resolves the receiver through the
//!   RTM's task list, and writes message + sender identity into the
//!   receiver's mailbox (§4).
//! - **Attestation and storage**: local attestation reads the RTM list;
//!   remote attestation MACs it under `K_a`; the secure-storage task seals
//!   blobs under per-task keys `K_t`.
//!
//! # Examples
//!
//! ```
//! use tytan::platform::{Platform, PlatformConfig};
//! use tytan::toolchain::SecureTaskBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut platform: Platform = Platform::boot(PlatformConfig::default())?;
//! let task = SecureTaskBuilder::new("hello", "main:\nspin:\n jmp spin\n").build()?;
//! let token = platform.begin_load(&task, 2);
//! let (handle, id) = platform.wait_load(token, 10_000_000)?;
//! assert!(platform.local_attest(id).is_some());
//! # let _ = handle;
//! # Ok(())
//! # }
//! ```

use crate::allocator::Allocator;
use crate::attest::{AttestationReport, CfaReport, RemoteAttestor, ATTEST_PURPOSE};
use crate::driver::{self, TrustedActors};
use crate::loader::{LoadError, LoadJob, LoadPhase, LoadProgress, LoadReport};
use crate::rtm::Rtm;
use crate::storage::{SecureStorage, StorageError};
use crate::toolchain::{mailbox, TaskSource};
use eampu::{Perms, Region, Rule};
use rtos::kernel::SyscallOutcome;
use rtos::stubs::{build_stub_block_with_table, StubBlock, StubKind, StubSpec};
use rtos::{layout, Kernel, KernelConfig, KernelError, TaskHandle};
use sp32::Reg;
use sp_emu::devices::{Actuator, Sensor, Timer, Uart};
use sp_emu::{Event, Fault, Machine, MachineConfig};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use tytan_crypto::{Digest, PlatformKey, Sha1, SymmetricKey, TaskId};
use tytan_profile::{CycleProfiler, Report, SymbolMap};
use tytan_trace::hist::HistId;
use tytan_trace::{EventKind, Layer, Tracer};

/// Where the hardware platform key `K_p` lives (readable by trusted
/// components only, enforced by a static EA-MPU rule).
pub const PLATFORM_KEY_BASE: u32 = 0x0000_3f00;

/// The reserved sender identity for hardware-originated mailbox messages
/// (device IRQs routed by the Int Mux).
pub const HARDWARE_ID: TaskId = TaskId::from_u64(u64::MAX);

/// IPC proxy status codes written into the sender's saved `r0`.
pub mod ipc_status {
    /// Message delivered.
    pub const OK: u32 = 0;
    /// The sender is not a measured (secure) task.
    pub const UNKNOWN_SENDER: u32 = 1;
    /// No loaded task has the requested identity.
    pub const NO_RECEIVER: u32 = 2;
}

/// Construction parameters for [`Platform::boot`].
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Machine parameters.
    pub machine: MachineConfig,
    /// Cycles between kernel ticks (32,000 ≈ 1.5 kHz at 48 MHz).
    pub tick_interval: u64,
    /// The hardware platform key `K_p`.
    pub platform_key: [u8; 20],
    /// Hash blocks the RTM processes per scheduling slice.
    pub rtm_blocks_per_slice: u32,
    /// Whether loading yields to interrupts between slices (TyTAN) or
    /// runs to completion uninterruptibly (the Table 1 ablation).
    pub interruptible_load: bool,
    /// Kill a faulting task and continue, instead of stopping the
    /// platform (the production behaviour for EA-MPU violations).
    pub kill_on_fault: bool,
    /// Fault-injection hook: flip this byte offset of the trusted-stub
    /// image after loading (secure boot must then fail).
    pub corrupt_trusted_byte: Option<u32>,
    /// Use the hardware-assisted context save instead of the Int Mux
    /// software stub (§4's latency/hardware trade-off; ablation bench).
    pub hardware_context_save: bool,
    /// Extra device IRQ vectors to route through the Int Mux (bind them
    /// to tasks with [`Platform::bind_irq`]).
    pub device_irq_vectors: Vec<u8>,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            machine: MachineConfig::default(),
            tick_interval: 32_000,
            platform_key: [0x42; 20],
            rtm_blocks_per_slice: 2,
            interruptible_load: true,
            kill_on_fault: true,
            corrupt_trusted_byte: None,
            hardware_context_save: false,
            device_irq_vectors: Vec::new(),
        }
    }
}

/// Errors from platform operations.
#[derive(Debug)]
pub enum PlatformError {
    /// Secure boot measured an unexpected trusted-component image.
    SecureBootMeasurementMismatch,
    /// A machine fault outside any killable task context.
    Fault(Fault),
    /// A kernel operation failed.
    Kernel(KernelError),
    /// A load failed.
    Load(LoadError),
    /// The handle or id does not name a loaded task.
    NoSuchTask,
    /// The task is not a measured secure task (no identity).
    NotSecure,
    /// Secure storage refused the operation.
    Storage(StorageError),
    /// Execution reached an unexpected firmware trap.
    UnexpectedTrap(u32),
    /// The load token does not name a load job.
    BadToken,
    /// Control-flow attestation was requested but no usable evidence
    /// exists: no monitor armed, the monitor watches a different task,
    /// or the edge log overflowed and was truncated (an honest device
    /// refuses to attest a partial run).
    NoCfEvidence,
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::SecureBootMeasurementMismatch => {
                write!(f, "secure boot: trusted components failed verification")
            }
            PlatformError::Fault(fault) => write!(f, "machine fault: {fault}"),
            PlatformError::Kernel(e) => write!(f, "kernel error: {e}"),
            PlatformError::Load(e) => write!(f, "load error: {e}"),
            PlatformError::NoSuchTask => write!(f, "no such task"),
            PlatformError::NotSecure => write!(f, "task is not a measured secure task"),
            PlatformError::Storage(e) => write!(f, "storage error: {e}"),
            PlatformError::UnexpectedTrap(addr) => {
                write!(f, "unexpected firmware trap at {addr:#010x}")
            }
            PlatformError::BadToken => write!(f, "invalid load token"),
            PlatformError::NoCfEvidence => {
                write!(f, "no usable control-flow evidence for this task")
            }
        }
    }
}

impl std::error::Error for PlatformError {}

impl From<Fault> for PlatformError {
    fn from(e: Fault) -> Self {
        PlatformError::Fault(e)
    }
}

impl From<KernelError> for PlatformError {
    fn from(e: KernelError) -> Self {
        PlatformError::Kernel(e)
    }
}

impl From<LoadError> for PlatformError {
    fn from(e: LoadError) -> Self {
        PlatformError::Load(e)
    }
}

impl From<StorageError> for PlatformError {
    fn from(e: StorageError) -> Self {
        PlatformError::Storage(e)
    }
}

/// Handle of a load started with [`Platform::begin_load`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadToken(usize);

/// Status of a load job.
#[derive(Debug, Clone)]
pub enum LoadStatus {
    /// The job is waiting for idle CPU time or mid-phase.
    InProgress(LoadPhase),
    /// The task is loaded and scheduled.
    Done {
        /// Scheduler handle.
        handle: TaskHandle,
        /// Measured identity (zero for normal tasks).
        id: TaskId,
        /// Per-phase cycle report.
        report: LoadReport,
    },
    /// The load failed; resources were released.
    Failed(LoadError),
}

enum JobSlot<D: Digest> {
    Running(Box<LoadJob<D>>),
    Done {
        handle: TaskHandle,
        id: TaskId,
        report: LoadReport,
    },
    Failed(LoadError),
}

/// A fault recorded (and survived) during execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Cycle at which the fault occurred.
    pub cycle: u64,
    /// The task that was killed, if the fault occurred in task context.
    pub task: Option<TaskHandle>,
    /// The fault.
    pub fault: Fault,
}

/// The booted TyTAN platform. Generic over the measurement hash `D`
/// (SHA-1 by default, per the paper; pluggable per its footnote 8).
pub struct Platform<D: Digest = Sha1> {
    machine: Machine,
    kernel: Kernel,
    stubs: StubBlock,
    actors: TrustedActors,
    allocator: Allocator,
    rtm: Rtm,
    storage: SecureStorage,
    attestor: RemoteAttestor,
    attestation_key: SymmetricKey,
    jobs: Vec<JobSlot<D>>,
    irq_bindings: BTreeMap<u8, (TaskId, u32)>,
    rtm_blocks_per_slice: u32,
    interruptible_load: bool,
    kill_on_fault: bool,
    boot_measurement: Vec<u8>,
    faults: Vec<FaultRecord>,
    last_steal_tick: u64,
    started: bool,
    device_handles: BTreeMap<&'static str, usize>,
    tracer: Option<Tracer>,
    lat: Option<LatencyIds>,
    profiler: Option<CycleProfiler>,
    symbols: SymbolMap,
    restore_stamp: Option<u64>,
}

/// Histogram ids for the platform's latency distributions, registered
/// once in [`Platform::attach_tracer`]. Names are the `lat_` family the
/// bench baseline gate keys on.
struct LatencyIds {
    irq_entry: HistId,
    ctx_save: HistId,
    ctx_restore: HistId,
    ipc_rtt: HistId,
    attest: HistId,
    load_total: HistId,
    load_alloc: HistId,
    load_copy: HistId,
    load_reloc: HistId,
    load_mpu: HistId,
    load_rtm: HistId,
    load_register: HistId,
}

/// Chrome-trace thread ids for `core`-layer platform phases. The loader
/// gets one track per load job (concurrent loads must not nest their
/// spans into each other), IPC and attestation each get a fixed track.
const TRACE_TID_IPC: u32 = 1;
const TRACE_TID_ATTEST: u32 = 2;
const TRACE_TID_LOADER_BASE: u32 = 16;

fn loader_tid(job_index: usize) -> u32 {
    TRACE_TID_LOADER_BASE.saturating_add(job_index as u32)
}

impl<D: Digest> fmt::Debug for Platform<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Platform")
            .field("cycles", &self.machine.cycles())
            .field("tasks", &self.kernel.handles().len())
            .field("measured", &self.rtm.len())
            .finish_non_exhaustive()
    }
}

impl<D: Digest> Platform<D> {
    /// Performs secure boot and returns the running platform.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::SecureBootMeasurementMismatch`] if the
    /// trusted components fail verification, or a fault from boot-time
    /// memory writes.
    pub fn boot(config: PlatformConfig) -> Result<Self, PlatformError> {
        let mut machine_config = config.machine.clone();
        machine_config.hw_context_save = config.hardware_context_save;
        let mut machine = Machine::new(machine_config);

        // Devices: tick timer, UART, and the automotive sensors/actuator
        // of the paper's use case.
        let mut timer = Timer::new(layout::TIMER_BASE, layout::TICK_VECTOR);
        timer.configure(config.tick_interval, true);
        let mut device_handles = BTreeMap::new();
        device_handles.insert("timer", machine.add_device(Box::new(timer)));
        device_handles.insert(
            "uart",
            machine.add_device(Box::new(Uart::new(layout::UART_BASE))),
        );
        device_handles.insert(
            "pedal",
            machine.add_device(Box::new(Sensor::new(layout::PEDAL_BASE, 0))),
        );
        device_handles.insert(
            "radar",
            machine.add_device(Box::new(Sensor::new(layout::RADAR_BASE, 0))),
        );
        device_handles.insert(
            "actuator",
            machine.add_device(Box::new(Actuator::new(layout::ACTUATOR_BASE))),
        );

        // Trusted components: Int Mux save stubs (wiping), the syscall
        // stub (argument-preserving), the restore stub and the idle loop.
        let (tick_kind, syscall_kind) = if config.hardware_context_save {
            // The exception engine saves and wipes in hardware; stubs
            // reduce to vector identification. Syscall arguments are
            // restored from the frame by the kernel in this mode.
            (StubKind::HwAssisted, StubKind::Syscall)
        } else {
            (StubKind::IntMux, StubKind::Syscall)
        };
        let mut specs = vec![
            StubSpec {
                vector: layout::TICK_VECTOR,
                kind: tick_kind,
            },
            StubSpec {
                vector: layout::SYSCALL_VECTOR,
                kind: syscall_kind,
            },
            StubSpec {
                vector: layout::IPC_VECTOR,
                kind: tick_kind,
            },
        ];
        for &vector in &config.device_irq_vectors {
            specs.push(StubSpec {
                vector,
                kind: tick_kind,
            });
        }
        let stubs = build_stub_block_with_table(
            layout::TRUSTED_BASE,
            layout::KERNEL_TRAP,
            &specs,
            Some(layout::INT_DISPATCH_TABLE),
        )
        .expect("stub generation is infallible for valid specs");
        machine.load_image(layout::TRUSTED_BASE, &stubs.program.bytes)?;

        // Initialise the Int Mux dispatch table: every serviced vector
        // routes to the OS kernel trap; unassigned vectors stay 0 and the
        // stub's validity check falls back to the trap directly.
        let mut routed = vec![
            layout::TICK_VECTOR,
            layout::SYSCALL_VECTOR,
            layout::IPC_VECTOR,
        ];
        routed.extend_from_slice(&config.device_irq_vectors);
        for vector in routed {
            machine.write_word(
                layout::INT_DISPATCH_TABLE + 4 * u32::from(vector),
                layout::KERNEL_TRAP,
            )?;
        }
        machine.write_word(layout::INTMUX_BUSY_FLAG, 0)?;

        // Fault-injection hook for the tampered-boot experiment.
        if let Some(offset) = config.corrupt_trusted_byte {
            let addr = layout::TRUSTED_BASE + (offset % stubs.program.bytes.len() as u32);
            let byte = machine.read_byte(addr)?;
            machine.write_byte(addr, byte ^ 0xff)?;
        }

        // Secure boot: measure the trusted components and verify against
        // the manufacturer's reference (the pristine image digest).
        let mut loaded = vec![0u8; stubs.program.bytes.len()];
        for (i, byte) in loaded.iter_mut().enumerate() {
            *byte = machine.read_byte(layout::TRUSTED_BASE + i as u32)?;
        }
        let boot_measurement = D::digest(&loaded);
        let reference = D::digest(&stubs.program.bytes);
        if boot_measurement != reference {
            return Err(PlatformError::SecureBootMeasurementMismatch);
        }

        // The IDT: static base register, entries to the trusted stubs.
        machine.set_idt_base(layout::IDT_BASE);
        machine.set_idt_entry(layout::TICK_VECTOR, stubs.save_stubs[&layout::TICK_VECTOR])?;
        machine.set_idt_entry(
            layout::SYSCALL_VECTOR,
            stubs.save_stubs[&layout::SYSCALL_VECTOR],
        )?;
        machine.set_idt_entry(layout::IPC_VECTOR, stubs.save_stubs[&layout::IPC_VECTOR])?;
        for &vector in &config.device_irq_vectors {
            machine.set_idt_entry(vector, stubs.save_stubs[&vector])?;
        }
        machine.add_firmware_trap(layout::KERNEL_TRAP);

        // Install the platform key in its protected region.
        for (i, chunk) in config.platform_key.chunks(4).enumerate() {
            let mut word = [0u8; 4];
            word[..chunk.len()].copy_from_slice(chunk);
            machine.write_word(PLATFORM_KEY_BASE + 4 * i as u32, u32::from_le_bytes(word))?;
        }

        // Static EA-MPU rules (secure boot privilege, slots 0..):
        // protect the IDT and the platform key; both rules' code region is
        // the trusted region, which simultaneously makes the trusted code
        // itself a protected, entry-point-enforced region.
        let trusted_region = Region::new(layout::TRUSTED_BASE, layout::TRUSTED_CODE_LEN);
        let trusted_entry = stubs.save_stubs[&layout::TICK_VECTOR];
        let idt_region = Region::new(layout::IDT_BASE, layout::IDT_VECTORS * 4);
        let key_region = Region::new(PLATFORM_KEY_BASE, 20);
        let trusted_data = Region::new(layout::TRUSTED_DATA_BASE, layout::TRUSTED_DATA_LEN);
        machine.mpu_mut().set_rule(
            0,
            Rule::new(trusted_region, trusted_entry, idt_region, Perms::R),
        );
        machine.mpu_mut().set_rule(
            1,
            Rule::new(trusted_region, trusted_entry, key_region, Perms::R),
        );
        machine.mpu_mut().set_rule(
            2,
            Rule::new(trusted_region, trusted_entry, trusted_data, Perms::RW),
        );

        let actors = TrustedActors {
            trusted: trusted_region,
            kernel: Region::new(layout::KERNEL_BASE, layout::KERNEL_CODE_LEN),
            kernel_entry: layout::KERNEL_TRAP,
        };

        // Derive K_a by reading K_p through the EA-MPU as trusted code
        // (exercising the key-protection rule).
        let mut kp_bytes = [0u8; 20];
        for i in 0..5u32 {
            let word =
                machine.checked_read_word(actors.trusted_actor(), PLATFORM_KEY_BASE + 4 * i)?;
            kp_bytes[4 * i as usize..4 * i as usize + 4].copy_from_slice(&word.to_le_bytes());
        }
        let platform_key = PlatformKey::from_bytes(kp_bytes);
        let attestation_key = platform_key.derive(ATTEST_PURPOSE);
        let attestor = RemoteAttestor::new(attestation_key.clone());
        let storage = SecureStorage::new(platform_key);

        let kernel = Kernel::new(KernelConfig {
            restore_stub: stubs.restore_stub,
            idle_addr: stubs.idle,
            kernel_stack_top: layout::KERNEL_STACK_TOP,
            kernel_actor: layout::KERNEL_BASE,
            num_priorities: 8,
        });

        Ok(Platform {
            machine,
            kernel,
            stubs,
            actors,
            allocator: Allocator::new(layout::HEAP_BASE, layout::HEAP_END - layout::HEAP_BASE),
            rtm: Rtm::new(),
            storage,
            attestor,
            attestation_key,
            jobs: Vec::new(),
            irq_bindings: BTreeMap::new(),
            rtm_blocks_per_slice: config.rtm_blocks_per_slice.max(1),
            interruptible_load: config.interruptible_load,
            kill_on_fault: config.kill_on_fault,
            boot_measurement,
            faults: Vec::new(),
            last_steal_tick: 0,
            started: false,
            device_handles,
            tracer: None,
            lat: None,
            profiler: None,
            symbols: SymbolMap::new(),
            restore_stamp: None,
        })
    }

    // ----- accessors -----

    /// Attaches the shared cross-layer trace sink to every layer at once:
    /// the machine (instruction classes, predecode cache, MMIO, IRQ spans)
    /// and through it the EA-MPU (decision-cache hits, denials), the
    /// kernel's scheduling trace (forwarded as `rtos`-layer events), and
    /// the platform itself (`core`-layer loader spans, IPC-proxy spans,
    /// and attestation phase markers).
    ///
    /// All instrumentation is host-side: it never ticks the machine or
    /// changes a decision, so traced and untraced runs are cycle-identical
    /// (the differential suites assert this).
    /// Attaching also registers the platform's latency histograms
    /// (`lat_irq_entry`, `lat_ctx_save`, `lat_ctx_restore`, `lat_ipc_rtt`,
    /// `lat_attest`, and the `lat_load_*` phase family) in the tracer's
    /// shared registry; they record even when the sink is a
    /// [`tytan_trace::NullSink`].
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        let h = tracer.histograms();
        self.lat = Some(LatencyIds {
            irq_entry: h.register("lat_irq_entry"),
            ctx_save: h.register("lat_ctx_save"),
            ctx_restore: h.register("lat_ctx_restore"),
            ipc_rtt: h.register("lat_ipc_rtt"),
            attest: h.register("lat_attest"),
            load_total: h.register("lat_load_total"),
            load_alloc: h.register("lat_load_alloc"),
            load_copy: h.register("lat_load_copy"),
            load_reloc: h.register("lat_load_reloc"),
            load_mpu: h.register("lat_load_mpu"),
            load_rtm: h.register("lat_load_rtm"),
            load_register: h.register("lat_load_register"),
        });
        self.machine.attach_tracer(tracer.clone());
        self.kernel.trace_mut().set_sink(tracer.clone());
        self.tracer = Some(tracer);
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Records one latency sample (no-op until a tracer is attached).
    fn record_lat(&self, pick: impl Fn(&LatencyIds) -> HistId, value: u64) {
        if let (Some(tracer), Some(lat)) = (&self.tracer, &self.lat) {
            tracer.histograms().record(pick(lat), value);
        }
    }

    /// Attaches the exact guest-cycle profiler to the machine's step path
    /// and seeds the platform's [`SymbolMap`] with the trusted-component
    /// layout: one symbol per Int Mux stub phase (`v{N}_save`,
    /// `v{N}_wipe`, `v{N}_branch`), the shared `restore` and `idle`
    /// routines, a whole-region `[trusted]` fallback, and the kernel
    /// firmware-trap address (all host-modelled kernel service time is
    /// charged there). Tasks loaded *after* this call are symbolized
    /// automatically through their image's recovered function table —
    /// attach before loading anything you want named in the flamegraph.
    ///
    /// Like the tracer, the profiler is host-side only: attached and
    /// detached runs are cycle-identical.
    pub fn attach_profiler(&mut self, profiler: CycleProfiler) {
        self.machine
            .attach_cycle_observer(Arc::new(profiler.clone()));
        self.register_trusted_symbols();
        self.profiler = Some(profiler);
    }

    /// The attached profiler, if any.
    pub fn profiler(&self) -> Option<&CycleProfiler> {
        self.profiler.as_ref()
    }

    /// The platform-maintained symbol map (trusted stubs, kernel trap,
    /// and every task loaded while the profiler was attached).
    pub fn symbols(&self) -> &SymbolMap {
        &self.symbols
    }

    /// Folds the attached profiler's buckets through the platform symbol
    /// map into a flamegraph-ready [`Report`].
    pub fn profile_report(&self) -> Option<Report> {
        self.profiler.as_ref().map(|p| p.report(&self.symbols))
    }

    /// Closes any still-open IRQ trace spans (see
    /// [`Machine::flush_trace`]); call once after the last `run_for` when
    /// exporting a trace.
    pub fn flush_trace(&mut self) {
        self.machine.flush_trace();
    }

    fn register_trusted_symbols(&mut self) {
        const TRUSTED: &str = "[trusted]";
        let mut starts: Vec<(u32, String)> = Vec::new();
        for (&vector, &addr) in &self.stubs.save_stubs {
            starts.push((addr, format!("v{vector}_save")));
        }
        for (&vector, &addr) in &self.stubs.wipe_starts {
            starts.push((addr, format!("v{vector}_wipe")));
        }
        for (&vector, &addr) in &self.stubs.branch_starts {
            starts.push((addr, format!("v{vector}_branch")));
        }
        starts.push((self.stubs.restore_stub, "restore".to_string()));
        starts.push((self.stubs.idle, "idle".to_string()));
        starts.sort();
        let region_end = layout::TRUSTED_BASE + self.stubs.program.bytes.len() as u32;
        self.symbols
            .add_function(layout::TRUSTED_BASE, region_end, TRUSTED, "[text]");
        for (i, (start, name)) in starts.iter().enumerate() {
            let end = starts
                .get(i + 1)
                .map(|(next, _)| *next)
                .unwrap_or(region_end);
            self.symbols.add_function(*start, end, TRUSTED, name);
        }
        // Host-modelled kernel/firmware service time is charged at the
        // trap address the machine stopped on.
        self.symbols.add_function(
            layout::KERNEL_TRAP,
            layout::KERNEL_TRAP + 4,
            "[kernel]",
            "trap",
        );
    }

    /// Emits a `core`-layer event at the current cycle (no-op untraced).
    fn trace_core(&self, tid: u32, kind: EventKind) {
        if let Some(t) = &self.tracer {
            t.emit(Layer::Core, tid, self.machine.cycles(), kind);
        }
    }

    /// The machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to the machine.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Mutable access to the kernel.
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// The RTM's measurement list.
    pub fn rtm(&self) -> &Rtm {
        &self.rtm
    }

    /// The trusted stub block (phase-boundary addresses for benches).
    pub fn stubs(&self) -> &StubBlock {
        &self.stubs
    }

    /// The trusted/kernel actor regions.
    pub fn actors(&self) -> TrustedActors {
        self.actors
    }

    /// The secure-boot measurement of the trusted components.
    pub fn boot_measurement(&self) -> &[u8] {
        &self.boot_measurement
    }

    /// The attestation key `K_a` — exported once to the verifier by the
    /// device manufacturer in the paper's model.
    pub fn attestation_key(&self) -> SymmetricKey {
        self.attestation_key.clone()
    }

    /// Faults that were recorded (and survived via task kill).
    pub fn faults(&self) -> &[FaultRecord] {
        &self.faults
    }

    /// A device, downcast to its concrete type (`"timer"`, `"uart"`,
    /// `"pedal"`, `"radar"`, `"actuator"`).
    pub fn device<T: sp_emu::Device + 'static>(&self, name: &str) -> Option<&T> {
        self.machine.device::<T>(*self.device_handles.get(name)?)
    }

    /// Mutable device access by name.
    pub fn device_mut<T: sp_emu::Device + 'static>(&mut self, name: &str) -> Option<&mut T> {
        self.machine
            .device_mut::<T>(*self.device_handles.get(name)?)
    }

    /// Everything written to the UART so far.
    pub fn uart_output(&self) -> String {
        self.device::<Uart>("uart")
            .map(|u| u.output_string())
            .unwrap_or_default()
    }

    /// The load base of a task.
    pub fn task_base(&self, handle: TaskHandle) -> Option<u32> {
        self.kernel.task(handle).map(|t| t.params.code.start())
    }

    /// The measured identity of a secure task.
    pub fn task_id(&self, handle: TaskHandle) -> Option<TaskId> {
        self.rtm.lookup_by_handle(handle).map(|r| r.id)
    }

    /// Reads a word of task memory through the debug port (bypasses the
    /// EA-MPU; test/benchmark harness only).
    ///
    /// # Errors
    ///
    /// Returns a bus fault for an unmapped address.
    pub fn debug_read_word(&mut self, addr: u32) -> Result<u32, PlatformError> {
        Ok(self.machine.read_word(addr)?)
    }

    // ----- task lifecycle -----

    /// Queues a task load; work happens during idle CPU time as the
    /// platform runs (call [`Platform::run_for`] or
    /// [`Platform::wait_load`]).
    pub fn begin_load(&mut self, source: &TaskSource, priority: u8) -> LoadToken {
        let job = LoadJob::new(source.image.clone(), source.mailbox_offset, priority);
        self.jobs.push(JobSlot::Running(Box::new(job)));
        let token = LoadToken(self.jobs.len() - 1);
        self.trace_core(loader_tid(token.0), EventKind::Enter("load"));
        token
    }

    /// Like [`Platform::begin_load`], but the job first runs the static
    /// verifier ([`tytan_lint`]) against `policy`; a proven policy
    /// violation fails the load with [`LoadError::LintRejected`] before
    /// any memory is touched. Verification is host-side and costs zero
    /// guest cycles.
    pub fn begin_load_verified(
        &mut self,
        source: &TaskSource,
        priority: u8,
        policy: tytan_lint::LintPolicy,
    ) -> LoadToken {
        let job = LoadJob::new(source.image.clone(), source.mailbox_offset, priority)
            .with_verification(policy);
        self.jobs.push(JobSlot::Running(Box::new(job)));
        let token = LoadToken(self.jobs.len() - 1);
        self.trace_core(loader_tid(token.0), EventKind::Enter("load"));
        token
    }

    /// The status of a load job.
    pub fn load_status(&self, token: LoadToken) -> Result<LoadStatus, PlatformError> {
        match self.jobs.get(token.0) {
            Some(JobSlot::Running(job)) => Ok(LoadStatus::InProgress(job.phase())),
            Some(JobSlot::Done { handle, id, report }) => Ok(LoadStatus::Done {
                handle: *handle,
                id: *id,
                report: *report,
            }),
            Some(JobSlot::Failed(e)) => Ok(LoadStatus::Failed(e.clone())),
            None => Err(PlatformError::BadToken),
        }
    }

    /// Runs the platform until the load completes (or `max_cycles` pass).
    ///
    /// # Errors
    ///
    /// Returns the load failure, or [`PlatformError::Load`] with the
    /// last in-progress state if the budget ran out.
    pub fn wait_load(
        &mut self,
        token: LoadToken,
        max_cycles: u64,
    ) -> Result<(TaskHandle, TaskId), PlatformError> {
        let deadline = self.machine.cycles().saturating_add(max_cycles);
        loop {
            match self.load_status(token)? {
                LoadStatus::Done { handle, id, .. } => return Ok((handle, id)),
                LoadStatus::Failed(e) => return Err(PlatformError::Load(e)),
                LoadStatus::InProgress(_) => {
                    if self.machine.cycles() >= deadline {
                        return Err(PlatformError::Load(LoadError::Kernel(
                            KernelError::NoSuchTask,
                        )));
                    }
                    self.run_for(20_000)?;
                }
            }
        }
    }

    /// Unloads a task: scheduler removal, EA-MPU rule teardown, memory
    /// reclamation, RTM de-registration (§4 "unloading a task").
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoSuchTask`] for a dead handle.
    pub fn unload_task(&mut self, handle: TaskHandle) -> Result<(), PlatformError> {
        let now = self.machine.cycles();
        let tcb = self
            .kernel
            .delete_task(handle, now)
            .map_err(|_| PlatformError::NoSuchTask)?;
        driver::remove_task_rules(self.machine.mpu_mut(), tcb.params.code, tcb.params.data);
        self.machine.clear_resume_latches_in(tcb.params.code);
        let _ = self.allocator.free(tcb.params.code.start());
        self.rtm.remove_by_handle(handle);
        Ok(())
    }

    /// Suspends a task (loaded but not executing).
    ///
    /// Suspending the *currently running* task synthesises the interrupt
    /// frame the Int Mux would have saved (the host-side equivalent of
    /// preempting it first) and reschedules.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoSuchTask`] for a dead handle.
    pub fn suspend_task(&mut self, handle: TaskHandle) -> Result<(), PlatformError> {
        if self.kernel.current() == Some(handle) {
            // Save the live context exactly as the exception engine and
            // the Int Mux stub would: EFLAGS, EIP, then r0..r6.
            self.machine.push_word(self.machine.eflags())?;
            self.machine.push_word(self.machine.eip())?;
            self.machine.arm_resume_latch(self.machine.eip());
            for i in 0..=6u32 {
                let value = self.machine.reg(sp32::Reg::from_index(i).expect("r0..r6"));
                self.machine.push_word(value)?;
            }
            self.kernel.save_current(&self.machine);
        }
        let now = self.machine.cycles();
        self.kernel
            .suspend_task(handle, now)
            .map_err(|_| PlatformError::NoSuchTask)?;
        if self.kernel.current().is_none() {
            self.kernel.dispatch(&mut self.machine)?;
        }
        Ok(())
    }

    /// Resumes a suspended task.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoSuchTask`] for a dead handle.
    pub fn resume_task(&mut self, handle: TaskHandle) -> Result<(), PlatformError> {
        let now = self.machine.cycles();
        self.kernel
            .resume_task(handle, now)
            .map_err(|_| PlatformError::NoSuchTask)
    }

    /// Updates a task at runtime (the paper's §8 future work): loads the
    /// new version *while the old one keeps running* — no service gap
    /// beyond one scheduling decision — then migrates the listed
    /// secure-storage blobs to the new identity and unloads the old
    /// version.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoSuchTask`] for a dead handle, load
    /// failures, or storage migration errors; on failure the old version
    /// keeps running.
    pub fn update_task(
        &mut self,
        old: TaskHandle,
        source: &TaskSource,
        priority: u8,
        max_cycles: u64,
        migrate_storage: &[&str],
    ) -> Result<(TaskHandle, TaskId), PlatformError> {
        let old_id = self.task_id(old);
        if self.kernel.task(old).is_none() {
            return Err(PlatformError::NoSuchTask);
        }
        // Phase 1: bring the new version up alongside the old one (high
        // availability: the old version services requests throughout).
        let token = self.begin_load(source, priority);
        let (new_handle, new_id) = self.wait_load(token, max_cycles)?;

        // Phase 2: migrate sealed state to the new identity.
        if let Some(old_id) = old_id {
            for name in migrate_storage {
                self.storage.reseal(name, old_id, new_id)?;
            }
        }

        // Phase 3: retire the old version.
        self.unload_task(old)?;
        Ok((new_handle, new_id))
    }

    // ----- attestation and storage -----

    /// Local attestation: the task's measurement digest from the RTM list
    /// (trustworthy because only the RTM can write the list, §3).
    pub fn local_attest(&self, id: TaskId) -> Option<Vec<u8>> {
        self.trace_core(TRACE_TID_ATTEST, EventKind::Mark("local_attest"));
        self.rtm.lookup(id).map(|r| r.digest.clone())
    }

    /// Remote attestation: a MAC-authenticated report over `id`'s
    /// measurement for the verifier's `nonce`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoSuchTask`] if no task has that identity.
    pub fn remote_attest(
        &mut self,
        id: TaskId,
        nonce: &[u8],
    ) -> Result<AttestationReport, PlatformError> {
        let record = self.rtm.lookup(id).ok_or(PlatformError::NoSuchTask)?;
        self.trace_core(TRACE_TID_ATTEST, EventKind::Enter("remote_attest"));
        let begin = self.machine.cycles();
        let report = self.attestor.attest(record, nonce);
        // Two HMAC passes over a short message.
        let per_block = self.machine.firmware_costs().measure_per_block;
        self.machine.tick(4 * per_block);
        self.record_lat(|l| l.attest, self.machine.cycles().saturating_sub(begin));
        self.trace_core(TRACE_TID_ATTEST, EventKind::Exit("remote_attest"));
        Ok(report)
    }

    /// Device-level remote attestation: a MAC-authenticated report over
    /// the *entire* RTM task list for the verifier's `nonce`.
    pub fn remote_attest_device(&mut self, nonce: &[u8]) -> crate::attest::DeviceReport {
        self.trace_core(TRACE_TID_ATTEST, EventKind::Enter("remote_attest_device"));
        let report = self.attestor.attest_device(self.rtm.records(), nonce);
        let per_block = self.machine.firmware_costs().measure_per_block;
        self.machine
            .tick((2 + 2 * report.tasks.len() as u64) * per_block);
        self.trace_core(TRACE_TID_ATTEST, EventKind::Exit("remote_attest_device"));
        report
    }

    /// Arms the control-flow monitor over `id`'s code region, starting a
    /// fresh edge log and chain. Subsequent [`Platform::remote_attest_cfa`]
    /// calls seal everything recorded since this arm.
    ///
    /// The monitor is a host-side observer: it never ticks the machine
    /// and never changes a guest-visible outcome (the translated engine
    /// bypasses its block cache while a monitor is attached, which only
    /// changes host speed).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoSuchTask`] if no task has that identity.
    pub fn arm_cf_monitor(&mut self, id: TaskId) -> Result<(), PlatformError> {
        let region = self.rtm.lookup(id).ok_or(PlatformError::NoSuchTask)?.code;
        self.machine.attach_cf_monitor(region);
        self.trace_core(TRACE_TID_ATTEST, EventKind::Mark("arm_cf_monitor"));
        Ok(())
    }

    /// The attached control-flow monitor, if any.
    pub fn cf_monitor(&self) -> Option<&sp_emu::CfMonitor> {
        self.machine.cf_monitor()
    }

    /// Detaches and returns the control-flow monitor, if any.
    pub fn disarm_cf_monitor(&mut self) -> Option<sp_emu::CfMonitor> {
        self.machine.take_cf_monitor()
    }

    /// Control-flow remote attestation: a MAC-authenticated report over
    /// `id`'s measurement *and* the monitored run's edge log and chain
    /// head, for the verifier's `nonce`.
    ///
    /// The monitor stays armed: the log keeps accumulating and a later
    /// call seals the longer run (each report binds its own length and
    /// chain head, so prefixes and extensions are distinguishable).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoSuchTask`] if no task has that
    /// identity, or [`PlatformError::NoCfEvidence`] if no monitor is
    /// armed, the armed monitor watches a different task's code region,
    /// or the edge log overflowed ([`sp_emu::CF_LOG_CAP`]) — an honest
    /// device refuses to attest a truncated run.
    pub fn remote_attest_cfa(
        &mut self,
        id: TaskId,
        nonce: &[u8],
    ) -> Result<CfaReport, PlatformError> {
        let record = self.rtm.lookup(id).ok_or(PlatformError::NoSuchTask)?;
        let monitor = self
            .machine
            .cf_monitor()
            .ok_or(PlatformError::NoCfEvidence)?;
        if monitor.truncated() || monitor.region() != record.code {
            return Err(PlatformError::NoCfEvidence);
        }
        self.trace_core(TRACE_TID_ATTEST, EventKind::Enter("remote_attest_cfa"));
        let begin = self.machine.cycles();
        let runs = monitor.runs().len() as u64;
        let report = self
            .attestor
            .attest_cfa(record, nonce, monitor.runs(), monitor.chain_head());
        // Cost model: the chain fold is one SHA-1 compression per
        // *run* — the log is run-length encoded at record time, so
        // sealing cost scales with runs, not raw edges — (charged here,
        // where the trusted attest task seals the run), plus the same
        // two HMAC passes as a plain report.
        let per_block = self.machine.firmware_costs().measure_per_block;
        self.machine.tick((4 + runs) * per_block);
        self.record_lat(|l| l.attest, self.machine.cycles().saturating_sub(begin));
        self.trace_core(TRACE_TID_ATTEST, EventKind::Exit("remote_attest_cfa"));
        Ok(report)
    }

    /// Stores `data` in secure storage on behalf of `handle` (the request
    /// arrives over secure IPC in the paper, which authenticates the
    /// caller; here the caller is resolved through the RTM list).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NotSecure`] if the task has no measured
    /// identity.
    pub fn storage_store(
        &mut self,
        handle: TaskHandle,
        name: &str,
        data: &[u8],
    ) -> Result<(), PlatformError> {
        let id = self.task_id(handle).ok_or(PlatformError::NotSecure)?;
        let costs = self.machine.firmware_costs();
        self.machine
            .tick(costs.ipc_proxy + costs.measure_per_block * (2 + data.len() as u64 / 20));
        self.storage.store(id, name, data);
        Ok(())
    }

    /// Retrieves a sealed blob on behalf of `handle`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NotSecure`], or the storage error
    /// (not-found / cryptographic access denial).
    pub fn storage_retrieve(
        &mut self,
        handle: TaskHandle,
        name: &str,
    ) -> Result<Vec<u8>, PlatformError> {
        let id = self.task_id(handle).ok_or(PlatformError::NotSecure)?;
        let costs = self.machine.firmware_costs();
        self.machine
            .tick(costs.ipc_proxy + 2 * costs.measure_per_block);
        Ok(self.storage.retrieve(id, name)?)
    }

    /// Direct access to the secure-storage component (persistence across
    /// simulated reboots in examples).
    pub fn storage_mut(&mut self) -> &mut SecureStorage {
        &mut self.storage
    }

    // ----- IPC -----

    /// Sets up an EA-MPU-protected shared-memory window between two
    /// loaded tasks ("to efficiently transfer large amounts of data
    /// between tasks, the IPC proxy sets up shared memory that is
    /// accessible only to the communicating tasks", §3).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoSuchTask`], allocation failures, or
    /// EA-MPU policy errors.
    pub fn setup_shared_memory(
        &mut self,
        a: TaskHandle,
        b: TaskHandle,
        len: u32,
    ) -> Result<Region, PlatformError> {
        let (code_a, entry_a) = {
            let t = self.kernel.task(a).ok_or(PlatformError::NoSuchTask)?;
            (t.params.code, t.params.entry)
        };
        let (code_b, entry_b) = {
            let t = self.kernel.task(b).ok_or(PlatformError::NoSuchTask)?;
            (t.params.code, t.params.entry)
        };
        let region = self
            .allocator
            .alloc(len)
            .map_err(|e| PlatformError::Load(LoadError::Alloc(e)))?;
        let result = (|| {
            let first = self
                .machine
                .mpu_mut()
                .configure(Rule::new(code_a, entry_a, region, Perms::RW))
                .map_err(LoadError::Mpu)?;
            let second = match self.machine.mpu_mut().configure(Rule::new(
                code_b,
                entry_b,
                region,
                Perms::RW,
            )) {
                Ok(outcome) => outcome,
                Err(e) => {
                    self.machine.mpu_mut().clear_slot(first.slot);
                    return Err(LoadError::Mpu(e));
                }
            };
            self.machine.tick(first.cost.total() + second.cost.total());
            Ok(())
        })();
        match result {
            Ok(()) => Ok(region),
            Err(e) => {
                let _ = self.allocator.free(region.start());
                Err(PlatformError::Load(e))
            }
        }
    }

    /// Grants `handle` exclusive access to a device's MMIO registers by
    /// configuring an EA-MPU rule over them — afterwards no other task
    /// (and not the OS) can touch the device. This is how the use case
    /// gives the pedal-monitor task its sensor.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoSuchTask`] or an EA-MPU policy error.
    pub fn grant_exclusive_device(
        &mut self,
        handle: TaskHandle,
        mmio_base: u32,
        len: u32,
    ) -> Result<(), PlatformError> {
        let (code, entry) = {
            let t = self.kernel.task(handle).ok_or(PlatformError::NoSuchTask)?;
            (t.params.code, t.params.entry)
        };
        let outcome = self
            .machine
            .mpu_mut()
            .configure(Rule::new(
                code,
                entry,
                Region::new(mmio_base, len),
                Perms::RW,
            ))
            .map_err(|e| PlatformError::Load(LoadError::Mpu(e)))?;
        self.machine.tick(outcome.cost.total());
        Ok(())
    }

    /// Binds a device IRQ vector (listed in
    /// [`PlatformConfig::device_irq_vectors`]) to a secure task: each
    /// firing deposits `[tag, vector, 0]` in the task's mailbox with the
    /// reserved hardware identity as the sender, and resumes the task if
    /// it suspended itself waiting. This is how a secure driver task
    /// receives its device's interrupts without the OS seeing the data.
    pub fn bind_irq(&mut self, vector: u8, task: TaskId, tag: u32) {
        self.irq_bindings.insert(vector, (task, tag));
    }

    fn handle_device_irq(&mut self, vector: u8) -> Result<(), PlatformError> {
        let Some(&(task, tag)) = self.irq_bindings.get(&vector) else {
            return Ok(());
        };
        let Some(record) = self.rtm.lookup(task) else {
            return Ok(());
        };
        let (handle, mailbox) = (record.handle, record.mailbox);
        self.write_mailbox(mailbox, HARDWARE_ID, [tag, u32::from(vector), 0])?;
        if let Some(tcb) = self.kernel.task(handle) {
            if tcb.state == rtos::TaskState::Suspended {
                let now = self.machine.cycles();
                let _ = self.kernel.resume_task(handle, now);
            }
        }
        Ok(())
    }

    /// Tears a shared-memory window down again: removes both aliasing
    /// rules and returns the memory to the heap.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoSuchTask`] if `region` is not a live
    /// shared window.
    pub fn teardown_shared_memory(&mut self, region: Region) -> Result<(), PlatformError> {
        let slots: Vec<usize> = self
            .machine
            .mpu()
            .rules()
            .filter(|(_, rule)| rule.data == region)
            .map(|(slot, _)| slot)
            .collect();
        if slots.is_empty() {
            return Err(PlatformError::NoSuchTask);
        }
        for slot in slots {
            self.machine.mpu_mut().clear_slot(slot);
        }
        self.allocator
            .free(region.start())
            .map_err(|e| PlatformError::Load(LoadError::Alloc(e)))?;
        Ok(())
    }

    /// Injects a message into `to`'s mailbox as the IPC proxy would,
    /// with `sender` as the authenticated origin. Host-side counterpart
    /// of guest `INT 0x30` for tests and examples.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoSuchTask`] if `to` is not loaded.
    pub fn inject_message(
        &mut self,
        to: TaskId,
        sender: TaskId,
        payload: [u32; 3],
    ) -> Result<(), PlatformError> {
        let mailbox = self
            .rtm
            .lookup(to)
            .ok_or(PlatformError::NoSuchTask)?
            .mailbox;
        self.write_mailbox(mailbox, sender, payload)?;
        Ok(())
    }

    fn write_mailbox(
        &mut self,
        mailbox_addr: u32,
        sender: TaskId,
        payload: [u32; 3],
    ) -> Result<(), Fault> {
        let actor = self.actors.trusted_actor();
        let (hi, lo) = sender.to_register_words();
        self.machine
            .checked_write_word(actor, mailbox_addr + mailbox::SENDER_HI, hi)?;
        self.machine
            .checked_write_word(actor, mailbox_addr + mailbox::SENDER_LO, lo)?;
        self.machine
            .checked_write_word(actor, mailbox_addr + mailbox::LEN, 12)?;
        for (i, word) in payload.iter().enumerate() {
            self.machine.checked_write_word(
                actor,
                mailbox_addr + mailbox::PAYLOAD + 4 * i as u32,
                *word,
            )?;
        }
        self.machine
            .checked_write_word(actor, mailbox_addr + mailbox::FLAG, 1)?;
        Ok(())
    }

    /// The secure IPC proxy (§4): authenticates the sender from the
    /// interrupt origin, resolves the receiver via the RTM list, writes
    /// message and sender identity to the receiver's mailbox, and for
    /// synchronous sends branches directly to the receiver.
    fn handle_ipc(&mut self, sender: Option<TaskHandle>) -> Result<(), PlatformError> {
        self.trace_core(TRACE_TID_IPC, EventKind::Enter("ipc_proxy"));
        let begin = self.machine.cycles();
        let result = self.ipc_proxy(sender);
        self.record_lat(|l| l.ipc_rtt, self.machine.cycles().saturating_sub(begin));
        self.trace_core(TRACE_TID_IPC, EventKind::Exit("ipc_proxy"));
        result
    }

    fn ipc_proxy(&mut self, sender: Option<TaskHandle>) -> Result<(), PlatformError> {
        self.machine.tick(self.machine.firmware_costs().ipc_proxy);
        let Some(sender_handle) = sender else {
            return Ok(());
        };
        let saved_sp = self
            .kernel
            .task(sender_handle)
            .ok_or(PlatformError::NoSuchTask)?
            .saved_sp;
        let actor = self.actors.trusted_actor();
        let frame_reg = |machine: &mut Machine, i: u32| -> Result<u32, Fault> {
            machine.checked_read_word(actor, saved_sp + layout::frame_reg_offset(i))
        };
        let r1 = frame_reg(&mut self.machine, 1)?;
        let r2 = frame_reg(&mut self.machine, 2)?;
        let r3 = frame_reg(&mut self.machine, 3)?;
        let r4 = frame_reg(&mut self.machine, 4)?;
        let r5 = frame_reg(&mut self.machine, 5)?;
        let r6 = frame_reg(&mut self.machine, 6)?;

        let status_addr = saved_sp + layout::frame_reg_offset(0);
        // The proxy authenticates the sender implicitly: the hardware
        // reports the INT origin, the kernel maps it to a task, the RTM
        // list maps the task to its measured identity.
        let origin = self.machine.int_origin().unwrap_or(0);
        let by_origin = self.kernel.find_by_code_addr(origin);
        let sender_record = by_origin
            .filter(|&h| h == sender_handle)
            .and_then(|h| self.rtm.lookup_by_handle(h));
        let Some(sender_record) = sender_record else {
            self.machine
                .checked_write_word(actor, status_addr, ipc_status::UNKNOWN_SENDER)?;
            return Ok(());
        };
        let sender_id = sender_record.id;

        let receiver_id = TaskId::from_register_words(r1, r2);
        let Some(receiver) = self.rtm.lookup(receiver_id) else {
            self.machine
                .checked_write_word(actor, status_addr, ipc_status::NO_RECEIVER)?;
            return Ok(());
        };
        let (receiver_handle, receiver_mailbox) = (receiver.handle, receiver.mailbox);

        self.write_mailbox(receiver_mailbox, sender_id, [r3, r4, r5])?;
        self.machine
            .checked_write_word(actor, status_addr, ipc_status::OK)?;

        if r6 == 1 {
            // Synchronous: branch to the receiver's entry routine now.
            self.kernel
                .dispatch_message(&mut self.machine, receiver_handle)?;
        }
        Ok(())
    }

    // ----- run loop -----

    fn machine_is_idling(&self) -> bool {
        let idle = self.kernel.config().idle_addr;
        self.machine.is_halted() || (self.machine.eip() >= idle && self.machine.eip() < idle + 12)
    }

    fn has_pending_job(&self) -> bool {
        self.jobs.iter().any(|j| matches!(j, JobSlot::Running(_)))
    }

    fn load_slice(&mut self) -> Result<(), PlatformError> {
        let index = self
            .jobs
            .iter()
            .position(|j| matches!(j, JobSlot::Running(_)));
        let Some(index) = index else {
            return Ok(());
        };
        let JobSlot::Running(job) = &mut self.jobs[index] else {
            unreachable!("position() matched Running");
        };
        match job.step(
            &mut self.machine,
            &mut self.kernel,
            &mut self.rtm,
            &mut self.allocator,
            self.actors,
            self.rtm_blocks_per_slice,
        ) {
            Ok(LoadProgress::Done { handle, id }) => {
                let report = job.report();
                if self.profiler.is_some() {
                    let name = job.image().name().to_string();
                    let base = job.base();
                    self.symbols.add_task_image(&name, base, job.image());
                }
                self.jobs[index] = JobSlot::Done { handle, id, report };
                self.trace_core(loader_tid(index), EventKind::Exit("load"));
                self.record_lat(|l| l.load_total, report.total_cycles());
                self.record_lat(|l| l.load_alloc, report.alloc_cycles);
                self.record_lat(|l| l.load_copy, report.copy_cycles);
                self.record_lat(|l| l.load_reloc, report.reloc_cycles);
                self.record_lat(|l| l.load_mpu, report.mpu_cycles);
                self.record_lat(|l| l.load_rtm, report.rtm_cycles);
                self.record_lat(|l| l.load_register, report.register_cycles);
            }
            Ok(LoadProgress::InProgress(_)) => {}
            Err(e) => {
                job.abort(&mut self.machine, &mut self.allocator);
                self.jobs[index] = JobSlot::Failed(e);
                self.trace_core(loader_tid(index), EventKind::Mark("load_failed"));
                self.trace_core(loader_tid(index), EventKind::Exit("load"));
            }
        }
        Ok(())
    }

    /// Runs the platform for `cycles` machine cycles: guest tasks execute,
    /// interrupts fire, kernel traps are serviced, and pending load jobs
    /// consume idle CPU time.
    ///
    /// # Errors
    ///
    /// Returns a fault only when `kill_on_fault` is off or the fault
    /// occurred outside any task context.
    pub fn run_for(&mut self, cycles: u64) -> Result<(), PlatformError> {
        if !self.started {
            self.kernel.dispatch(&mut self.machine)?;
            self.started = true;
        }
        let deadline = self.machine.cycles().saturating_add(cycles);
        while self.machine.cycles() < deadline {
            if self.has_pending_job() && self.kernel.current().is_none() && self.machine_is_idling()
            {
                if self.interruptible_load {
                    self.load_slice()?;
                    let event = self.machine.run(1);
                    self.handle_event(event)?;
                } else {
                    // Ablation: the whole load runs as one uninterruptible
                    // critical section.
                    while self.has_pending_job() {
                        self.load_slice()?;
                    }
                }
                continue;
            }
            let budget = deadline - self.machine.cycles();
            let event = self.machine.run(budget);
            self.handle_event(event)?;
        }
        Ok(())
    }

    /// Runs until the next machine event and services kernel traps and
    /// faults; phase-boundary firmware traps registered by a benchmark
    /// harness are returned unserviced so the caller can timestamp them
    /// (step past them with [`Machine::step`]).
    ///
    /// # Errors
    ///
    /// Propagates trap-service and fault-handling errors.
    pub fn run_one_event(&mut self, max_cycles: u64) -> Result<Event, PlatformError> {
        if !self.started {
            self.kernel.dispatch(&mut self.machine)?;
            self.started = true;
        }
        let event = self.machine.run(max_cycles);
        match event {
            Event::FirmwareTrap { addr } if addr == layout::KERNEL_TRAP => {
                self.handle_kernel_trap()?;
            }
            Event::Fault(fault) => {
                self.handle_fault(fault)?;
            }
            _ => {}
        }
        Ok(event)
    }

    fn handle_event(&mut self, event: Event) -> Result<(), PlatformError> {
        match event {
            Event::FirmwareTrap { addr } if addr == layout::KERNEL_TRAP => {
                self.handle_kernel_trap()
            }
            Event::FirmwareTrap { addr } => Err(PlatformError::UnexpectedTrap(addr)),
            Event::Fault(fault) => self.handle_fault(fault),
            Event::BudgetExhausted | Event::IdleBudgetExhausted => Ok(()),
        }
    }

    fn handle_fault(&mut self, fault: Fault) -> Result<(), PlatformError> {
        let task = self.kernel.current();
        self.faults.push(FaultRecord {
            cycle: self.machine.cycles(),
            task,
            fault,
        });
        self.trace_core(0, EventKind::Mark("fault_handled"));
        match task {
            Some(handle) if self.kill_on_fault => {
                // The EA-MPU caught a violation: terminate the offending
                // task and keep the platform available (§5).
                self.unload_task(handle)?;
                self.kernel.dispatch(&mut self.machine)?;
                Ok(())
            }
            _ => Err(PlatformError::Fault(fault)),
        }
    }

    fn handle_kernel_trap(&mut self) -> Result<(), PlatformError> {
        // Latency bookkeeping (host-side, cycle-neutral): the machine
        // stamped the exception-engine dispatch that led here, so the
        // window [dispatch begin, now] is the full interrupt-entry path
        // and [dispatch end, now] is the Int Mux save stub alone. A
        // completed restore (previous trap's dispatch target up to its
        // `IRET` retirement) is measured against the stamp set on the way
        // out of the previous trap.
        let now = self.machine.cycles();
        if let Some(stamp) = self.machine.take_last_dispatch() {
            self.record_lat(|l| l.irq_entry, now.saturating_sub(stamp.begin));
            self.record_lat(|l| l.ctx_save, now.saturating_sub(stamp.end));
        }
        if let (Some(begin), Some(iret)) =
            (self.restore_stamp.take(), self.machine.take_last_iret())
        {
            if iret >= begin {
                self.record_lat(|l| l.ctx_restore, iret - begin);
            }
        }
        let vector = self.machine.reg(Reg::R0) as u8;
        // The Int Mux marked itself busy on the way in; the handler hand-off
        // clears it.
        self.machine.write_word(layout::INTMUX_BUSY_FLAG, 0)?;
        let previous = self.kernel.current();
        self.kernel.save_current(&self.machine);
        match vector {
            layout::TICK_VECTOR => {
                let now = self.machine.cycles();
                self.kernel.on_tick(now);
                // Loader aging: the loader normally consumes only idle
                // time, but under a fully CPU-bound task set it would
                // starve. Every few ticks the OS lends it one bounded
                // slice, keeping loads live at a few percent CPU cost.
                let tick = self.kernel.tick_count();
                if self.has_pending_job() && tick.saturating_sub(self.last_steal_tick) >= 4 {
                    self.last_steal_tick = tick;
                    if self.interruptible_load {
                        // Lend the loader one bounded slice.
                        self.load_slice()?;
                    } else {
                        // Blocking semantics: the whole load runs as one
                        // uninterruptible critical section inside the
                        // tick handler.
                        while self.has_pending_job() {
                            self.load_slice()?;
                        }
                    }
                }
            }
            layout::SYSCALL_VECTOR => {
                if let Some(caller) = previous {
                    let _: SyscallOutcome = self.kernel.handle_syscall(&mut self.machine, caller);
                }
            }
            layout::IPC_VECTOR => {
                self.handle_ipc(previous)?;
            }
            other => {
                self.handle_device_irq(other)?;
            }
        }
        if self.kernel.current().is_none() {
            self.kernel.dispatch(&mut self.machine)?;
        }
        // The context restore (stub or hardware) runs from here until its
        // `IRET` retires; the next trap closes the measurement.
        self.restore_stamp = Some(self.machine.cycles());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toolchain::SecureTaskBuilder;

    fn boot() -> Platform {
        Platform::boot(PlatformConfig::default()).expect("boot")
    }

    fn counter_body() -> &'static str {
        "main:\n movi r1, counter\n\
         loop:\n ldw r2, [r1]\n addi r2, 1\n stw [r1], r2\n jmp loop\n"
    }

    fn load_counter(platform: &mut Platform, name: &str) -> (TaskHandle, TaskId, u32) {
        let source = SecureTaskBuilder::new(name, counter_body())
            .data("counter:\n .word 0\n")
            .build()
            .unwrap();
        let counter_off = source.symbol_offset("counter").unwrap();
        let token = platform.begin_load(&source, 2);
        let (handle, id) = platform.wait_load(token, 50_000_000).unwrap();
        let base = platform.task_base(handle).unwrap();
        (handle, id, base + counter_off)
    }

    #[test]
    fn boot_measures_trusted_components() {
        let platform = boot();
        assert_eq!(platform.boot_measurement().len(), 20);
    }

    #[test]
    fn tampered_trusted_components_fail_secure_boot() {
        let config = PlatformConfig {
            corrupt_trusted_byte: Some(17),
            ..Default::default()
        };
        match Platform::<Sha1>::boot(config) {
            Err(PlatformError::SecureBootMeasurementMismatch) => {}
            other => panic!("expected secure-boot failure, got {other:?}"),
        }
    }

    #[test]
    fn secure_task_loads_and_runs() {
        let mut platform = boot();
        let (_, id, counter_addr) = load_counter(&mut platform, "worker");
        platform.run_for(500_000).unwrap();
        let count = platform.debug_read_word(counter_addr).unwrap();
        assert!(count > 100, "secure task progressed: {count}");
        assert!(platform.local_attest(id).is_some());
    }

    #[test]
    fn tracer_records_every_layer_through_one_sink() {
        use std::sync::Arc;
        use tytan_trace::RingRecorder;

        let mut platform = boot();
        let ring = Arc::new(RingRecorder::new(65_536));
        platform.attach_tracer(Tracer::new(ring.clone()));

        let (_, id, _) = load_counter(&mut platform, "traced");
        platform.run_for(500_000).unwrap();
        let _ = platform.remote_attest(id, b"nonce").unwrap();
        let _ = platform.remote_attest_device(b"nonce");
        assert!(platform.local_attest(id).is_some());

        let events = ring.events();
        let core = |kind: EventKind| {
            events
                .iter()
                .filter(|e| e.layer == Layer::Core && e.kind == kind)
                .count()
        };
        // Loader span: one Enter at begin_load, one Exit at completion.
        assert_eq!(core(EventKind::Enter("load")), 1);
        assert_eq!(core(EventKind::Exit("load")), 1);
        // Attestation markers.
        assert_eq!(core(EventKind::Enter("remote_attest")), 1);
        assert_eq!(core(EventKind::Exit("remote_attest")), 1);
        assert_eq!(core(EventKind::Enter("remote_attest_device")), 1);
        assert_eq!(core(EventKind::Mark("local_attest")), 1);

        // The kernel's scheduling trace forwards onto the same sink...
        assert!(events.iter().any(|e| e.layer == Layer::Rtos));
        // ...and the machine + EA-MPU counters are registered and counting.
        // (Which cache counters move depends on the engine the CI matrix
        // leg selected via TYTAN_EXEC_ENGINE; legacy has no cache at all.)
        let counters = platform.tracer().unwrap().counters();
        match sp_emu::MachineConfig::default().engine {
            sp_emu::EngineKind::Legacy => {}
            sp_emu::EngineKind::Fast => {
                assert!(counters.get("emu_predecode_hit").unwrap() > 0);
            }
            sp_emu::EngineKind::Translated => {
                assert!(counters.get("emu_block_compile").unwrap() > 0);
                assert!(counters.get("emu_block_hit").unwrap() > 0);
            }
        }
        assert!(counters.get("emu_instr_alu").unwrap() > 0);
        assert!(counters.get("emu_irq_entry").unwrap() > 0);
        assert!(counters.get("eampu_access_cache_hit").is_some());
    }

    #[test]
    fn profiler_and_latency_plane_cover_the_workload() {
        let mut platform = boot();
        platform.attach_tracer(Tracer::null());
        let before = platform.machine().cycles();
        let profiler = CycleProfiler::new(platform.machine().ram_size());
        platform.attach_profiler(profiler);

        let (_, id, _) = load_counter(&mut platform, "hot");
        platform.run_for(500_000).unwrap();
        let _ = platform.remote_attest(id, b"nonce").unwrap();

        // Exact attribution: every cycle since attach landed in a bucket.
        let report = platform.profile_report().unwrap();
        assert_eq!(report.total + before, platform.machine().cycles());
        // The workload symbolizes almost entirely: the task via its
        // recovered function table, stubs and idle via the trusted map,
        // kernel service via the trap symbol, dispatch via `[irq]`.
        assert!(
            report.coverage() >= 0.95,
            "coverage {:.3}\n{}",
            report.coverage(),
            report.top(10)
        );
        let folded = report.folded();
        assert!(folded.contains("hot;"), "task frames present:\n{folded}");
        assert!(folded.contains("[trusted];"), "stub frames present");

        // The latency histograms fill through the same attach call.
        let hists = platform.tracer().unwrap().histograms().clone();
        for name in [
            "lat_irq_entry",
            "lat_ctx_save",
            "lat_ctx_restore",
            "lat_attest",
            "lat_load_total",
            "lat_load_rtm",
        ] {
            let recorded = hists.get(name).is_some_and(|h| !h.is_empty());
            assert!(recorded, "{name} recorded nothing");
        }
        let entry = hists.get("lat_irq_entry").unwrap().summary();
        assert!(entry.p50 > 0 && entry.max >= entry.p99);
    }

    #[test]
    fn two_secure_tasks_share_cpu_and_stay_isolated() {
        let mut platform = boot();
        let (_, id_a, counter_a) = load_counter(&mut platform, "a");
        let (_, _, counter_b) = load_counter(&mut platform, "b");
        platform.run_for(2_000_000).unwrap();
        let ca = platform.debug_read_word(counter_a).unwrap();
        let cb = platform.debug_read_word(counter_b).unwrap();
        assert!(ca > 0 && cb > 0, "both ran: {ca} {cb}");
        assert!(platform.faults().is_empty(), "no isolation faults");
        let _ = id_a;
    }

    #[test]
    fn malicious_task_is_killed_on_isolation_violation() {
        let mut platform = boot();
        let (victim, _, victim_counter) = load_counter(&mut platform, "victim");
        // The attacker reads the victim's memory directly.
        let attacker_body = format!(
            "main:\n movi r1, {victim_counter:#x}\n ldw r2, [r1]\n\
             spin:\n jmp spin\n"
        );
        let source = SecureTaskBuilder::new("attacker", attacker_body)
            .build()
            .unwrap();
        let token = platform.begin_load(&source, 3);
        let (attacker, _) = platform.wait_load(token, 50_000_000).unwrap();
        platform.run_for(500_000).unwrap();

        assert_eq!(platform.faults().len(), 1, "exactly one violation recorded");
        assert_eq!(platform.faults()[0].task, Some(attacker));
        // Attacker is gone; victim unaffected.
        assert!(platform.kernel().task(attacker).is_none());
        assert!(platform.kernel().task(victim).is_some());
        let count = platform.debug_read_word(victim_counter).unwrap();
        assert!(count > 0);
    }

    #[test]
    fn unload_releases_everything() {
        let mut platform = boot();
        let slots_before = platform.machine().mpu().used_slots();
        let free_before = platform.allocator.free_bytes();
        let (handle, id, _) = load_counter(&mut platform, "ephemeral");
        platform.run_for(100_000).unwrap();
        platform.unload_task(handle).unwrap();
        assert_eq!(platform.machine().mpu().used_slots(), slots_before);
        assert_eq!(platform.allocator.free_bytes(), free_before);
        assert!(platform.rtm().lookup(id).is_none());
        platform.run_for(100_000).unwrap(); // platform stays healthy
    }

    #[test]
    fn suspend_stops_progress_resume_restores_it() {
        let mut platform = boot();
        let (handle, _, counter) = load_counter(&mut platform, "s");
        platform.run_for(300_000).unwrap();
        platform.suspend_task(handle).unwrap();
        let at_suspend = platform.debug_read_word(counter).unwrap();
        platform.run_for(300_000).unwrap();
        let while_suspended = platform.debug_read_word(counter).unwrap();
        assert_eq!(at_suspend, while_suspended, "no progress while suspended");
        platform.resume_task(handle).unwrap();
        platform.run_for(300_000).unwrap();
        assert!(platform.debug_read_word(counter).unwrap() > while_suspended);
    }

    #[test]
    fn identical_binaries_have_identical_ids() {
        let mut platform = boot();
        let (_, id_a, _) = load_counter(&mut platform, "x");
        let (_, id_b, _) = load_counter(&mut platform, "y");
        assert_eq!(id_a, id_b, "identity is the binary measurement");
    }

    #[test]
    fn remote_attestation_roundtrip() {
        use crate::attest::RemoteVerifier;
        let mut platform = boot();
        let (_, id, _) = load_counter(&mut platform, "attested");
        let verifier = RemoteVerifier::new(platform.attestation_key());
        let expected = platform.local_attest(id).unwrap();
        let report = platform.remote_attest(id, b"challenge-1").unwrap();
        assert_eq!(verifier.verify(&report, b"challenge-1", &expected), Ok(()));
    }

    #[test]
    fn storage_isolation_between_tasks() {
        let mut platform = boot();
        let (a, _, _) = load_counter(&mut platform, "alpha");
        // A task with different code => different identity.
        let other = SecureTaskBuilder::new("beta", "main:\n movi r3, 7\nspin:\n jmp spin\n")
            .build()
            .unwrap();
        let token = platform.begin_load(&other, 2);
        let (b, _) = platform.wait_load(token, 50_000_000).unwrap();

        platform.storage_store(a, "cal", b"alpha-data").unwrap();
        assert_eq!(platform.storage_retrieve(a, "cal").unwrap(), b"alpha-data");
        assert!(matches!(
            platform.storage_retrieve(b, "cal"),
            Err(PlatformError::Storage(StorageError::AccessDenied))
        ));
    }

    #[test]
    fn guest_ipc_between_secure_tasks() {
        let mut platform = boot();
        // Receiver: waits; on_message copies payload word 0 to `result`.
        let receiver_body = "main:\nwait:\n jmp wait\n\
             on_message:\n movi r1, __mailbox\n ldw r2, [r1+16]\n\
             movi r3, result\n stw [r3], r2\n\
             done:\n jmp done\n";
        let receiver = SecureTaskBuilder::new("receiver", receiver_body)
            .data("result:\n .word 0\n")
            .handles_messages(true)
            .build()
            .unwrap();
        let receiver_id = TaskId::from_digest(&Sha1::digest(&receiver.image.measurement_bytes()));

        // Sender: r1/r2 = receiver id, r3 payload, r6=1 (sync).
        let (hi, lo) = receiver_id.to_register_words();
        let sender_body = format!(
            "main:\n movi r1, {hi:#010x}\n movi r2, {lo:#010x}\n\
             movi r3, 0xca11ab1e\n movi r4, 0\n movi r5, 0\n movi r6, 1\n\
             int IPC_VECTOR\n\
             spin:\n jmp spin\n"
        );
        let sender = SecureTaskBuilder::new("sender", sender_body)
            .build()
            .unwrap();

        let rt = platform.begin_load(&receiver, 2);
        let (rh, rid) = platform.wait_load(rt, 50_000_000).unwrap();
        assert_eq!(rid, receiver_id, "precomputed id matches measured id");
        let st = platform.begin_load(&sender, 3);
        let (sh, sid) = platform.wait_load(st, 50_000_000).unwrap();

        platform.run_for(2_000_000).unwrap();

        let base = platform.task_base(rh).unwrap();
        let result_addr = base + receiver.symbol_offset("result").unwrap();
        assert_eq!(platform.debug_read_word(result_addr).unwrap(), 0xca11_ab1e);

        // The mailbox carries the authenticated sender identity.
        let mailbox = platform.rtm().lookup(rid).unwrap().mailbox;
        let hi = platform
            .debug_read_word(mailbox + mailbox::SENDER_HI)
            .unwrap();
        let lo = platform
            .debug_read_word(mailbox + mailbox::SENDER_LO)
            .unwrap();
        assert_eq!(TaskId::from_register_words(hi, lo), sid);
        let _ = sh;
    }

    #[test]
    fn ipc_to_unknown_receiver_reports_error() {
        let mut platform = boot();
        // Sender targets a nonexistent id; expects status NO_RECEIVER in
        // r0 after the INT returns, then stores it.
        let sender_body = "main:\n movi r1, 0x11111111\n movi r2, 0x22222222\n\
             movi r3, 1\n movi r6, 0\n\
             int IPC_VECTOR\n\
             movi r1, status\n stw [r1], r0\n\
             spin:\n jmp spin\n";
        let sender = SecureTaskBuilder::new("sender", sender_body)
            .data("status:\n .word 0xffffffff\n")
            .build()
            .unwrap();
        let token = platform.begin_load(&sender, 2);
        let (handle, _) = platform.wait_load(token, 50_000_000).unwrap();
        platform.run_for(1_000_000).unwrap();
        let base = platform.task_base(handle).unwrap();
        let status_addr = base + sender.symbol_offset("status").unwrap();
        assert_eq!(
            platform.debug_read_word(status_addr).unwrap(),
            ipc_status::NO_RECEIVER
        );
    }

    #[test]
    fn shared_memory_accessible_to_both_parties_only() {
        use eampu::AccessKind;
        let mut platform = boot();
        let (a, _, _) = load_counter(&mut platform, "a");
        let (b, _, _) = load_counter(&mut platform, "b");
        let (c, _, _) = load_counter(&mut platform, "c");
        let region = platform.setup_shared_memory(a, b, 0x100).unwrap();
        let code_a = platform.kernel().task(a).unwrap().params.code;
        let code_b = platform.kernel().task(b).unwrap().params.code;
        let code_c = platform.kernel().task(c).unwrap().params.code;
        let mpu = platform.machine().mpu();
        assert!(mpu
            .check_access(code_a.start(), region.start(), AccessKind::Write)
            .is_allowed());
        assert!(mpu
            .check_access(code_b.start(), region.start(), AccessKind::Read)
            .is_allowed());
        assert!(!mpu
            .check_access(code_c.start(), region.start(), AccessKind::Read)
            .is_allowed());
    }

    #[test]
    fn shared_memory_teardown_restores_state() {
        use eampu::AccessKind;
        let mut platform = boot();
        let (a, _, _) = load_counter(&mut platform, "a");
        let (b, _, _) = load_counter(&mut platform, "b");
        let slots_before = platform.machine().mpu().used_slots();
        let free_before = platform.allocator.free_bytes();
        let region = platform.setup_shared_memory(a, b, 0x100).unwrap();
        platform.teardown_shared_memory(region).unwrap();
        assert_eq!(platform.machine().mpu().used_slots(), slots_before);
        assert_eq!(platform.allocator.free_bytes(), free_before);
        // The window is ordinary memory again.
        let code_a = platform.kernel().task(a).unwrap().params.code.start();
        assert!(platform
            .machine()
            .mpu()
            .check_access(code_a, region.start(), AccessKind::Read)
            .is_allowed());
        // Double teardown is rejected.
        assert!(matches!(
            platform.teardown_shared_memory(region),
            Err(PlatformError::NoSuchTask)
        ));
    }

    #[test]
    fn normal_task_loads_without_measurement() {
        use crate::toolchain::build_normal_task;
        let mut platform = boot();
        let source =
            build_normal_task("plain", counter_body(), "counter:\n .word 0\n", 256).unwrap();
        let counter_off = source.symbol_offset("counter").unwrap();
        let token = platform.begin_load(&source, 2);
        let (handle, id) = platform.wait_load(token, 50_000_000).unwrap();
        assert_eq!(id, TaskId::from_u64(0));
        assert!(platform.rtm().is_empty());
        platform.run_for(500_000).unwrap();
        let base = platform.task_base(handle).unwrap();
        assert!(platform.debug_read_word(base + counter_off).unwrap() > 0);
    }

    #[test]
    fn exclusive_device_grant_enforced() {
        use eampu::AccessKind;
        let mut platform = boot();
        let (owner, _, _) = load_counter(&mut platform, "sensor-owner");
        let (other, _, _) = load_counter(&mut platform, "bystander");
        platform
            .grant_exclusive_device(owner, layout::PEDAL_BASE, 4)
            .unwrap();
        let owner_code = platform.kernel().task(owner).unwrap().params.code.start();
        let other_code = platform.kernel().task(other).unwrap().params.code.start();
        let mpu = platform.machine().mpu();
        assert!(mpu
            .check_access(owner_code, layout::PEDAL_BASE, AccessKind::Read)
            .is_allowed());
        assert!(!mpu
            .check_access(other_code, layout::PEDAL_BASE, AccessKind::Read)
            .is_allowed());
        // Even the OS loses access to the claimed device.
        let kernel_actor = platform.kernel().config().kernel_actor;
        assert!(!mpu
            .check_access(kernel_actor, layout::PEDAL_BASE, AccessKind::Read)
            .is_allowed());
    }

    #[test]
    fn device_level_attestation_tracks_the_task_set() {
        use crate::attest::{RemoteVerifier, VerifyError};
        let mut platform = boot();
        let (h1, id1, _) = load_counter(&mut platform, "one");
        let other = SecureTaskBuilder::new("two", "main:\nspin:\n jmp spin\n")
            .build()
            .unwrap();
        let token = platform.begin_load(&other, 2);
        let (_, id2) = platform.wait_load(token, 200_000_000).unwrap();

        let verifier = RemoteVerifier::new(platform.attestation_key());
        let expected = vec![
            (id1, platform.local_attest(id1).unwrap()),
            (id2, platform.local_attest(id2).unwrap()),
        ];
        let report = platform.remote_attest_device(b"device-nonce");
        assert_eq!(
            verifier.verify_device(&report, b"device-nonce", &expected),
            Ok(())
        );

        // Unloading a task changes the device state: the old expectation
        // no longer verifies against a fresh report.
        platform.unload_task(h1).unwrap();
        let report = platform.remote_attest_device(b"nonce-2");
        assert!(matches!(
            verifier.verify_device(&report, b"nonce-2", &expected),
            Err(VerifyError::DigestMismatch { .. })
        ));
    }

    #[test]
    fn hardware_context_save_platform_runs_end_to_end() {
        let config = PlatformConfig {
            hardware_context_save: true,
            ..Default::default()
        };
        let mut platform: Platform = Platform::boot(config).unwrap();
        let source = SecureTaskBuilder::new("hw-task", counter_body())
            .data("counter:\n .word 0\n")
            .build()
            .unwrap();
        let token = platform.begin_load(&source, 2);
        let (handle, _) = platform.wait_load(token, 200_000_000).unwrap();
        platform.run_for(500_000).unwrap();
        let base = platform.task_base(handle).unwrap();
        let counter = platform
            .debug_read_word(base + source.symbol_offset("counter").unwrap())
            .unwrap();
        assert!(
            counter > 100,
            "task progresses under hardware save: {counter}"
        );
        assert!(platform.faults().is_empty());
    }

    #[test]
    fn load_progress_is_observable() {
        let mut platform = boot();
        let source = SecureTaskBuilder::new("slow", counter_body())
            .data("counter:\n .word 0\n")
            .build()
            .unwrap();
        let token = platform.begin_load(&source, 2);
        assert!(matches!(
            platform.load_status(token).unwrap(),
            LoadStatus::InProgress(LoadPhase::Alloc)
        ));
        platform.wait_load(token, 50_000_000).unwrap();
        match platform.load_status(token).unwrap() {
            LoadStatus::Done { report, .. } => {
                assert!(report.rtm_cycles > 0);
                assert!(report.slices > 1, "interruptible load ran in slices");
            }
            other => panic!("expected done, got {other:?}"),
        }
    }
}
