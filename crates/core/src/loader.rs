//! The dynamic task loader: an interruptible load state machine.
//!
//! Loading a task at runtime requires "(1) allocation of memory for the
//! new task; (2) loading the task into memory and preparing its stack …
//! making relocation necessary; and (3) invocation of the task" (§4), plus
//! EA-MPU configuration and RTM measurement for secure tasks. Loading a
//! realistic task takes far longer than a scheduling period (27.8 ms in
//! the paper's use case), so the whole pipeline is a resumable
//! [`LoadJob`]: every [`LoadJob::step`] performs a bounded slice of work
//! and returns, letting pending interrupts fire between slices — the
//! property Table 1 demonstrates. A blocking ablation (driving the job
//! without yielding) reproduces the deadline misses TyTAN avoids.

use crate::allocator::{AllocError, Allocator};
use crate::driver::{self, TrustedActors};
use crate::rtm::{MeasureJob, MeasureProgress, MeasurementRecord, Rtm};
use eampu::{ConfigureError, Region};
use rtos::{Kernel, KernelError, TaskHandle, TaskKind, TcbParams};
use sp_emu::{Fault, Machine};
use std::fmt;
use tytan_crypto::{Digest, TaskId};
use tytan_image::TaskImage;
use tytan_lint::{lint_image, LintPolicy, LintReport, Severity};

/// Bytes copied (and header-parsed) per load slice — the loader's bounded
/// critical section, sized well under one 32,000-cycle tick.
const COPY_SLICE_BYTES: u32 = 128;
/// Relocation sites patched per load slice.
const RELOC_SLICE_SITES: usize = 4;

/// The phase a load job is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadPhase {
    /// Static verification of the image (optional, host-side).
    Verify,
    /// Allocating memory and parsing headers.
    Alloc,
    /// Copying the image into memory.
    Copy,
    /// Patching relocation sites.
    Relocate,
    /// Installing EA-MPU rules.
    MpuConfig,
    /// RTM measurement (secure tasks only).
    Measure,
    /// Scheduler registration and stack preparation.
    Register,
    /// Finished.
    Done,
}

/// Why a load failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// The task heap could not satisfy the allocation.
    Alloc(AllocError),
    /// The EA-MPU rejected the task's rules.
    Mpu(ConfigureError),
    /// A machine access faulted.
    Machine(Fault),
    /// The scheduler rejected the task.
    Kernel(KernelError),
    /// The static verifier found proven policy violations in the image.
    LintRejected(Box<LintReport>),
    /// The job was driven out of sequence: stepped again after
    /// completion, or a phase ran without the state that phase requires
    /// (a corrupted or replayed load sequence). Untrusted callers can
    /// provoke this, so it is a typed error, not a host panic.
    Sequence {
        /// The phase the job was in when the corruption was detected.
        phase: LoadPhase,
        /// What was missing or wrong.
        what: &'static str,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Alloc(e) => write!(f, "allocation failed: {e}"),
            LoadError::Mpu(e) => write!(f, "EA-MPU configuration failed: {e}"),
            LoadError::Machine(e) => write!(f, "machine fault during load: {e}"),
            LoadError::Kernel(e) => write!(f, "scheduler registration failed: {e}"),
            LoadError::LintRejected(report) => write!(
                f,
                "task image rejected by static verifier: {} error finding(s) in `{}`",
                report.count(Severity::Error),
                report.image_name
            ),
            LoadError::Sequence { phase, what } => {
                write!(
                    f,
                    "load job driven out of sequence in {phase:?} phase: {what}"
                )
            }
        }
    }
}

impl std::error::Error for LoadError {}

impl From<AllocError> for LoadError {
    fn from(e: AllocError) -> Self {
        LoadError::Alloc(e)
    }
}

impl From<ConfigureError> for LoadError {
    fn from(e: ConfigureError) -> Self {
        LoadError::Mpu(e)
    }
}

impl From<Fault> for LoadError {
    fn from(e: Fault) -> Self {
        LoadError::Machine(e)
    }
}

impl From<KernelError> for LoadError {
    fn from(e: KernelError) -> Self {
        LoadError::Kernel(e)
    }
}

/// Per-phase cycle accounting of one load (the Table 4 decomposition).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Allocation + header parsing cycles.
    pub alloc_cycles: u64,
    /// Image copy cycles.
    pub copy_cycles: u64,
    /// Relocation cycles (Table 5).
    pub reloc_cycles: u64,
    /// EA-MPU configuration cycles (all rules).
    pub mpu_cycles: u64,
    /// EA-MPU cycles of the primary task rule alone.
    pub mpu_primary_cycles: u64,
    /// RTM measurement cycles (Table 7).
    pub rtm_cycles: u64,
    /// Scheduler registration + stack preparation cycles.
    pub register_cycles: u64,
    /// Number of slices the job ran in (interruptibility diagnostic).
    pub slices: u32,
    /// Cycle counter at job start.
    pub started_at: u64,
    /// Cycle counter at completion.
    pub finished_at: u64,
}

impl LoadReport {
    /// Total loader cycles across all phases.
    pub fn total_cycles(&self) -> u64 {
        self.alloc_cycles
            + self.copy_cycles
            + self.reloc_cycles
            + self.mpu_cycles
            + self.rtm_cycles
            + self.register_cycles
    }

    /// Wall-clock cycles from start to finish (includes preemptions).
    pub fn elapsed_cycles(&self) -> u64 {
        self.finished_at.saturating_sub(self.started_at)
    }
}

/// Result of one [`LoadJob::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadProgress {
    /// More work remains in the given phase.
    InProgress(LoadPhase),
    /// The task is loaded, measured, and scheduled.
    Done {
        /// The scheduler handle.
        handle: TaskHandle,
        /// The task identity (secure tasks; zero for normal tasks).
        id: TaskId,
    },
}

/// A resumable task-load pipeline.
#[derive(Debug)]
pub struct LoadJob<D: Digest> {
    image: TaskImage,
    mailbox_offset: u32,
    priority: u8,
    phase: LoadPhase,
    base: u32,
    copy_offset: u32,
    reloc_idx: usize,
    measure: Option<MeasureJob<D>>,
    verify: Option<Box<LintPolicy>>,
    pub(crate) report: LoadReport,
    loadable: Vec<u8>,
}

impl<D: Digest> LoadJob<D> {
    /// Prepares a load of `image` (mailbox offset from the tool chain)
    /// at the given scheduling priority.
    pub fn new(image: TaskImage, mailbox_offset: u32, priority: u8) -> Self {
        let loadable = image.loadable_bytes();
        LoadJob {
            image,
            mailbox_offset,
            priority,
            phase: LoadPhase::Alloc,
            base: 0,
            copy_offset: 0,
            reloc_idx: 0,
            measure: None,
            verify: None,
            report: LoadReport::default(),
            loadable,
        }
    }

    /// Enables the static pre-load verification phase: before any memory
    /// is allocated, the image is linted against `policy` and the load
    /// aborts with [`LoadError::LintRejected`] if the verifier proves a
    /// policy violation. Verification runs host-side and consumes zero
    /// guest cycles.
    pub fn with_verification(mut self, policy: LintPolicy) -> Self {
        self.verify = Some(Box::new(policy));
        self.phase = LoadPhase::Verify;
        self
    }

    /// The current phase.
    pub fn phase(&self) -> LoadPhase {
        self.phase
    }

    /// The per-phase cycle report (final once the job is done).
    pub fn report(&self) -> LoadReport {
        self.report
    }

    /// The load base address (valid after the alloc phase).
    pub fn base(&self) -> u32 {
        self.base
    }

    /// The image being loaded (the profiler symbolizes it at completion).
    pub fn image(&self) -> &TaskImage {
        &self.image
    }

    /// Performs one bounded slice of load work.
    ///
    /// `rtm_blocks_per_slice` bounds the measurement slice (the RTM "must
    /// be interruptible during the hash calculation", §3).
    ///
    /// # Errors
    ///
    /// Returns a [`LoadError`]; the caller must then call
    /// [`LoadJob::abort`] to release resources.
    #[allow(clippy::too_many_arguments)]
    pub fn step(
        &mut self,
        machine: &mut Machine,
        kernel: &mut Kernel,
        rtm: &mut Rtm,
        allocator: &mut Allocator,
        actors: TrustedActors,
        rtm_blocks_per_slice: u32,
    ) -> Result<LoadProgress, LoadError> {
        if self.report.slices == 0 {
            self.report.started_at = machine.cycles();
        }
        self.report.slices += 1;
        let costs = machine.firmware_costs();
        match self.phase {
            LoadPhase::Verify => {
                // Host-side static analysis: no machine.tick — the guest
                // cycle counter must be identical to an unverified load.
                let Some(policy) = self.verify.as_deref() else {
                    return Err(LoadError::Sequence {
                        phase: LoadPhase::Verify,
                        what: "verification phase entered without a policy",
                    });
                };
                let report = lint_image(&self.image, policy);
                if report.count(Severity::Error) > 0 {
                    return Err(LoadError::LintRejected(Box::new(report)));
                }
                self.phase = LoadPhase::Alloc;
            }
            LoadPhase::Alloc => {
                let before = machine.cycles();
                let region = allocator.alloc(self.image.total_memory_size())?;
                self.base = region.start();
                machine.tick(costs.alloc_task);
                self.report.alloc_cycles += machine.cycles() - before;
                self.phase = LoadPhase::Copy;
            }
            LoadPhase::Copy => {
                let before = machine.cycles();
                let len = COPY_SLICE_BYTES.min(self.loadable.len() as u32 - self.copy_offset);
                let start = self.copy_offset as usize;
                machine.write_bytes(
                    self.base + self.copy_offset,
                    &self.loadable[start..start + len as usize],
                )?;
                // Zero the bss region in the same pass once copy completes.
                self.copy_offset += len;
                // Header parsing (the paper's ELF handling) is spread over
                // the copy slices so no single slice exceeds the bound.
                machine.tick(
                    costs.load_copy_per_word * u64::from(len.div_ceil(4))
                        + costs.load_parse_per_byte * u64::from(len),
                );
                if self.copy_offset >= self.loadable.len() as u32 {
                    let bss = vec![0u8; self.image.bss_len() as usize];
                    machine.write_bytes(self.base + self.copy_offset, &bss)?;
                    self.phase = LoadPhase::Relocate;
                }
                self.report.copy_cycles += machine.cycles() - before;
            }
            LoadPhase::Relocate => {
                let before = machine.cycles();
                if self.reloc_idx == 0 {
                    machine.tick(costs.reloc_base);
                }
                let relocs = self.image.relocs();
                let end = (self.reloc_idx + RELOC_SLICE_SITES).min(relocs.len());
                for &site in &relocs[self.reloc_idx..end] {
                    let addr = self.base + site;
                    let word = machine.read_word(addr)?;
                    machine.write_word(addr, word.wrapping_add(self.base))?;
                    machine.tick(costs.reloc_per_site);
                }
                self.reloc_idx = end;
                if self.reloc_idx >= relocs.len() {
                    self.phase = LoadPhase::MpuConfig;
                }
                self.report.reloc_cycles += machine.cycles() - before;
            }
            LoadPhase::MpuConfig => {
                let before = machine.cycles();
                let (code, data) = self.regions();
                let kind = self.task_kind();
                let entry = self.base + self.image.entry_offset();
                let rules = driver::install_task_rules(machine, actors, code, entry, data, kind)?;
                self.report.mpu_primary_cycles = rules.primary_rule_cycles;
                self.report.mpu_cycles += machine.cycles() - before;
                self.phase = if self.image.is_secure() {
                    self.measure = Some(MeasureJob::new(&self.image, self.base));
                    LoadPhase::Measure
                } else {
                    LoadPhase::Register
                };
            }
            LoadPhase::Measure => {
                let before = machine.cycles();
                let Some(job) = self.measure.as_mut() else {
                    return Err(LoadError::Sequence {
                        phase: LoadPhase::Measure,
                        what: "measurement phase entered without a measure job",
                    });
                };
                let progress =
                    job.step(machine, actors.trusted_actor(), rtm_blocks_per_slice.max(1))?;
                self.report.rtm_cycles += machine.cycles() - before;
                if progress == MeasureProgress::Done {
                    self.phase = LoadPhase::Register;
                }
            }
            LoadPhase::Register => {
                let before = machine.cycles();
                let (code, data) = self.regions();
                let handle = kernel.create_task(
                    machine,
                    TcbParams {
                        name: self.image.name().to_string(),
                        priority: self.priority,
                        entry: self.base + self.image.entry_offset(),
                        stack_top: self.base + self.image.total_memory_size(),
                        code,
                        data,
                        kind: self.task_kind(),
                    },
                )?;
                let (id, digest) = match self.measure.take() {
                    Some(job) => {
                        let digest = job.finish();
                        (TaskId::from_digest(&digest), digest)
                    }
                    None => (TaskId::from_u64(0), Vec::new()),
                };
                if self.image.is_secure() {
                    rtm.register(MeasurementRecord {
                        id,
                        digest,
                        handle,
                        base: self.base,
                        mailbox: self.base + self.mailbox_offset,
                        code,
                        data,
                        name: self.image.name().to_string(),
                    });
                }
                self.report.register_cycles += machine.cycles() - before;
                self.report.finished_at = machine.cycles();
                self.phase = LoadPhase::Done;
                return Ok(LoadProgress::Done { handle, id });
            }
            LoadPhase::Done => {
                return Err(LoadError::Sequence {
                    phase: LoadPhase::Done,
                    what: "stepped again after completion",
                });
            }
        }
        Ok(LoadProgress::InProgress(self.phase))
    }

    /// The code and data regions the task will occupy.
    ///
    /// Code covers the text section; data covers static data (mailbox),
    /// bss, and the stack.
    pub fn regions(&self) -> (Region, Region) {
        let text_len = self.image.text().len() as u32;
        let code = Region::new(self.base, text_len);
        let data = Region::new(
            self.base + text_len,
            self.image.total_memory_size() - text_len,
        );
        (code, data)
    }

    fn task_kind(&self) -> TaskKind {
        if self.image.is_secure() {
            TaskKind::Secure
        } else {
            TaskKind::Normal
        }
    }

    /// Releases the job's resources after a failure.
    pub fn abort(&mut self, machine: &mut Machine, allocator: &mut Allocator) {
        if self.base != 0 {
            let (code, data) = self.regions();
            driver::remove_task_rules(machine.mpu_mut(), code, data);
            let _ = allocator.free(self.base);
            self.base = 0;
        }
        self.phase = LoadPhase::Done;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toolchain::{build_normal_task, SecureTaskBuilder};
    use rtos::KernelConfig;
    use sp_emu::MachineConfig;
    use tytan_crypto::Sha1;

    fn setup() -> (Machine, Kernel, Rtm, Allocator, TrustedActors) {
        let machine = Machine::new(MachineConfig::default());
        let kernel = Kernel::new(KernelConfig::default());
        let rtm = Rtm::new();
        let allocator = Allocator::new(rtos::layout::HEAP_BASE, 0x4_0000);
        let actors = TrustedActors {
            trusted: Region::new(rtos::layout::TRUSTED_BASE, rtos::layout::TRUSTED_CODE_LEN),
            kernel: Region::new(rtos::layout::KERNEL_BASE, rtos::layout::KERNEL_CODE_LEN),
            kernel_entry: rtos::layout::KERNEL_TRAP,
        };
        (machine, kernel, rtm, allocator, actors)
    }

    fn secure_image() -> (TaskImage, u32) {
        let source = SecureTaskBuilder::new(
            "loadee",
            "main:\n movi r1, __mailbox\n movi r2, main\nspin:\n jmp spin\n",
        )
        .stack_len(256)
        .build()
        .unwrap();
        (source.image, source.mailbox_offset)
    }

    fn drive(
        job: &mut LoadJob<Sha1>,
        m: &mut Machine,
        k: &mut Kernel,
        rtm: &mut Rtm,
        a: &mut Allocator,
        actors: TrustedActors,
    ) -> (TaskHandle, TaskId) {
        loop {
            match job.step(m, k, rtm, a, actors, 2).unwrap() {
                LoadProgress::Done { handle, id } => return (handle, id),
                LoadProgress::InProgress(_) => {}
            }
        }
    }

    #[test]
    fn secure_load_completes_and_registers() {
        let (mut m, mut k, mut rtm, mut a, actors) = setup();
        let (image, mbox) = secure_image();
        let expected = Sha1::digest(&image.measurement_bytes());
        let mut job = LoadJob::<Sha1>::new(image, mbox, 2);
        let (handle, id) = drive(&mut job, &mut m, &mut k, &mut rtm, &mut a, actors);

        let record = rtm.lookup(id).unwrap();
        assert_eq!(record.handle, handle);
        assert_eq!(record.digest, expected);
        assert_eq!(id, TaskId::from_digest(&expected));
        assert_eq!(k.task(handle).unwrap().name(), "loadee");
        assert!(k.task(handle).unwrap().is_secure());
        // Three EA-MPU rules installed.
        assert_eq!(m.mpu().used_slots(), 3);
    }

    #[test]
    fn load_report_decomposes_phases() {
        let (mut m, mut k, mut rtm, mut a, actors) = setup();
        let (image, mbox) = secure_image();
        let blocks = u64::from(image.loadable_len().div_ceil(64));
        let relocs = u64::from(image.reloc_count());
        let mut job = LoadJob::<Sha1>::new(image, mbox, 2);
        drive(&mut job, &mut m, &mut k, &mut rtm, &mut a, actors);
        let report = job.report();

        assert!(report.alloc_cycles > 0);
        assert!(report.copy_cycles > 0);
        let fw = m.firmware_costs();
        let expected_reloc = fw.reloc_base + relocs * fw.reloc_per_site;
        assert_eq!(report.reloc_cycles, expected_reloc);
        assert!(report.rtm_cycles >= fw.measure_base + blocks * fw.measure_per_block);
        assert_eq!(report.mpu_primary_cycles, 1125);
        assert!(report.total_cycles() <= report.elapsed_cycles() + 1);
    }

    #[test]
    fn rtm_dominates_secure_load_cost() {
        // Table 4's shape: the RTM phase dwarfs relocation and EA-MPU.
        let (mut m, mut k, mut rtm, mut a, actors) = setup();
        let (image, mbox) = secure_image();
        let mut job = LoadJob::<Sha1>::new(image, mbox, 2);
        drive(&mut job, &mut m, &mut k, &mut rtm, &mut a, actors);
        let report = job.report();
        assert!(report.rtm_cycles > report.reloc_cycles);
        assert!(report.rtm_cycles > report.mpu_cycles);
    }

    #[test]
    fn normal_load_skips_measurement() {
        let (mut m, mut k, mut rtm, mut a, actors) = setup();
        let source = build_normal_task("n", "main:\nspin:\n jmp spin\n", "", 128).unwrap();
        let mut job = LoadJob::<Sha1>::new(source.image, 0, 1);
        let (handle, id) = drive(&mut job, &mut m, &mut k, &mut rtm, &mut a, actors);
        assert_eq!(id, TaskId::from_u64(0));
        assert!(rtm.is_empty());
        assert_eq!(job.report().rtm_cycles, 0);
        assert!(!k.task(handle).unwrap().is_secure());
        // Normal tasks still get three rules (own + trusted + OS alias).
        assert_eq!(m.mpu().used_slots(), 3);
    }

    #[test]
    fn loaded_code_is_relocated_in_memory() {
        let (mut m, mut k, mut rtm, mut a, actors) = setup();
        let (image, mbox) = secure_image();
        let relocs = image.relocs().to_vec();
        let linked = image.loadable_bytes();
        let mut job = LoadJob::<Sha1>::new(image, mbox, 2);
        drive(&mut job, &mut m, &mut k, &mut rtm, &mut a, actors);
        let base = job.base();
        for &site in &relocs {
            let linked_word =
                u32::from_le_bytes(linked[site as usize..site as usize + 4].try_into().unwrap());
            let mem_word = m.read_word(base + site).unwrap();
            assert_eq!(mem_word, linked_word.wrapping_add(base), "site {site:#x}");
        }
    }

    #[test]
    fn two_loads_of_same_image_same_identity_different_base() {
        let (mut m, mut k, mut rtm, mut a, actors) = setup();
        let (image, mbox) = secure_image();
        let mut job1 = LoadJob::<Sha1>::new(image.clone(), mbox, 2);
        let (_, id1) = drive(&mut job1, &mut m, &mut k, &mut rtm, &mut a, actors);
        // Second copy must not alias the first's memory: the allocator
        // gives it a fresh base, and its EA-MPU rules conflict-check...
        let mut job2 = LoadJob::<Sha1>::new(image, mbox, 2);
        let (_, id2) = drive(&mut job2, &mut m, &mut k, &mut rtm, &mut a, actors);
        assert_ne!(job1.base(), job2.base());
        // ...yet the measured identity is identical (position independent).
        assert_eq!(id1, id2);
    }

    #[test]
    fn alloc_failure_reported_and_abort_releases() {
        let (mut m, mut k, mut rtm, mut _a, actors) = setup();
        let mut tiny = Allocator::new(rtos::layout::HEAP_BASE, 64);
        let (image, mbox) = secure_image();
        let mut job = LoadJob::<Sha1>::new(image, mbox, 2);
        let err = job
            .step(&mut m, &mut k, &mut rtm, &mut tiny, actors, 2)
            .unwrap_err();
        assert!(matches!(err, LoadError::Alloc(_)));
        job.abort(&mut m, &mut tiny);
        assert_eq!(tiny.free_bytes(), 64);
    }

    #[test]
    fn interruptible_load_takes_many_slices() {
        let (mut m, mut k, mut rtm, mut a, actors) = setup();
        let (image, mbox) = secure_image();
        let mut job = LoadJob::<Sha1>::new(image, mbox, 2);
        drive(&mut job, &mut m, &mut k, &mut rtm, &mut a, actors);
        assert!(job.report().slices >= 5, "slices: {}", job.report().slices);
    }

    fn crafted_image(source: &str) -> TaskImage {
        let program = sp32::asm::assemble(source, 0).unwrap();
        TaskImage::from_program("crafted", &program, 256, true).unwrap()
    }

    #[test]
    fn verified_load_refuses_store_outside_data() {
        let (mut m, mut k, mut rtm, mut a, actors) = setup();
        let image = crafted_image("main:\n movi r1, 0xf0000000\n stw [r1], r2\n hlt\n");
        let mut job = LoadJob::<Sha1>::new(image, 0, 2).with_verification(LintPolicy::default());
        let err = job
            .step(&mut m, &mut k, &mut rtm, &mut a, actors, 2)
            .unwrap_err();
        match err {
            LoadError::LintRejected(report) => {
                assert!(report.count(Severity::Error) > 0);
            }
            other => panic!("expected LintRejected, got {other:?}"),
        }
        // Rejection happened before allocation: nothing to release.
        assert_eq!(job.base(), 0);
    }

    #[test]
    fn verified_load_refuses_mid_region_call() {
        let (mut m, mut k, mut rtm, mut a, actors) = setup();
        let image = crafted_image("main:\n call 0x8010\n hlt\n");
        let policy = LintPolicy {
            peers: vec![tytan_lint::Peer {
                code: Region::new(0x8000, 0x100),
                entry: 0x8000,
            }],
            ..LintPolicy::default()
        };
        let mut job = LoadJob::<Sha1>::new(image, 0, 2).with_verification(policy);
        let err = job
            .step(&mut m, &mut k, &mut rtm, &mut a, actors, 2)
            .unwrap_err();
        assert!(matches!(err, LoadError::LintRejected(_)), "{err:?}");
    }

    #[test]
    fn verified_load_of_clean_image_costs_zero_guest_cycles() {
        // Same image, with and without verification: the verified load
        // must finish with an identical guest cycle count — the analysis
        // is host-side only.
        let (mut m1, mut k1, mut rtm1, mut a1, actors1) = setup();
        let (image, mbox) = secure_image();
        let mut plain = LoadJob::<Sha1>::new(image.clone(), mbox, 2);
        drive(&mut plain, &mut m1, &mut k1, &mut rtm1, &mut a1, actors1);
        let plain_cycles = m1.cycles();

        let (mut m2, mut k2, mut rtm2, mut a2, actors2) = setup();
        let mut verified =
            LoadJob::<Sha1>::new(image, mbox, 2).with_verification(LintPolicy::default());
        assert_eq!(verified.phase(), LoadPhase::Verify);
        let (handle, _) = drive(&mut verified, &mut m2, &mut k2, &mut rtm2, &mut a2, actors2);
        assert_eq!(m2.cycles(), plain_cycles);
        assert_eq!(k2.task(handle).unwrap().name(), "loadee");
    }

    #[test]
    fn out_of_sequence_jobs_fail_typed_instead_of_panicking() {
        let (mut m, mut k, mut rtm, mut a, actors) = setup();
        let (image, mbox) = secure_image();

        // Stepping a finished job again is a driver bug or a replayed
        // request — either way a typed error, never a host panic.
        let mut job = LoadJob::<Sha1>::new(image.clone(), mbox, 2);
        drive(&mut job, &mut m, &mut k, &mut rtm, &mut a, actors);
        let err = job
            .step(&mut m, &mut k, &mut rtm, &mut a, actors, 2)
            .unwrap_err();
        assert_eq!(
            err,
            LoadError::Sequence {
                phase: LoadPhase::Done,
                what: "stepped again after completion",
            }
        );

        // A Verify phase forged without its policy (corrupted sequence;
        // used to hit an `expect`).
        let mut forged = LoadJob::<Sha1>::new(image.clone(), mbox, 2);
        forged.phase = LoadPhase::Verify;
        let err = forged
            .step(&mut m, &mut k, &mut rtm, &mut a, actors, 2)
            .unwrap_err();
        assert!(
            matches!(
                err,
                LoadError::Sequence {
                    phase: LoadPhase::Verify,
                    ..
                }
            ),
            "{err:?}"
        );

        // A Measure phase forged without its measure job (likewise).
        let mut forged = LoadJob::<Sha1>::new(image, mbox, 2);
        forged.phase = LoadPhase::Measure;
        let err = forged
            .step(&mut m, &mut k, &mut rtm, &mut a, actors, 2)
            .unwrap_err();
        assert!(
            matches!(
                err,
                LoadError::Sequence {
                    phase: LoadPhase::Measure,
                    ..
                }
            ),
            "{err:?}"
        );
    }
}
