//! The EA-MPU driver.
//!
//! "The dynamic handling of tasks requires the EA-MPU to be dynamically
//! configurable. This is performed by the EA-MPU driver, which sets the
//! memory access control rules in the EA-MPU when loading or unloading a
//! secure task" (§3). The driver is a trusted component; the rules for the
//! static components (including the driver itself) are set during secure
//! boot via [`EaMpu::set_rule`].
//!
//! Rule budget per task (see DESIGN.md):
//!
//! - the task's own rule (code → data, RW) — installed with the full
//!   policy-checked [`EaMpu::configure`] path (Table 6 costs);
//! - a trusted alias (trusted region → task data, RW) so the Int Mux can
//!   save contexts to the task's stack and the IPC proxy can write its
//!   mailbox;
//! - for secure tasks, a trusted read alias (trusted region → task code,
//!   R) so the RTM can measure the binary; for normal tasks instead an OS
//!   alias (kernel region → task data, RW) so the OS can prepare and
//!   restore their stacks — normal tasks are "accessible to the OS" (§3).
//!
//! Trusted aliases intentionally alias protected regions, which the
//! general policy forbids; the driver installs them with its set-rule
//! privilege and charges the find-slot and write phases only.

use eampu::{ConfigureError, EaMpu, Perms, Region, Rule};
use rtos::TaskKind;
use sp_emu::Machine;

/// Actor addresses (an instruction address inside each component's code
/// region) used for EA-MPU-checked firmware accesses.
#[derive(Debug, Clone, Copy)]
pub struct TrustedActors {
    /// The trusted-components region (Int Mux, IPC proxy, RTM, entry
    /// stubs).
    pub trusted: Region,
    /// The untrusted OS kernel region.
    pub kernel: Region,
    /// The dedicated entry point into the OS region (the kernel trap the
    /// interrupt stubs branch to).
    pub kernel_entry: u32,
}

impl TrustedActors {
    /// An EIP inside the trusted region.
    pub fn trusted_actor(&self) -> u32 {
        self.trusted.start()
    }

    /// An EIP inside the OS region.
    pub fn kernel_actor(&self) -> u32 {
        self.kernel.start()
    }
}

/// The slots and cycle cost of one task's rule installation.
#[derive(Debug, Clone, Default)]
pub struct TaskRules {
    /// EA-MPU slots holding this task's rules.
    pub slots: Vec<usize>,
    /// Total configuration cycles charged.
    pub cycles: u64,
    /// Cycles of the policy-checked primary rule alone (the quantity
    /// Table 4's "EA-MPU" column decomposes).
    pub primary_rule_cycles: u64,
}

/// Installs the rules for a newly loaded task and charges the machine
/// clock per the Table 6 cost model.
///
/// # Errors
///
/// Returns the policy error for the task's primary rule, or
/// [`ConfigureError::NoFreeSlot`] if the table cannot hold all rules; any
/// partially installed rules are rolled back.
pub fn install_task_rules(
    machine: &mut Machine,
    actors: TrustedActors,
    code: Region,
    entry: u32,
    data: Region,
    kind: TaskKind,
) -> Result<TaskRules, ConfigureError> {
    let mut rules = TaskRules::default();
    let result = (|| {
        // 1. The task's own rule, full policy-checked path.
        let outcome = machine
            .mpu_mut()
            .configure(Rule::new(code, entry, data, Perms::RW))?;
        rules.slots.push(outcome.slot);
        rules.primary_rule_cycles = outcome.cost.total();
        rules.cycles += outcome.cost.total();

        // 2. Trusted alias on the task's data (context save, mailbox).
        rules.cycles += install_alias(
            machine,
            &mut rules.slots,
            Rule::new(actors.trusted, actors.trusted.start(), data, Perms::RW),
        )?;

        // 3. Kind-specific alias.
        let third = match kind {
            TaskKind::Secure => {
                // RTM measurement reads of the task's code.
                Rule::new(actors.trusted, actors.trusted.start(), code, Perms::R)
            }
            TaskKind::Normal => {
                // The OS may access normal task memory. The rule's entry
                // point is the kernel trap so interrupt stubs can still
                // branch into the (now protected) OS region.
                Rule::new(actors.kernel, actors.kernel_entry, data, Perms::RW)
            }
        };
        rules.cycles += install_alias(machine, &mut rules.slots, third)?;
        Ok(())
    })();

    match result {
        Ok(()) => {
            machine.tick(rules.cycles);
            Ok(rules)
        }
        Err(e) => {
            for slot in rules.slots.drain(..) {
                machine.mpu_mut().clear_slot(slot);
            }
            Err(e)
        }
    }
}

fn install_alias(
    machine: &mut Machine,
    slots: &mut Vec<usize>,
    rule: Rule,
) -> Result<u64, ConfigureError> {
    let (slot, find_cost) = machine.mpu().find_free_slot();
    let slot = slot.ok_or(ConfigureError::NoFreeSlot)?;
    machine.mpu_mut().set_rule(slot, rule);
    slots.push(slot);
    Ok(find_cost + machine.mpu().costs().write_rule)
}

/// Removes every rule referencing the task's regions (unload path).
///
/// Returns the number of cleared slots.
pub fn remove_task_rules(mpu: &mut EaMpu, code: Region, data: Region) -> usize {
    let slots: Vec<usize> = mpu
        .rules()
        .filter(|(_, r)| r.code == code || r.data == data || r.data == code)
        .map(|(slot, _)| slot)
        .collect();
    for slot in &slots {
        mpu.clear_slot(*slot);
    }
    slots.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eampu::AccessKind;
    use sp_emu::MachineConfig;

    fn actors() -> TrustedActors {
        TrustedActors {
            trusted: Region::new(0x1000, 0x1000),
            kernel: Region::new(0x400, 0x400),
            kernel_entry: 0x7fc,
        }
    }

    fn machine() -> Machine {
        Machine::new(MachineConfig::default())
    }

    #[test]
    fn secure_task_rules_grant_expected_access() {
        let mut m = machine();
        let code = Region::new(0x4000, 0x200);
        let data = Region::new(0x4200, 0x400);
        let rules =
            install_task_rules(&mut m, actors(), code, 0x4000, data, TaskKind::Secure).unwrap();
        assert_eq!(rules.slots.len(), 3);

        // Task accesses its own data.
        assert!(m
            .mpu()
            .check_access(0x4004, 0x4300, AccessKind::Write)
            .is_allowed());
        // Trusted components access the data and read the code.
        assert!(m
            .mpu()
            .check_access(0x1010, 0x4300, AccessKind::Write)
            .is_allowed());
        assert!(m
            .mpu()
            .check_access(0x1010, 0x4004, AccessKind::Read)
            .is_allowed());
        // The OS does not.
        assert!(!m
            .mpu()
            .check_access(0x410, 0x4300, AccessKind::Read)
            .is_allowed());
        assert!(!m
            .mpu()
            .check_access(0x410, 0x4004, AccessKind::Read)
            .is_allowed());
    }

    #[test]
    fn normal_task_rules_admit_the_os() {
        let mut m = machine();
        let code = Region::new(0x5000, 0x200);
        let data = Region::new(0x5200, 0x400);
        let rules =
            install_task_rules(&mut m, actors(), code, 0x5000, data, TaskKind::Normal).unwrap();
        assert_eq!(rules.slots.len(), 3);
        // OS reads and writes normal task data.
        assert!(m
            .mpu()
            .check_access(0x410, 0x5300, AccessKind::Write)
            .is_allowed());
        // Another task does not.
        assert!(!m
            .mpu()
            .check_access(0x9000, 0x5300, AccessKind::Read)
            .is_allowed());
    }

    #[test]
    fn cycles_are_charged_and_decomposed() {
        let mut m = machine();
        let before = m.cycles();
        let rules = install_task_rules(
            &mut m,
            actors(),
            Region::new(0x4000, 0x200),
            0x4000,
            Region::new(0x4200, 0x400),
            TaskKind::Secure,
        )
        .unwrap();
        assert_eq!(m.cycles() - before, rules.cycles);
        // Primary rule (slot 1): Table 6 overall for an empty table.
        assert_eq!(rules.primary_rule_cycles, 1125);
        assert!(rules.cycles > rules.primary_rule_cycles);
    }

    #[test]
    fn overlapping_task_rejected_and_rolled_back() {
        let mut m = machine();
        let a = install_task_rules(
            &mut m,
            actors(),
            Region::new(0x4000, 0x200),
            0x4000,
            Region::new(0x4200, 0x400),
            TaskKind::Secure,
        )
        .unwrap();
        let used_before = m.mpu().used_slots();
        // Partially overlapping data region.
        let err = install_task_rules(
            &mut m,
            actors(),
            Region::new(0x6000, 0x200),
            0x6000,
            Region::new(0x4300, 0x400),
            TaskKind::Secure,
        )
        .unwrap_err();
        assert!(matches!(err, ConfigureError::DataOverlap { .. }));
        assert_eq!(m.mpu().used_slots(), used_before, "rollback complete");
        let _ = a;
    }

    #[test]
    fn unload_clears_all_task_slots() {
        let mut m = machine();
        let code = Region::new(0x4000, 0x200);
        let data = Region::new(0x4200, 0x400);
        install_task_rules(&mut m, actors(), code, 0x4000, data, TaskKind::Secure).unwrap();
        assert_eq!(m.mpu().used_slots(), 3);
        assert_eq!(remove_task_rules(m.mpu_mut(), code, data), 3);
        assert_eq!(m.mpu().used_slots(), 0);
        // Memory is open again.
        assert!(m
            .mpu()
            .check_access(0x410, 0x4300, AccessKind::Read)
            .is_allowed());
    }

    #[test]
    fn slot_exhaustion_rolls_back() {
        let mut m = Machine::new(MachineConfig {
            mpu_slots: 2,
            ..MachineConfig::default()
        });
        let err = install_task_rules(
            &mut m,
            actors(),
            Region::new(0x4000, 0x200),
            0x4000,
            Region::new(0x4200, 0x400),
            TaskKind::Secure,
        )
        .unwrap_err();
        assert_eq!(err, ConfigureError::NoFreeSlot);
        assert_eq!(m.mpu().used_slots(), 0);
    }
}
