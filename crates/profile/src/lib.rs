//! Exact guest-cycle profiler for the TyTAN reproduction.
//!
//! The paper's evaluation is entirely about *where guest cycles go* —
//! context save/restore, IPC round-trips, interrupt latency under secure
//! loading. This crate turns the emulator's exact attribution hook
//! ([`sp_emu::CycleObserver`]) into evidence:
//!
//! - [`CycleProfiler`] — a lock-free per-EIP cycle accumulator. Unlike a
//!   sampling profiler there is no statistical error: every charged
//!   cycle lands in exactly one bucket (instruction address, interrupt
//!   dispatch vector, firmware trap, or idle), and the bucket totals sum
//!   to the machine's clock delta.
//! - [`SymbolMap`] — resolves absolute addresses to `(task, function)`
//!   names. Task images symbolize through `tytan-lint`'s CFG recovery
//!   ([`tytan_lint::symbolize`]): the entry point plus every `call`
//!   target becomes a named function. Trusted-region stubs and firmware
//!   trap addresses are registered by the platform with explicit names.
//! - [`Report`] — folded-stack text (`task;function cycles` per line,
//!   the input format of standard flamegraph tooling), a top-N hot-spot
//!   table, and a named-coverage fraction. Unresolvable cycles are
//!   explicitly `[unknown]`, never silently dropped.
//!
//! Like the tracer, profiling is host-side only and guest-cycle-neutral:
//! the differential identity suite runs the full use case with and
//! without the profiler attached and asserts bit-identical machine
//! state.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use sp_emu::{Machine, MachineConfig};
//! use sp32::asm::assemble;
//! use tytan_profile::{CycleProfiler, SymbolMap};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut machine = Machine::new(MachineConfig::default());
//! let program = assemble("main:\n movi r0, 9\nspin:\n addi r0, -1\n cmpi r0, 0\n jnz spin\n hlt\n", 0x1000)?;
//! machine.load_image(0x1000, &program.bytes)?;
//! machine.set_eip(0x1000);
//!
//! let profiler = CycleProfiler::new(machine.ram_size());
//! machine.attach_cycle_observer(Arc::new(profiler.clone()));
//! machine.run(500);
//!
//! let mut symbols = SymbolMap::new();
//! symbols.add_function(0x1000, 0x1000 + program.bytes.len() as u32, "demo", "entry");
//! let report = profiler.report(&symbols);
//! assert_eq!(report.total, machine.cycles());
//! assert!(report.folded().contains("demo;entry"));
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sp_emu::CycleObserver;
use tytan_image::TaskImage;
use tytan_lint::symbolize::image_functions;

/// Stack-frame name for cycles at addresses no symbol covers.
pub const UNKNOWN: &str = "[unknown]";
/// Stack-frame name for halted-core idle cycles.
pub const IDLE: &str = "[idle]";
/// Task-frame name for exception-engine dispatch cycles.
pub const IRQ: &str = "[irq]";

struct Buckets {
    /// Cycles charged by guest instructions, indexed by `eip >> 2`.
    instr: Vec<AtomicU64>,
    /// Cycles charged by host-modelled firmware, indexed by trap
    /// `eip >> 2`. Kept apart from `instr` so firmware service time can
    /// never masquerade as guest execution at the same address.
    firmware: Vec<AtomicU64>,
    /// Exception-engine dispatch cycles, per vector.
    dispatch: Vec<AtomicU64>,
    /// Halted-core idle cycles.
    idle: AtomicU64,
    /// Cycles attributed to addresses outside RAM (off-bucket spill —
    /// kept so exactness survives a wild EIP).
    instr_spill: AtomicU64,
    firmware_spill: AtomicU64,
}

/// The exact per-EIP cycle profiler. Cheaply cloneable; clones share the
/// same buckets, so one handle attaches to the machine while another
/// produces reports.
#[derive(Clone)]
pub struct CycleProfiler {
    buckets: Arc<Buckets>,
}

impl std::fmt::Debug for CycleProfiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CycleProfiler")
            .field("total_attributed", &self.total_attributed())
            .finish()
    }
}

impl CycleProfiler {
    /// Builds a profiler covering `ram_size` bytes of address space (one
    /// cell per instruction word).
    pub fn new(ram_size: u32) -> Self {
        let cells = (ram_size as usize).div_ceil(4);
        CycleProfiler {
            buckets: Arc::new(Buckets {
                instr: (0..cells).map(|_| AtomicU64::new(0)).collect(),
                firmware: (0..cells).map(|_| AtomicU64::new(0)).collect(),
                dispatch: (0..256).map(|_| AtomicU64::new(0)).collect(),
                idle: AtomicU64::new(0),
                instr_spill: AtomicU64::new(0),
                firmware_spill: AtomicU64::new(0),
            }),
        }
    }

    /// Total cycles attributed so far, across every bucket. Equals the
    /// machine's clock delta since attach (the exactness contract of
    /// [`sp_emu::CycleObserver`]).
    pub fn total_attributed(&self) -> u64 {
        let b = &self.buckets;
        b.instr
            .iter()
            .chain(b.firmware.iter())
            .chain(b.dispatch.iter())
            .map(|c| c.load(Ordering::Relaxed))
            .sum::<u64>()
            + b.idle.load(Ordering::Relaxed)
            + b.instr_spill.load(Ordering::Relaxed)
            + b.firmware_spill.load(Ordering::Relaxed)
    }

    /// Folds the buckets into a symbolized [`Report`].
    pub fn report(&self, symbols: &SymbolMap) -> Report {
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        let mut add = |stack: String, cycles: u64| {
            if cycles > 0 {
                *folded.entry(stack).or_insert(0) += cycles;
            }
        };

        let b = &self.buckets;
        for (cells, spill) in [
            (&b.instr, b.instr_spill.load(Ordering::Relaxed)),
            (&b.firmware, b.firmware_spill.load(Ordering::Relaxed)),
        ] {
            for (i, cell) in cells.iter().enumerate() {
                let cycles = cell.load(Ordering::Relaxed);
                if cycles == 0 {
                    continue;
                }
                let addr = (i as u32) * 4;
                match symbols.resolve(addr) {
                    Some((task, func)) => add(format!("{task};{func}"), cycles),
                    None => add(UNKNOWN.to_string(), cycles),
                }
            }
            add(UNKNOWN.to_string(), spill);
        }
        for (vector, cell) in b.dispatch.iter().enumerate() {
            add(
                format!("{IRQ};vector_{vector}"),
                cell.load(Ordering::Relaxed),
            );
        }
        add(IDLE.to_string(), b.idle.load(Ordering::Relaxed));

        let total: u64 = folded.values().sum();
        let unknown = folded.get(UNKNOWN).copied().unwrap_or(0);
        let mut entries: Vec<FoldedEntry> = folded
            .into_iter()
            .map(|(stack, cycles)| FoldedEntry { stack, cycles })
            .collect();
        // Hot-first, name as tie-break so reports are deterministic.
        entries.sort_by(|a, b| b.cycles.cmp(&a.cycles).then(a.stack.cmp(&b.stack)));
        Report {
            entries,
            total,
            unknown,
        }
    }
}

impl CycleObserver for CycleProfiler {
    fn instruction(&self, eip: u32, cycles: u64) {
        match self.buckets.instr.get((eip >> 2) as usize) {
            Some(cell) => cell.fetch_add(cycles, Ordering::Relaxed),
            None => self
                .buckets
                .instr_spill
                .fetch_add(cycles, Ordering::Relaxed),
        };
    }

    fn dispatch(&self, vector: u8, cycles: u64) {
        self.buckets.dispatch[vector as usize].fetch_add(cycles, Ordering::Relaxed);
    }

    fn firmware(&self, eip: u32, cycles: u64) {
        match self.buckets.firmware.get((eip >> 2) as usize) {
            Some(cell) => cell.fetch_add(cycles, Ordering::Relaxed),
            None => self
                .buckets
                .firmware_spill
                .fetch_add(cycles, Ordering::Relaxed),
        };
    }

    fn idle(&self, cycles: u64) {
        self.buckets.idle.fetch_add(cycles, Ordering::Relaxed);
    }
}

/// One named address range.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Symbol {
    start: u32,
    end: u32,
    task: String,
    func: String,
}

/// Resolves absolute addresses to `(task, function)` names.
///
/// Registration order does not matter; resolution picks the *narrowest*
/// containing range, so a whole-region fallback (e.g. a task's full
/// memory span) coexists with the per-function symbols inside it.
#[derive(Debug, Default)]
pub struct SymbolMap {
    symbols: Vec<Symbol>,
}

impl SymbolMap {
    /// An empty map (everything resolves to `None` ⇒ `[unknown]`).
    pub fn new() -> Self {
        SymbolMap::default()
    }

    /// Registers `[start, end)` as `task;func`. Empty ranges are ignored.
    pub fn add_function(&mut self, start: u32, end: u32, task: &str, func: &str) {
        if start >= end {
            return;
        }
        self.symbols.push(Symbol {
            start,
            end,
            task: task.to_string(),
            func: func.to_string(),
        });
    }

    /// Registers a loaded task image at `base`: one symbol per
    /// CFG-recovered function (see [`tytan_lint::symbolize`]), plus a
    /// whole-text fallback named `[text]` for offsets no function claims
    /// (e.g. code before the entry point).
    pub fn add_task_image(&mut self, name: &str, base: u32, image: &TaskImage) {
        let text_len = image.text().len() as u32;
        self.add_function(base, base + text_len, name, "[text]");
        for func in image_functions(image) {
            self.add_function(base + func.start, base + func.end, name, &func.name);
        }
    }

    /// Number of registered symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Resolves `addr` to the narrowest registered `(task, func)`. When a
    /// function spans the task's entire text (so its range ties with the
    /// whole-task `[text]` fallback), the named function wins.
    pub fn resolve(&self, addr: u32) -> Option<(&str, &str)> {
        self.symbols
            .iter()
            .filter(|s| s.start <= addr && addr < s.end)
            .min_by_key(|s| (s.end - s.start, s.func == "[text]"))
            .map(|s| (s.task.as_str(), s.func.as_str()))
    }
}

/// One folded-stack line: a `;`-joined frame stack and its cycle total.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldedEntry {
    /// `task;function`, or one of the explicit buckets ([`UNKNOWN`],
    /// [`IDLE`], `[irq];vector_N`).
    pub stack: String,
    /// Exact cycles attributed to this stack.
    pub cycles: u64,
}

/// A symbolized profile: folded stacks (hot first), the attributed
/// total, and the explicitly-unknown share.
#[derive(Debug, Clone)]
pub struct Report {
    /// Folded stacks, sorted by descending cycles.
    pub entries: Vec<FoldedEntry>,
    /// Sum over all entries (== cycles attributed by the profiler).
    pub total: u64,
    /// Cycles folded into [`UNKNOWN`].
    pub unknown: u64,
}

impl Report {
    /// Folded-stack text: one `stack cycles` line per entry, directly
    /// consumable by standard flamegraph tooling
    /// (`flamegraph.pl folded.txt > profile.svg`).
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let _ = writeln!(out, "{} {}", e.stack, e.cycles);
        }
        out
    }

    /// Fraction of attributed cycles resolved to a named bucket (1.0
    /// when nothing folded into [`UNKNOWN`]).
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        1.0 - self.unknown as f64 / self.total as f64
    }

    /// Human-readable top-`n` hot-spot table with cycle shares.
    pub fn top(&self, n: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "top {} of {} stacks — {} cycles attributed, {:.1}% symbolized",
            n.min(self.entries.len()),
            self.entries.len(),
            self.total,
            self.coverage() * 100.0,
        );
        for (rank, e) in self.entries.iter().take(n).enumerate() {
            let share = if self.total == 0 {
                0.0
            } else {
                e.cycles as f64 / self.total as f64 * 100.0
            };
            let _ = writeln!(
                out,
                "{:>3}. {:>12}  {share:>5.1}%  {}",
                rank + 1,
                e.cycles,
                e.stack
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp32::asm::assemble;
    use sp_emu::{Machine, MachineConfig};

    #[test]
    fn attribution_is_exact_against_the_machine_clock() {
        let src = "main:\n sti\n movi r0, 20\nspin:\n addi r0, -1\n cmpi r0, 0\n jnz spin\n \
                   int 9\n hlt\nhandler:\n addi r3, 1\n iret\n";
        let mut m = Machine::new(MachineConfig::default());
        let p = assemble(src, 0x1000).unwrap();
        m.load_image(0x1000, &p.bytes).unwrap();
        m.set_eip(0x1000);
        m.set_reg(sp32::Reg::R7, 0x8000);
        m.set_idt_base(0x40);
        m.set_idt_entry(9, p.symbol("handler").unwrap()).unwrap();

        let profiler = CycleProfiler::new(m.ram_size());
        m.attach_cycle_observer(Arc::new(profiler.clone()));
        m.run(3_000);
        m.tick(55); // firmware charge at the current EIP

        assert_eq!(profiler.total_attributed(), m.cycles());

        let mut symbols = SymbolMap::new();
        symbols.add_function(0x1000, 0x1000 + p.bytes.len() as u32, "demo", "entry");
        let report = profiler.report(&symbols);
        assert_eq!(report.total, m.cycles());
        // The dispatch and idle buckets are explicit stacks.
        assert!(report.entries.iter().any(|e| e.stack == "[irq];vector_9"));
        assert!(report.entries.iter().any(|e| e.stack == IDLE));
    }

    #[test]
    fn wild_eip_cycles_spill_to_unknown_not_lost() {
        let profiler = CycleProfiler::new(0x1000);
        profiler.instruction(0xffff_0000, 12); // beyond the cell array
        profiler.firmware(0xffff_0000, 5);
        profiler.instruction(0x10, 3); // in range, but unsymbolized
        assert_eq!(profiler.total_attributed(), 20);
        let report = profiler.report(&SymbolMap::new());
        assert_eq!(report.total, 20);
        assert_eq!(report.unknown, 20);
        assert_eq!(report.coverage(), 0.0);
    }

    #[test]
    fn narrowest_symbol_wins_and_folding_aggregates() {
        let mut symbols = SymbolMap::new();
        symbols.add_function(0x100, 0x200, "task", "[text]");
        symbols.add_function(0x120, 0x140, "task", "hot_loop");
        assert_eq!(symbols.resolve(0x130), Some(("task", "hot_loop")));
        assert_eq!(symbols.resolve(0x104), Some(("task", "[text]")));
        assert_eq!(symbols.resolve(0x200), None);

        let profiler = CycleProfiler::new(0x1000);
        profiler.instruction(0x124, 70);
        profiler.instruction(0x128, 20);
        profiler.instruction(0x104, 10);
        let report = profiler.report(&symbols);
        assert_eq!(
            report.entries[0],
            FoldedEntry {
                stack: "task;hot_loop".into(),
                cycles: 90
            }
        );
        assert_eq!(report.coverage(), 1.0);
        let folded = report.folded();
        assert!(folded.contains("task;hot_loop 90\n"));
        assert!(folded.contains("task;[text] 10\n"));
        let top = report.top(10);
        assert!(top.contains("task;hot_loop"));
        assert!(top.contains("100.0% symbolized"));
    }

    #[test]
    fn image_symbolization_names_call_targets() {
        let src = "main:\n call helper\n hlt\nhelper:\n nop\n ret\n";
        let p = assemble(src, 0).unwrap();
        let image = tytan_image::TaskImage::from_program("symtask", &p, 256, false).unwrap();
        let mut symbols = SymbolMap::new();
        symbols.add_task_image("symtask", 0x4000, &image);
        let helper = p.symbol("helper").unwrap();
        let (task, func) = symbols.resolve(0x4000 + helper).expect("helper resolves");
        assert_eq!(task, "symtask");
        assert_eq!(func, format!("fn_0x{helper:x}"));
        assert_eq!(symbols.resolve(0x4000), Some(("symtask", "entry")));
    }
}
