//! EA-MPU property tests: the isolation invariants hold for arbitrary
//! rule sets and access patterns.

use eampu::{AccessKind, EaMpu, Perms, Region, Rule};
use proptest::prelude::*;

fn arb_rule() -> impl Strategy<Value = Rule> {
    (0u32..16, 0u32..16, 1u32..8, 1u32..8).prop_map(|(code_page, data_page, code_len, data_len)| {
        let code = Region::new(0x1_0000 + code_page * 0x1000, code_len * 0x100);
        let data = Region::new(0x8_0000 + data_page * 0x1000, data_len * 0x100);
        Rule::new(code, code.start(), data, Perms::RW)
    })
}

proptest! {
    /// No configured rule set ever grants a *foreign* actor access to a
    /// protected data region: access implies some rule's code region
    /// contains the actor.
    #[test]
    fn access_granted_only_via_some_rule(
        rules in proptest::collection::vec(arb_rule(), 1..10),
        eip in 0u32..0x10_0000,
        addr in 0x8_0000u32..0x9_0000,
    ) {
        let mut mpu = EaMpu::new(18);
        for rule in &rules {
            let _ = mpu.configure(*rule);
        }
        let allowed = mpu.check_access(eip, addr, AccessKind::Read).is_allowed();
        let protected = mpu.rules().any(|(_, r)| r.data.contains(addr) || r.code.contains(addr));
        let justified = mpu
            .rules()
            .any(|(_, r)| (r.data.contains(addr) || r.code.contains(addr)) && r.code.contains(eip));
        if protected {
            prop_assert_eq!(allowed, justified, "protected access must be rule-justified");
        } else {
            prop_assert!(allowed, "unprotected memory is open");
        }
    }

    /// After configure + clear, the MPU returns to its prior decision for
    /// every probe (no residue).
    #[test]
    fn configure_then_clear_is_identity(
        base_rules in proptest::collection::vec(arb_rule(), 0..6),
        probe_rule in arb_rule(),
        eip in 0u32..0x10_0000,
        addr in 0u32..0x10_0000,
    ) {
        let mut mpu = EaMpu::new(18);
        for rule in &base_rules {
            let _ = mpu.configure(*rule);
        }
        let before = mpu.check_access(eip, addr, AccessKind::Write);
        if let Ok(outcome) = mpu.configure(probe_rule) {
            mpu.clear_slot(outcome.slot);
        }
        let after = mpu.check_access(eip, addr, AccessKind::Write);
        prop_assert_eq!(before, after);
    }

    /// Entry enforcement: a transfer into a protected code region from
    /// outside is allowed iff it targets the region's entry point.
    #[test]
    fn entry_enforcement_is_exact(
        rule in arb_rule(),
        from in 0u32..0x8_0000,
        offset in 0u32..0x100,
    ) {
        let mut mpu = EaMpu::new(4);
        mpu.configure(rule).unwrap();
        prop_assume!(!rule.code.contains(from));
        let target = rule.code.start() + (offset % rule.code.len());
        let decision = mpu.check_transfer(from, target);
        prop_assert_eq!(decision.is_allowed(), target == rule.entry);
    }

    /// The policy check is order-independent for disjoint rules: any
    /// permutation of disjoint configurations succeeds.
    #[test]
    fn disjoint_rules_configure_in_any_order(mut indices in Just((0..5usize).collect::<Vec<_>>()), seed in any::<u64>()) {
        // Deterministic shuffle from the seed.
        let mut s = seed;
        for i in (1..indices.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            indices.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut mpu = EaMpu::new(18);
        for &i in &indices {
            let base = 0x1_0000 + i as u32 * 0x2000;
            let rule = Rule::new(
                Region::new(base, 0x100),
                base,
                Region::new(base + 0x1000, 0x100),
                Perms::RW,
            );
            prop_assert!(mpu.configure(rule).is_ok());
        }
        prop_assert_eq!(mpu.used_slots(), 5);
    }
}
