//! Execution-aware memory protection unit (EA-MPU) model.
//!
//! The EA-MPU is the hardware trust anchor of TrustLite (EuroSys'14) and
//! TyTAN (DAC 2015). Unlike a conventional MPU, its access-control rules are
//! keyed on *which code* performs an access: a rule grants the code executing
//! inside a code [`Region`] a set of [`Perms`] on a data [`Region`]. The unit
//! additionally enforces that protected code regions are only entered at
//! their dedicated entry point, which is the hardware half of TyTAN's
//! defence against code-reuse attacks.
//!
//! TyTAN extends TrustLite's boot-time-static EA-MPU with *dynamic*
//! configuration; [`EaMpu::configure`] reproduces the three phases the paper
//! decomposes in Table 6 (find a free slot, policy-check the new rule
//! against existing ones, write the rule) and reports the cycle cost of
//! each phase so the EA-MPU driver can charge the platform clock.
//!
//! Access checks themselves are combinational logic in hardware and cost no
//! cycles; [`EaMpu::check_access`] and [`EaMpu::check_transfer`] model only
//! the decision.
//!
//! # Examples
//!
//! ```
//! use eampu::{AccessKind, EaMpu, Perms, Region, Rule};
//!
//! # fn main() -> Result<(), eampu::ConfigureError> {
//! let mut mpu = EaMpu::new(18);
//! let task_code = Region::new(0x1000, 0x100);
//! let task_data = Region::new(0x8000, 0x200);
//! let rule = Rule::new(task_code, 0x1000, task_data, Perms::RW);
//! let outcome = mpu.configure(rule)?;
//! assert_eq!(outcome.slot, 0);
//!
//! // The task may access its own data...
//! assert!(mpu.check_access(0x1010, 0x8004, AccessKind::Write).is_allowed());
//! // ...but code outside the task's region may not.
//! assert!(!mpu.check_access(0x4000, 0x8004, AccessKind::Read).is_allowed());
//! # Ok(())
//! # }
//! ```

use std::cell::{Cell, RefCell};
use std::fmt;
use std::sync::Arc;
use tytan_trace::{CounterId, Counters, Tracer};

mod perms;
mod region;
mod rule;

pub use perms::{AccessKind, Perms};
pub use region::Region;
pub use rule::Rule;

/// Cycle-cost constants for dynamic EA-MPU configuration.
///
/// Defaults are calibrated against Table 6 of the paper: finding the first
/// free slot costs a constant plus a per-slot scan increment (76 cycles for
/// slot 1, 95 for slot 2, 399 for slot 18 — i.e. `57 + 19·position`), the
/// policy check against all existing rules costs a constant 824 cycles, and
/// writing the rule costs 225 cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpuCosts {
    /// Fixed part of the free-slot scan.
    pub find_base: u64,
    /// Per-examined-slot increment of the free-slot scan.
    pub find_per_slot: u64,
    /// Cost of checking the candidate rule against every configured rule.
    pub policy_check: u64,
    /// Cost of writing the rule into the slot registers.
    pub write_rule: u64,
}

impl Default for MpuCosts {
    fn default() -> Self {
        MpuCosts {
            find_base: 57,
            find_per_slot: 19,
            policy_check: 824,
            write_rule: 225,
        }
    }
}

/// The result of an access check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessDecision {
    /// The address is not inside any protected region; flat memory is open.
    AllowedUnprotected,
    /// A rule for the executing code region grants the access.
    AllowedByRule {
        /// Slot index of the granting rule.
        slot: usize,
    },
    /// The address is protected and no rule grants the executing code access.
    Denied,
}

impl AccessDecision {
    /// Whether the access may proceed.
    pub fn is_allowed(self) -> bool {
        !matches!(self, AccessDecision::Denied)
    }
}

/// The result of a control-transfer check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferDecision {
    /// Target is not in a protected code region, or stays within one.
    Allowed,
    /// Target enters a protected code region at its dedicated entry point.
    AllowedAtEntry {
        /// Slot index of the rule describing the entered region.
        slot: usize,
    },
    /// Target enters a protected code region somewhere other than its entry.
    DeniedMidRegion {
        /// The region's dedicated entry point that should have been used.
        expected_entry: u32,
    },
}

impl TransferDecision {
    /// Whether the transfer may proceed.
    pub fn is_allowed(self) -> bool {
        !matches!(self, TransferDecision::DeniedMidRegion { .. })
    }
}

/// One recorded check, captured while decision logging is enabled (see
/// [`EaMpu::set_decision_log_enabled`]).
///
/// Records carry the full query *and* the full decision (including rule
/// slots), so two rule-identical MPUs driven through the same guest
/// execution must produce byte-identical logs — regardless of whether
/// the decision cache answered or a fresh scan did. Differential
/// harnesses compare logs across the fast-path and legacy interpreters
/// to prove the cache layers never change an outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionRecord {
    /// A data-access check ([`EaMpu::check_access`]).
    Access {
        /// The executing instruction pointer.
        eip: u32,
        /// The accessed address.
        addr: u32,
        /// Whether it was a read or a write.
        kind: AccessKind,
        /// What the MPU decided.
        decision: AccessDecision,
    },
    /// A control-transfer check ([`EaMpu::check_transfer`]).
    Transfer {
        /// Where control came from.
        from: u32,
        /// Where control goes.
        to: u32,
        /// What the MPU decided.
        decision: TransferDecision,
    },
}

/// Why [`EaMpu::configure`] rejected a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigureError {
    /// Every slot is occupied.
    NoFreeSlot,
    /// The new rule's data region partially overlaps the data region in
    /// `conflicting_slot`. Exact aliases (identical regions, as used for IPC
    /// shared memory) are permitted; partial overlaps never are.
    DataOverlap {
        /// The slot holding the conflicting rule.
        conflicting_slot: usize,
    },
    /// The new rule's data region overlaps a protected code region: data
    /// rules may never alias executable trusted code.
    CodeOverlap {
        /// The slot holding the conflicting rule.
        conflicting_slot: usize,
    },
    /// The rule is malformed (empty code or data region).
    EmptyRegion,
}

impl fmt::Display for ConfigureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigureError::NoFreeSlot => write!(f, "no free EA-MPU slot"),
            ConfigureError::DataOverlap { conflicting_slot } => {
                write!(
                    f,
                    "data region partially overlaps rule in slot {conflicting_slot}"
                )
            }
            ConfigureError::CodeOverlap { conflicting_slot } => {
                write!(
                    f,
                    "data region overlaps protected code of rule in slot {conflicting_slot}"
                )
            }
            ConfigureError::EmptyRegion => write!(f, "rule contains an empty region"),
        }
    }
}

impl std::error::Error for ConfigureError {}

/// Per-phase cycle cost of one dynamic configuration, per Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfigureCost {
    /// Cycles spent scanning for a free slot.
    pub find_slot: u64,
    /// Cycles spent policy-checking the rule.
    pub policy_check: u64,
    /// Cycles spent writing the rule registers.
    pub write_rule: u64,
}

impl ConfigureCost {
    /// Total configuration cost in cycles.
    pub fn total(self) -> u64 {
        self.find_slot + self.policy_check + self.write_rule
    }
}

/// Result of a successful [`EaMpu::configure`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigureOutcome {
    /// The slot the rule was written to.
    pub slot: usize,
    /// The cycle cost, decomposed per phase.
    pub cost: ConfigureCost,
}

/// The execution-aware MPU: a fixed-size table of [`Rule`] slots.
///
/// The paper's platform instantiates 18 slots (Table 6); [`EaMpu::new`]
/// takes the count so experiments can vary it.
#[derive(Debug, Clone)]
pub struct EaMpu {
    slots: Vec<Option<Rule>>,
    costs: MpuCosts,
    cache: RefCell<DecisionCache>,
    cache_enabled: bool,
    /// Monotonic configuration epoch: bumped whenever anything that could
    /// change a decision (or its observability) changes — rule-table
    /// mutations, cache-mode switches, decision-log toggles. Consumers
    /// that pre-resolve decisions (the block translation engine) snapshot
    /// this and revalidate with a single compare.
    generation: Cell<u64>,
    /// L0 in front of the MRU cache: the most recent access entry per
    /// [`AccessKind`] (indexed `Read = 0`, `Write = 1`) and the most recent
    /// transfer entry, checked without touching the `RefCell`. The run loop
    /// performs a transfer check on *every* instruction, so this path must
    /// be a handful of compares. Latches hold the same provably-constant
    /// rectangles as the cache and are cleared with it.
    access_latch: [Cell<AccessCacheEntry>; 2],
    transfer_latch: Cell<TransferCacheEntry>,
    /// Host-side observability, attached by [`EaMpu::attach_tracer`].
    /// `None` (the default) keeps every check on its untraced path behind a
    /// single branch. Tracing never changes a decision and never costs
    /// guest cycles.
    trace: Option<MpuTrace>,
    /// Decision recording for differential harnesses. Off by default:
    /// the check paths pay one predictable branch when disabled.
    log_enabled: bool,
    decision_log: RefCell<Vec<DecisionRecord>>,
}

/// Per-slot rule usage, collected only while a tracer is attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotStats {
    /// Accesses or transfers a rule in this slot allowed.
    pub hits: u64,
    /// Denials attributed to this slot (its region protected the target).
    pub denials: u64,
}

/// Counter handles for the EA-MPU layer, resolved once at attach time so
/// the check paths never do a name lookup.
#[derive(Debug, Clone)]
struct MpuTrace {
    counters: Arc<Counters>,
    access_hit: CounterId,
    access_miss: CounterId,
    transfer_hit: CounterId,
    transfer_miss: CounterId,
    flush: CounterId,
    denied: CounterId,
    slots: RefCell<Vec<SlotStats>>,
}

impl MpuTrace {
    fn new(counters: Arc<Counters>, slot_count: usize) -> Self {
        MpuTrace {
            access_hit: counters.register("eampu_access_cache_hit"),
            access_miss: counters.register("eampu_access_cache_miss"),
            transfer_hit: counters.register("eampu_transfer_cache_hit"),
            transfer_miss: counters.register("eampu_transfer_cache_miss"),
            flush: counters.register("eampu_cache_flush"),
            denied: counters.register("eampu_denied"),
            slots: RefCell::new(vec![SlotStats::default(); slot_count]),
            counters,
        }
    }

    fn bump_slot(&self, slot: usize, denial: bool) {
        let mut slots = self.slots.borrow_mut();
        if let Some(s) = slots.get_mut(slot) {
            if denial {
                s.denials += 1;
            } else {
                s.hits += 1;
            }
        }
    }
}

/// An empty (never-matching) access latch: `lo > hi` ranges match nothing.
const EMPTY_ACCESS_LATCH: AccessCacheEntry = AccessCacheEntry {
    eip_lo: 1,
    eip_hi: 0,
    addr_lo: 1,
    addr_hi: 0,
    kind: AccessKind::Read,
    decision: AccessDecision::Denied,
};

/// An empty (never-matching) transfer latch.
const EMPTY_TRANSFER_LATCH: TransferCacheEntry = TransferCacheEntry {
    from_lo: 1,
    from_hi: 0,
    to_lo: 1,
    to_hi: 0,
    decision: TransferDecision::Allowed,
};

fn latch_index(kind: AccessKind) -> usize {
    match kind {
        AccessKind::Read => 0,
        AccessKind::Write => 1,
    }
}

/// MRU cache of recent check decisions, modelling the hardware match latch.
///
/// Each entry stores the decision together with the rectangle of
/// `(actor, target)` address pairs over which the rule scan provably
/// produces that same decision: while scanning on a miss, both query
/// coordinates are narrowed against every examined region so that all
/// membership predicates are constant across the rectangle. Hits are
/// therefore bit-identical to a fresh scan. The cache holds derived state
/// only — any slot mutation clears it — so interior mutability behind the
/// unchanged `&self` check methods is sound.
#[derive(Debug, Clone, Default)]
struct DecisionCache {
    access: Vec<AccessCacheEntry>,
    transfer: Vec<TransferCacheEntry>,
}

/// Keep the MRU vectors small enough that a scan is a few compares.
const DECISION_CACHE_WAYS: usize = 8;

#[derive(Debug, Clone, Copy)]
struct AccessCacheEntry {
    eip_lo: u32,
    eip_hi: u32,
    addr_lo: u32,
    addr_hi: u32,
    kind: AccessKind,
    decision: AccessDecision,
}

#[derive(Debug, Clone, Copy)]
struct TransferCacheEntry {
    from_lo: u32,
    from_hi: u32,
    to_lo: u32,
    to_hi: u32,
    decision: TransferDecision,
}

impl DecisionCache {
    fn lookup_access(&mut self, eip: u32, addr: u32, kind: AccessKind) -> Option<AccessCacheEntry> {
        let pos = self.access.iter().position(|e| {
            e.kind == kind
                && (e.eip_lo..=e.eip_hi).contains(&eip)
                && (e.addr_lo..=e.addr_hi).contains(&addr)
        })?;
        let entry = self.access[pos];
        // MRU promotion; a position-0 hit must stay free of data movement.
        if pos != 0 {
            self.access[..=pos].rotate_right(1);
        }
        Some(entry)
    }

    fn lookup_transfer(&mut self, from: u32, to: u32) -> Option<TransferCacheEntry> {
        let pos = self.transfer.iter().position(|e| {
            (e.from_lo..=e.from_hi).contains(&from) && (e.to_lo..=e.to_hi).contains(&to)
        })?;
        let entry = self.transfer[pos];
        if pos != 0 {
            self.transfer[..=pos].rotate_right(1);
        }
        Some(entry)
    }

    fn insert_access(&mut self, entry: AccessCacheEntry) {
        self.access.truncate(DECISION_CACHE_WAYS - 1);
        self.access.insert(0, entry);
    }

    fn insert_transfer(&mut self, entry: TransferCacheEntry) {
        self.transfer.truncate(DECISION_CACHE_WAYS - 1);
        self.transfer.insert(0, entry);
    }

    fn clear(&mut self) {
        self.access.clear();
        self.transfer.clear();
    }
}

/// Shrinks `[lo, hi]` so that `region.contains(x)` is constant (and equal
/// to `region.contains(point)`) for every `x` in the interval. `point`
/// must lie inside `[lo, hi]`.
fn narrow_to_membership(lo: &mut u32, hi: &mut u32, region: Region, point: u32) {
    let Some(last) = region.last() else { return };
    if region.contains(point) {
        *lo = (*lo).max(region.start());
        *hi = (*hi).min(last);
    } else if point < region.start() {
        *hi = (*hi).min(region.start() - 1);
    } else {
        *lo = (*lo).max(last + 1);
    }
}

impl EaMpu {
    /// Creates an EA-MPU with `slots` empty rule slots and default costs.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn new(slots: usize) -> Self {
        Self::with_costs(slots, MpuCosts::default())
    }

    /// Creates an EA-MPU with an explicit cycle-cost model.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn with_costs(slots: usize, costs: MpuCosts) -> Self {
        assert!(slots > 0, "EA-MPU needs at least one slot");
        EaMpu {
            slots: vec![None; slots],
            costs,
            cache: RefCell::new(DecisionCache::default()),
            cache_enabled: true,
            generation: Cell::new(0),
            access_latch: [Cell::new(EMPTY_ACCESS_LATCH), Cell::new(EMPTY_ACCESS_LATCH)],
            transfer_latch: Cell::new(EMPTY_TRANSFER_LATCH),
            trace: None,
            log_enabled: false,
            decision_log: RefCell::new(Vec::new()),
        }
    }

    /// Starts (or stops) recording every check into the decision log.
    ///
    /// Recording is observation only: it never changes a decision and
    /// never charges guest cycles. Enabling it clears any previous log.
    pub fn set_decision_log_enabled(&mut self, enabled: bool) {
        self.log_enabled = enabled;
        self.decision_log.borrow_mut().clear();
        // Pre-resolved decisions bake in whether a check is logged, so a
        // log toggle is a configuration change for them. Bump directly
        // (rather than via invalidate_decision_cache) so the toggle stays
        // invisible to the flush counter.
        self.generation.set(self.generation.get() + 1);
    }

    /// Whether decision recording is currently enabled.
    pub fn log_enabled(&self) -> bool {
        self.log_enabled
    }

    /// Takes (and clears) the recorded decisions since the last take.
    pub fn take_decision_log(&self) -> Vec<DecisionRecord> {
        std::mem::take(&mut self.decision_log.borrow_mut())
    }

    /// Attaches host-side observability: decision-cache hit/miss/flush and
    /// denial counters are registered in `tracer`'s registry, and per-slot
    /// rule usage starts accumulating (see [`EaMpu::slot_stats`]).
    ///
    /// Tracing is an observer only — it never changes a decision and never
    /// charges guest cycles.
    pub fn attach_tracer(&mut self, tracer: &Tracer) {
        self.trace = Some(MpuTrace::new(tracer.counters().clone(), self.slots.len()));
        // Pre-resolved decisions bake in whether a check is traced, so
        // attaching observability is a configuration change for them.
        self.generation.set(self.generation.get() + 1);
    }

    /// Whether host-side observability is attached.
    pub fn traced(&self) -> bool {
        self.trace.is_some()
    }

    /// Per-slot rule usage since the tracer was attached (empty when no
    /// tracer is attached). Index is the slot number.
    pub fn slot_stats(&self) -> Vec<SlotStats> {
        self.trace
            .as_ref()
            .map(|t| t.slots.borrow().clone())
            .unwrap_or_default()
    }

    fn trace_access(&self, decision: AccessDecision, cached: bool, addr: u32) {
        let Some(t) = &self.trace else { return };
        t.counters
            .incr(if cached { t.access_hit } else { t.access_miss });
        match decision {
            AccessDecision::AllowedByRule { slot } => t.bump_slot(slot, false),
            AccessDecision::Denied => {
                t.counters.incr(t.denied);
                // Attribute the denial to the slot whose region protects the
                // target. Denials are a cold path (they fault the machine),
                // so the extra scan is acceptable — and traced-only anyway.
                if let Some((slot, _)) = self
                    .rules()
                    .find(|(_, r)| r.data.contains(addr) || r.code.contains(addr))
                {
                    t.bump_slot(slot, true);
                }
            }
            AccessDecision::AllowedUnprotected => {}
        }
    }

    fn trace_transfer(&self, decision: TransferDecision, cached: bool, to_addr: u32) {
        let Some(t) = &self.trace else { return };
        t.counters.incr(if cached {
            t.transfer_hit
        } else {
            t.transfer_miss
        });
        match decision {
            TransferDecision::AllowedAtEntry { slot } => t.bump_slot(slot, false),
            TransferDecision::DeniedMidRegion { .. } => {
                t.counters.incr(t.denied);
                if let Some((slot, _)) = self.rules().find(|(_, r)| r.code.contains(to_addr)) {
                    t.bump_slot(slot, true);
                }
            }
            TransferDecision::Allowed => {}
        }
    }

    /// Enables or disables the decision cache (enabled by default). The
    /// cache never changes decisions; disabling it exists so differential
    /// tests can compare against the pure scan path.
    pub fn set_decision_cache_enabled(&mut self, enabled: bool) {
        self.cache_enabled = enabled;
        self.invalidate_decision_cache();
    }

    /// Drops every cached decision. Called automatically on any rule-table
    /// mutation; exposed so owners can also invalidate on external state
    /// changes (the machine does this when MPU enforcement is toggled).
    pub fn invalidate_decision_cache(&self) {
        self.generation.set(self.generation.get() + 1);
        self.cache.borrow_mut().clear();
        self.access_latch[0].set(EMPTY_ACCESS_LATCH);
        self.access_latch[1].set(EMPTY_ACCESS_LATCH);
        self.transfer_latch.set(EMPTY_TRANSFER_LATCH);
        if let Some(t) = &self.trace {
            t.counters.incr(t.flush);
        }
    }

    /// Total number of slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of occupied slots.
    pub fn used_slots(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// The rule in `slot`, if configured.
    pub fn rule(&self, slot: usize) -> Option<&Rule> {
        self.slots.get(slot).and_then(|s| s.as_ref())
    }

    /// Iterates over `(slot, rule)` pairs of configured rules.
    pub fn rules(&self) -> impl Iterator<Item = (usize, &Rule)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|r| (i, r)))
    }

    /// The cost model in effect.
    pub fn costs(&self) -> MpuCosts {
        self.costs
    }

    /// Scans for the first free slot, returning its index and the scan cost.
    ///
    /// This is phase 1 of Table 6; cost grows linearly with the position of
    /// the first free slot.
    pub fn find_free_slot(&self) -> (Option<usize>, u64) {
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.is_none() {
                let cost = self.costs.find_base + self.costs.find_per_slot * (i as u64 + 1);
                return (Some(i), cost);
            }
        }
        let cost = self.costs.find_base + self.costs.find_per_slot * self.slots.len() as u64;
        (None, cost)
    }

    /// Policy-checks `rule` against every configured rule.
    ///
    /// The policy (phase 2 of Table 6): the new data region must not
    /// *partially* overlap any existing protected data region — an exact
    /// alias is permitted, because the IPC proxy deliberately aliases a
    /// shared-memory region into both communicating tasks — and must not
    /// touch any protected code region at all.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigureError::EmptyRegion`], [`ConfigureError::DataOverlap`]
    /// or [`ConfigureError::CodeOverlap`] naming the conflicting slot.
    pub fn policy_check(&self, rule: &Rule) -> Result<(), ConfigureError> {
        if rule.code.is_empty() || rule.data.is_empty() {
            return Err(ConfigureError::EmptyRegion);
        }
        for (slot, existing) in self.rules() {
            if rule.data.overlaps(existing.data) && rule.data != existing.data {
                return Err(ConfigureError::DataOverlap {
                    conflicting_slot: slot,
                });
            }
            if rule.data.overlaps(existing.code) {
                return Err(ConfigureError::CodeOverlap {
                    conflicting_slot: slot,
                });
            }
        }
        Ok(())
    }

    /// Dynamically configures a new rule: find slot, policy check, write.
    ///
    /// Reproduces the paper's Table 6 decomposition and returns the
    /// per-phase cycle cost alongside the chosen slot.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigureError::NoFreeSlot`] when the table is full, or the
    /// policy-check errors of [`EaMpu::policy_check`]. On error no slot is
    /// modified.
    pub fn configure(&mut self, rule: Rule) -> Result<ConfigureOutcome, ConfigureError> {
        let (slot, find_cost) = self.find_free_slot();
        let slot = slot.ok_or(ConfigureError::NoFreeSlot)?;
        self.policy_check(&rule)?;
        self.invalidate_decision_cache();
        self.slots[slot] = Some(rule);
        Ok(ConfigureOutcome {
            slot,
            cost: ConfigureCost {
                find_slot: find_cost,
                policy_check: self.costs.policy_check,
                write_rule: self.costs.write_rule,
            },
        })
    }

    /// Writes `rule` into `slot` without a policy check.
    ///
    /// Used by secure boot to install the static rules protecting the
    /// trusted software components before the dynamic driver takes over.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn set_rule(&mut self, slot: usize, rule: Rule) {
        self.invalidate_decision_cache();
        self.slots[slot] = Some(rule);
    }

    /// Clears `slot`, returning the rule it held.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn clear_slot(&mut self, slot: usize) -> Option<Rule> {
        self.invalidate_decision_cache();
        self.slots[slot].take()
    }

    /// Removes every rule whose code region equals `code`, returning how
    /// many were removed. Used when unloading a task.
    pub fn remove_rules_for_code(&mut self, code: Region) -> usize {
        self.invalidate_decision_cache();
        let mut removed = 0;
        for slot in &mut self.slots {
            if matches!(slot, Some(rule) if rule.code == code) {
                *slot = None;
                removed += 1;
            }
        }
        removed
    }

    #[inline]
    fn log_access_record(&self, eip: u32, addr: u32, kind: AccessKind, decision: AccessDecision) {
        if self.log_enabled {
            self.decision_log.borrow_mut().push(DecisionRecord::Access {
                eip,
                addr,
                kind,
                decision,
            });
        }
    }

    #[inline]
    fn log_transfer_record(&self, from: u32, to: u32, decision: TransferDecision) {
        if self.log_enabled {
            self.decision_log
                .borrow_mut()
                .push(DecisionRecord::Transfer { from, to, decision });
        }
    }

    /// Checks a data access: may the instruction at `eip` access `addr`?
    ///
    /// An address inside any configured rule's data region is *protected*
    /// and requires a rule whose code region contains `eip` and whose
    /// permissions include `kind`. Reading a protected *code* region from
    /// outside it is likewise denied (code secrecy). Unprotected addresses
    /// are open, matching the flat physical memory model.
    #[inline]
    pub fn check_access(&self, eip: u32, addr: u32, kind: AccessKind) -> AccessDecision {
        // The latch hit is the per-instruction hot path: keep it small
        // enough to inline into the emulator's step loop.
        if self.cache_enabled {
            let l = self.access_latch[latch_index(kind)].get();
            if l.eip_lo <= eip && eip <= l.eip_hi && l.addr_lo <= addr && addr <= l.addr_hi {
                if self.trace.is_some() {
                    self.trace_access(l.decision, true, addr);
                }
                self.log_access_record(eip, addr, kind, l.decision);
                return l.decision;
            }
        }
        self.check_access_unlatched(eip, addr, kind)
    }

    fn check_access_unlatched(&self, eip: u32, addr: u32, kind: AccessKind) -> AccessDecision {
        if self.cache_enabled {
            if let Some(entry) = self.cache.borrow_mut().lookup_access(eip, addr, kind) {
                self.access_latch[latch_index(kind)].set(entry);
                if self.trace.is_some() {
                    self.trace_access(entry.decision, true, addr);
                }
                self.log_access_record(eip, addr, kind, entry.decision);
                return entry.decision;
            }
        }
        // While scanning, narrow the (eip, addr) rectangle over which every
        // membership test below stays constant; the scan — including its
        // early return — then provably yields this same decision for every
        // pair in the rectangle, which is what makes caching it sound.
        let (mut eip_lo, mut eip_hi) = (0u32, u32::MAX);
        let (mut addr_lo, mut addr_hi) = (0u32, u32::MAX);
        let mut protected = false;
        let mut hit = None;
        for (slot, rule) in self.rules() {
            narrow_to_membership(&mut eip_lo, &mut eip_hi, rule.code, eip);
            narrow_to_membership(&mut addr_lo, &mut addr_hi, rule.data, addr);
            narrow_to_membership(&mut addr_lo, &mut addr_hi, rule.code, addr);
            if rule.data.contains(addr) {
                protected = true;
                if rule.code.contains(eip) && rule.perms.allows(kind) {
                    hit = Some(AccessDecision::AllowedByRule { slot });
                    break;
                }
            }
            // Protected code regions are only accessible as data from within.
            if rule.code.contains(addr) {
                protected = true;
                if rule.code.contains(eip) && kind == AccessKind::Read {
                    hit = Some(AccessDecision::AllowedByRule { slot });
                    break;
                }
            }
        }
        let decision = hit.unwrap_or(if protected {
            AccessDecision::Denied
        } else {
            AccessDecision::AllowedUnprotected
        });
        if self.cache_enabled {
            let entry = AccessCacheEntry {
                eip_lo,
                eip_hi,
                addr_lo,
                addr_hi,
                kind,
                decision,
            };
            self.cache.borrow_mut().insert_access(entry);
            self.access_latch[latch_index(kind)].set(entry);
        }
        if self.trace.is_some() {
            self.trace_access(decision, false, addr);
        }
        self.log_access_record(eip, addr, kind, decision);
        decision
    }

    /// Checks a control transfer from `from_eip` to `to_addr`.
    ///
    /// Entering a protected code region from outside is only allowed at the
    /// region's dedicated entry point; transfers within a region, or to
    /// unprotected addresses, are unrestricted. This is the EA-MPU property
    /// TyTAN relies on to prevent code-reuse attacks on secure tasks.
    #[inline]
    pub fn check_transfer(&self, from_eip: u32, to_addr: u32) -> TransferDecision {
        // Checked on every instruction (fallthrough included): the latch
        // hit must inline into the emulator's step loop.
        if self.cache_enabled {
            let l = self.transfer_latch.get();
            if l.from_lo <= from_eip
                && from_eip <= l.from_hi
                && l.to_lo <= to_addr
                && to_addr <= l.to_hi
            {
                if self.trace.is_some() {
                    self.trace_transfer(l.decision, true, to_addr);
                }
                self.log_transfer_record(from_eip, to_addr, l.decision);
                return l.decision;
            }
        }
        self.check_transfer_unlatched(from_eip, to_addr)
    }

    fn check_transfer_unlatched(&self, from_eip: u32, to_addr: u32) -> TransferDecision {
        if self.cache_enabled {
            if let Some(entry) = self.cache.borrow_mut().lookup_transfer(from_eip, to_addr) {
                self.transfer_latch.set(entry);
                if self.trace.is_some() {
                    self.trace_transfer(entry.decision, true, to_addr);
                }
                self.log_transfer_record(from_eip, to_addr, entry.decision);
                return entry.decision;
            }
        }
        let (mut from_lo, mut from_hi) = (0u32, u32::MAX);
        let (mut to_lo, mut to_hi) = (0u32, u32::MAX);
        let mut hit = None;
        for (slot, rule) in self.rules() {
            narrow_to_membership(&mut from_lo, &mut from_hi, rule.code, from_eip);
            narrow_to_membership(&mut to_lo, &mut to_hi, rule.code, to_addr);
            if rule.code.contains(to_addr) && !rule.code.contains(from_eip) {
                // The decision also depends on `to_addr == entry`, so pin
                // the target interval to the side of the entry point the
                // query fell on (or to the entry point itself).
                if to_addr == rule.entry {
                    to_lo = rule.entry;
                    to_hi = rule.entry;
                    hit = Some(TransferDecision::AllowedAtEntry { slot });
                } else {
                    if to_addr < rule.entry {
                        to_hi = to_hi.min(rule.entry - 1);
                    } else {
                        to_lo = to_lo.max(rule.entry + 1);
                    }
                    hit = Some(TransferDecision::DeniedMidRegion {
                        expected_entry: rule.entry,
                    });
                }
                break;
            }
        }
        let decision = hit.unwrap_or(TransferDecision::Allowed);
        if self.cache_enabled {
            let entry = TransferCacheEntry {
                from_lo,
                from_hi,
                to_lo,
                to_hi,
                decision,
            };
            self.cache.borrow_mut().insert_transfer(entry);
            self.transfer_latch.set(entry);
        }
        if self.trace.is_some() {
            self.trace_transfer(decision, false, to_addr);
        }
        self.log_transfer_record(from_eip, to_addr, decision);
        decision
    }

    /// Whether `addr` lies inside any protected (data or code) region.
    pub fn is_protected(&self, addr: u32) -> bool {
        self.rules()
            .any(|(_, r)| r.data.contains(addr) || r.code.contains(addr))
    }

    /// The current configuration epoch (see the `generation` field).
    pub fn generation(&self) -> u64 {
        self.generation.get()
    }

    /// Whether any rule slot is occupied.
    pub fn has_rules(&self) -> bool {
        self.slots.iter().any(|s| s.is_some())
    }

    /// Resolves a transfer decision *without* observable side effects: no
    /// cache or latch update, no trace counters, no decision-log record.
    ///
    /// The scan mirrors [`EaMpu::check_transfer`] exactly (first matching
    /// slot wins), so for a fixed rule table the preview equals what a
    /// live check would decide. The block translation engine uses this at
    /// compile time and [`EaMpu::replay_transfer`] at run time.
    pub fn preview_transfer(&self, from_eip: u32, to_addr: u32) -> TransferDecision {
        for (slot, rule) in self.rules() {
            if rule.code.contains(to_addr) && !rule.code.contains(from_eip) {
                return if to_addr == rule.entry {
                    TransferDecision::AllowedAtEntry { slot }
                } else {
                    TransferDecision::DeniedMidRegion {
                        expected_entry: rule.entry,
                    }
                };
            }
        }
        TransferDecision::Allowed
    }

    /// Resolves an access decision *without* observable side effects; the
    /// preview counterpart of [`EaMpu::check_access`], mirroring its scan
    /// exactly.
    pub fn preview_access(&self, eip: u32, addr: u32, kind: AccessKind) -> AccessDecision {
        let mut protected = false;
        for (slot, rule) in self.rules() {
            if rule.data.contains(addr) {
                protected = true;
                if rule.code.contains(eip) && rule.perms.allows(kind) {
                    return AccessDecision::AllowedByRule { slot };
                }
            }
            if rule.code.contains(addr) {
                protected = true;
                if rule.code.contains(eip) && kind == AccessKind::Read {
                    return AccessDecision::AllowedByRule { slot };
                }
            }
        }
        if protected {
            AccessDecision::Denied
        } else {
            AccessDecision::AllowedUnprotected
        }
    }

    /// Replays a pre-resolved transfer decision's observable effects —
    /// trace counters and the decision-log record — as if a (latched)
    /// [`EaMpu::check_transfer`] had just returned `decision`.
    ///
    /// The caller promises `decision == self.preview_transfer(from, to)`
    /// under the configuration epoch it was resolved in.
    pub fn replay_transfer(&self, from_eip: u32, to_addr: u32, decision: TransferDecision) {
        if self.trace.is_some() {
            self.trace_transfer(decision, true, to_addr);
        }
        self.log_transfer_record(from_eip, to_addr, decision);
    }

    /// Replays a pre-resolved access decision's observable effects; the
    /// access counterpart of [`EaMpu::replay_transfer`].
    pub fn replay_access(&self, eip: u32, addr: u32, kind: AccessKind, decision: AccessDecision) {
        if self.trace.is_some() {
            self.trace_access(decision, true, addr);
        }
        self.log_access_record(eip, addr, kind, decision);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(code_start: u32, data_start: u32) -> Rule {
        Rule::new(
            Region::new(code_start, 0x100),
            code_start,
            Region::new(data_start, 0x100),
            Perms::RW,
        )
    }

    #[test]
    fn table6_find_slot_costs_match_paper() {
        // Paper, Table 6: slot 1 -> 76, slot 2 -> 95, slot 18 -> 399.
        let mut mpu = EaMpu::new(18);
        let (slot, cost) = mpu.find_free_slot();
        assert_eq!((slot, cost), (Some(0), 76));

        mpu.set_rule(0, rule(0x1000, 0x8000));
        let (slot, cost) = mpu.find_free_slot();
        assert_eq!((slot, cost), (Some(1), 95));

        for i in 1..17 {
            mpu.set_rule(
                i,
                rule(0x1000 + i as u32 * 0x200, 0x8000 + i as u32 * 0x200),
            );
        }
        let (slot, cost) = mpu.find_free_slot();
        assert_eq!((slot, cost), (Some(17), 399));
    }

    #[test]
    fn configure_cost_decomposition() {
        let mut mpu = EaMpu::new(18);
        let outcome = mpu.configure(rule(0x1000, 0x8000)).unwrap();
        assert_eq!(outcome.slot, 0);
        assert_eq!(outcome.cost.find_slot, 76);
        assert_eq!(outcome.cost.policy_check, 824);
        assert_eq!(outcome.cost.write_rule, 225);
        assert_eq!(outcome.cost.total(), 1125); // Table 6, slot 1 overall.
    }

    #[test]
    fn full_table_rejects_configuration() {
        let mut mpu = EaMpu::new(2);
        mpu.configure(rule(0x1000, 0x8000)).unwrap();
        mpu.configure(rule(0x2000, 0x9000)).unwrap();
        assert_eq!(
            mpu.configure(rule(0x3000, 0xa000)).unwrap_err(),
            ConfigureError::NoFreeSlot
        );
    }

    #[test]
    fn partial_data_overlap_rejected_exact_alias_allowed() {
        let mut mpu = EaMpu::new(4);
        mpu.configure(rule(0x1000, 0x8000)).unwrap();
        // Partial overlap with [0x8000, 0x8100).
        let overlapping = Rule::new(
            Region::new(0x2000, 0x100),
            0x2000,
            Region::new(0x8080, 0x100),
            Perms::RW,
        );
        assert_eq!(
            mpu.configure(overlapping).unwrap_err(),
            ConfigureError::DataOverlap {
                conflicting_slot: 0
            }
        );
        // Exact alias (IPC shared memory) is fine.
        let alias = Rule::new(
            Region::new(0x2000, 0x100),
            0x2000,
            Region::new(0x8000, 0x100),
            Perms::RW,
        );
        assert!(mpu.configure(alias).is_ok());
    }

    #[test]
    fn data_rule_may_not_cover_trusted_code() {
        let mut mpu = EaMpu::new(4);
        mpu.configure(rule(0x1000, 0x8000)).unwrap();
        let snooping = Rule::new(
            Region::new(0x3000, 0x100),
            0x3000,
            Region::new(0x1000, 0x40),
            Perms::R,
        );
        assert_eq!(
            mpu.configure(snooping).unwrap_err(),
            ConfigureError::CodeOverlap {
                conflicting_slot: 0
            }
        );
    }

    #[test]
    fn empty_region_rejected() {
        let mut mpu = EaMpu::new(4);
        let bad = Rule::new(
            Region::new(0x1000, 0),
            0x1000,
            Region::new(0x8000, 4),
            Perms::R,
        );
        assert_eq!(mpu.configure(bad).unwrap_err(), ConfigureError::EmptyRegion);
    }

    #[test]
    fn execution_aware_access_control() {
        let mut mpu = EaMpu::new(4);
        mpu.configure(rule(0x1000, 0x8000)).unwrap();
        // Owner code can read and write its data.
        assert!(mpu
            .check_access(0x1004, 0x8000, AccessKind::Read)
            .is_allowed());
        assert!(mpu
            .check_access(0x10ff, 0x80ff, AccessKind::Write)
            .is_allowed());
        // Foreign code (the OS, another task) cannot.
        assert_eq!(
            mpu.check_access(0x5000, 0x8000, AccessKind::Read),
            AccessDecision::Denied
        );
        assert_eq!(
            mpu.check_access(0x5000, 0x8000, AccessKind::Write),
            AccessDecision::Denied
        );
        // Unprotected memory stays open to everyone.
        assert_eq!(
            mpu.check_access(0x5000, 0xf000, AccessKind::Write),
            AccessDecision::AllowedUnprotected
        );
    }

    #[test]
    fn read_only_rule_denies_writes() {
        let mut mpu = EaMpu::new(4);
        let ro = Rule::new(
            Region::new(0x1000, 0x100),
            0x1000,
            Region::new(0x8000, 0x100),
            Perms::R,
        );
        mpu.configure(ro).unwrap();
        assert!(mpu
            .check_access(0x1000, 0x8000, AccessKind::Read)
            .is_allowed());
        assert!(!mpu
            .check_access(0x1000, 0x8000, AccessKind::Write)
            .is_allowed());
    }

    #[test]
    fn code_secrecy() {
        let mut mpu = EaMpu::new(4);
        mpu.configure(rule(0x1000, 0x8000)).unwrap();
        // The task may read its own code (e.g. constants in .text)...
        assert!(mpu
            .check_access(0x1004, 0x1008, AccessKind::Read)
            .is_allowed());
        // ...but others may not read it, and nobody may write it.
        assert!(!mpu
            .check_access(0x5000, 0x1008, AccessKind::Read)
            .is_allowed());
        assert!(!mpu
            .check_access(0x1004, 0x1008, AccessKind::Write)
            .is_allowed());
    }

    #[test]
    fn entry_point_enforcement() {
        let mut mpu = EaMpu::new(4);
        let r = Rule::new(
            Region::new(0x1000, 0x100),
            0x1010,
            Region::new(0x8000, 0x100),
            Perms::RW,
        );
        mpu.configure(r).unwrap();
        // Entering at the entry point is allowed.
        assert_eq!(
            mpu.check_transfer(0x5000, 0x1010),
            TransferDecision::AllowedAtEntry { slot: 0 }
        );
        // Jumping into the middle from outside is denied.
        assert_eq!(
            mpu.check_transfer(0x5000, 0x1050),
            TransferDecision::DeniedMidRegion {
                expected_entry: 0x1010
            }
        );
        // Branches within the region are unrestricted.
        assert_eq!(
            mpu.check_transfer(0x1004, 0x1050),
            TransferDecision::Allowed
        );
        // Transfers in open memory are unrestricted.
        assert_eq!(
            mpu.check_transfer(0x5000, 0x6000),
            TransferDecision::Allowed
        );
    }

    #[test]
    fn remove_rules_for_code_unloads_task() {
        let mut mpu = EaMpu::new(4);
        let code = Region::new(0x1000, 0x100);
        mpu.configure(Rule::new(
            code,
            0x1000,
            Region::new(0x8000, 0x100),
            Perms::RW,
        ))
        .unwrap();
        mpu.configure(Rule::new(
            code,
            0x1000,
            Region::new(0x9000, 0x100),
            Perms::RW,
        ))
        .unwrap();
        mpu.configure(rule(0x2000, 0xa000)).unwrap();
        assert_eq!(mpu.remove_rules_for_code(code), 2);
        assert_eq!(mpu.used_slots(), 1);
        // Freed slots are reused first.
        let (slot, _) = mpu.find_free_slot();
        assert_eq!(slot, Some(0));
    }

    #[test]
    fn tracer_counts_cache_behaviour_and_slot_usage() {
        let mut mpu = EaMpu::new(4);
        mpu.configure(rule(0x1000, 0x8000)).unwrap();
        let tracer = Tracer::null();
        mpu.attach_tracer(&tracer);
        let c = tracer.counters();

        // First check scans (miss), repeats hit the latch.
        for _ in 0..3 {
            assert!(mpu
                .check_access(0x1004, 0x8004, AccessKind::Read)
                .is_allowed());
        }
        assert_eq!(c.get("eampu_access_cache_miss"), Some(1));
        assert_eq!(c.get("eampu_access_cache_hit"), Some(2));

        // A denial is counted and attributed to the protecting slot.
        assert!(!mpu
            .check_access(0x5000, 0x8004, AccessKind::Read)
            .is_allowed());
        assert_eq!(c.get("eampu_denied"), Some(1));
        let slots = mpu.slot_stats();
        assert_eq!(slots[0].hits, 3);
        assert_eq!(slots[0].denials, 1);

        // Transfers count on their own pair of counters.
        mpu.check_transfer(0x5000, 0x6000);
        mpu.check_transfer(0x5000, 0x6000);
        assert_eq!(c.get("eampu_transfer_cache_miss"), Some(1));
        assert_eq!(c.get("eampu_transfer_cache_hit"), Some(1));

        // Rule mutation flushes the decision cache, visibly.
        let before = c.get("eampu_cache_flush").unwrap();
        mpu.set_rule(1, rule(0x2000, 0x9000));
        assert_eq!(c.get("eampu_cache_flush"), Some(before + 1));
    }

    #[test]
    fn tracer_counts_pure_scans_as_misses_when_cache_disabled() {
        let mut mpu = EaMpu::new(4);
        mpu.set_decision_cache_enabled(false);
        mpu.configure(rule(0x1000, 0x8000)).unwrap();
        let tracer = Tracer::null();
        mpu.attach_tracer(&tracer);
        for _ in 0..5 {
            mpu.check_access(0x1004, 0x8004, AccessKind::Read);
        }
        assert_eq!(tracer.counters().get("eampu_access_cache_miss"), Some(5));
        assert_eq!(tracer.counters().get("eampu_access_cache_hit"), Some(0));
    }

    #[test]
    fn is_protected_covers_code_and_data() {
        let mut mpu = EaMpu::new(4);
        mpu.configure(rule(0x1000, 0x8000)).unwrap();
        assert!(mpu.is_protected(0x1000));
        assert!(mpu.is_protected(0x80ff));
        assert!(!mpu.is_protected(0x8100));
        assert!(!mpu.is_protected(0x0));
    }

    #[test]
    fn decision_log_is_identical_with_and_without_the_cache() {
        let mut cached = EaMpu::new(4);
        cached.configure(rule(0x1000, 0x8000)).unwrap();
        cached.configure(rule(0x2000, 0x9000)).unwrap();
        let mut scans = cached.clone();
        scans.set_decision_cache_enabled(false);
        cached.set_decision_log_enabled(true);
        scans.set_decision_log_enabled(true);

        // A query mix that exercises the scan, MRU-cache, and latch paths
        // on the cached side (repeats hit the latch, alternations the MRU
        // cache) while the uncached side scans every time.
        let accesses = [
            (0x1004u32, 0x8004u32, AccessKind::Read),
            (0x1004, 0x8004, AccessKind::Read), // latch hit
            (0x1004, 0x8004, AccessKind::Write),
            (0x2004, 0x9004, AccessKind::Write), // protected by other rule
            (0x1004, 0x8004, AccessKind::Read),  // MRU-cache hit
            (0x0400, 0x8004, AccessKind::Write), // denied
            (0x0400, 0x0500, AccessKind::Read),  // unprotected
        ];
        for &(eip, addr, kind) in &accesses {
            assert_eq!(
                cached.check_access(eip, addr, kind),
                scans.check_access(eip, addr, kind)
            );
        }
        let transfers = [
            (0x0400u32, 0x1000u32), // entry
            (0x0400, 0x1000),       // latch hit
            (0x0400, 0x1004),       // mid-region
            (0x1004, 0x1008),       // internal
            (0x0400, 0x0500),       // unprotected
        ];
        for &(from, to) in &transfers {
            assert_eq!(
                cached.check_transfer(from, to),
                scans.check_transfer(from, to)
            );
        }

        let log = cached.take_decision_log();
        assert_eq!(log, scans.take_decision_log());
        assert_eq!(log.len(), accesses.len() + transfers.len());
        assert_eq!(
            log[0],
            DecisionRecord::Access {
                eip: 0x1004,
                addr: 0x8004,
                kind: AccessKind::Read,
                decision: AccessDecision::AllowedByRule { slot: 0 },
            }
        );
        // Taking drains; with logging off nothing accumulates.
        assert!(cached.take_decision_log().is_empty());
        cached.set_decision_log_enabled(false);
        cached.check_access(0x1004, 0x8004, AccessKind::Read);
        assert!(cached.take_decision_log().is_empty());
    }
}
