//! Half-open address regions.

use std::fmt;

/// A half-open physical address region `[start, start + len)`.
///
/// Regions are the unit of EA-MPU protection: rules pair a code region with
/// a data region. The empty region (`len == 0`) contains no address and
/// overlaps nothing.
///
/// # Examples
///
/// ```
/// use eampu::Region;
///
/// let r = Region::new(0x1000, 0x100);
/// assert!(r.contains(0x1000));
/// assert!(r.contains(0x10ff));
/// assert!(!r.contains(0x1100));
/// assert!(r.overlaps(Region::new(0x10f0, 0x40)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Region {
    start: u32,
    len: u32,
}

impl Region {
    /// Creates a region covering `[start, start + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the region would wrap past the end of the address space.
    pub fn new(start: u32, len: u32) -> Self {
        assert!(
            len == 0 || start.checked_add(len - 1).is_some(),
            "region [{start:#x}, +{len:#x}) wraps the address space"
        );
        Region { start, len }
    }

    /// Creates a region from an inclusive-exclusive address pair.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn from_bounds(start: u32, end: u32) -> Self {
        assert!(
            end >= start,
            "region end {end:#x} precedes start {start:#x}"
        );
        Region {
            start,
            len: end - start,
        }
    }

    /// First address in the region.
    pub fn start(self) -> u32 {
        self.start
    }

    /// Length of the region in bytes.
    pub fn len(self) -> u32 {
        self.len
    }

    /// Whether the region contains no addresses.
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// One past the last address (saturating at the top of memory).
    pub fn end(self) -> u32 {
        self.start.saturating_add(self.len)
    }

    /// The last address in the region.
    ///
    /// Returns `None` for an empty region.
    pub fn last(self) -> Option<u32> {
        if self.len == 0 {
            None
        } else {
            Some(self.start + (self.len - 1))
        }
    }

    /// Whether `addr` lies inside the region.
    pub fn contains(self, addr: u32) -> bool {
        self.len != 0 && addr >= self.start && addr - self.start < self.len
    }

    /// Whether an access of `size` bytes starting at `addr` fits entirely
    /// inside the region.
    pub fn contains_range(self, addr: u32, size: u32) -> bool {
        if size == 0 {
            return self.contains(addr);
        }
        match addr.checked_add(size - 1) {
            Some(last) => self.contains(addr) && self.contains(last),
            None => false,
        }
    }

    /// Whether the two regions share at least one address.
    pub fn overlaps(self, other: Region) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        self.start < other.end() && other.start < self.end()
    }

    /// Whether `other` lies entirely inside this region.
    pub fn contains_region(self, other: Region) -> bool {
        if other.is_empty() {
            return true;
        }
        self.contains(other.start) && other.last().is_some_and(|l| self.contains(l))
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#010x}, {:#010x})", self.start, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn contains_boundaries() {
        let r = Region::new(10, 5);
        assert!(!r.contains(9));
        assert!(r.contains(10));
        assert!(r.contains(14));
        assert!(!r.contains(15));
    }

    #[test]
    fn empty_region_contains_nothing() {
        let r = Region::new(10, 0);
        assert!(r.is_empty());
        assert!(!r.contains(10));
        assert!(!r.overlaps(Region::new(0, 100)));
        assert_eq!(r.last(), None);
    }

    #[test]
    fn overlap_cases() {
        let a = Region::new(0x100, 0x100);
        assert!(a.overlaps(Region::new(0x1ff, 1)));
        assert!(a.overlaps(Region::new(0x0, 0x101)));
        assert!(!a.overlaps(Region::new(0x200, 0x10)));
        assert!(!a.overlaps(Region::new(0x0, 0x100)));
        assert!(a.overlaps(a));
    }

    #[test]
    fn contains_range_checks_both_ends() {
        let r = Region::new(0x100, 0x10);
        assert!(r.contains_range(0x100, 16));
        assert!(r.contains_range(0x10c, 4));
        assert!(!r.contains_range(0x10d, 4));
        assert!(!r.contains_range(0xfc, 8));
    }

    #[test]
    fn region_at_top_of_memory() {
        let r = Region::new(0xffff_fff0, 0x10);
        assert!(r.contains(0xffff_ffff));
        assert_eq!(r.end(), 0xffff_ffff); // saturates
        assert_eq!(r.last(), Some(0xffff_ffff));
        assert!(r.contains_range(0xffff_fffc, 4));
        assert!(!r.contains_range(0xffff_ffff, 2));
    }

    #[test]
    #[should_panic(expected = "wraps")]
    fn wrapping_region_rejected() {
        let _ = Region::new(0xffff_fff0, 0x20);
    }

    #[test]
    fn from_bounds() {
        let r = Region::from_bounds(0x100, 0x180);
        assert_eq!(r.start(), 0x100);
        assert_eq!(r.len(), 0x80);
    }

    #[test]
    fn contains_region_cases() {
        let outer = Region::new(0x100, 0x100);
        assert!(outer.contains_region(Region::new(0x100, 0x100)));
        assert!(outer.contains_region(Region::new(0x140, 0x10)));
        assert!(outer.contains_region(Region::new(0x150, 0)));
        assert!(!outer.contains_region(Region::new(0x1f0, 0x20)));
    }

    #[test]
    fn display_format() {
        assert_eq!(
            Region::new(0x1000, 0x100).to_string(),
            "[0x00001000, 0x00001100)"
        );
    }

    proptest! {
        #[test]
        fn prop_overlap_is_symmetric(
            a_start in 0u32..0x1_0000, a_len in 0u32..0x1000,
            b_start in 0u32..0x1_0000, b_len in 0u32..0x1000,
        ) {
            let a = Region::new(a_start, a_len);
            let b = Region::new(b_start, b_len);
            prop_assert_eq!(a.overlaps(b), b.overlaps(a));
        }

        #[test]
        fn prop_overlap_iff_shared_address(
            a_start in 0u32..256, a_len in 0u32..64,
            b_start in 0u32..256, b_len in 0u32..64,
        ) {
            let a = Region::new(a_start, a_len);
            let b = Region::new(b_start, b_len);
            let shared = (0..=320u32).any(|addr| a.contains(addr) && b.contains(addr));
            prop_assert_eq!(a.overlaps(b), shared);
        }

        #[test]
        fn prop_contains_range_equals_pointwise(
            start in 0u32..512, len in 0u32..64,
            addr in 0u32..512, size in 1u32..16,
        ) {
            let r = Region::new(start, len);
            let pointwise = (addr..addr.saturating_add(size)).all(|a| r.contains(a));
            prop_assert_eq!(r.contains_range(addr, size), pointwise);
        }
    }
}
