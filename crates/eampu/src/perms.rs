//! Access permissions and access kinds.

use std::fmt;
use std::ops::{BitAnd, BitOr};

/// The kind of data access being checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// A small permission set for EA-MPU rules (read / write flags).
///
/// Behaves like a bitflag type: combine with `|`, test with
/// [`Perms::allows`] or [`Perms::contains`].
///
/// # Examples
///
/// ```
/// use eampu::{AccessKind, Perms};
///
/// let rw = Perms::R | Perms::W;
/// assert_eq!(rw, Perms::RW);
/// assert!(rw.allows(AccessKind::Write));
/// assert!(!Perms::R.allows(AccessKind::Write));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Perms(u8);

impl Perms {
    /// No access.
    pub const NONE: Perms = Perms(0);
    /// Read-only.
    pub const R: Perms = Perms(0b01);
    /// Write-only.
    pub const W: Perms = Perms(0b10);
    /// Read and write.
    pub const RW: Perms = Perms(0b11);

    /// Whether the set permits the given access kind.
    pub fn allows(self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => self.0 & Perms::R.0 != 0,
            AccessKind::Write => self.0 & Perms::W.0 != 0,
        }
    }

    /// Whether every permission in `other` is present in `self`.
    pub fn contains(self, other: Perms) -> bool {
        self.0 & other.0 == other.0
    }

    /// The raw bit representation (bit 0 = read, bit 1 = write).
    pub fn bits(self) -> u8 {
        self.0
    }
}

impl BitOr for Perms {
    type Output = Perms;

    fn bitor(self, rhs: Perms) -> Perms {
        Perms(self.0 | rhs.0)
    }
}

impl BitAnd for Perms {
    type Output = Perms;

    fn bitand(self, rhs: Perms) -> Perms {
        Perms(self.0 & rhs.0)
    }
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = if self.contains(Perms::R) { 'r' } else { '-' };
        let w = if self.contains(Perms::W) { 'w' } else { '-' };
        write!(f, "{r}{w}")
    }
}

impl fmt::Binary for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combination_and_tests() {
        assert_eq!(Perms::R | Perms::W, Perms::RW);
        assert_eq!(Perms::RW & Perms::R, Perms::R);
        assert!(Perms::RW.contains(Perms::R));
        assert!(Perms::RW.contains(Perms::W));
        assert!(!Perms::R.contains(Perms::W));
        assert!(Perms::NONE.contains(Perms::NONE));
    }

    #[test]
    fn allows_matches_kinds() {
        assert!(Perms::R.allows(AccessKind::Read));
        assert!(!Perms::R.allows(AccessKind::Write));
        assert!(Perms::W.allows(AccessKind::Write));
        assert!(!Perms::W.allows(AccessKind::Read));
        assert!(!Perms::NONE.allows(AccessKind::Read));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Perms::RW.to_string(), "rw");
        assert_eq!(Perms::R.to_string(), "r-");
        assert_eq!(Perms::NONE.to_string(), "--");
        assert_eq!(format!("{:b}", Perms::RW), "11");
        assert_eq!(format!("{:x}", Perms::W), "2");
    }
}
