//! EA-MPU access-control rules.

use crate::perms::Perms;
use crate::region::Region;
use std::fmt;

/// One EA-MPU rule: code executing inside `code` may access `data` with
/// `perms`, and `code` may only be entered from outside at `entry`.
///
/// A task needing access to several protected regions (its own data, its
/// stack, an IPC shared-memory window) holds several rules sharing the same
/// code region.
///
/// # Examples
///
/// ```
/// use eampu::{Perms, Region, Rule};
///
/// let rule = Rule::new(Region::new(0x1000, 0x200), 0x1000, Region::new(0x8000, 0x100), Perms::RW);
/// assert_eq!(rule.entry, 0x1000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rule {
    /// The code region the rule applies to.
    pub code: Region,
    /// The dedicated entry point into `code` (must lie inside it).
    pub entry: u32,
    /// The protected data region.
    pub data: Region,
    /// Permissions granted on `data`.
    pub perms: Perms,
}

impl Rule {
    /// Creates a rule.
    ///
    /// # Panics
    ///
    /// Panics if `entry` is not inside a non-empty `code` region.
    pub fn new(code: Region, entry: u32, data: Region, perms: Perms) -> Self {
        assert!(
            code.is_empty() || code.contains(entry),
            "entry point {entry:#x} lies outside code region {code}"
        );
        Rule {
            code,
            entry,
            data,
            perms,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "code {} (entry {:#010x}) -> data {} [{}]",
            self.code, self.entry, self.data, self.perms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_must_be_in_code_region() {
        let code = Region::new(0x1000, 0x100);
        let data = Region::new(0x8000, 0x100);
        let rule = Rule::new(code, 0x1080, data, Perms::RW);
        assert!(rule.code.contains(rule.entry));
    }

    #[test]
    #[should_panic(expected = "outside code region")]
    fn entry_outside_code_region_panics() {
        let _ = Rule::new(
            Region::new(0x1000, 0x100),
            0x2000,
            Region::new(0x8000, 4),
            Perms::R,
        );
    }

    #[test]
    fn display_is_informative() {
        let rule = Rule::new(
            Region::new(0x1000, 0x100),
            0x1000,
            Region::new(0x8000, 0x100),
            Perms::RW,
        );
        let text = rule.to_string();
        assert!(text.contains("0x00001000"));
        assert!(text.contains("rw"));
    }
}
