//! Robustness: the simulator must never panic, whatever bytes it executes.
//!
//! Random byte soup and random valid instruction streams are both run for
//! a bounded budget; every outcome (fault, halt, budget exhaustion) is
//! acceptable — panics and hangs are not.

use proptest::prelude::*;
use sp32::{encode, Instr, Reg};
use sp_emu::{Machine, MachineConfig};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u32..8).prop_map(|i| Reg::from_index(i).unwrap())
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Hlt),
        Just(Instr::Ret),
        Just(Instr::Iret),
        Just(Instr::Sti),
        Just(Instr::Cli),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Instr::MovReg { rd, rs }),
        (arb_reg(), any::<u32>()).prop_map(|(rd, imm)| Instr::MovImm { rd, imm }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Instr::Add { rd, rs }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Instr::Mul { rd, rs }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rd, rs, disp)| Instr::Ldw { rd, rs, disp }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rd, rs, disp)| Instr::Stw { rd, rs, disp }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rd, rs, disp)| Instr::Ldb { rd, rs, disp }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rd, rs, disp)| Instr::Stb { rd, rs, disp }),
        (0u32..0x2_0000).prop_map(|target| Instr::Jmp {
            target: target & !1
        }),
        any::<u8>().prop_map(|vector| Instr::Int { vector }),
        arb_reg().prop_map(|rs| Instr::Push { rs }),
        arb_reg().prop_map(|rd| Instr::Pop { rd }),
        arb_reg().prop_map(|rs| Instr::JmpReg { rs }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_instruction_streams_never_panic(
        instrs in proptest::collection::vec(arb_instr(), 1..64),
        sp in 0x1000u32..0x10000,
    ) {
        let mut machine = Machine::new(MachineConfig::default());
        let mut words = Vec::new();
        for instr in &instrs {
            encode(instr, &mut words);
        }
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        machine.load_image(0x2000, &bytes).unwrap();
        machine.set_eip(0x2000);
        machine.set_reg(Reg::SP, sp & !3);
        machine.set_idt_base(0x40);
        // Whatever happens — fault, halt, runaway — it must return.
        let _ = machine.run(50_000);
    }

    #[test]
    fn random_byte_soup_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 16..256),
        entry_offset in 0u32..64,
    ) {
        let mut machine = Machine::new(MachineConfig::default());
        machine.load_image(0x3000, &bytes).unwrap();
        machine.set_eip(0x3000 + (entry_offset & !3));
        machine.set_reg(Reg::SP, 0x8000);
        let _ = machine.run(50_000);
    }
}
