//! Differential tests: the execution engines (fast interpreter and block
//! translator) must be invisible to the model.
//!
//! Each lockstep test builds three identically-configured machines — one
//! per [`EngineKind`], with `Legacy` (the verbatim per-instruction loop)
//! as the reference — runs them through the same budget slices, and
//! asserts bit-identical observable state after every slice: clock,
//! `EIP`, registers, `EFLAGS`, halt state, and statistics.
//!
//! The remaining tests pin the cache-invalidation edges: a guest store
//! into its own cached code line, a guest overwriting a hot loop the
//! translator has compiled, a loader-style `write_bytes` rewriting
//! cached text, breakpoint (firmware trap) add/remove mid-run, EA-MPU
//! rule mutation between two identical accesses, and an EA-MPU window
//! reconfiguration between two executions of the same translated block.

use eampu::{Perms, Region, Rule};
use sp32::asm::assemble;
use sp32::Reg;
use sp_emu::devices::{Sensor, Timer};
use sp_emu::{EngineKind, Event, Fault, Machine, MachineConfig, MachineStats};
use std::sync::Arc;
use tytan_trace::{RingRecorder, Tracer};

const ALL_ENGINES: [EngineKind; 3] = [EngineKind::Legacy, EngineKind::Fast, EngineKind::Translated];

fn config(engine: EngineKind) -> MachineConfig {
    MachineConfig {
        engine,
        ..MachineConfig::default()
    }
}

type Snapshot = (u64, u32, [u32; 8], u32, bool, MachineStats);

fn snapshot(m: &Machine) -> Snapshot {
    (
        m.cycles(),
        m.eip(),
        m.regs(),
        m.eflags(),
        m.is_halted(),
        m.stats(),
    )
}

/// Runs the same setup on one machine per engine, then executes `chunks`
/// budget slices of `budget` cycles each, asserting identical events and
/// machine state after every slice (legacy is the reference).
///
/// The fast and translated machines additionally run with an event
/// recorder attached (the legacy machine stays untraced), so every
/// lockstep test doubles as a cycle-neutrality proof for the tracing
/// layer: if recording an event or bumping a counter ever touched the
/// model, these snapshots would diverge.
fn lockstep(setup: impl Fn(&mut Machine), chunks: usize, budget: u64) {
    let mut legacy = Machine::new(config(EngineKind::Legacy));
    let mut others: Vec<Machine> = [EngineKind::Fast, EngineKind::Translated]
        .into_iter()
        .map(|engine| {
            let mut m = Machine::new(config(engine));
            m.attach_tracer(Tracer::new(Arc::new(RingRecorder::new(4096))));
            m
        })
        .collect();
    setup(&mut legacy);
    for m in &mut others {
        setup(m);
    }
    for i in 0..chunks {
        let el = legacy.run(budget);
        for m in &mut others {
            let e = m.run(budget);
            let engine = m.engine();
            assert_eq!(e, el, "{engine:?}: event diverged at slice {i}");
            assert_eq!(
                snapshot(m),
                snapshot(&legacy),
                "{engine:?}: state diverged at slice {i}"
            );
        }
    }
}

#[test]
fn lockstep_plain_compute_loop() {
    lockstep(
        |m| {
            let program = assemble(
                "main:\n movi r1, 0x9000\n movi r2, 0\n\
                 loop:\n ldw r3, [r1]\n add r3, r2\n stw [r1], r3\n addi r2, 1\n jmp loop\n",
                0x1000,
            )
            .unwrap();
            m.load_image(0x1000, &program.bytes).unwrap();
            m.set_eip(0x1000);
        },
        32,
        997,
    );
}

#[test]
fn lockstep_timer_interrupts() {
    lockstep(
        |m| {
            let program = assemble(
                "main:\n sti\nloop:\n addi r2, 1\n jmp loop\n\
                 handler:\n addi r3, 1\n iret\n",
                0x1000,
            )
            .unwrap();
            let handler = program.symbol("handler").unwrap();
            m.load_image(0x1000, &program.bytes).unwrap();
            m.set_eip(0x1000);
            m.set_reg(Reg::R7, 0x8000);
            m.set_idt_base(0x40);
            m.set_idt_entry(32, handler).unwrap();
            let timer = m.add_device(Box::new(Timer::new(0xf000_0000, 32)));
            m.device_mut::<Timer>(timer).unwrap().configure(197, true);
        },
        64,
        1_003,
    );
}

#[test]
fn lockstep_sensor_threshold_and_halt() {
    lockstep(
        |m| {
            let program = assemble(
                "main:\n sti\nloop:\n addi r2, 1\n jmp loop\n\
                 handler:\n addi r3, 1\n hlt\n iret\n",
                0x1000,
            )
            .unwrap();
            let handler = program.symbol("handler").unwrap();
            m.load_image(0x1000, &program.bytes).unwrap();
            m.set_eip(0x1000);
            m.set_reg(Reg::R7, 0x8000);
            m.set_idt_base(0x40);
            m.set_idt_entry(33, handler).unwrap();
            let sensor = m.add_device(Box::new(Sensor::new(0xf000_0110, 10)));
            let sensor = m.device_mut::<Sensor>(sensor).unwrap();
            sensor.set_threshold_irq(500, 33);
            sensor.set_trace(vec![(2_500, 900), (5_000, 100), (7_500, 900)]);
        },
        24,
        1_009,
    );
}

#[test]
fn lockstep_mpu_enforced_loop() {
    // The mpu_on bench shape: enforcement on, empty rule table. This is
    // the configuration the translator specialises hardest (statically
    // allowed, unobserved edges compile to nothing on the untraced
    // side, to replays on the traced side), so pin it in lockstep.
    lockstep(
        |m| {
            let program = assemble(
                "main:\n movi r1, 0x9000\n movi r2, 0\n\
                 loop:\n ldw r3, [r1]\n add r3, r2\n stw [r1], r3\n addi r2, 1\n jmp loop\n",
                0x1000,
            )
            .unwrap();
            m.load_image(0x1000, &program.bytes).unwrap();
            m.set_eip(0x1000);
            m.set_mpu_enabled(true);
        },
        32,
        997,
    );
}

#[test]
fn lockstep_self_modifying_code() {
    // The loop patches its own `addi r4, 1` to `addi r4, 2` on the first
    // iteration; the predecode cache and the translation cache must both
    // observe the store.
    let patched = assemble("addi r4, 2\n", 0).unwrap();
    let word = u32::from_le_bytes(patched.bytes[0..4].try_into().unwrap());
    let source = format!(
        "main:\n movi r1, target\n movi r2, {word:#010x}\n movi r3, 0\n\
         loop:\ntarget:\n addi r4, 1\n stw [r1], r2\n addi r3, 1\n cmpi r3, 10\n jnz loop\n hlt\n"
    );
    lockstep(
        |m| {
            let program = assemble(&source, 0x1000).unwrap();
            m.load_image(0x1000, &program.bytes).unwrap();
            m.set_eip(0x1000);
        },
        16,
        211,
    );

    // Functional check on each engine alone: ten iterations, the first
    // at the old encoding (+1), the next nine patched (+2).
    for engine in ALL_ENGINES {
        let mut m = Machine::new(config(engine));
        let program = assemble(&source, 0x1000).unwrap();
        m.load_image(0x1000, &program.bytes).unwrap();
        m.set_eip(0x1000);
        m.run(100_000);
        assert!(m.is_halted());
        assert_eq!(
            m.reg(Reg::R4),
            1 + 9 * 2,
            "{engine:?}: stale cached instruction executed"
        );
    }
}

#[test]
fn hot_loop_overwrite_invalidates_translated_block() {
    // A hot spin loop runs long enough for the translator to compile and
    // repeatedly hit its block, then the guest overwrites the loop's own
    // branch with `hlt`. All three engines must observe the rewrite at
    // the same cycle, and the translated engine must account for it as
    // an SMC invalidation.
    let hlt = assemble("hlt\n", 0).unwrap();
    let hlt_word = u32::from_le_bytes(hlt.bytes[0..4].try_into().unwrap());
    let source = format!(
        "main:\n movi r1, patch\n movi r2, {hlt_word:#010x}\n movi r3, 0\n\
         loop:\n addi r3, 1\n cmpi r3, 4000\n jnz loop\n\
         stw [r1], r2\n\
         patch:\n jmp loop\n"
    );
    lockstep(
        |m| {
            let program = assemble(&source, 0x1000).unwrap();
            m.load_image(0x1000, &program.bytes).unwrap();
            m.set_eip(0x1000);
        },
        24,
        1_013,
    );

    // Counter check on a traced translated machine: the hot loop block
    // was hit, and the store into it was booked as an SMC invalidation.
    let mut m = Machine::new(config(EngineKind::Translated));
    let tracer = Tracer::new(Arc::new(RingRecorder::new(64)));
    m.attach_tracer(tracer.clone());
    let program = assemble(&source, 0x1000).unwrap();
    m.load_image(0x1000, &program.bytes).unwrap();
    m.set_eip(0x1000);
    m.run(200_000);
    assert!(m.is_halted(), "patched hlt never executed");
    let c = tracer.counters();
    assert!(c.get("emu_block_compile").unwrap_or(0) > 0);
    assert!(c.get("emu_block_hit").unwrap_or(0) > 100, "loop not hot");
    assert!(
        c.get("emu_block_invalidate_smc").unwrap_or(0) > 0,
        "store into compiled code not booked as SMC invalidation"
    );
}

#[test]
fn mpu_reconfiguration_invalidates_translated_block() {
    // The same block executes twice with an EA-MPU window reconfiguration
    // in between: address 0x9000 stays protected throughout by a foreign
    // task's rule (slot 0), and the probe's own rule (slot 1) initially
    // grants it. Between the two executions the probe's data window moves
    // away, so the identical access by the identical block must now
    // fault. Cycle-identical across all three engines, and the translated
    // engine must drop its compiled blocks at the reconfiguration
    // (counted as an MPU invalidation) rather than replay the stale
    // decision.
    let source = "main:\n movi r1, 0x9000\n\
                  loop:\n ldw r3, [r1]\n addi r2, 1\n jmp loop\n";
    let build = |engine: EngineKind| {
        let mut m = Machine::new(config(engine));
        let program = assemble(source, 0x1000).unwrap();
        m.load_image(0x1000, &program.bytes).unwrap();
        m.set_eip(0x1000);
        m.set_mpu_enabled(true);
        m.mpu_mut().set_rule(
            0,
            Rule::new(
                Region::new(0x2000, 0x100),
                0x2000,
                Region::new(0x9000, 0x100),
                Perms::RW,
            ),
        );
        m.mpu_mut().set_rule(
            1,
            Rule::new(
                Region::new(0x1000, 0x100),
                0x1000,
                Region::new(0x9000, 0x100),
                Perms::RW,
            ),
        );
        m
    };

    let mut machines: Vec<Machine> = ALL_ENGINES.into_iter().map(build).collect();
    let tracer = Tracer::new(Arc::new(RingRecorder::new(64)));
    machines[2].attach_tracer(tracer.clone());

    let mut reference: Option<(Event, Snapshot, Event, Snapshot)> = None;
    for m in &mut machines {
        let engine = m.engine();
        // First execution: the block's probe read is allowed.
        let e1 = m.run(1_000);
        assert_eq!(e1, Event::BudgetExhausted, "{engine:?}: probe faulted");
        let s1 = snapshot(m);
        // Move the probe's data window away from 0x9000 (which stays
        // protected by slot 0): the very same block must now fault on
        // its first load.
        m.mpu_mut().set_rule(
            1,
            Rule::new(
                Region::new(0x1000, 0x100),
                0x1000,
                Region::new(0xa000, 0x100),
                Perms::RW,
            ),
        );
        let e2 = m.run(1_000);
        assert!(
            matches!(e2, Event::Fault(Fault::MpuAccess { addr: 0x9000, .. })),
            "{engine:?}: stale MPU decision survived reconfiguration: {e2:?}"
        );
        let s2 = snapshot(m);
        match &reference {
            None => reference = Some((e1, s1, e2, s2)),
            Some((r1, rs1, r2, rs2)) => {
                assert_eq!((&e1, &s1), (r1, rs1), "{engine:?}: diverged before");
                assert_eq!((&e2, &s2), (r2, rs2), "{engine:?}: diverged after");
            }
        }
    }
    assert!(
        tracer
            .counters()
            .get("emu_block_invalidate_mpu")
            .unwrap_or(0)
            > 0,
        "reconfiguration did not invalidate compiled blocks"
    );
}

#[test]
fn write_bytes_rewrite_invalidates_cached_text() {
    // The loader's relocation pass rewrites already-copied text with
    // `write_bytes`; a cached copy of the old bytes must not survive, in
    // either the predecode cache or the translation cache.
    for engine in [EngineKind::Fast, EngineKind::Translated] {
        let mut m = Machine::new(config(engine));
        let before = assemble("main:\n movi r0, 1\n jmp main\n", 0x1000).unwrap();
        m.load_image(0x1000, &before.bytes).unwrap();
        m.set_eip(0x1000);
        m.run(500);
        assert_eq!(m.reg(Reg::R0), 1);

        let after = assemble("main:\n movi r0, 2\n jmp main\n", 0x1000).unwrap();
        m.write_bytes(0x1000, &after.bytes).unwrap();
        m.run(500);
        assert_eq!(
            m.reg(Reg::R0),
            2,
            "{engine:?}: cache served stale text after write_bytes"
        );
    }
}

#[test]
fn breakpoint_add_remove_mid_run_matches_legacy() {
    // A debugger-style firmware trap set and cleared between run slices
    // must fire identically on all engines (the fast loop's trap bitset
    // and sorted array are updated in place; the translator stops blocks
    // before trap addresses and recompiles when the trap set changes).
    let build = |engine: EngineKind| {
        let mut m = Machine::new(config(engine));
        let program = assemble(
            "main:\n movi r2, 0\nloop:\n addi r2, 1\nprobe:\n addi r3, 1\n jmp loop\n",
            0x1000,
        )
        .unwrap();
        let probe = program.symbol("probe").unwrap();
        m.load_image(0x1000, &program.bytes).unwrap();
        m.set_eip(0x1000);
        (m, probe)
    };
    let mut machines: Vec<(Machine, u32)> = ALL_ENGINES.into_iter().map(build).collect();

    for (m, probe) in &mut machines {
        let probe = *probe;
        assert_eq!(m.run(300), Event::BudgetExhausted);
        m.add_firmware_trap(probe);
        assert_eq!(m.run(10_000), Event::FirmwareTrap { addr: probe });
        m.step().unwrap(); // step past the trap address
        assert_eq!(m.run(10_000), Event::FirmwareTrap { addr: probe });
        m.remove_firmware_trap(probe);
        assert_eq!(m.run(300), Event::BudgetExhausted);
    }
    let reference = snapshot(&machines[0].0);
    for (m, _) in &machines[1..] {
        assert_eq!(snapshot(m), reference);
    }
}

#[test]
fn mpu_rule_mutation_between_identical_accesses() {
    // Two identical accesses with a rule-table mutation in between: the
    // decision cache must not replay the first verdict. Address 0x9000 is
    // protected throughout by another task's rule (slot 0), so whether the
    // probe at 0x1000 may read it depends entirely on its own rule (slot 1).
    let mut m = Machine::new(MachineConfig::default());
    m.set_mpu_enabled(true);
    let data = Region::new(0x9000, 0x100);
    m.mpu_mut().set_rule(
        0,
        Rule::new(Region::new(0x2000, 0x100), 0x2000, data, Perms::RW),
    );
    let probe_rule = Rule::new(Region::new(0x1000, 0x100), 0x1000, data, Perms::RW);

    assert!(
        matches!(
            m.checked_read_word(0x1000, 0x9000),
            Err(Fault::MpuAccess { .. })
        ),
        "protected address readable without a rule"
    );
    m.mpu_mut().set_rule(1, probe_rule);
    assert!(
        m.checked_read_word(0x1000, 0x9000).is_ok(),
        "decision cache replayed a denial across a rule add"
    );
    m.mpu_mut().clear_slot(1);
    assert!(
        matches!(
            m.checked_read_word(0x1000, 0x9000),
            Err(Fault::MpuAccess { .. })
        ),
        "decision cache replayed an allow across a rule removal"
    );

    // Same dance through enable/disable: toggling must flush too.
    m.set_mpu_enabled(false);
    assert!(
        m.checked_read_word(0x1000, 0x9000).is_ok(),
        "MPU off: everything allowed"
    );
    m.set_mpu_enabled(true);
    assert!(
        matches!(
            m.checked_read_word(0x1000, 0x9000),
            Err(Fault::MpuAccess { .. })
        ),
        "decision cache survived an MPU enable toggle"
    );
}

#[test]
fn idt_arithmetic_is_checked_at_address_space_edge() {
    // `idt_base + 4 * vector` must not wrap around the address space: a
    // base near the top plus a high vector is a bus fault, not a silent
    // wrap into low RAM (where it would corrupt the zero page).
    let mut edge = Machine::new(MachineConfig::default());
    edge.set_idt_base(0xffff_fff0);
    // 0xffff_fff0 + 4*4 == 2^32: the first wrapping vector.
    assert!(matches!(
        edge.set_idt_entry(4, 0x1234),
        Err(Fault::Bus { .. })
    ));
    assert!(matches!(edge.idt_entry(4), Err(Fault::Bus { .. })));
    assert!(matches!(
        edge.set_idt_entry(255, 0x1234),
        Err(Fault::Bus { .. })
    ));
    assert!(matches!(edge.idt_entry(255), Err(Fault::Bus { .. })));
    // A non-wrapping slot at the very edge computes its address fine (the
    // store still bus-faults — there is no RAM up there — but for the
    // right reason, with the true unwrapped address).
    assert!(matches!(
        edge.set_idt_entry(3, 0x1234),
        Err(Fault::Bus { addr: 0xffff_fffc })
    ));
    // Zero-page guard: had the sum wrapped, vector 4 would have landed at
    // address 0 (the IDT base register is write-once, hence the fresh
    // machine below for the happy path).
    assert_eq!(
        edge.read_word(0x0).unwrap(),
        0,
        "zero page must stay untouched"
    );

    let mut ok = Machine::new(MachineConfig::default());
    ok.set_idt_base(0x40);
    ok.set_idt_entry(4, 0x1234).unwrap();
    assert_eq!(ok.idt_entry(4).unwrap(), 0x1234);
}

#[test]
fn cf_monitor_chains_are_engine_invariant() {
    // The control-flow attestation chain is part of the observable
    // model: the same guest under every engine must record the same
    // taken edges in the same order and fold them to a byte-identical
    // chain head. A calls/returns/branches mix exercises every edge
    // kind the monitor records.
    let source = "main:\n movi r2, 0\n\
                  loop:\n call work\n addi r2, 1\n cmpi r2, 50\n jnz loop\n hlt\n\
                  work:\n addi r3, 1\n ret\n";
    let build = |engine: EngineKind| {
        let mut m = Machine::new(config(engine));
        let program = assemble(source, 0x1000).unwrap();
        m.load_image(0x1000, &program.bytes).unwrap();
        m.set_eip(0x1000);
        m.set_reg(Reg::R7, 0x8000);
        m.attach_cf_monitor(Region::new(0x1000, 0x100));
        m
    };
    let mut machines: Vec<Machine> = ALL_ENGINES.into_iter().map(build).collect();
    for m in &mut machines {
        // Uneven slices so the translated engine crosses run boundaries
        // mid-loop: the monitor must not care how the run is sliced.
        for budget in [37, 211, 100_000] {
            m.run(budget);
        }
        assert!(m.is_halted(), "{:?}: guest never finished", m.engine());
    }
    let reference = machines[0].cf_monitor().expect("monitor armed");
    assert!(
        !reference.runs().is_empty(),
        "the call/return loop must record edges"
    );
    assert!(!reference.truncated());
    for m in &machines[1..] {
        let monitor = m.cf_monitor().expect("monitor armed");
        let engine = m.engine();
        assert_eq!(
            monitor.runs(),
            reference.runs(),
            "{engine:?}: run-encoded edge log diverged"
        );
        // The exact raw edge streams must agree too — the expansion
        // iterator is the oracle-facing view of the compressed log.
        assert!(
            monitor.expanded().eq(reference.expanded()),
            "{engine:?}: expanded edge stream diverged"
        );
        assert_eq!(
            monitor.chain_head(),
            reference.chain_head(),
            "{engine:?}: chain head diverged"
        );
    }
    // And the machines themselves stayed in lockstep with the monitor
    // attached — monitoring is not allowed to perturb execution.
    let s0 = snapshot(&machines[0]);
    for m in &machines[1..] {
        assert_eq!(snapshot(m), s0, "{:?}: state diverged", m.engine());
    }
}
