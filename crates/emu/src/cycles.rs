//! The cycle-cost model of the simulated core.
//!
//! The paper reports all results in clock cycles "since the clock-speed of a
//! platform is variable" (§6). Our interpreter charges each retired guest
//! instruction per this model, and trusted firmware services charge through
//! the same counters; DESIGN.md documents the calibration. The constants are
//! chosen so that the low-level sequences the paper measures land near its
//! magnitudes (e.g. an 8-register context store ≈ 38 cycles, an 8-register
//! wipe ≈ 16 cycles, Table 2) — the reproduced claim is the shape of each
//! experiment, not cycle-exactness.

use sp32::Instr;

/// Per-instruction-class cycle costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleModel {
    /// Register-to-register ALU operations, moves, compares.
    pub alu: u64,
    /// Loads and stores (word or byte).
    pub mem: u64,
    /// `PUSH` / `POP`.
    pub stack: u64,
    /// Not-taken conditional branch.
    pub branch_not_taken: u64,
    /// Taken branch (`JMP`, taken `Jcc`, `JMPR`).
    pub branch_taken: u64,
    /// `CALL` and `RET`.
    pub call: u64,
    /// `NOP`, `HLT`, `STI`, `CLI`.
    pub trivial: u64,
    /// Hardware interrupt/`INT` dispatch: two stack pushes plus IDT fetch
    /// and redirect.
    pub int_dispatch: u64,
    /// `IRET`: two stack pops plus redirect.
    pub iret: u64,
    /// Extra cost of `MUL` over an ALU op.
    pub mul_extra: u64,
}

impl Default for CycleModel {
    fn default() -> Self {
        CycleModel {
            alu: 2,
            mem: 5,
            stack: 5,
            branch_not_taken: 2,
            branch_taken: 4,
            call: 7,
            trivial: 1,
            int_dispatch: 14,
            iret: 12,
            mul_extra: 3,
        }
    }
}

impl CycleModel {
    /// The cost of retiring `instr`; `taken` reports whether a conditional
    /// branch was taken (ignored for other instructions).
    pub fn cost(&self, instr: &Instr, taken: bool) -> u64 {
        match instr {
            Instr::Nop | Instr::Hlt | Instr::Sti | Instr::Cli => self.trivial,
            Instr::MovReg { .. }
            | Instr::MovImm { .. }
            | Instr::Add { .. }
            | Instr::AddImm { .. }
            | Instr::Sub { .. }
            | Instr::And { .. }
            | Instr::Or { .. }
            | Instr::Xor { .. }
            | Instr::Not { .. }
            | Instr::Shl { .. }
            | Instr::Shr { .. }
            | Instr::Cmp { .. }
            | Instr::CmpImm { .. } => self.alu,
            Instr::Mul { .. } => self.alu + self.mul_extra,
            Instr::Ldw { .. } | Instr::Stw { .. } | Instr::Ldb { .. } | Instr::Stb { .. } => {
                self.mem
            }
            Instr::Push { .. } | Instr::Pop { .. } => self.stack,
            Instr::Jmp { .. } | Instr::JmpReg { .. } => self.branch_taken,
            Instr::Jcc { .. } => {
                if taken {
                    self.branch_taken
                } else {
                    self.branch_not_taken
                }
            }
            Instr::Call { .. } | Instr::Ret => self.call,
            Instr::Int { .. } => self.int_dispatch,
            Instr::Iret => self.iret,
        }
    }
}

/// Cycle costs of trusted-firmware services modelled functionally
/// (RTM hashing, relocation, loader memory moves).
///
/// Defaults are calibrated against the paper's evaluation:
///
/// - Table 7 fits `T ≈ 4,300 + b·3,900 (+100) + a·500` cycles for a task of
///   `b` 64-byte hash blocks and `a` reverted relocations.
/// - Table 5 fits relocation at ≈ 37 cycles fixed plus ≈ 640–670 cycles per
///   patched address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FirmwareCosts {
    /// Fixed overhead of one measurement (state init + finalization).
    pub measure_base: u64,
    /// Cost of hashing one 64-byte block (SHA-1 compression).
    pub measure_per_block: u64,
    /// Fixed overhead of the relocation-revert loop in the RTM.
    pub measure_revert_base: u64,
    /// Cost of reverting one relocated address during measurement.
    pub measure_per_revert: u64,
    /// Fixed cost of allocating task memory from the heap.
    pub alloc_task: u64,
    /// Per-byte cost of parsing the task image headers (the paper's ELF
    /// parsing during load).
    pub load_parse_per_byte: u64,
    /// Fixed overhead of the relocation pass in the loader.
    pub reloc_base: u64,
    /// Cost of patching one relocation site.
    pub reloc_per_site: u64,
    /// Cost per word of copying a task image into place.
    pub load_copy_per_word: u64,
    /// Fixed overhead of preparing a fresh task stack frame.
    pub stack_prepare: u64,
    /// Fixed cost of the IPC proxy body (origin lookup, receiver lookup,
    /// message copy); the paper reports 1,208 cycles (§6).
    pub ipc_proxy: u64,
    /// Fixed cost of the kernel context-switch bookkeeping around the
    /// scheduler (ready-list manipulation), on top of executed guest code.
    pub scheduler_pick: u64,
}

impl Default for FirmwareCosts {
    fn default() -> Self {
        FirmwareCosts {
            measure_base: 4_300,
            measure_per_block: 3_900,
            measure_revert_base: 100,
            measure_per_revert: 500,
            alloc_task: 420,
            load_parse_per_byte: 45,
            reloc_base: 37,
            reloc_per_site: 640,
            load_copy_per_word: 2,
            stack_prepare: 180,
            ipc_proxy: 1_208,
            scheduler_pick: 120,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp32::{Cond, Reg};

    #[test]
    fn context_store_sequence_matches_table2_magnitude() {
        // Int Mux context save: 8 register stores land near the paper's
        // 38-cycle "store context" phase.
        let model = CycleModel::default();
        let store = Instr::Stw {
            rd: Reg::R7,
            rs: Reg::R0,
            disp: 0,
        };
        let total: u64 = (0..8).map(|_| model.cost(&store, false)).sum();
        assert!((32..=48).contains(&total), "8 stores cost {total}");
    }

    #[test]
    fn register_wipe_matches_table2_magnitude() {
        // Wiping 8 registers with xor reg,reg lands near 16 cycles.
        let model = CycleModel::default();
        let xor = Instr::Xor {
            rd: Reg::R0,
            rs: Reg::R0,
        };
        let total: u64 = (0..8).map(|_| model.cost(&xor, false)).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn taken_branches_cost_more() {
        let model = CycleModel::default();
        let jcc = Instr::Jcc {
            cond: Cond::Z,
            target: 0,
        };
        assert!(model.cost(&jcc, true) > model.cost(&jcc, false));
    }

    #[test]
    fn table7_firmware_fit() {
        // T(b) = base + b*per_block reproduces Table 7's block scaling.
        let fw = FirmwareCosts::default();
        let t = |b: u64| fw.measure_base + b * fw.measure_per_block;
        assert_eq!(t(1), 8_200);
        assert_eq!(t(2) - t(1), 3_900);
        assert_eq!(t(8), 35_500);
    }
}
