//! The execution-engine abstraction: [`CpuCore`].
//!
//! The machine has three ways to retire guest instructions — the legacy
//! per-instruction loop, the event-driven fast interpreter, and the
//! block translation engine — all bit-identical in every observable
//! (clock, architectural state, events, trace, EA-MPU decision log).
//! [`CpuCore`] names that contract as a trait so harnesses can hold the
//! strategy as a value: the differential fuzzer iterates `dyn CpuCore`
//! participants, and the bench suite measures them side by side.
//!
//! A core is a stateless strategy; all engine state (predecode cache,
//! translation cache) lives in the [`Machine`] and is sized by
//! [`MachineConfig::engine`](crate::MachineConfig). A core must therefore
//! only drive machines configured for its [`EngineKind`] — pick it with
//! [`core_for`]`(machine.engine())`.

use crate::machine::{EngineKind, Event, Fault, Machine};

/// One execution engine: a strategy for retiring guest instructions on
/// a [`Machine`] configured for it.
pub trait CpuCore {
    /// Stable engine name (matches the `TYTAN_EXEC_ENGINE` values).
    fn name(&self) -> &'static str;

    /// The configuration this core requires the machine to run under.
    fn kind(&self) -> EngineKind;

    /// Retires exactly one instruction. All engines share
    /// [`Machine::step`] as the semantic core, so single-stepping is
    /// engine-independent by construction.
    fn step(&self, m: &mut Machine) -> Result<(), Fault> {
        m.step()
    }

    /// Runs until an [`Event`] stops execution or the cycle budget is
    /// exhausted, exactly as [`Machine::run`] would on a machine
    /// configured for this engine.
    fn exec(&self, m: &mut Machine, max_cycles: u64) -> Event;
}

/// The original per-instruction reference loop.
pub struct LegacyCore;

/// The event-driven batching interpreter (predecode + decision caches).
pub struct FastCore;

/// The basic-block translation engine (threaded code + fast caches).
pub struct TranslatedCore;

impl CpuCore for LegacyCore {
    fn name(&self) -> &'static str {
        "legacy"
    }
    fn kind(&self) -> EngineKind {
        EngineKind::Legacy
    }
    fn exec(&self, m: &mut Machine, max_cycles: u64) -> Event {
        debug_assert_eq!(m.engine(), EngineKind::Legacy);
        m.run_legacy(max_cycles)
    }
}

impl CpuCore for FastCore {
    fn name(&self) -> &'static str {
        "fast"
    }
    fn kind(&self) -> EngineKind {
        EngineKind::Fast
    }
    fn exec(&self, m: &mut Machine, max_cycles: u64) -> Event {
        debug_assert_eq!(m.engine(), EngineKind::Fast);
        m.run_fast(max_cycles)
    }
}

impl CpuCore for TranslatedCore {
    fn name(&self) -> &'static str {
        "translated"
    }
    fn kind(&self) -> EngineKind {
        EngineKind::Translated
    }
    fn exec(&self, m: &mut Machine, max_cycles: u64) -> Event {
        debug_assert_eq!(m.engine(), EngineKind::Translated);
        m.run_translated(max_cycles)
    }
}

/// The core implementing `kind` (pick with `core_for(machine.engine())`).
pub fn core_for(kind: EngineKind) -> &'static dyn CpuCore {
    match kind {
        EngineKind::Legacy => &LegacyCore,
        EngineKind::Fast => &FastCore,
        EngineKind::Translated => &TranslatedCore,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::engine_from_env;
    use crate::MachineConfig;
    use sp32::asm::assemble;

    #[test]
    fn core_names_round_trip_through_the_env_selector() {
        for kind in [EngineKind::Legacy, EngineKind::Fast, EngineKind::Translated] {
            let core = core_for(kind);
            assert_eq!(core.kind(), kind);
            assert_eq!(engine_from_env(Some(core.name()), None), kind);
        }
    }

    #[test]
    fn exec_engine_selector_and_fast_path_alias() {
        // TYTAN_EXEC_ENGINE wins, whatever the deprecated alias says.
        assert_eq!(
            engine_from_env(Some("legacy"), Some("1")),
            EngineKind::Legacy
        );
        assert_eq!(
            engine_from_env(Some("translated"), Some("0")),
            EngineKind::Translated
        );
        assert_eq!(engine_from_env(Some("fast"), None), EngineKind::Fast);
        // Unknown values fall back to the default engine.
        assert_eq!(engine_from_env(Some("turbo"), None), EngineKind::Fast);
        assert_eq!(
            engine_from_env(Some(" translated "), None),
            EngineKind::Translated
        );

        // Deprecated TYTAN_FAST_PATH alias: disabling it selects the
        // legacy loop, anything else (including unset) the fast engine.
        // Pinned so the alias keeps working for existing harness configs.
        for off in ["0", "false", "off", "no", " off "] {
            assert_eq!(engine_from_env(None, Some(off)), EngineKind::Legacy);
        }
        for on in ["1", "true", "on", "yes", ""] {
            assert_eq!(engine_from_env(None, Some(on)), EngineKind::Fast);
        }
        assert_eq!(engine_from_env(None, None), EngineKind::Fast);
    }

    #[test]
    fn cores_execute_identically_through_the_trait() {
        let source = "main:\n movi r2, 0\nloop:\n addi r2, 1\n cmpi r2, 500\n jnz loop\n hlt\n";
        let mut reference: Option<(u64, u32)> = None;
        for kind in [EngineKind::Legacy, EngineKind::Fast, EngineKind::Translated] {
            let mut m = crate::Machine::new(MachineConfig {
                engine: kind,
                ..MachineConfig::default()
            });
            let program = assemble(source, 0x1000).unwrap();
            m.load_image(0x1000, &program.bytes).unwrap();
            m.set_eip(0x1000);
            let core = core_for(m.engine());
            core.step(&mut m).unwrap();
            core.exec(&mut m, 100_000);
            assert!(m.is_halted(), "{}: never halted", core.name());
            let got = (m.cycles(), m.reg(sp32::Reg::R2));
            match reference {
                None => reference = Some(got),
                Some(r) => assert_eq!(got, r, "{}: diverged", core.name()),
            }
        }
    }
}
