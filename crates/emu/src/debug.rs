//! A platform debugger: breakpoints, value watchpoints, single-stepping.
//!
//! Breakpoints reuse the machine's firmware-trap mechanism (execution
//! pauses *before* the instruction at the address runs); watchpoints are
//! value-change watches evaluated while single-stepping. The debugger is
//! a development tool with debug-port powers — it reads memory physically
//! and is not subject to the EA-MPU, like a JTAG probe on the real
//! platform.
//!
//! # Examples
//!
//! ```
//! use sp32::asm::assemble;
//! use sp_emu::debug::{Debugger, DebugStop};
//! use sp_emu::{Machine, MachineConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut machine = Machine::new(MachineConfig::default());
//! let program = assemble("movi r0, 1\nmovi r0, 2\nhlt\n", 0x100)?;
//! machine.load_image(0x100, &program.bytes)?;
//! machine.set_eip(0x100);
//!
//! let mut debugger = Debugger::new();
//! debugger.add_breakpoint(&mut machine, 0x108);
//! let stop = debugger.run(&mut machine, 1_000)?;
//! assert_eq!(stop, DebugStop::Breakpoint { addr: 0x108 });
//! assert_eq!(machine.reg(sp32::Reg::R0), 1);
//! # Ok(())
//! # }
//! ```

use crate::machine::{Event, Fault, Machine};
use std::collections::{BTreeMap, BTreeSet};

/// Why the debugger returned control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DebugStop {
    /// Execution reached a breakpoint (the instruction has not run yet).
    Breakpoint {
        /// The breakpoint address.
        addr: u32,
    },
    /// A watched word changed value.
    WatchChanged {
        /// The watched address.
        addr: u32,
        /// Value before the change.
        old: u32,
        /// Value after the change.
        new: u32,
    },
    /// The machine faulted.
    Fault(Fault),
    /// The cycle budget ran out.
    Budget,
    /// Execution reached a firmware trap that is not a debugger
    /// breakpoint (e.g. the platform's kernel trap).
    ForeignTrap {
        /// The trap address.
        addr: u32,
    },
}

/// The debugger state attached to a machine.
#[derive(Debug, Default)]
pub struct Debugger {
    breakpoints: BTreeSet<u32>,
    watches: BTreeMap<u32, u32>,
    /// The breakpoint reported by the previous stop, so the next `run`
    /// steps over it instead of re-reporting it forever.
    reported: Option<u32>,
}

impl Debugger {
    /// Creates a debugger with no breakpoints or watches.
    pub fn new() -> Self {
        Debugger::default()
    }

    /// Sets a breakpoint at `addr`.
    pub fn add_breakpoint(&mut self, machine: &mut Machine, addr: u32) {
        self.breakpoints.insert(addr);
        machine.add_firmware_trap(addr);
    }

    /// Removes the breakpoint at `addr`.
    pub fn remove_breakpoint(&mut self, machine: &mut Machine, addr: u32) {
        if self.breakpoints.remove(&addr) {
            machine.remove_firmware_trap(addr);
        }
    }

    /// The currently set breakpoints.
    pub fn breakpoints(&self) -> impl Iterator<Item = u32> + '_ {
        self.breakpoints.iter().copied()
    }

    /// Watches the 32-bit word at `addr` for value changes.
    ///
    /// # Errors
    ///
    /// Returns a bus fault if `addr` is unmapped.
    pub fn watch_word(&mut self, machine: &mut Machine, addr: u32) -> Result<(), Fault> {
        let value = machine.read_word(addr)?;
        self.watches.insert(addr, value);
        Ok(())
    }

    /// Stops watching `addr`.
    pub fn unwatch_word(&mut self, addr: u32) {
        self.watches.remove(&addr);
    }

    fn check_watches(&mut self, machine: &mut Machine) -> Result<Option<DebugStop>, Fault> {
        for (&addr, last) in self.watches.iter_mut() {
            let now = machine.read_word(addr)?;
            if now != *last {
                let old = *last;
                *last = now;
                return Ok(Some(DebugStop::WatchChanged {
                    addr,
                    old,
                    new: now,
                }));
            }
        }
        Ok(None)
    }

    /// Executes exactly one instruction (stepping over a breakpoint at
    /// the current address) and reports any watch change.
    ///
    /// # Errors
    ///
    /// Returns the machine fault that stopped the instruction.
    pub fn step(&mut self, machine: &mut Machine) -> Result<Option<DebugStop>, Fault> {
        machine.step()?;
        self.check_watches(machine)
    }

    /// Runs until a stop condition, for at most `max_cycles`.
    ///
    /// With watches set, execution single-steps (slow but exact); without,
    /// it runs at full speed between breakpoints.
    ///
    /// # Errors
    ///
    /// Returns a bus fault only from reading a watched address; machine
    /// execution faults are reported as [`DebugStop::Fault`].
    pub fn run(&mut self, machine: &mut Machine, max_cycles: u64) -> Result<DebugStop, Fault> {
        let deadline = machine.cycles().saturating_add(max_cycles);

        // Step over the breakpoint the previous stop reported.
        if self.reported.take() == Some(machine.eip()) && !machine.is_halted() {
            match self.step(machine) {
                Ok(Some(stop)) => return Ok(stop),
                Ok(None) => {}
                Err(fault) => return Ok(DebugStop::Fault(fault)),
            }
        }

        if self.watches.is_empty() {
            return Ok(
                match machine.run(deadline.saturating_sub(machine.cycles())) {
                    Event::FirmwareTrap { addr } if self.breakpoints.contains(&addr) => {
                        self.reported = Some(addr);
                        DebugStop::Breakpoint { addr }
                    }
                    Event::FirmwareTrap { addr } => DebugStop::ForeignTrap { addr },
                    Event::Fault(fault) => DebugStop::Fault(fault),
                    Event::BudgetExhausted | Event::IdleBudgetExhausted => DebugStop::Budget,
                },
            );
        }

        while machine.cycles() < deadline {
            if self.breakpoints.contains(&machine.eip()) {
                self.reported = Some(machine.eip());
                return Ok(DebugStop::Breakpoint {
                    addr: machine.eip(),
                });
            }
            if machine.is_halted() {
                // Let interrupts wake the core.
                match machine.run(64) {
                    Event::Fault(fault) => return Ok(DebugStop::Fault(fault)),
                    Event::FirmwareTrap { addr } if !self.breakpoints.contains(&addr) => {
                        return Ok(DebugStop::ForeignTrap { addr });
                    }
                    _ => {}
                }
                continue;
            }
            match machine.step() {
                Ok(()) => {}
                Err(fault) => return Ok(DebugStop::Fault(fault)),
            }
            if let Some(stop) = self.check_watches(machine)? {
                return Ok(stop);
            }
        }
        Ok(DebugStop::Budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use sp32::asm::assemble;
    use sp32::Reg;

    fn machine_with(src: &str, origin: u32) -> Machine {
        let mut m = Machine::new(MachineConfig::default());
        let p = assemble(src, origin).expect("assemble");
        m.load_image(origin, &p.bytes).expect("load");
        m.set_eip(origin);
        m
    }

    #[test]
    fn breakpoint_pauses_before_execution() {
        let mut m = machine_with("movi r0, 1\nmovi r0, 2\nmovi r0, 3\nhlt\n", 0x100);
        let mut dbg = Debugger::new();
        dbg.add_breakpoint(&mut m, 0x110);
        let stop = dbg.run(&mut m, 10_000).unwrap();
        assert_eq!(stop, DebugStop::Breakpoint { addr: 0x110 });
        assert_eq!(m.reg(Reg::R0), 2, "third movi not executed yet");
    }

    #[test]
    fn resume_steps_over_the_breakpoint() {
        let mut m = machine_with("loop:\n movi r0, 1\n jmp loop\n", 0x100);
        let mut dbg = Debugger::new();
        dbg.add_breakpoint(&mut m, 0x100);
        let first = dbg.run(&mut m, 10_000).unwrap();
        assert_eq!(first, DebugStop::Breakpoint { addr: 0x100 });
        // Each subsequent run loops once and hits the breakpoint again.
        let again = dbg.run(&mut m, 10_000).unwrap();
        assert_eq!(again, DebugStop::Breakpoint { addr: 0x100 });
    }

    #[test]
    fn watchpoint_reports_value_transition() {
        let src = "movi r1, 0x9000\nmovi r2, 7\nnop\nnop\nstw [r1], r2\nhlt\n";
        let mut m = machine_with(src, 0x100);
        let mut dbg = Debugger::new();
        dbg.watch_word(&mut m, 0x9000).unwrap();
        let stop = dbg.run(&mut m, 10_000).unwrap();
        assert_eq!(
            stop,
            DebugStop::WatchChanged {
                addr: 0x9000,
                old: 0,
                new: 7
            }
        );
    }

    #[test]
    fn watch_and_breakpoint_compose() {
        let src = "movi r1, 0x9000\nmovi r2, 1\nstw [r1], r2\ntarget:\n movi r2, 2\n\
                   stw [r1], r2\nhlt\n";
        let mut m = machine_with(src, 0x100);
        let mut dbg = Debugger::new();
        dbg.watch_word(&mut m, 0x9000).unwrap();
        dbg.add_breakpoint(&mut m, 0x114); // `target`
        let first = dbg.run(&mut m, 10_000).unwrap();
        assert_eq!(
            first,
            DebugStop::WatchChanged {
                addr: 0x9000,
                old: 0,
                new: 1
            }
        );
        let second = dbg.run(&mut m, 10_000).unwrap();
        assert_eq!(second, DebugStop::Breakpoint { addr: 0x114 });
        let third = dbg.run(&mut m, 10_000).unwrap();
        assert_eq!(
            third,
            DebugStop::WatchChanged {
                addr: 0x9000,
                old: 1,
                new: 2
            }
        );
    }

    #[test]
    fn fault_reported_as_stop() {
        let mut m = machine_with("movi r0, 0x7fffff00\nldw r1, [r0]\nhlt\n", 0x100);
        let mut dbg = Debugger::new();
        let stop = dbg.run(&mut m, 10_000).unwrap();
        assert!(matches!(stop, DebugStop::Fault(Fault::Bus { .. })));
    }

    #[test]
    fn budget_exhaustion_reported() {
        let mut m = machine_with("loop:\n jmp loop\n", 0x100);
        let mut dbg = Debugger::new();
        dbg.watch_word(&mut m, 0x9000).unwrap(); // never changes
        let stop = dbg.run(&mut m, 1_000).unwrap();
        assert_eq!(stop, DebugStop::Budget);
    }

    #[test]
    fn remove_breakpoint_releases_the_trap() {
        let mut m = machine_with("movi r0, 1\nmovi r0, 2\nhlt\n", 0x100);
        let mut dbg = Debugger::new();
        dbg.add_breakpoint(&mut m, 0x108);
        dbg.remove_breakpoint(&mut m, 0x108);
        let stop = dbg.run(&mut m, 10_000).unwrap();
        assert_eq!(stop, DebugStop::Budget);
        assert_eq!(m.reg(Reg::R0), 2);
    }
}
