//! The memory-mapped device interface.

use eampu::Region;
use std::any::Any;

/// A memory-mapped peripheral.
///
/// Devices occupy a [`Region`] of the physical address space; the machine
/// routes word-sized loads and stores in that region to [`Device::read`] /
/// [`Device::write`] with the offset from the region start, and polls
/// [`Device::poll_irq`] between instructions so devices can raise
/// interrupts. Because device registers live in the flat address space,
/// EA-MPU rules protect them exactly like memory — TyTAN uses this to give
/// a sensor-monitoring task exclusive access to its sensor.
pub trait Device: Any {
    /// The MMIO region the device occupies.
    fn range(&self) -> Region;

    /// Reads the 32-bit register at `offset` (bytes from region start).
    fn read(&mut self, offset: u32, now: u64) -> u32;

    /// Writes the 32-bit register at `offset`.
    fn write(&mut self, offset: u32, value: u32, now: u64);

    /// Polls for a pending interrupt; returning `Some(vector)` latches the
    /// vector in the interrupt controller.
    fn poll_irq(&mut self, _now: u64) -> Option<u8> {
        None
    }

    /// The earliest cycle at or after `now` at which polling this device
    /// could have an effect (raise an IRQ or change internal poll state),
    /// or `None` if no poll will ever matter until the device is next
    /// accessed or reconfigured.
    ///
    /// The machine's fast run loop uses this to skip per-instruction
    /// polling: it guarantees [`Device::poll_irq`] is called at the first
    /// instruction boundary whose cycle count reaches the returned value,
    /// which is exactly when a per-instruction polling loop would first
    /// observe the event. The conservative default, `Some(now)`, requests a
    /// poll at every boundary and so preserves legacy behaviour for device
    /// implementations that do not override this.
    fn next_event(&self, now: u64) -> Option<u64> {
        Some(now)
    }

    /// Upcast for downcasting to the concrete device type.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for downcasting to the concrete device type.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}
