//! The memory-mapped device interface.

use eampu::Region;
use std::any::Any;

/// A memory-mapped peripheral.
///
/// Devices occupy a [`Region`] of the physical address space; the machine
/// routes word-sized loads and stores in that region to [`Device::read`] /
/// [`Device::write`] with the offset from the region start, and polls
/// [`Device::poll_irq`] between instructions so devices can raise
/// interrupts. Because device registers live in the flat address space,
/// EA-MPU rules protect them exactly like memory — TyTAN uses this to give
/// a sensor-monitoring task exclusive access to its sensor.
pub trait Device: Any {
    /// The MMIO region the device occupies.
    fn range(&self) -> Region;

    /// Reads the 32-bit register at `offset` (bytes from region start).
    fn read(&mut self, offset: u32, now: u64) -> u32;

    /// Writes the 32-bit register at `offset`.
    fn write(&mut self, offset: u32, value: u32, now: u64);

    /// Polls for a pending interrupt; returning `Some(vector)` latches the
    /// vector in the interrupt controller.
    fn poll_irq(&mut self, _now: u64) -> Option<u8> {
        None
    }

    /// Upcast for downcasting to the concrete device type.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for downcasting to the concrete device type.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}
