//! The simulated core: registers, memory, exception engine, execution loop.

use crate::cycles::{CycleModel, FirmwareCosts};
use crate::device::Device;
use eampu::{AccessKind, EaMpu, TransferDecision};
use sp32::{decode, Instr, Reg, EFLAGS_CF, EFLAGS_IF, EFLAGS_SF, EFLAGS_ZF};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::{Arc, OnceLock};
use tytan_trace::{CounterId, EventKind, Layer, Tracer};

// The block translation engine. A child of this module (not a sibling)
// because it is the machine's third run loop and needs the same private
// state the other two use.
#[path = "translate.rs"]
pub(crate) mod translate;

/// Host-side observer of exact guest-cycle attribution.
///
/// The machine reports every clock advance to the attached observer,
/// partitioned by what consumed the cycles: a retired guest instruction,
/// the exception engine dispatching an interrupt, functionally-modelled
/// firmware charging its cost through [`Machine::tick`], or the idle
/// loop of a halted core. The contract is *exactness*: between any two
/// reads of [`Machine::cycles`], the sum of cycles reported through
/// these callbacks equals the clock delta (faults charge nothing, so
/// nothing is reported for them).
///
/// Observers are observation only — implementations must not (and
/// cannot, through this API) advance the clock or change an execution
/// outcome. The cycle-identity differential tests run with an observer
/// attached and assert guest state stays bit-identical.
pub trait CycleObserver: Send + Sync {
    /// `cycles` were charged retiring the guest instruction at `eip`.
    fn instruction(&self, eip: u32, cycles: u64);
    /// `cycles` were charged by the exception engine dispatching
    /// `vector` (hardware context save, if enabled, plus the dispatch
    /// cost).
    fn dispatch(&self, vector: u8, cycles: u64);
    /// `cycles` were charged by host-modelled firmware via
    /// [`Machine::tick`] while `EIP` sat at `eip` (a trap address or
    /// trusted-region entry point).
    fn firmware(&self, eip: u32, cycles: u64);
    /// `cycles` elapsed with the core halted, waiting for an interrupt.
    fn idle(&self, cycles: u64);
}

/// Host-side stamp of one interrupt dispatch, kept for latency
/// measurement (see [`Machine::take_last_dispatch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchStamp {
    /// Clock when the exception engine started the dispatch (before its
    /// cost was charged) — i.e. when the interrupt left the pending set.
    pub begin: u64,
    /// Clock when the handler received control (after the dispatch and
    /// any hardware context-save cost).
    pub end: u64,
    /// The dispatched vector.
    pub vector: u8,
}

/// Construction parameters for a [`Machine`].
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Size of flat RAM starting at address 0.
    pub ram_size: u32,
    /// Number of EA-MPU rule slots (the paper's platform has 18).
    pub mpu_slots: usize,
    /// Per-instruction cycle costs.
    pub cycle_model: CycleModel,
    /// Cycle costs of functionally-modelled firmware services.
    pub firmware_costs: FirmwareCosts,
    /// Hardware-assisted context save: the exception engine itself pushes
    /// and wipes the scratch registers at dispatch (the latency/hardware
    /// trade-off §4 of the paper mentions), at `hw_save_cost` cycles.
    pub hw_context_save: bool,
    /// Cycles the hardware context save costs when enabled.
    pub hw_save_cost: u64,
    /// Which execution engine drives [`Machine::run`]. Engine choice is
    /// model-invariant — every charged cycle and every observable machine
    /// state is bit-identical across engines (the cycle-identity and
    /// three-way lockstep differential tests assert this); the non-default
    /// engines exist for those tests, for debugging, and for throughput.
    pub engine: EngineKind,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            ram_size: 1 << 20,
            mpu_slots: 18,
            cycle_model: CycleModel::default(),
            firmware_costs: FirmwareCosts::default(),
            hw_context_save: false,
            hw_save_cost: 8,
            engine: engine_default(),
        }
    }
}

/// Which run loop [`Machine::run`] uses. All three are cycle- and
/// state-identical; see [`MachineConfig::engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The original per-instruction reference loop: poll every device and
    /// re-check every boundary condition between each instruction, with
    /// all host-side caches (predecode, EA-MPU decision cache) off.
    Legacy,
    /// The event-driven interpreter fast path: predecode cache, EA-MPU
    /// decision cache, batched stepping between boundaries. The default.
    Fast,
    /// The block translation engine: basic blocks discovered at execution
    /// time are compiled to threaded code with pre-decoded operands,
    /// pre-summed cycle costs and pre-resolved EA-MPU decisions, cached
    /// by entry address, invalidated on self-modifying writes and any
    /// MPU/platform reconfiguration. Falls back to [`Machine::step`]
    /// wherever a block cannot be (or is not worth) compiling.
    Translated,
}

/// Resolves the engine choice from environment-variable values: the
/// `TYTAN_EXEC_ENGINE` setting (`legacy`/`fast`/`translated`) wins, with
/// the older boolean `TYTAN_FAST_PATH` (`0`/`false`/`off`/`no` meaning
/// legacy) kept as a deprecated alias. Unset (or unrecognised) values
/// fall through to the default, [`EngineKind::Fast`].
pub fn engine_from_env(exec_engine: Option<&str>, fast_path: Option<&str>) -> EngineKind {
    if let Some(v) = exec_engine {
        return match v.trim() {
            "legacy" => EngineKind::Legacy,
            "translated" => EngineKind::Translated,
            _ => EngineKind::Fast,
        };
    }
    match fast_path {
        Some(v) if matches!(v.trim(), "0" | "false" | "off" | "no") => EngineKind::Legacy,
        _ => EngineKind::Fast,
    }
}

/// Default for [`MachineConfig::engine`], resolved once per process from
/// `TYTAN_EXEC_ENGINE` / `TYTAN_FAST_PATH` (see [`engine_from_env`]). CI
/// runs the whole workspace test suite once per engine so every loop
/// stays exercised end-to-end; the result is cached for the process
/// because a test binary must not see the default flip mid-run.
fn engine_default() -> EngineKind {
    static ENGINE: OnceLock<EngineKind> = OnceLock::new();
    *ENGINE.get_or_init(|| {
        let exec = std::env::var("TYTAN_EXEC_ENGINE").ok();
        let fast = std::env::var("TYTAN_FAST_PATH").ok();
        engine_from_env(exec.as_deref(), fast.as_deref())
    })
}

/// A hardware fault raised during execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The EA-MPU denied a data access.
    MpuAccess {
        /// Instruction pointer of the offending access.
        eip: u32,
        /// The address that was accessed.
        addr: u32,
        /// Whether it was a read or a write.
        kind: AccessKind,
    },
    /// The EA-MPU denied a control transfer into a protected region.
    MpuTransfer {
        /// Where control came from.
        from: u32,
        /// The denied target.
        to: u32,
        /// The region's dedicated entry point.
        expected_entry: u32,
    },
    /// The word at `eip` does not decode to an instruction.
    Decode {
        /// The faulting instruction pointer.
        eip: u32,
    },
    /// An access touched an address outside RAM and all devices.
    Bus {
        /// The faulting address.
        addr: u32,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::MpuAccess { eip, addr, kind } => {
                write!(f, "EA-MPU denied {kind:?} of {addr:#010x} by code at {eip:#010x}")
            }
            Fault::MpuTransfer { from, to, expected_entry } => write!(
                f,
                "EA-MPU denied transfer {from:#010x} -> {to:#010x} (entry is {expected_entry:#010x})"
            ),
            Fault::Decode { eip } => write!(f, "undecodable instruction at {eip:#010x}"),
            Fault::Bus { addr } => write!(f, "bus error at {addr:#010x}"),
        }
    }
}

impl std::error::Error for Fault {}

/// Why [`Machine::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// The instruction pointer reached a registered firmware trap address;
    /// the platform services the trap and resumes.
    FirmwareTrap {
        /// The trap address (== current `EIP`).
        addr: u32,
    },
    /// The core is halted (`HLT` with no deliverable interrupt) and the
    /// cycle budget ran out while waiting.
    IdleBudgetExhausted,
    /// The cycle budget ran out mid-execution.
    BudgetExhausted,
    /// A hardware fault stopped execution; `EIP` still points at the
    /// faulting instruction.
    Fault(Fault),
}

/// Execution statistics, cumulative since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Guest instructions retired.
    pub instructions: u64,
    /// Interrupts delivered (hardware and software).
    pub interrupts: u64,
    /// Faults raised.
    pub faults: u64,
}

/// Everything architecturally observable about a machine at an
/// instruction boundary, captured by [`Machine::snapshot`].
///
/// Two machines configured identically and driven through the same
/// inputs must produce equal snapshots at every boundary regardless of
/// which run loop (fast path or legacy) drives them — this is the state
/// half of the differential-testing oracle (RAM is compared separately
/// via [`Machine::ram_digest`], which is too expensive to hash per
/// step).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineSnapshot {
    /// General-purpose registers `R0..R7`.
    pub regs: [u32; 8],
    /// The instruction pointer.
    pub eip: u32,
    /// The flags register.
    pub eflags: u32,
    /// Whether the core is halted waiting for an interrupt.
    pub halted: bool,
    /// The cycle counter.
    pub cycles: u64,
    /// Cumulative execution statistics.
    pub stats: MachineStats,
    /// Pending (raised, undelivered) IRQ vectors, ascending.
    pub pending_irqs: Vec<u8>,
    /// Whether the EA-MPU is enforcing.
    pub mpu_enabled: bool,
    /// The IDT base register.
    pub idt_base: u32,
}

/// The simulated Siskiyou-Peak-like core.
///
/// A `Machine` owns flat RAM, the MMIO device list, the EA-MPU, the IDT
/// base register, and the cycle counter. Guest code executes through
/// [`Machine::run`]; trusted firmware (the RTOS kernel and TyTAN's trusted
/// components) runs as host code between [`Event::FirmwareTrap`]s, touching
/// machine state through the accessor API and charging cycles with
/// [`Machine::tick`].
///
/// # Examples
///
/// ```
/// use sp32::asm::assemble;
/// use sp_emu::{Event, Machine, MachineConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut machine = Machine::new(MachineConfig::default());
/// let program = assemble("movi r0, 6\nmovi r1, 7\nmul r0, r1\nhlt\n", 0x1000)?;
/// machine.load_image(0x1000, &program.bytes)?;
/// machine.set_eip(0x1000);
/// let event = machine.run(1_000);
/// assert_eq!(event, Event::IdleBudgetExhausted);
/// assert_eq!(machine.reg(sp32::Reg::R0), 42);
/// # Ok(())
/// # }
/// ```
pub struct Machine {
    regs: [u32; 8],
    eip: u32,
    eflags: u32,
    halted: bool,
    ram: Vec<u8>,
    devices: Vec<Box<dyn Device>>,
    mpu: EaMpu,
    mpu_enabled: bool,
    idt_base: u32,
    pending_irqs: BTreeSet<u8>,
    /// Sorted firmware-trap addresses; `trap_filter` is a 64-bit Bloom-style
    /// guard over `(addr >> 2) & 63` so the hot no-trap case is one AND.
    firmware_traps: Vec<u32>,
    trap_filter: u64,
    int_origin: Option<u32>,
    resume_latches: BTreeSet<u32>,
    hw_context_save: bool,
    hw_save_cost: u64,
    clock: u64,
    cycle_model: CycleModel,
    firmware_costs: FirmwareCosts,
    stats: MachineStats,
    engine: EngineKind,
    /// Whether the host-side caches (predecode, EA-MPU decision cache)
    /// are active: true for every engine except [`EngineKind::Legacy`],
    /// which must exercise the pure uncached pipeline.
    fast_caches: bool,
    /// Whether the predecode cache specifically is maintained: only the
    /// fast interpreter, whose hot loop decodes through it. The block
    /// translator pre-decodes into its own cache and reaches `step` only
    /// on cold fallback paths, so maintaining predecode tags there would
    /// tax every RAM write for nothing.
    predecode_on: bool,
    /// Monotonic epoch of the firmware-trap set; part of the translation
    /// engine's revalidation snapshot (compiled blocks stop before trap
    /// addresses, so the set's shape is baked into them).
    trap_gen: u64,
    /// Translation-engine state: the block cache, the code-page bitmap
    /// and the dirty-range queue (see `translate`). Empty unless the
    /// engine is [`EngineKind::Translated`].
    tcache: translate::TransState,
    /// Direct-mapped predecode cache indexed by `(eip >> 2) % size`; an
    /// entry is valid when its `tag` equals the word-aligned EIP it was
    /// filled for. RAM writes invalidate overlapping entries.
    predecode: Vec<Predecoded>,
    /// Earliest cycle at which any device needs polling (`u64::MAX` =
    /// never); recomputed when `device_deadline_dirty` is set.
    device_deadline: u64,
    device_deadline_dirty: bool,
    /// Host-side observability, attached by [`Machine::attach_tracer`].
    /// `None` keeps the hot paths behind a single branch; attached tracing
    /// never calls [`Machine::tick`] and never changes an outcome, so guest
    /// cycles are bit-identical with or without it.
    trace: Option<EmuTrace>,
    /// Exact cycle-attribution observer, attached by
    /// [`Machine::attach_cycle_observer`]. Same neutrality contract as
    /// `trace`: observation only, never a cycle or a decision.
    observer: Option<Arc<dyn CycleObserver>>,
    /// Host-only latency bookkeeping: the last interrupt dispatch and
    /// the clock at the last retired `IRET`. Maintained unconditionally
    /// (it is a handful of host stores) and never read by execution.
    last_dispatch: Option<DispatchStamp>,
    last_iret: Option<u64>,
    /// Control-flow monitor for attestation, attached by
    /// [`Machine::attach_cf_monitor`]. Same neutrality contract as
    /// `trace` and `observer`: records taken edges, never a cycle.
    cf_monitor: Option<crate::cfa::CfMonitor>,
}

/// Counter handles for the emulator layer, resolved once at attach time.
struct EmuTrace {
    tracer: Tracer,
    /// Instruction-class counters, indexed by [`instr_class`]:
    /// alu / mem / branch / system.
    class: [CounterId; 4],
    predecode_hit: CounterId,
    predecode_miss: CounterId,
    block_compile: CounterId,
    block_hit: CounterId,
    block_invalidate_smc: CounterId,
    block_invalidate_mpu: CounterId,
    mmio_read: CounterId,
    mmio_write: CounterId,
    faults: CounterId,
    irq_entry: CounterId,
    irq_exit: CounterId,
    irq_truncated: CounterId,
    /// Vectors of in-flight interrupts, so the `Exit` event of a nested IRQ
    /// lands on the same Chrome track as its `Enter`.
    irq_stack: Vec<u8>,
}

/// Classifies an instruction for the per-class retirement counters.
fn instr_class(instr: &Instr) -> usize {
    match instr {
        Instr::Ldw { .. }
        | Instr::Ldb { .. }
        | Instr::Stw { .. }
        | Instr::Stb { .. }
        | Instr::Push { .. }
        | Instr::Pop { .. } => 1,
        Instr::Jmp { .. }
        | Instr::Jcc { .. }
        | Instr::JmpReg { .. }
        | Instr::Call { .. }
        | Instr::Ret
        | Instr::Iret => 2,
        Instr::Nop | Instr::Hlt | Instr::Int { .. } | Instr::Sti | Instr::Cli => 3,
        _ => 0,
    }
}

/// One predecode-cache entry (see [`Machine::predecode`]).
///
/// Besides the decoded instruction, the entry memoises both possible cycle
/// costs (branch taken / not taken) so a cache hit skips the cost-model
/// match as well as the decode — the values are exactly what
/// [`CycleModel::cost`] returns for this instruction.
#[derive(Clone, Copy)]
struct Predecoded {
    tag: u32,
    instr: Instr,
    cost_not_taken: u64,
    cost_taken: u64,
}

/// Entries in the predecode cache; covers 16 KiB of code, power of two.
const PREDECODE_ENTRIES: usize = 4096;

/// Tag meaning "empty". Unreachable for real entries: only instructions
/// whose word-aligned EIP plus size fits in RAM are cached, so a valid tag
/// is always below the RAM size.
const PREDECODE_EMPTY: u32 = u32::MAX;

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("eip", &format_args!("{:#010x}", self.eip))
            .field("regs", &self.regs)
            .field("cycles", &self.clock)
            .field("halted", &self.halted)
            .field("devices", &self.devices.len())
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Builds a machine from `config` with zeroed RAM and registers.
    pub fn new(config: MachineConfig) -> Self {
        let fast_caches = config.engine != EngineKind::Legacy;
        let predecode_on = config.engine == EngineKind::Fast;
        let mut mpu = EaMpu::new(config.mpu_slots);
        // On the legacy engine the MPU must take its pure scan path too,
        // so differential tests compare against the fully-legacy pipeline.
        mpu.set_decision_cache_enabled(fast_caches);
        Machine {
            regs: [0; 8],
            eip: 0,
            eflags: 0,
            halted: false,
            ram: vec![0; config.ram_size as usize],
            devices: Vec::new(),
            mpu,
            mpu_enabled: true,
            idt_base: 0,
            pending_irqs: BTreeSet::new(),
            firmware_traps: Vec::new(),
            trap_filter: 0,
            int_origin: None,
            resume_latches: BTreeSet::new(),
            hw_context_save: config.hw_context_save,
            hw_save_cost: config.hw_save_cost,
            clock: 0,
            cycle_model: config.cycle_model,
            firmware_costs: config.firmware_costs,
            stats: MachineStats::default(),
            engine: config.engine,
            fast_caches,
            predecode_on,
            trap_gen: 0,
            tcache: translate::TransState::new(config.ram_size),
            predecode: vec![
                Predecoded {
                    tag: PREDECODE_EMPTY,
                    instr: Instr::Nop,
                    cost_not_taken: 0,
                    cost_taken: 0,
                };
                if predecode_on { PREDECODE_ENTRIES } else { 0 }
            ],
            device_deadline: 0,
            device_deadline_dirty: true,
            trace: None,
            observer: None,
            last_dispatch: None,
            last_iret: None,
            cf_monitor: None,
        }
    }

    /// Attaches host-side observability to this machine and its EA-MPU:
    /// instruction-class, predecode-cache, MMIO, fault and IRQ counters are
    /// registered in `tracer`'s registry, and IRQ entry/exit plus faults are
    /// emitted as cycle-stamped events.
    ///
    /// Tracing is an observer only — it never advances the clock and never
    /// changes an execution outcome. The differential identity suites run
    /// with a recorder attached to prove it.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.mpu.attach_tracer(&tracer);
        // Compiled blocks specialise on whether checks are observed
        // (tracer attached / decision log on); a tracer attach is a
        // host-side reconfiguration, so drop them.
        self.tcache.flush();
        let c = tracer.counters().clone();
        self.trace = Some(EmuTrace {
            class: [
                c.register("emu_instr_alu"),
                c.register("emu_instr_mem"),
                c.register("emu_instr_branch"),
                c.register("emu_instr_system"),
            ],
            predecode_hit: c.register("emu_predecode_hit"),
            predecode_miss: c.register("emu_predecode_miss"),
            block_compile: c.register("emu_block_compile"),
            block_hit: c.register("emu_block_hit"),
            block_invalidate_smc: c.register("emu_block_invalidate_smc"),
            block_invalidate_mpu: c.register("emu_block_invalidate_mpu"),
            mmio_read: c.register("emu_mmio_read"),
            mmio_write: c.register("emu_mmio_write"),
            faults: c.register("emu_fault"),
            irq_entry: c.register("emu_irq_entry"),
            irq_exit: c.register("emu_irq_exit"),
            irq_truncated: c.register("emu_irq_truncated"),
            irq_stack: Vec::new(),
            tracer,
        });
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.trace.as_ref().map(|t| &t.tracer)
    }

    /// Attaches an exact cycle-attribution observer (see
    /// [`CycleObserver`]). Like the tracer, the observer is host-side
    /// only: it never advances the clock and never changes an outcome.
    pub fn attach_cycle_observer(&mut self, observer: Arc<dyn CycleObserver>) {
        self.observer = Some(observer);
    }

    /// Attaches a control-flow monitor over the absolute code region
    /// `region`, replacing any previous monitor. From here on, every
    /// taken intra-region edge is folded into the monitor's hash chain
    /// (see [`crate::cfa`]).
    ///
    /// Monitoring is an observer only: it never advances the clock and
    /// never changes an outcome, so the monitored run's cycles and
    /// architectural state are bit-identical with or without it. On the
    /// translated engine the block cache is bypassed while a monitor is
    /// attached — every instruction retires through the interpreter's
    /// step path, where edges are observed — which changes host speed
    /// but no guest-visible observable.
    pub fn attach_cf_monitor(&mut self, region: eampu::Region) {
        // Compiled blocks retire whole blocks without surfacing their
        // interior edges; drop them so execution funnels through `step`.
        self.tcache.flush();
        self.cf_monitor = Some(crate::cfa::CfMonitor::new(region));
    }

    /// The attached control-flow monitor, if any.
    pub fn cf_monitor(&self) -> Option<&crate::cfa::CfMonitor> {
        self.cf_monitor.as_ref()
    }

    /// Detaches and returns the control-flow monitor, if any. The
    /// translated engine resumes block caching on the next run.
    pub fn take_cf_monitor(&mut self) -> Option<crate::cfa::CfMonitor> {
        self.cf_monitor.take()
    }

    /// Closes IRQ spans still open at shutdown. A machine that halts
    /// mid-handler has emitted `Enter("irq")` events with no matching
    /// exits, which both unbalances the `emu_irq_entry`/`emu_irq_exit`
    /// counters and leaves unbounded spans in the Chrome export. Flushing
    /// emits, per open vector (innermost first), a `Mark("irq_truncated")`
    /// plus the matching `Exit("irq")` at the current cycle, and counts
    /// each into `emu_irq_truncated` — so at shutdown
    /// `emu_irq_entry == emu_irq_exit + emu_irq_truncated` always holds.
    /// Host-side only: no clock or machine-state change. Idempotent.
    pub fn flush_trace(&mut self) {
        let clock = self.clock;
        if let Some(t) = &mut self.trace {
            while let Some(vector) = t.irq_stack.pop() {
                t.tracer.counters().incr(t.irq_truncated);
                t.tracer.emit(
                    Layer::Emu,
                    vector as u32,
                    clock,
                    EventKind::Mark("irq_truncated"),
                );
                t.tracer
                    .emit(Layer::Emu, vector as u32, clock, EventKind::Exit("irq"));
            }
        }
    }

    /// Takes the stamp of the most recent interrupt dispatch (clock
    /// before and after the exception engine's charge, plus the vector).
    /// Latency measurement uses this to anchor IRQ-entry and
    /// context-save durations; taking it clears it, so each dispatch is
    /// measured at most once.
    pub fn take_last_dispatch(&mut self) -> Option<DispatchStamp> {
        self.last_dispatch.take()
    }

    /// Takes the clock at the most recent retired `IRET` (after its
    /// cost); the context-restore anchor, cleared on read like
    /// [`Machine::take_last_dispatch`].
    pub fn take_last_iret(&mut self) -> Option<u64> {
        self.last_iret.take()
    }

    fn note_fault(&self) {
        if let Some(t) = &self.trace {
            t.tracer.counters().incr(t.faults);
            t.tracer
                .emit(Layer::Emu, 0, self.clock, EventKind::Mark("fault"));
        }
    }

    // ----- clock -----

    /// The cycle counter.
    pub fn cycles(&self) -> u64 {
        self.clock
    }

    /// Advances the clock by `cycles`; used by firmware services to charge
    /// their modelled cost. Attribution: the cycles belong to the firmware
    /// servicing the trap `EIP` currently points at.
    pub fn tick(&mut self, cycles: u64) {
        self.clock += cycles;
        if let Some(o) = &self.observer {
            o.firmware(self.eip, cycles);
        }
    }

    /// The firmware cost model configured for this machine.
    pub fn firmware_costs(&self) -> FirmwareCosts {
        self.firmware_costs
    }

    /// The per-instruction cycle model.
    pub fn cycle_model(&self) -> CycleModel {
        self.cycle_model
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> MachineStats {
        self.stats
    }

    /// Captures every architecturally observable register and counter at
    /// the current instruction boundary (see [`MachineSnapshot`]).
    ///
    /// Used by differential harnesses to compare two machines in
    /// lockstep; deliberately excludes host-side caches (predecode,
    /// EA-MPU decision cache) because those must never be observable.
    pub fn snapshot(&self) -> MachineSnapshot {
        MachineSnapshot {
            regs: self.regs,
            eip: self.eip,
            eflags: self.eflags,
            halted: self.halted,
            cycles: self.clock,
            stats: self.stats,
            pending_irqs: self.pending_irqs.iter().copied().collect(),
            mpu_enabled: self.mpu_enabled,
            idt_base: self.idt_base,
        }
    }

    /// FNV-1a digest of all of RAM.
    ///
    /// The cheap whole-memory oracle for differential runs: equal RAM
    /// contents produce equal digests, and a single flipped bit changes
    /// the digest with overwhelming probability. Not cryptographic.
    pub fn ram_digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &byte in &self.ram {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    // ----- registers -----

    /// Reads a general-purpose register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a general-purpose register.
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        self.regs[r.index()] = value;
    }

    /// Snapshot of all general-purpose registers.
    pub fn regs(&self) -> [u32; 8] {
        self.regs
    }

    /// Replaces all general-purpose registers.
    pub fn set_regs(&mut self, regs: [u32; 8]) {
        self.regs = regs;
    }

    /// The instruction pointer.
    pub fn eip(&self) -> u32 {
        self.eip
    }

    /// Sets the instruction pointer (used by firmware when redirecting
    /// control, e.g. an Int Mux branching to a handler). Clears the halted
    /// state.
    pub fn set_eip(&mut self, eip: u32) {
        self.eip = eip;
        self.halted = false;
    }

    /// The flags register.
    pub fn eflags(&self) -> u32 {
        self.eflags
    }

    /// Replaces the flags register.
    pub fn set_eflags(&mut self, eflags: u32) {
        self.eflags = eflags;
    }

    /// Whether interrupts are enabled (`IF` set).
    pub fn interrupts_enabled(&self) -> bool {
        self.eflags & EFLAGS_IF != 0
    }

    /// Whether the core is halted waiting for an interrupt.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Whether the hardware-assisted context save is enabled.
    pub fn hw_context_save(&self) -> bool {
        self.hw_context_save
    }

    // ----- physical memory and MMIO (hardware-level, no MPU) -----

    fn device_index_at(&self, addr: u32) -> Option<usize> {
        self.devices.iter().position(|d| d.range().contains(addr))
    }

    /// Drops predecode-cache entries for any instruction overlapping the
    /// written range `[addr, addr + len)`. An instruction starting at
    /// word-aligned `W` spans `[W, W + 8)` at most, so candidate start
    /// words run from one word below the range to its last contained word.
    fn invalidate_predecode(&mut self, addr: u32, len: usize) {
        if !self.fast_caches {
            return;
        }
        // A zero-length write touches no bytes, so there is nothing to
        // invalidate — and the `len - 1` last-byte computation below would
        // underflow (wrapping to a full-address-space sweep in release
        // builds). Guard it explicitly rather than relying on callers.
        let Some(last_offset) = (len as u32).checked_sub(1) else {
            return;
        };
        // Self-modifying-code tracking for the translation engine: a write
        // into a page spanned by a compiled block queues an invalidation
        // range, drained at the next batch boundary. No-op (an all-zero
        // page-bitmap probe) unless translated blocks exist.
        self.tcache.note_code_write(addr, last_offset);
        if !self.predecode_on {
            return;
        }
        if len >= PREDECODE_ENTRIES * 4 {
            // The write blankets the whole cache's index space.
            for entry in &mut self.predecode {
                entry.tag = PREDECODE_EMPTY;
            }
            return;
        }
        let first = (addr & !3).saturating_sub(4);
        let last = addr.saturating_add(last_offset) & !3;
        let mut word = first;
        loop {
            let idx = (word >> 2) as usize & (PREDECODE_ENTRIES - 1);
            if self.predecode[idx].tag == word {
                self.predecode[idx].tag = PREDECODE_EMPTY;
            }
            if word >= last {
                break;
            }
            word += 4;
        }
    }

    /// Reads a 32-bit little-endian word, bypassing the EA-MPU (hardware
    /// path, loaders, debuggers).
    ///
    /// # Errors
    ///
    /// Returns [`Fault::Bus`] outside RAM and devices.
    pub fn read_word(&mut self, addr: u32) -> Result<u32, Fault> {
        if (addr as usize) + 4 <= self.ram.len() {
            let i = addr as usize;
            return Ok(u32::from_le_bytes(
                self.ram[i..i + 4].try_into().expect("4 bytes"),
            ));
        }
        if let Some(dev) = self.device_index_at(addr) {
            let base = self.devices[dev].range().start();
            let now = self.clock;
            // Any device access may change its poll schedule.
            self.device_deadline_dirty = true;
            if let Some(t) = &self.trace {
                t.tracer.counters().incr(t.mmio_read);
            }
            return Ok(self.devices[dev].read(addr - base, now));
        }
        Err(Fault::Bus { addr })
    }

    /// Writes a 32-bit little-endian word, bypassing the EA-MPU.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::Bus`] outside RAM and devices.
    pub fn write_word(&mut self, addr: u32, value: u32) -> Result<(), Fault> {
        if (addr as usize) + 4 <= self.ram.len() {
            let i = addr as usize;
            self.ram[i..i + 4].copy_from_slice(&value.to_le_bytes());
            self.invalidate_predecode(addr, 4);
            return Ok(());
        }
        if let Some(dev) = self.device_index_at(addr) {
            let base = self.devices[dev].range().start();
            let now = self.clock;
            self.device_deadline_dirty = true;
            if let Some(t) = &self.trace {
                t.tracer.counters().incr(t.mmio_write);
            }
            self.devices[dev].write(addr - base, value, now);
            return Ok(());
        }
        Err(Fault::Bus { addr })
    }

    /// Reads one byte, bypassing the EA-MPU.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::Bus`] outside RAM (byte access to MMIO is not
    /// supported by the bus).
    pub fn read_byte(&mut self, addr: u32) -> Result<u8, Fault> {
        self.ram
            .get(addr as usize)
            .copied()
            .ok_or(Fault::Bus { addr })
    }

    /// Writes one byte, bypassing the EA-MPU.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::Bus`] outside RAM.
    pub fn write_byte(&mut self, addr: u32, value: u8) -> Result<(), Fault> {
        match self.ram.get_mut(addr as usize) {
            Some(slot) => {
                *slot = value;
                self.invalidate_predecode(addr, 1);
                Ok(())
            }
            None => Err(Fault::Bus { addr }),
        }
    }

    /// Copies `len` bytes out of RAM.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::Bus`] if the range leaves RAM.
    pub fn read_bytes(&self, addr: u32, len: u32) -> Result<Vec<u8>, Fault> {
        let start = addr as usize;
        let end = start.checked_add(len as usize).ok_or(Fault::Bus { addr })?;
        self.ram
            .get(start..end)
            .map(|s| s.to_vec())
            .ok_or(Fault::Bus { addr })
    }

    /// Copies bytes into RAM (loader path).
    ///
    /// # Errors
    ///
    /// Returns [`Fault::Bus`] if the range leaves RAM.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), Fault> {
        let start = addr as usize;
        let end = start.checked_add(bytes.len()).ok_or(Fault::Bus { addr })?;
        match self.ram.get_mut(start..end) {
            Some(slice) => {
                slice.copy_from_slice(bytes);
                self.invalidate_predecode(addr, bytes.len());
                Ok(())
            }
            None => Err(Fault::Bus { addr }),
        }
    }

    /// Alias of [`Machine::write_bytes`] conveying loader intent.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::Bus`] if the range leaves RAM.
    pub fn load_image(&mut self, addr: u32, bytes: &[u8]) -> Result<(), Fault> {
        self.write_bytes(addr, bytes)
    }

    /// RAM size in bytes.
    pub fn ram_size(&self) -> u32 {
        self.ram.len() as u32
    }

    // ----- MPU-checked access on behalf of a software component -----

    fn check(&self, actor_eip: u32, addr: u32, kind: AccessKind) -> Result<(), Fault> {
        if self.mpu_enabled && !self.mpu.check_access(actor_eip, addr, kind).is_allowed() {
            return Err(Fault::MpuAccess {
                eip: actor_eip,
                addr,
                kind,
            });
        }
        Ok(())
    }

    /// Reads a word as if executed by code at `actor_eip`, enforcing the
    /// EA-MPU. Firmware components use this so their accesses obey the same
    /// rules as guest code.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::MpuAccess`] on denial or [`Fault::Bus`] off-bus.
    pub fn checked_read_word(&mut self, actor_eip: u32, addr: u32) -> Result<u32, Fault> {
        self.check(actor_eip, addr, AccessKind::Read)?;
        self.read_word(addr)
    }

    /// Writes a word as if executed by code at `actor_eip`, enforcing the
    /// EA-MPU.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::MpuAccess`] on denial or [`Fault::Bus`] off-bus.
    pub fn checked_write_word(
        &mut self,
        actor_eip: u32,
        addr: u32,
        value: u32,
    ) -> Result<(), Fault> {
        self.check(actor_eip, addr, AccessKind::Write)?;
        self.write_word(addr, value)
    }

    // ----- EA-MPU -----

    /// The EA-MPU.
    pub fn mpu(&self) -> &EaMpu {
        &self.mpu
    }

    /// Mutable access to the EA-MPU (the EA-MPU driver's privilege).
    pub fn mpu_mut(&mut self) -> &mut EaMpu {
        &mut self.mpu
    }

    /// Enables or disables EA-MPU enforcement (disabled models the baseline
    /// unmodified-FreeRTOS platform of the paper's comparison rows).
    pub fn set_mpu_enabled(&mut self, enabled: bool) {
        self.mpu_enabled = enabled;
        self.mpu.invalidate_decision_cache();
    }

    /// Whether EA-MPU enforcement is active.
    pub fn mpu_enabled(&self) -> bool {
        self.mpu_enabled
    }

    // ----- interrupts -----

    /// Sets the IDT base register. The register is write-once in hardware
    /// (§4: "the register pointing to the IDT is static"); subsequent calls
    /// are ignored once a nonzero base is set.
    pub fn set_idt_base(&mut self, base: u32) {
        if self.idt_base == 0 {
            self.idt_base = base;
        }
    }

    /// The IDT base register.
    pub fn idt_base(&self) -> u32 {
        self.idt_base
    }

    /// Writes IDT entry `vector` (a handler address) into memory.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::Bus`] if the IDT slot is off-bus.
    pub fn set_idt_entry(&mut self, vector: u8, handler: u32) -> Result<(), Fault> {
        let addr = self.idt_slot_addr(vector)?;
        self.write_word(addr, handler)
    }

    /// Reads IDT entry `vector`.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::Bus`] if the IDT slot is off-bus.
    pub fn idt_entry(&mut self, vector: u8) -> Result<u32, Fault> {
        let addr = self.idt_slot_addr(vector)?;
        self.read_word(addr)
    }

    /// The address of IDT slot `vector`; [`Fault::Bus`] if the sum wraps
    /// the address space (an IDT base near the top would otherwise alias
    /// low memory).
    fn idt_slot_addr(&self, vector: u8) -> Result<u32, Fault> {
        self.idt_base
            .checked_add(4 * vector as u32)
            .ok_or(Fault::Bus {
                addr: self.idt_base,
            })
    }

    /// Latches an external interrupt request.
    pub fn raise_irq(&mut self, vector: u8) {
        self.pending_irqs.insert(vector);
    }

    /// Whether any interrupt is latched.
    pub fn irq_pending(&self) -> bool {
        !self.pending_irqs.is_empty()
    }

    /// The `EIP` captured by the exception engine at the last dispatch: for
    /// `INT` the address of the `INT` instruction itself (the "origin of
    /// the interrupt" the IPC proxy reads, §4), for hardware interrupts the
    /// preempted instruction pointer.
    pub fn int_origin(&self) -> Option<u32> {
        self.int_origin
    }

    /// Arms a resume latch for `addr`, authorising one IRET to that
    /// address as if the exception engine had interrupted there (used by
    /// trusted firmware that synthesises an interrupt frame, e.g. the
    /// suspend path).
    pub fn arm_resume_latch(&mut self, addr: u32) {
        self.resume_latches.insert(addr);
    }

    /// Drops any armed resume latches whose target lies in `region`
    /// (called when a task is unloaded so stale latches cannot authorise
    /// returns into reused memory).
    pub fn clear_resume_latches_in(&mut self, region: eampu::Region) {
        self.resume_latches.retain(|&addr| !region.contains(addr));
    }

    /// Registers `addr` as a firmware trap: when `EIP` reaches it,
    /// [`Machine::run`] returns [`Event::FirmwareTrap`].
    pub fn add_firmware_trap(&mut self, addr: u32) {
        if let Err(pos) = self.firmware_traps.binary_search(&addr) {
            self.firmware_traps.insert(pos, addr);
        }
        self.trap_filter |= Self::trap_filter_bit(addr);
        // Compiled blocks stop before trap addresses, so the trap set's
        // shape is compile-time state for the translation engine.
        self.trap_gen += 1;
    }

    /// Unregisters a firmware trap address.
    pub fn remove_firmware_trap(&mut self, addr: u32) {
        self.trap_gen += 1;
        if let Ok(pos) = self.firmware_traps.binary_search(&addr) {
            self.firmware_traps.remove(pos);
            // Rebuild the filter; removals are rare (debugger, unload).
            self.trap_filter = self
                .firmware_traps
                .iter()
                .fold(0, |acc, &a| acc | Self::trap_filter_bit(a));
        }
    }

    fn trap_filter_bit(addr: u32) -> u64 {
        1u64 << ((addr >> 2) & 63)
    }

    /// Exact membership test for the trap set, guarded so the common
    /// no-trap case costs one AND plus a branch.
    fn trap_hit(&self, addr: u32) -> bool {
        self.trap_filter & Self::trap_filter_bit(addr) != 0
            && self.firmware_traps.binary_search(&addr).is_ok()
    }

    /// Pushes a word on the current stack (hardware exception-engine path,
    /// not MPU-checked).
    ///
    /// # Errors
    ///
    /// Returns [`Fault::Bus`] on stack underflow past the bus.
    pub fn push_word(&mut self, value: u32) -> Result<(), Fault> {
        let sp = self.regs[Reg::SP.index()].wrapping_sub(4);
        self.write_word(sp, value)?;
        self.regs[Reg::SP.index()] = sp;
        Ok(())
    }

    /// Pops a word from the current stack (hardware path, not MPU-checked).
    ///
    /// # Errors
    ///
    /// Returns [`Fault::Bus`] if the stack slot is off-bus.
    pub fn pop_word(&mut self) -> Result<u32, Fault> {
        let sp = self.regs[Reg::SP.index()];
        let value = self.read_word(sp)?;
        self.regs[Reg::SP.index()] = sp.wrapping_add(4);
        Ok(value)
    }

    /// Dispatches an interrupt through the IDT: the exception engine pushes
    /// `EFLAGS` and `EIP` onto the interrupted task's stack, clears `IF`,
    /// and vectors to the handler (§4). `origin` is recorded as the
    /// interrupt origin.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::Bus`] if the stack or IDT access fails.
    pub fn dispatch_interrupt(&mut self, vector: u8, origin: u32) -> Result<(), Fault> {
        let begin = self.clock;
        let handler = self.idt_entry(vector)?;
        self.push_word(self.eflags)?;
        self.push_word(self.eip)?;
        self.resume_latches.insert(self.eip);
        if self.hw_context_save {
            // Hardware-assisted save (§4's alternative): the exception
            // engine stores and wipes the scratch registers in parallel,
            // producing the same frame layout as the Int Mux stub.
            for i in 0..=6usize {
                let value = self.regs[i];
                self.push_word(value)?;
                if i > 0 {
                    self.regs[i] = 0;
                }
            }
            self.clock += self.hw_save_cost;
        }
        self.eflags &= !EFLAGS_IF;
        self.eip = handler;
        self.int_origin = Some(origin);
        self.halted = false;
        self.clock += self.cycle_model.int_dispatch;
        self.stats.interrupts += 1;
        let clock = self.clock;
        self.last_dispatch = Some(DispatchStamp {
            begin,
            end: clock,
            vector,
        });
        if let Some(o) = &self.observer {
            o.dispatch(vector, clock - begin);
        }
        if let Some(t) = &mut self.trace {
            t.tracer.counters().incr(t.irq_entry);
            t.irq_stack.push(vector);
            t.tracer
                .emit(Layer::Emu, vector as u32, clock, EventKind::Enter("irq"));
        }
        Ok(())
    }

    // ----- devices -----

    /// Attaches a device, returning its handle (index).
    pub fn add_device(&mut self, device: Box<dyn Device>) -> usize {
        self.device_deadline_dirty = true;
        self.devices.push(device);
        self.devices.len() - 1
    }

    /// Borrows an attached device downcast to its concrete type.
    pub fn device<T: Device + 'static>(&self, handle: usize) -> Option<&T> {
        self.devices.get(handle)?.as_any().downcast_ref::<T>()
    }

    /// Mutably borrows an attached device downcast to its concrete type.
    pub fn device_mut<T: Device + 'static>(&mut self, handle: usize) -> Option<&mut T> {
        // The caller may reconfigure the device (e.g. re-program a timer).
        self.device_deadline_dirty = true;
        self.devices
            .get_mut(handle)?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    fn poll_devices(&mut self) {
        let now = self.clock;
        for dev in &mut self.devices {
            if let Some(vector) = dev.poll_irq(now) {
                self.pending_irqs.insert(vector);
            }
        }
        // Polling consumes events (a fired timer re-arms itself), so the
        // cached deadline must be derived anew.
        self.device_deadline_dirty = true;
    }

    /// Refreshes the cached earliest cycle at which any device could need
    /// polling. Events already due are clamped to `now`.
    fn recompute_device_deadline(&mut self) {
        let now = self.clock;
        let mut deadline = u64::MAX;
        for dev in &self.devices {
            if let Some(at) = dev.next_event(now) {
                deadline = deadline.min(at.max(now));
            }
        }
        self.device_deadline = deadline;
        self.device_deadline_dirty = false;
    }

    // ----- execution -----

    fn set_zs_flags(&mut self, value: u32) {
        self.eflags &= !(EFLAGS_ZF | EFLAGS_SF);
        if value == 0 {
            self.eflags |= EFLAGS_ZF;
        }
        if (value as i32) < 0 {
            self.eflags |= EFLAGS_SF;
        }
    }

    fn set_arith_flags(&mut self, result: u32, carry: bool) {
        self.set_zs_flags(result);
        self.eflags &= !EFLAGS_CF;
        if carry {
            self.eflags |= EFLAGS_CF;
        }
    }

    fn guest_read(&mut self, addr: u32, width: u8) -> Result<u32, Fault> {
        self.check(self.eip, addr, AccessKind::Read)?;
        match width {
            1 => self.read_byte(addr).map(u32::from),
            _ => self.read_word(addr),
        }
    }

    fn guest_write(&mut self, addr: u32, value: u32, width: u8) -> Result<(), Fault> {
        self.check(self.eip, addr, AccessKind::Write)?;
        match width {
            1 => self.write_byte(addr, value as u8),
            _ => self.write_word(addr, value),
        }
    }

    fn check_transfer(&self, from: u32, to: u32) -> Result<(), Fault> {
        if !self.mpu_enabled {
            return Ok(());
        }
        match self.mpu.check_transfer(from, to) {
            TransferDecision::DeniedMidRegion { expected_entry } => Err(Fault::MpuTransfer {
                from,
                to,
                expected_entry,
            }),
            _ => Ok(()),
        }
    }

    /// Executes exactly one instruction.
    ///
    /// Returns `Ok(())` on normal retirement (including `HLT`, which sets
    /// the halted state).
    ///
    /// # Errors
    ///
    /// Returns the [`Fault`] that stopped the instruction; `EIP` is left at
    /// the faulting instruction.
    pub fn step(&mut self) -> Result<(), Fault> {
        let eip = self.eip;
        let predecode_idx = (eip >> 2) as usize & (PREDECODE_ENTRIES - 1);
        // Memoised (not-taken, taken) cycle costs when decode was skipped.
        let mut precost = None;
        // The alignment test keeps a guest EIP of `0xFFFF_FFFF` (equal to
        // the PREDECODE_EMPTY sentinel, and matching every empty slot)
        // from false-hitting: real tags are always word-aligned, the
        // sentinel never is. Found by the tytan-fuzz differential plane.
        let instr = if self.predecode_on && eip & 3 == 0 && self.predecode[predecode_idx].tag == eip
        {
            let entry = self.predecode[predecode_idx];
            precost = Some((entry.cost_not_taken, entry.cost_taken));
            if let Some(t) = &self.trace {
                t.tracer.counters().incr(t.predecode_hit);
            }
            entry.instr
        } else {
            if let (true, Some(t)) = (self.predecode_on, &self.trace) {
                t.tracer.counters().incr(t.predecode_miss);
            }
            let first = self.read_word(eip).map_err(|_| Fault::Decode { eip })?;
            let needs_ext = sp32::encoded_len_words(first) == 2;
            // An instruction must fit strictly below the top of the address
            // space: both its own words and the fall-through EIP after it.
            // Code fetched from a device mapped at the very edge (e.g. a
            // boot ROM at 0xFFFF_FFFC) would otherwise wrap the `eip + 4`
            // ext-word fetch and the fall-through computation below.
            let size = if needs_ext { 8u32 } else { 4u32 };
            if eip.checked_add(size).is_none() {
                return Err(Fault::Decode { eip });
            }
            let ext = if needs_ext {
                Some(self.read_word(eip + 4).map_err(|_| Fault::Decode { eip })?)
            } else {
                None
            };
            let instr = decode(first, ext).map_err(|_| Fault::Decode { eip })?;
            // Cache only word-aligned instructions fetched entirely from
            // RAM: RAM fetches are side-effect free (unlike MMIO reads,
            // which must keep re-executing), RAM writes invalidate the
            // entry, and a RAM-resident tag can never equal the empty
            // sentinel.
            if self.predecode_on
                && eip & 3 == 0
                && eip as usize + instr.size_bytes() as usize <= self.ram.len()
            {
                let costs = (
                    self.cycle_model.cost(&instr, false),
                    self.cycle_model.cost(&instr, true),
                );
                self.predecode[predecode_idx] = Predecoded {
                    tag: eip,
                    instr,
                    cost_not_taken: costs.0,
                    cost_taken: costs.1,
                };
                precost = Some(costs);
            }
            instr
        };
        let fallthrough = eip + instr.size_bytes();
        let mut next = fallthrough;
        let mut taken = false;
        let mut transfer_checked = false;

        match instr {
            Instr::Nop => {}
            Instr::Hlt => {
                self.halted = true;
            }
            Instr::MovReg { rd, rs } => self.regs[rd.index()] = self.regs[rs.index()],
            Instr::MovImm { rd, imm } => self.regs[rd.index()] = imm,
            Instr::Add { rd, rs } => {
                let (v, c) = self.regs[rd.index()].overflowing_add(self.regs[rs.index()]);
                self.regs[rd.index()] = v;
                self.set_arith_flags(v, c);
            }
            Instr::AddImm { rd, imm } => {
                let (v, c) = self.regs[rd.index()].overflowing_add(imm as i32 as u32);
                self.regs[rd.index()] = v;
                self.set_arith_flags(v, c);
            }
            Instr::Sub { rd, rs } => {
                let (v, borrow) = self.regs[rd.index()].overflowing_sub(self.regs[rs.index()]);
                self.regs[rd.index()] = v;
                self.set_arith_flags(v, borrow);
            }
            Instr::Mul { rd, rs } => {
                let v = self.regs[rd.index()].wrapping_mul(self.regs[rs.index()]);
                self.regs[rd.index()] = v;
                self.set_zs_flags(v);
            }
            Instr::And { rd, rs } => {
                let v = self.regs[rd.index()] & self.regs[rs.index()];
                self.regs[rd.index()] = v;
                self.set_zs_flags(v);
            }
            Instr::Or { rd, rs } => {
                let v = self.regs[rd.index()] | self.regs[rs.index()];
                self.regs[rd.index()] = v;
                self.set_zs_flags(v);
            }
            Instr::Xor { rd, rs } => {
                let v = self.regs[rd.index()] ^ self.regs[rs.index()];
                self.regs[rd.index()] = v;
                self.set_zs_flags(v);
            }
            Instr::Not { rd } => {
                let v = !self.regs[rd.index()];
                self.regs[rd.index()] = v;
                self.set_zs_flags(v);
            }
            Instr::Shl { rd, rs } => {
                let v = self.regs[rd.index()] << (self.regs[rs.index()] & 31);
                self.regs[rd.index()] = v;
                self.set_zs_flags(v);
            }
            Instr::Shr { rd, rs } => {
                let v = self.regs[rd.index()] >> (self.regs[rs.index()] & 31);
                self.regs[rd.index()] = v;
                self.set_zs_flags(v);
            }
            Instr::Cmp { rd, rs } => {
                let (v, borrow) = self.regs[rd.index()].overflowing_sub(self.regs[rs.index()]);
                self.set_arith_flags(v, borrow);
            }
            Instr::CmpImm { rd, imm } => {
                let (v, borrow) = self.regs[rd.index()].overflowing_sub(imm as i32 as u32);
                self.set_arith_flags(v, borrow);
            }
            Instr::Ldw { rd, rs, disp } => {
                let addr = self.regs[rs.index()].wrapping_add(disp as i32 as u32);
                self.regs[rd.index()] = self.guest_read(addr, 4)?;
            }
            Instr::Ldb { rd, rs, disp } => {
                let addr = self.regs[rs.index()].wrapping_add(disp as i32 as u32);
                self.regs[rd.index()] = self.guest_read(addr, 1)?;
            }
            Instr::Stw { rd, rs, disp } => {
                let addr = self.regs[rd.index()].wrapping_add(disp as i32 as u32);
                self.guest_write(addr, self.regs[rs.index()], 4)?;
            }
            Instr::Stb { rd, rs, disp } => {
                let addr = self.regs[rd.index()].wrapping_add(disp as i32 as u32);
                self.guest_write(addr, self.regs[rs.index()], 1)?;
            }
            Instr::Jmp { target } => {
                next = target;
                taken = true;
            }
            Instr::Jcc { cond, target } => {
                if cond.holds(self.eflags) {
                    next = target;
                    taken = true;
                }
            }
            Instr::JmpReg { rs } => {
                next = self.regs[rs.index()];
                taken = true;
            }
            Instr::Call { target } => {
                self.check(
                    self.eip,
                    self.regs[Reg::SP.index()].wrapping_sub(4),
                    AccessKind::Write,
                )?;
                self.push_word(fallthrough)?;
                next = target;
                taken = true;
            }
            Instr::Ret => {
                self.check(self.eip, self.regs[Reg::SP.index()], AccessKind::Read)?;
                next = self.pop_word()?;
                taken = true;
            }
            Instr::Push { rs } => {
                self.check(
                    self.eip,
                    self.regs[Reg::SP.index()].wrapping_sub(4),
                    AccessKind::Write,
                )?;
                let value = self.regs[rs.index()];
                self.push_word(value)?;
            }
            Instr::Pop { rd } => {
                self.check(self.eip, self.regs[Reg::SP.index()], AccessKind::Read)?;
                let value = self.pop_word()?;
                self.regs[rd.index()] = value;
            }
            Instr::Int { vector } => {
                // The exception engine pushes the *return* address; origin
                // records the INT site for the IPC proxy.
                let cost = self.cycle_model.cost(&instr, false);
                self.clock += cost;
                self.stats.instructions += 1;
                if let Some(t) = &self.trace {
                    t.tracer.counters().incr(t.class[instr_class(&instr)]);
                }
                if let Some(o) = &self.observer {
                    // The INT instruction's own cost belongs to the guest
                    // code at `eip`; the dispatch reports its cost itself.
                    o.instruction(eip, cost);
                }
                self.eip = fallthrough;
                self.dispatch_interrupt(vector, eip)?;
                return Ok(());
            }
            Instr::Iret => {
                let new_eip = self.pop_word()?;
                let new_eflags = self.pop_word()?;
                // A resume latch (armed by the exception engine at dispatch)
                // authorises returning into the middle of a protected
                // region: this is the hardware half of TyTAN's secure,
                // interruptible tasks. Without a latch the normal transfer
                // rules apply.
                if !self.resume_latches.remove(&new_eip) {
                    self.check_transfer(eip, new_eip).inspect_err(|_| {
                        // Roll back the pops so the fault is observable.
                        self.regs[Reg::SP.index()] = self.regs[Reg::SP.index()].wrapping_sub(8);
                    })?;
                }
                transfer_checked = true;
                self.eflags = new_eflags;
                next = new_eip;
                taken = true;
                let clock = self.clock;
                if let Some(t) = &mut self.trace {
                    t.tracer.counters().incr(t.irq_exit);
                    // Pop the matching dispatch so the Exit lands on the
                    // same Chrome track; a bare IRET (kernel-fabricated
                    // frame) falls back to the layer's main track.
                    let vector = t.irq_stack.pop().unwrap_or(0);
                    t.tracer
                        .emit(Layer::Emu, vector as u32, clock, EventKind::Exit("irq"));
                }
            }
            Instr::Sti => self.eflags |= EFLAGS_IF,
            Instr::Cli => self.eflags &= !EFLAGS_IF,
        }

        if !transfer_checked {
            self.check_transfer(eip, next)?;
        }
        let cost = match precost {
            Some((not_taken, taken_cost)) => {
                if taken {
                    taken_cost
                } else {
                    not_taken
                }
            }
            None => self.cycle_model.cost(&instr, taken),
        };
        self.clock += cost;
        self.stats.instructions += 1;
        if let Some(t) = &self.trace {
            t.tracer.counters().incr(t.class[instr_class(&instr)]);
        }
        if let Some(o) = &self.observer {
            o.instruction(eip, cost);
        }
        if matches!(instr, Instr::Iret) {
            // Post-cost clock of the retired IRET: the anchor the
            // context-restore latency measurement resumes from.
            self.last_iret = Some(self.clock);
        }
        // Taken edges feed the control-flow monitor. `Iret` is excluded:
        // interrupt exits belong to the kernel, not the task's own
        // control flow (`Int` returned early above for the same reason),
        // so the chain is preemption- and engine-independent.
        if taken && !matches!(instr, Instr::Iret) {
            if let Some(m) = &mut self.cf_monitor {
                m.record(eip, next);
            }
        }
        self.eip = next;
        Ok(())
    }

    /// Runs guest code until an [`Event`] occurs or `max_cycles` elapse.
    ///
    /// Pending interrupts are delivered between instructions when `IF` is
    /// set. A registered firmware trap address takes priority: reaching one
    /// pauses execution *before* the (virtual) instruction there runs.
    pub fn run(&mut self, max_cycles: u64) -> Event {
        match self.engine {
            EngineKind::Legacy => self.run_legacy(max_cycles),
            EngineKind::Fast => self.run_fast(max_cycles),
            EngineKind::Translated => self.run_translated(max_cycles),
        }
    }

    /// The engine driving [`Machine::run`].
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// The original per-instruction loop: poll every device and re-check
    /// every boundary condition between each instruction. Kept verbatim as
    /// the reference the cycle-identity tests compare [`Machine::run_fast`]
    /// against.
    pub(crate) fn run_legacy(&mut self, max_cycles: u64) -> Event {
        let deadline = self.clock.saturating_add(max_cycles);
        loop {
            self.poll_devices();

            // Deliver an interrupt if possible (also wakes a halted core).
            if self.interrupts_enabled() {
                if let Some(&vector) = self.pending_irqs.iter().next() {
                    self.pending_irqs.remove(&vector);
                    let origin = self.eip;
                    if let Err(fault) = self.dispatch_interrupt(vector, origin) {
                        self.stats.faults += 1;
                        self.note_fault();
                        return Event::Fault(fault);
                    }
                }
            }

            if self.trap_hit(self.eip) && !self.halted {
                return Event::FirmwareTrap { addr: self.eip };
            }

            if self.halted {
                // Idle: advance time so timer devices keep firing.
                self.clock += 8;
                if let Some(o) = &self.observer {
                    o.idle(8);
                }
                if self.clock >= deadline {
                    return Event::IdleBudgetExhausted;
                }
                continue;
            }

            if self.clock >= deadline {
                return Event::BudgetExhausted;
            }

            if let Err(fault) = self.step() {
                self.stats.faults += 1;
                self.note_fault();
                return Event::Fault(fault);
            }
        }
    }

    /// Event-driven loop, equivalent to [`Machine::run_legacy`] boundary by
    /// boundary. The outer iteration performs the same poll → deliver →
    /// trap → halt → budget sequence; the inner loop batches [`Machine::step`]
    /// calls for as long as none of those boundary actions could do
    /// anything. Per-instruction polling is replaced by the cached
    /// `device_deadline`, which [`Device::next_event`] guarantees is the
    /// first boundary where a poll could matter, so devices observe the
    /// exact same poll timeline the legacy loop gives them.
    pub(crate) fn run_fast(&mut self, max_cycles: u64) -> Event {
        let deadline = self.clock.saturating_add(max_cycles);
        loop {
            if self.device_deadline_dirty {
                self.recompute_device_deadline();
            }
            if self.clock >= self.device_deadline {
                self.poll_devices();
                self.recompute_device_deadline();
            }

            if self.interrupts_enabled() {
                if let Some(&vector) = self.pending_irqs.iter().next() {
                    self.pending_irqs.remove(&vector);
                    let origin = self.eip;
                    if let Err(fault) = self.dispatch_interrupt(vector, origin) {
                        self.stats.faults += 1;
                        self.note_fault();
                        return Event::Fault(fault);
                    }
                }
            }

            if self.trap_hit(self.eip) && !self.halted {
                return Event::FirmwareTrap { addr: self.eip };
            }

            if self.halted {
                self.clock += 8;
                if let Some(o) = &self.observer {
                    o.idle(8);
                }
                if self.clock >= deadline {
                    return Event::IdleBudgetExhausted;
                }
                continue;
            }

            if self.clock >= deadline {
                return Event::BudgetExhausted;
            }

            // Batched stepping: between boundaries where nothing external
            // can intervene — no device due, no deliverable IRQ, no trap,
            // budget remaining — the legacy loop's checks are all no-ops,
            // so skipping them is unobservable. The pending-IRQ set only
            // changes at poll boundaries (never inside `step`), and the
            // device deadline only moves under the dirty flag (which breaks
            // the batch), so both bounds are loop-invariant here.
            let step_limit = deadline.min(self.device_deadline);
            let has_pending = !self.pending_irqs.is_empty();
            loop {
                if let Err(fault) = self.step() {
                    self.stats.faults += 1;
                    self.note_fault();
                    return Event::Fault(fault);
                }
                if self.halted
                    || self.device_deadline_dirty
                    || self.clock >= step_limit
                    || (has_pending && self.interrupts_enabled())
                    || self.trap_hit(self.eip)
                {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp32::asm::assemble;

    fn machine_with(src: &str, origin: u32) -> Machine {
        let mut m = Machine::new(MachineConfig::default());
        let p = assemble(src, origin).expect("assemble");
        m.load_image(origin, &p.bytes).expect("load");
        m.set_eip(origin);
        m
    }

    #[test]
    fn tracer_counts_classes_and_predecode_without_touching_cycles() {
        use std::sync::Arc;
        use tytan_trace::RingRecorder;

        // Pin the fast path on: the predecode-coverage assertions below are
        // about the cache, which the legacy loop (TYTAN_FAST_PATH=0 in the
        // CI matrix) legitimately never consults.
        let build = |src: &str| {
            let mut m = Machine::new(MachineConfig {
                engine: EngineKind::Fast,
                ..MachineConfig::default()
            });
            let p = assemble(src, 0x100).expect("assemble");
            m.load_image(0x100, &p.bytes).expect("load");
            m.set_eip(0x100);
            m
        };
        let src = "main:\n movi r0, 0\nloop:\n addi r0, 1\n cmpi r0, 50\n jnz loop\n hlt\n";
        let mut traced = build(src);
        let ring = Arc::new(RingRecorder::new(256));
        traced.attach_tracer(Tracer::new(ring.clone()));
        let mut plain = build(src);

        traced.run(10_000);
        plain.run(10_000);
        assert_eq!(traced.cycles(), plain.cycles(), "tracing charged cycles");
        assert_eq!(traced.stats(), plain.stats());

        let c = traced.tracer().unwrap().counters().clone();
        // 1 movi + 50 * (addi + cmpi) = 101 ALU retirements, 50 jnz + hlt.
        assert_eq!(c.get("emu_instr_alu"), Some(101));
        assert_eq!(c.get("emu_instr_branch"), Some(50));
        assert_eq!(c.get("emu_instr_system"), Some(1));
        // The loop body re-executes from the predecode cache.
        let hits = c.get("emu_predecode_hit").unwrap();
        let misses = c.get("emu_predecode_miss").unwrap();
        assert_eq!(hits + misses, traced.stats().instructions);
        assert!(hits > misses, "loop should be predecode-cache resident");
    }

    #[test]
    fn tracer_records_irq_spans() {
        use std::sync::Arc;
        use tytan_trace::RingRecorder;

        let src = "main:\n sti\n int 5\n addi r2, 1\n hlt\n\
                   handler:\n addi r3, 1\n iret\n";
        let mut m = machine_with(src, 0x1000);
        let p = assemble(src, 0x1000).unwrap();
        let handler = p.symbol("handler").unwrap();
        m.set_reg(Reg::R7, 0x8000);
        m.set_idt_base(0x40);
        m.set_idt_entry(5, handler).unwrap();
        let ring = Arc::new(RingRecorder::new(64));
        m.attach_tracer(Tracer::new(ring.clone()));

        m.run(10_000);
        assert!(m.is_halted());
        let events = ring.events();
        let enters: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::Enter("irq"))
            .collect();
        let exits: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::Exit("irq"))
            .collect();
        assert_eq!(enters.len(), 1);
        assert_eq!(exits.len(), 1);
        assert_eq!(enters[0].tid, 5, "track is the vector");
        assert_eq!(exits[0].tid, 5);
        assert!(enters[0].cycle < exits[0].cycle);
        let c = m.tracer().unwrap().counters();
        assert_eq!(c.get("emu_irq_entry"), Some(1));
        assert_eq!(c.get("emu_irq_exit"), Some(1));
        assert_eq!(c.get("emu_irq_truncated"), Some(0));
    }

    #[test]
    fn flush_closes_open_irq_spans_with_truncation_marker() {
        use std::sync::Arc;
        use tytan_trace::RingRecorder;

        // The handler halts without IRET, so the machine stops mid-handler
        // with the IRQ span open.
        let src = "main:\n sti\n int 5\n hlt\nhandler:\n hlt\n";
        let mut m = machine_with(src, 0x1000);
        let p = assemble(src, 0x1000).unwrap();
        m.set_reg(Reg::R7, 0x8000);
        m.set_idt_base(0x40);
        m.set_idt_entry(5, p.symbol("handler").unwrap()).unwrap();
        let ring = Arc::new(RingRecorder::new(64));
        m.attach_tracer(Tracer::new(ring.clone()));

        m.run(2_000);
        assert!(m.is_halted());
        let c = m.tracer().unwrap().counters().clone();
        assert_eq!(c.get("emu_irq_entry"), Some(1));
        assert_eq!(c.get("emu_irq_exit"), Some(0), "halted mid-handler");

        let cycles_before = m.cycles();
        m.flush_trace();
        assert_eq!(m.cycles(), cycles_before, "flush is host-side only");
        // The shutdown invariant: entry == exit + truncated.
        assert_eq!(
            c.get("emu_irq_entry"),
            Some(c.get("emu_irq_exit").unwrap() + c.get("emu_irq_truncated").unwrap())
        );
        assert_eq!(c.get("emu_irq_truncated"), Some(1));
        let events = ring.events();
        let enters = events
            .iter()
            .filter(|e| e.kind == EventKind::Enter("irq"))
            .count();
        let exits = events
            .iter()
            .filter(|e| e.kind == EventKind::Exit("irq"))
            .count();
        assert_eq!(enters, exits, "flush balanced the Chrome spans");
        assert!(events
            .iter()
            .any(|e| e.kind == EventKind::Mark("irq_truncated") && e.tid == 5));
        // Idempotent: a second flush does nothing.
        m.flush_trace();
        assert_eq!(c.get("emu_irq_truncated"), Some(1));
    }

    /// Records every attribution callback into atomic tallies.
    #[derive(Default)]
    struct TallyObserver {
        instr: std::sync::atomic::AtomicU64,
        dispatch: std::sync::atomic::AtomicU64,
        firmware: std::sync::atomic::AtomicU64,
        idle: std::sync::atomic::AtomicU64,
    }

    impl TallyObserver {
        fn total(&self) -> u64 {
            use std::sync::atomic::Ordering::Relaxed;
            self.instr.load(Relaxed)
                + self.dispatch.load(Relaxed)
                + self.firmware.load(Relaxed)
                + self.idle.load(Relaxed)
        }
    }

    impl CycleObserver for TallyObserver {
        fn instruction(&self, _eip: u32, cycles: u64) {
            self.instr
                .fetch_add(cycles, std::sync::atomic::Ordering::Relaxed);
        }
        fn dispatch(&self, _vector: u8, cycles: u64) {
            self.dispatch
                .fetch_add(cycles, std::sync::atomic::Ordering::Relaxed);
        }
        fn firmware(&self, _eip: u32, cycles: u64) {
            self.firmware
                .fetch_add(cycles, std::sync::atomic::Ordering::Relaxed);
        }
        fn idle(&self, cycles: u64) {
            self.idle
                .fetch_add(cycles, std::sync::atomic::Ordering::Relaxed);
        }
    }

    #[test]
    fn cycle_observer_attribution_is_exact_and_neutral() {
        use std::sync::atomic::Ordering::Relaxed;
        use std::sync::Arc;

        // Exercise every attribution class: instructions, a software
        // interrupt (INT cost + dispatch cost), IRET, idle after HLT, and
        // a firmware tick charged mid-run.
        let src = "main:\n sti\n movi r0, 3\nloop:\n addi r0, -1\n cmpi r0, 0\n jnz loop\n \
                   int 5\n hlt\nhandler:\n addi r3, 1\n iret\n";
        let build = |src: &str| {
            let mut m = machine_with(src, 0x1000);
            let p = assemble(src, 0x1000).unwrap();
            m.set_reg(Reg::R7, 0x8000);
            m.set_idt_base(0x40);
            m.set_idt_entry(5, p.symbol("handler").unwrap()).unwrap();
            m
        };
        let mut observed = build(src);
        let tally = Arc::new(TallyObserver::default());
        observed.attach_cycle_observer(tally.clone());
        let mut bare = build(src);

        observed.run(5_000);
        bare.run(5_000);
        // Neutrality: attaching the observer changed nothing guest-visible.
        assert_eq!(observed.cycles(), bare.cycles());
        assert_eq!(observed.stats(), bare.stats());
        assert_eq!(observed.regs(), bare.regs());
        assert_eq!(observed.eip(), bare.eip());
        // Exactness: every charged cycle was attributed exactly once.
        assert_eq!(tally.total(), observed.cycles());
        assert!(tally.instr.load(Relaxed) > 0);
        assert!(tally.dispatch.load(Relaxed) > 0);
        assert!(tally.idle.load(Relaxed) > 0);
        assert_eq!(tally.firmware.load(Relaxed), 0);

        // Firmware charges report through the firmware callback.
        observed.tick(37);
        assert_eq!(tally.firmware.load(Relaxed), 37);
        assert_eq!(tally.total(), observed.cycles());
    }

    #[test]
    fn dispatch_and_iret_stamps_bracket_the_handler() {
        let src = "main:\n sti\n int 5\n hlt\nhandler:\n addi r3, 1\n iret\n";
        let mut m = machine_with(src, 0x1000);
        let p = assemble(src, 0x1000).unwrap();
        m.set_reg(Reg::R7, 0x8000);
        m.set_idt_base(0x40);
        m.set_idt_entry(5, p.symbol("handler").unwrap()).unwrap();

        m.run(2_000);
        let stamp = m.take_last_dispatch().expect("one dispatch happened");
        assert_eq!(stamp.vector, 5);
        assert!(stamp.begin < stamp.end, "dispatch charged cycles");
        let iret_at = m.take_last_iret().expect("handler returned");
        assert!(iret_at > stamp.end, "IRET retired after the dispatch");
        // Take-semantics: each stamp is consumed exactly once.
        assert_eq!(m.take_last_dispatch(), None);
        assert_eq!(m.take_last_iret(), None);
    }

    #[test]
    fn arithmetic_and_flags() {
        let mut m = machine_with("movi r0, 5\nmovi r1, 5\nsub r0, r1\nhlt\n", 0x100);
        m.run(1_000);
        assert_eq!(m.reg(Reg::R0), 0);
        assert!(m.eflags() & EFLAGS_ZF != 0);
        assert!(m.is_halted());
    }

    #[test]
    fn memory_roundtrip_through_guest() {
        let mut m = machine_with(
            "movi r0, 0x9000\nmovi r1, 0xabcd1234\nstw [r0], r1\nldw r2, [r0]\nhlt\n",
            0x100,
        );
        m.run(1_000);
        assert_eq!(m.reg(Reg::R2), 0xabcd_1234);
        assert_eq!(m.read_word(0x9000).unwrap(), 0xabcd_1234);
    }

    #[test]
    fn byte_access() {
        let mut m = machine_with(
            "movi r0, 0x9000\nmovi r1, 0x1ff\nstb [r0], r1\nldb r2, [r0]\nhlt\n",
            0x100,
        );
        m.run(1_000);
        assert_eq!(m.reg(Reg::R2), 0xff);
    }

    #[test]
    fn call_and_ret() {
        let src = "movi sp, 0x10000\ncall f\nmovi r1, 2\nhlt\nf:\nmovi r0, 1\nret\n";
        let mut m = machine_with(src, 0x100);
        m.run(1_000);
        assert_eq!(m.reg(Reg::R0), 1);
        assert_eq!(m.reg(Reg::R1), 2);
        assert_eq!(m.reg(Reg::SP), 0x10000);
    }

    #[test]
    fn loop_counts() {
        let src = "movi r0, 0\nmovi r1, 10\nloop:\naddi r0, 1\ncmp r0, r1\njnz loop\nhlt\n";
        let mut m = machine_with(src, 0x100);
        m.run(10_000);
        assert_eq!(m.reg(Reg::R0), 10);
    }

    #[test]
    fn software_interrupt_and_iret() {
        // Handler at 0x500 writes a marker then IRETs back.
        let main = "movi sp, 0x10000\nsti\nint 0x21\nmovi r2, 7\nhlt\n";
        let handler = "movi r1, 0x55\niret\n";
        let mut m = Machine::new(MachineConfig::default());
        let pm = assemble(main, 0x100).unwrap();
        let ph = assemble(handler, 0x500).unwrap();
        m.load_image(0x100, &pm.bytes).unwrap();
        m.load_image(0x500, &ph.bytes).unwrap();
        m.set_idt_base(0x40);
        m.set_idt_entry(0x21, 0x500).unwrap();
        m.set_eip(0x100);
        m.run(10_000);
        assert_eq!(m.reg(Reg::R1), 0x55);
        assert_eq!(m.reg(Reg::R2), 7);
        assert!(m.is_halted());
        // int origin points at the INT instruction.
        assert_eq!(m.int_origin(), Some(0x100 + 8 + 4));
    }

    #[test]
    fn interrupt_clears_if_and_iret_restores() {
        let main = "movi sp, 0x10000\nsti\nint 0x21\nhlt\n";
        let handler = "iret\n";
        let mut m = Machine::new(MachineConfig::default());
        let pm = assemble(main, 0x100).unwrap();
        let ph = assemble(handler, 0x500).unwrap();
        m.load_image(0x100, &pm.bytes).unwrap();
        m.load_image(0x500, &ph.bytes).unwrap();
        m.set_idt_base(0x40);
        m.set_idt_entry(0x21, 0x500).unwrap();
        m.set_eip(0x100);
        // Stop exactly inside the handler via firmware trap.
        m.add_firmware_trap(0x500);
        let ev = m.run(10_000);
        assert_eq!(ev, Event::FirmwareTrap { addr: 0x500 });
        assert!(!m.interrupts_enabled(), "IF cleared during handler");
        m.remove_firmware_trap(0x500);
        m.run(10_000);
        assert!(m.interrupts_enabled(), "IRET restored IF");
    }

    #[test]
    fn firmware_trap_pauses_before_execution() {
        let mut m = machine_with("movi r0, 1\nmovi r0, 2\nhlt\n", 0x100);
        m.add_firmware_trap(0x108);
        let ev = m.run(1_000);
        assert_eq!(ev, Event::FirmwareTrap { addr: 0x108 });
        assert_eq!(m.reg(Reg::R0), 1, "second movi not yet executed");
    }

    #[test]
    fn mpu_blocks_foreign_data_access() {
        use eampu::{Perms, Region, Rule};
        let src = "movi r0, 0x8000\nldw r1, [r0]\nhlt\n";
        let mut m = machine_with(src, 0x100);
        m.mpu_mut()
            .configure(Rule::new(
                Region::new(0x4000, 0x100),
                0x4000,
                Region::new(0x8000, 0x100),
                Perms::RW,
            ))
            .unwrap();
        let ev = m.run(1_000);
        assert_eq!(
            ev,
            Event::Fault(Fault::MpuAccess {
                eip: 0x108,
                addr: 0x8000,
                kind: AccessKind::Read
            })
        );
        assert_eq!(m.stats().faults, 1);
    }

    #[test]
    fn mpu_entry_point_enforced_on_jump() {
        use eampu::{Perms, Region, Rule};
        // Protected region at 0x4000 with entry 0x4000; jumping to 0x4008
        // from outside faults.
        let src = "jmp 0x4008\n";
        let mut m = machine_with(src, 0x100);
        m.mpu_mut()
            .configure(Rule::new(
                Region::new(0x4000, 0x100),
                0x4000,
                Region::new(0x8000, 0x100),
                Perms::RW,
            ))
            .unwrap();
        let ev = m.run(1_000);
        assert_eq!(
            ev,
            Event::Fault(Fault::MpuTransfer {
                from: 0x100,
                to: 0x4008,
                expected_entry: 0x4000
            })
        );
    }

    #[test]
    fn mpu_disabled_is_baseline_platform() {
        use eampu::{Perms, Region, Rule};
        let src = "movi r0, 0x8000\nldw r1, [r0]\nhlt\n";
        let mut m = machine_with(src, 0x100);
        m.mpu_mut()
            .configure(Rule::new(
                Region::new(0x4000, 0x100),
                0x4000,
                Region::new(0x8000, 0x100),
                Perms::RW,
            ))
            .unwrap();
        m.set_mpu_enabled(false);
        let ev = m.run(1_000);
        assert_eq!(ev, Event::IdleBudgetExhausted);
    }

    #[test]
    fn idt_base_register_is_write_once() {
        let mut m = Machine::new(MachineConfig::default());
        m.set_idt_base(0x40);
        m.set_idt_base(0x8000); // ignored: a malicious IDT cannot be installed
        assert_eq!(m.idt_base(), 0x40);
    }

    #[test]
    fn cycles_advance_and_tick_charges() {
        let mut m = machine_with("nop\nhlt\n", 0x100);
        let start = m.cycles();
        m.run(100);
        assert!(m.cycles() > start);
        let before = m.cycles();
        m.tick(1_000);
        assert_eq!(m.cycles(), before + 1_000);
    }

    #[test]
    fn bus_fault_on_out_of_range() {
        let mut m = machine_with("movi r0, 0x7fffff00\nldw r1, [r0]\nhlt\n", 0x100);
        let ev = m.run(1_000);
        assert!(matches!(ev, Event::Fault(Fault::Bus { .. })));
    }

    #[test]
    fn decode_fault_on_garbage() {
        let mut m = Machine::new(MachineConfig::default());
        m.write_word(0x100, 0xff00_0000).unwrap();
        m.set_eip(0x100);
        let ev = m.run(1_000);
        assert_eq!(ev, Event::Fault(Fault::Decode { eip: 0x100 }));
    }

    #[test]
    fn stats_count_instructions() {
        let mut m = machine_with("nop\nnop\nnop\nhlt\n", 0x100);
        m.run(1_000);
        assert_eq!(m.stats().instructions, 4);
    }

    #[test]
    fn resume_latch_authorises_one_return_into_protected_region() {
        use eampu::{Perms, Region, Rule};
        // A protected region interrupted mid-execution can be resumed via
        // IRET exactly once; a forged second IRET to the same address is
        // denied.
        let task = "main:\n movi r1, 1\nloop:\n addi r1, 1\n jmp loop\n";
        let handler = "iret\n";
        let mut m = Machine::new(MachineConfig::default());
        let pt = assemble(task, 0x4000).unwrap();
        let ph = assemble(handler, 0x500).unwrap();
        m.load_image(0x4000, &pt.bytes).unwrap();
        m.load_image(0x500, &ph.bytes).unwrap();
        m.set_idt_base(0x40);
        m.set_idt_entry(33, 0x500).unwrap();
        m.mpu_mut()
            .configure(Rule::new(
                Region::new(0x4000, 0x100),
                0x4000,
                Region::new(0x9000, 0x100),
                Perms::RW,
            ))
            .unwrap();
        m.set_reg(Reg::SP, 0x8000);
        m.set_eflags(EFLAGS_IF);
        m.set_eip(0x4000);
        m.run(100);
        let interrupted_at = m.eip();
        assert!(interrupted_at > 0x4000, "task is mid-region");
        m.raise_irq(33);
        m.run(100); // deliver + handler IRET resumes mid-region: allowed
        assert!(m.eip() >= 0x4000 && m.eip() < 0x4100, "resumed in region");

        // Forge a frame for the same address from unprotected code: the
        // latch was consumed, so the IRET faults.
        let forge = format!(
            "main:\n movi sp, 0x8000\n movi r1, 0\n push r1\n movi r1, {interrupted_at:#x}\n push r1\n iret\n"
        );
        let pf = assemble(&forge, 0x600).unwrap();
        m.load_image(0x600, &pf.bytes).unwrap();
        m.set_eflags(0);
        m.set_eip(0x600 + pf.symbol("main").unwrap() - 0x600);
        let ev = m.run(1_000);
        assert!(
            matches!(ev, Event::Fault(Fault::MpuTransfer { .. })),
            "forged IRET denied: {ev:?}"
        );
    }

    #[test]
    fn hw_context_save_builds_the_same_frame_as_the_stub() {
        let config = MachineConfig {
            hw_context_save: true,
            ..MachineConfig::default()
        };
        let mut m = Machine::new(config);
        let main = "movi sp, 0x8000\nmovi r1, 0x11\nmovi r2, 0x22\nsti\nint 0x21\nhlt\n";
        // The handler restores the hardware-built frame like the platform's
        // restore stub: pop r6..r0, then IRET.
        let handler = "pop r6\npop r5\npop r4\npop r3\npop r2\npop r1\npop r0\niret\n";
        let pm = assemble(main, 0x100).unwrap();
        let ph = assemble(handler, 0x500).unwrap();
        m.load_image(0x100, &pm.bytes).unwrap();
        m.load_image(0x500, &ph.bytes).unwrap();
        m.set_idt_base(0x40);
        m.set_idt_entry(0x21, 0x500).unwrap();
        m.set_eip(0x100);
        m.add_firmware_trap(0x500);
        let ev = m.run(10_000);
        assert_eq!(ev, Event::FirmwareTrap { addr: 0x500 });
        // Frame: [r6..r0][eip][eflags] from the stack pointer, exactly the
        // software stub's layout; registers r1..r6 wiped.
        let sp = m.reg(Reg::SP);
        assert_eq!(m.read_word(sp + 4 * 5).unwrap(), 0x11, "saved r1");
        assert_eq!(m.read_word(sp + 4 * 4).unwrap(), 0x22, "saved r2");
        assert_eq!(m.reg(Reg::R1), 0, "live r1 wiped");
        assert_eq!(m.reg(Reg::R2), 0, "live r2 wiped");
        // Resume restores everything.
        m.remove_firmware_trap(0x500);
        m.run(10_000);
        assert_eq!(m.reg(Reg::R1), 0x11);
        assert_eq!(m.reg(Reg::R2), 0x22);
        assert!(m.is_halted());
    }

    #[test]
    fn halted_machine_wakes_on_timer_interrupt() {
        use crate::devices::Timer;
        let main = "movi sp, 0x10000\nsti\nhlt\nmovi r3, 9\nhlt\n";
        let handler = "movi r1, 1\niret\n";
        let mut m = Machine::new(MachineConfig::default());
        let pm = assemble(main, 0x100).unwrap();
        let ph = assemble(handler, 0x500).unwrap();
        m.load_image(0x100, &pm.bytes).unwrap();
        m.load_image(0x500, &ph.bytes).unwrap();
        m.set_idt_base(0x40);
        m.set_idt_entry(32, 0x500).unwrap();
        let timer = Timer::new(0xf000_0000, 32);
        let h = m.add_device(Box::new(timer));
        m.device_mut::<Timer>(h).unwrap().configure(500, true);
        m.set_eip(0x100);
        m.run(5_000);
        assert_eq!(m.reg(Reg::R1), 1, "handler ran");
        assert_eq!(m.reg(Reg::R3), 9, "execution resumed after hlt");
    }

    // ----- adversarial-plane regressions: address-space-edge and
    // zero-length span arithmetic (found/pinned by the fuzz plane) -----

    /// A device serving one constant instruction word at every offset,
    /// mappable where RAM can never reach — lets tests execute code at
    /// EIPs like `0xFFFF_FFFC`, right at the top of the address space.
    struct CodeRom {
        base: u32,
        word: u32,
    }

    impl Device for CodeRom {
        fn range(&self) -> eampu::Region {
            eampu::Region::new(self.base, 0x100)
        }

        fn read(&mut self, _offset: u32, _now: u64) -> u32 {
            self.word
        }

        fn write(&mut self, _offset: u32, _value: u32, _now: u64) {}

        fn as_any(&self) -> &dyn std::any::Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    const ALL_ENGINES: [EngineKind; 3] =
        [EngineKind::Legacy, EngineKind::Fast, EngineKind::Translated];

    fn edge_machine(engine: EngineKind, word: u32) -> Machine {
        let mut m = Machine::new(MachineConfig {
            engine,
            ..MachineConfig::default()
        });
        m.add_device(Box::new(CodeRom {
            base: 0xFFFF_FF00,
            word,
        }));
        m
    }

    #[test]
    fn ext_word_fetch_at_address_space_edge_faults_instead_of_wrapping() {
        // The first word of a two-word instruction at 0xFFFF_FFFC puts its
        // ext word at eip + 4 == 0x1_0000_0000, which does not exist; the
        // fetch used to wrap (a debug-build panic) instead of faulting.
        let mut words = Vec::new();
        sp32::encode(
            &Instr::MovImm {
                rd: Reg::R0,
                imm: 7,
            },
            &mut words,
        );
        for engine in ALL_ENGINES {
            let mut m = edge_machine(engine, words[0]);
            m.set_eip(0xFFFF_FFFC);
            assert_eq!(m.step(), Err(Fault::Decode { eip: 0xFFFF_FFFC }));
        }
    }

    #[test]
    fn single_word_instruction_at_edge_faults_on_fallthrough() {
        let mut words = Vec::new();
        sp32::encode(&Instr::Nop, &mut words);
        for engine in ALL_ENGINES {
            let mut m = edge_machine(engine, words[0]);
            // One word below the edge both the instruction and its
            // fall-through EIP exist, so execution proceeds...
            m.set_eip(0xFFFF_FFF8);
            assert_eq!(m.step(), Ok(()));
            assert_eq!(m.eip(), 0xFFFF_FFFC);
            // ...but at the edge itself the fall-through EIP would be
            // 0x1_0000_0000, so the instruction cannot complete.
            assert_eq!(m.step(), Err(Fault::Decode { eip: 0xFFFF_FFFC }));
        }
    }

    #[test]
    fn jump_to_the_predecode_sentinel_address_faults_on_both_paths() {
        // Found by tytan-fuzz: `jmp 0xFFFF_FFFF` lands the EIP exactly on
        // the PREDECODE_EMPTY sentinel, which used to false-hit every
        // never-filled cache slot on the fast path and execute a
        // zero-cost Nop forever while the legacy path faulted.
        let mut words = Vec::new();
        sp32::encode(
            &Instr::Jmp {
                target: 0xFFFF_FFFF,
            },
            &mut words,
        );
        for engine in ALL_ENGINES {
            let mut m = Machine::new(MachineConfig {
                engine,
                ..MachineConfig::default()
            });
            let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
            m.load_image(0x100, &bytes).expect("load");
            m.set_eip(0x100);
            assert_eq!(m.step(), Ok(()), "the jump itself executes");
            assert_eq!(m.eip(), 0xFFFF_FFFF);
            assert_eq!(
                m.step(),
                Err(Fault::Decode { eip: 0xFFFF_FFFF }),
                "{engine:?}: fetch at the sentinel address must fault"
            );
        }
    }

    #[test]
    fn zero_length_writes_do_not_sweep_the_predecode_cache() {
        let mut m = Machine::new(MachineConfig {
            engine: EngineKind::Fast,
            ..MachineConfig::default()
        });
        let p = assemble("movi r0, 1\nmovi r1, 2\nhlt\n", 0x100).expect("assemble");
        m.load_image(0x100, &p.bytes).expect("load");
        m.set_eip(0x100);
        m.run(1_000);
        let populated = |m: &Machine| {
            m.predecode
                .iter()
                .filter(|e| e.tag != PREDECODE_EMPTY)
                .count()
        };
        let before = populated(&m);
        assert!(before > 0, "run populated the predecode cache");
        // Zero-length invalidations must be no-ops: the last-byte
        // computation `len - 1` used to underflow and (in release builds)
        // sweep the entire aligned address space.
        m.invalidate_predecode(0, 0);
        m.invalidate_predecode(u32::MAX, 0);
        m.write_bytes(0x100, &[]).expect("empty write");
        assert_eq!(populated(&m), before, "cache swept by zero-length write");
    }

    #[test]
    fn stack_wrap_at_address_space_edge_is_a_typed_bus_fault() {
        let mut m = Machine::new(MachineConfig::default());
        // Push with SP == 0 decrements to 0xFFFF_FFFC, which is off-bus.
        m.set_reg(Reg::SP, 0);
        assert_eq!(m.push_word(0x1234), Err(Fault::Bus { addr: 0xFFFF_FFFC }));
        assert_eq!(m.reg(Reg::SP), 0, "failed push must not move SP");
        m.set_reg(Reg::SP, 0xFFFF_FFFC);
        assert_eq!(m.pop_word(), Err(Fault::Bus { addr: 0xFFFF_FFFC }));
        assert_eq!(m.reg(Reg::SP), 0xFFFF_FFFC, "failed pop must not move SP");
        // The guest-visible path agrees, on every run loop.
        for engine in ALL_ENGINES {
            let mut m = Machine::new(MachineConfig {
                engine,
                ..MachineConfig::default()
            });
            let p = assemble("movi sp, 0\npush r0\nhlt\n", 0x100).expect("assemble");
            m.load_image(0x100, &p.bytes).expect("load");
            m.set_eip(0x100);
            assert_eq!(m.run(1_000), Event::Fault(Fault::Bus { addr: 0xFFFF_FFFC }));
        }
    }

    #[test]
    fn idt_slot_arithmetic_at_the_edge_is_a_typed_bus_fault() {
        let mut m = Machine::new(MachineConfig::default());
        m.set_idt_base(0xFFFF_FFF0);
        // Vector 3's slot sits exactly at 0xFFFF_FFFC: representable but
        // off-bus (no RAM or device up there).
        assert_eq!(
            m.set_idt_entry(3, 0x500),
            Err(Fault::Bus { addr: 0xFFFF_FFFC })
        );
        // Vector 4's slot address overflows u32 entirely.
        assert_eq!(
            m.set_idt_entry(4, 0x500),
            Err(Fault::Bus { addr: 0xFFFF_FFF0 })
        );
        assert!(matches!(m.idt_entry(200), Err(Fault::Bus { .. })));
        // A software INT dispatched through the same IDT degrades to the
        // same typed fault on every run loop.
        for engine in ALL_ENGINES {
            let mut m = Machine::new(MachineConfig {
                engine,
                ..MachineConfig::default()
            });
            let p = assemble("movi sp, 0x8000\nint 100\nhlt\n", 0x100).expect("assemble");
            m.load_image(0x100, &p.bytes).expect("load");
            m.set_idt_base(0xFFFF_FFF0);
            m.set_eip(0x100);
            assert!(matches!(m.run(1_000), Event::Fault(Fault::Bus { .. })));
        }
    }

    #[test]
    fn snapshot_and_ram_digest_capture_observable_state() {
        let src = "movi r0, 5\nmovi sp, 0x8000\npush r0\nhlt\n";
        let mut a = machine_with(src, 0x100);
        let mut b = machine_with(src, 0x100);
        a.run(1_000);
        b.run(1_000);
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.ram_digest(), b.ram_digest());
        // A single flipped byte shows up in the digest but not the
        // register snapshot; a raised IRQ shows up in the snapshot.
        b.write_byte(0x9000, 1).expect("write");
        assert_ne!(a.ram_digest(), b.ram_digest());
        a.raise_irq(9);
        assert_eq!(a.snapshot().pending_irqs, vec![9]);
        assert_ne!(a.snapshot(), b.snapshot());
    }
}
