//! The control-flow monitor: the prover half of the CFA plane.
//!
//! When attached to a [`Machine`](crate::Machine), the monitor observes
//! every *taken* intra-task control-flow edge — jumps, taken
//! conditional branches, register-indirect jumps, calls and returns —
//! and folds each into a [`CfChain`] while keeping the edge log for
//! the verifier to replay. Interrupt entries and exits are deliberately
//! invisible: preemption is the kernel's business, not the task's
//! control flow, so the chain is identical whether or not the task was
//! interrupted (and therefore identical across execution engines,
//! whose IRQ delivery boundaries differ only in batching).
//!
//! The log is **run-length encoded at record time**: real task logs are
//! loop-dominated, so a repeated edge is held as one `(from, to,
//! count)` run instead of `count` raw entries, and each maximal run
//! folds into the chain in a single compression
//! ([`CfChain::fold_run`]). The raw edge-stream semantics stay
//! observable through [`CfMonitor::expanded`], which the engine-identity
//! and fuzz oracles use to compare exact edge streams.
//!
//! Edges that cross the monitored-region boundary are **not** dropped:
//! a transfer that leaves the region records the sentinel edge
//! `(from, OUT_OF_REGION)` and the transfer that re-enters records
//! `(OUT_OF_REGION, to)`. A detour that jumps to unmonitored code and
//! back therefore leaves evidence in the log and moves the chain head —
//! the verifier types such sentinels as inadmissible unless the exit
//! site is a declared external call. Only edges with *both* endpoints
//! outside the region (foreign tasks, kernel internals) stay invisible.
//!
//! The monitor obeys the same neutrality contract as the tracer and the
//! cycle observer: it never advances the clock and never changes an
//! execution outcome. It filters to a single monitored code region and
//! records addresses *task-relative* (rebased against the region
//! start), so the log compares directly against the base-0 static CFG
//! that `tytan-lint` recovers from the image.

use eampu::Region;
use tytan_crypto::chain::{expand_runs, CfChain, CHAIN_LEN};

/// Hard cap on logged edges (raw, i.e. sum of run counts), bounding
/// prover memory and verifier replay work. A monitor that hits the cap
/// marks itself truncated and freezes both log and chain; an honest
/// device refuses to attest a truncated run.
pub const CF_LOG_CAP: usize = 1 << 16;

/// Task-relative sentinel endpoint marking the unmonitored outside
/// world in a recorded edge: `(from, OUT_OF_REGION)` is a region exit,
/// `(OUT_OF_REGION, to)` a re-entry. Cannot collide with a genuine
/// rebased address — a monitored region is far smaller than 4 GiB.
/// Must match `tytan_lint::OUT_OF_REGION`, which types these edges
/// verifier-side (pinned by test where both crates are visible).
pub const OUT_OF_REGION: u32 = u32::MAX;

/// An attached control-flow monitor (see the module docs).
#[derive(Debug, Clone)]
pub struct CfMonitor {
    region: Region,
    /// Chain folded through every *completed* run in `runs[..len-1]`;
    /// the last run may still be extending and folds lazily in
    /// [`CfMonitor::chain_head`].
    chain: CfChain,
    runs: Vec<(u32, u32, u32)>,
    /// Raw edges recorded (sum of run counts).
    edges: u64,
    truncated: bool,
}

impl CfMonitor {
    /// A fresh monitor over the absolute code region `region`.
    pub fn new(region: Region) -> CfMonitor {
        CfMonitor {
            region,
            chain: CfChain::new(),
            runs: Vec::new(),
            edges: 0,
            truncated: false,
        }
    }

    /// The monitored absolute code region.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Records one taken edge. Both endpoints in the region record the
    /// rebased pair; boundary-crossing edges record an
    /// [`OUT_OF_REGION`] sentinel endpoint; edges entirely outside are
    /// ignored. Called from the interpreter's retire path; must stay
    /// cycle-free.
    #[inline]
    pub(crate) fn record(&mut self, from: u32, to: u32) {
        let base = self.region.start();
        let (from, to) = match (self.region.contains(from), self.region.contains(to)) {
            (true, true) => (from - base, to - base),
            (true, false) => (from - base, OUT_OF_REGION),
            (false, true) => (OUT_OF_REGION, to - base),
            (false, false) => return,
        };
        if self.edges as usize >= CF_LOG_CAP {
            self.truncated = true;
            return;
        }
        match self.runs.last_mut() {
            Some((f, t, n)) if *f == from && *t == to && *n < u32::MAX => *n += 1,
            _ => {
                // The previous run can no longer extend: fold it.
                if let Some(&(f, t, n)) = self.runs.last() {
                    self.chain.fold_run(f, t, n);
                }
                self.runs.push((from, to, 1));
            }
        }
        self.edges += 1;
    }

    /// The task-relative edge log recorded so far, as canonical maximal
    /// `(from, to, count)` runs in execution order.
    pub fn runs(&self) -> &[(u32, u32, u32)] {
        &self.runs
    }

    /// The raw edge stream the runs encode, in execution order — what
    /// pre-compression monitors logged, reconstructed lazily for the
    /// oracles that compare exact streams.
    pub fn expanded(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        expand_runs(&self.runs)
    }

    /// Raw edges recorded so far (sum of run counts).
    pub fn edges(&self) -> u64 {
        self.edges
    }

    /// The current chain head over the recorded log: the folded
    /// completed runs plus the still-open final run.
    pub fn chain_head(&self) -> [u8; CHAIN_LEN] {
        let mut chain = self.chain.clone();
        if let Some(&(f, t, n)) = self.runs.last() {
            chain.fold_run(f, t, n);
        }
        chain.head()
    }

    /// Whether the log hit [`CF_LOG_CAP`] and edges were dropped.
    pub fn truncated(&self) -> bool {
        self.truncated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_rebased_edges_and_boundary_sentinels() {
        let mut m = CfMonitor::new(Region::new(0x1000, 0x100));
        m.record(0x1000, 0x1040); // in, in
        m.record(0x1040, 0x2000); // leaves the region: exit sentinel
        m.record(0x2000, 0x2004); // entirely outside: invisible
        m.record(0x2004, 0x1000); // re-enters: entry sentinel
        m.record(0x1044, 0x1000); // in, in
        let expected = [
            (0x0, 0x40, 1),
            (0x40, OUT_OF_REGION, 1),
            (OUT_OF_REGION, 0x0, 1),
            (0x44, 0x0, 1),
        ];
        assert_eq!(m.runs(), &expected);
        assert_eq!(m.edges(), 4);
        assert_eq!(m.chain_head(), CfChain::fold_runs(expected));
        assert!(!m.truncated());
    }

    #[test]
    fn repeated_edges_coalesce_into_one_run() {
        let mut m = CfMonitor::new(Region::new(0, 0x100));
        m.record(0, 8);
        for _ in 0..1000 {
            m.record(8, 4);
        }
        m.record(0, 8);
        assert_eq!(m.runs(), &[(0, 8, 1), (8, 4, 1000), (0, 8, 1)]);
        assert_eq!(m.edges(), 1002);
        let raw: Vec<(u32, u32)> = m.expanded().collect();
        assert_eq!(raw.len(), 1002);
        assert_eq!(raw[0], (0, 8));
        assert!(raw[1..1001].iter().all(|&e| e == (8, 4)));
        assert_eq!(m.chain_head(), CfChain::fold_all(raw));
    }

    #[test]
    fn chain_head_is_stable_under_observation() {
        // chain_head folds the open run on a clone; observing it must
        // not disturb subsequent recording.
        let mut m = CfMonitor::new(Region::new(0, 0x100));
        m.record(0, 4);
        let _ = m.chain_head();
        m.record(0, 4);
        assert_eq!(m.runs(), &[(0, 4, 2)]);
        assert_eq!(m.chain_head(), CfChain::fold_runs([(0, 4, 2)]));
    }

    #[test]
    fn cap_freezes_log_and_chain() {
        let mut m = CfMonitor::new(Region::new(0, 0x100));
        for _ in 0..CF_LOG_CAP {
            m.record(0, 4);
        }
        assert!(!m.truncated());
        // The whole capped log is one run.
        assert_eq!(m.runs(), &[(0, 4, CF_LOG_CAP as u32)]);
        let head = m.chain_head();
        m.record(4, 0);
        assert!(m.truncated());
        assert_eq!(m.edges(), CF_LOG_CAP as u64);
        assert_eq!(m.chain_head(), head);
    }
}
