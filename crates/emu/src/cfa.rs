//! The control-flow monitor: the prover half of the CFA plane.
//!
//! When attached to a [`Machine`](crate::Machine), the monitor observes
//! every *taken* intra-task control-flow edge — jumps, taken
//! conditional branches, register-indirect jumps, calls and returns —
//! and folds each into a [`CfChain`] while keeping the raw edge log for
//! the verifier to replay. Interrupt entries and exits are deliberately
//! invisible: preemption is the kernel's business, not the task's
//! control flow, so the chain is identical whether or not the task was
//! interrupted (and therefore identical across execution engines,
//! whose IRQ delivery boundaries differ only in batching).
//!
//! The monitor obeys the same neutrality contract as the tracer and the
//! cycle observer: it never advances the clock and never changes an
//! execution outcome. It filters to a single monitored code region and
//! records addresses *task-relative* (rebased against the region
//! start), so the log compares directly against the base-0 static CFG
//! that `tytan-lint` recovers from the image.

use eampu::Region;
use tytan_crypto::chain::{CfChain, CHAIN_LEN};

/// Hard cap on logged edges, bounding prover memory. A monitor that
/// hits the cap marks itself truncated and freezes both log and chain;
/// an honest device refuses to attest a truncated run.
pub const CF_LOG_CAP: usize = 1 << 16;

/// An attached control-flow monitor (see the module docs).
#[derive(Debug, Clone)]
pub struct CfMonitor {
    region: Region,
    chain: CfChain,
    log: Vec<(u32, u32)>,
    truncated: bool,
}

impl CfMonitor {
    /// A fresh monitor over the absolute code region `region`.
    pub fn new(region: Region) -> CfMonitor {
        CfMonitor {
            region,
            chain: CfChain::new(),
            log: Vec::new(),
            truncated: false,
        }
    }

    /// The monitored absolute code region.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Records one taken edge if both endpoints lie in the monitored
    /// region. Called from the interpreter's retire path; must stay
    /// cycle-free.
    #[inline]
    pub(crate) fn record(&mut self, from: u32, to: u32) {
        if !self.region.contains(from) || !self.region.contains(to) {
            return;
        }
        if self.log.len() >= CF_LOG_CAP {
            self.truncated = true;
            return;
        }
        let base = self.region.start();
        let (from, to) = (from - base, to - base);
        self.chain.fold(from, to);
        self.log.push((from, to));
    }

    /// The task-relative edge log recorded so far, in execution order.
    pub fn log(&self) -> &[(u32, u32)] {
        &self.log
    }

    /// The current chain head over the recorded log.
    pub fn chain_head(&self) -> [u8; CHAIN_LEN] {
        self.chain.head()
    }

    /// Whether the log hit [`CF_LOG_CAP`] and edges were dropped.
    pub fn truncated(&self) -> bool {
        self.truncated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_rebased_edges_inside_the_region() {
        let mut m = CfMonitor::new(Region::new(0x1000, 0x100));
        m.record(0x1000, 0x1040); // in, in
        m.record(0x1040, 0x2000); // leaves the region
        m.record(0x2000, 0x1000); // re-enters from outside
        m.record(0x1044, 0x1000); // in, in
        assert_eq!(m.log(), &[(0x0, 0x40), (0x44, 0x0)]);
        assert_eq!(
            m.chain_head(),
            CfChain::fold_all([(0x0, 0x40), (0x44, 0x0)])
        );
        assert!(!m.truncated());
    }

    #[test]
    fn cap_freezes_log_and_chain() {
        let mut m = CfMonitor::new(Region::new(0, 0x100));
        for _ in 0..CF_LOG_CAP {
            m.record(0, 4);
        }
        assert!(!m.truncated());
        let head = m.chain_head();
        m.record(4, 0);
        assert!(m.truncated());
        assert_eq!(m.log().len(), CF_LOG_CAP);
        assert_eq!(m.chain_head(), head);
    }
}
