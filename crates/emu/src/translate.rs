//! The block translation engine ([`EngineKind::Translated`]).
//!
//! Basic blocks are discovered at execution time with the same boundary
//! rules the static linter uses ([`sp32::cfg`]) and "compiled" into
//! threaded code: one [`TOp`] per instruction, holding a handler
//! function pointer, pre-decoded operands, the memoised taken /
//! not-taken cycle costs, and the EA-MPU work pre-resolved under the
//! current configuration. Compiled blocks live in a translation cache
//! keyed by entry address.
//!
//! # Identity contract
//!
//! The engine is bit-identical to [`Machine::run_legacy`] — every
//! charged cycle, every architectural state transition, every EA-MPU
//! decision-log record, every trace span. Three mechanisms keep it so:
//!
//! - **Boundary preservation.** The outer loop of
//!   [`Machine::run_translated`] performs the exact poll → deliver →
//!   trap → halt → budget sequence of the fast interpreter; block
//!   execution only replaces the batched-step inner loop, and checks
//!   the same batch-break conditions after every retired op. Blocks
//!   end at every control transfer and stop before firmware-trap
//!   addresses, so a boundary can never be crossed mid-block.
//! - **Pre-resolution soundness.** EA-MPU work is specialised at
//!   compile time: a statically-resolvable check compiles to either
//!   nothing (allowed and unobserved) or a [`EaMpu::replay_transfer`] /
//!   [`EaMpu::replay_access`] of the pre-resolved decision (observed,
//!   i.e. a tracer is attached or the decision log is on), and
//!   everything else stays a live check. Every input of that
//!   specialisation — rule table, cache mode, log mode, tracer,
//!   MPU enable, firmware-trap set — is covered by a generation
//!   snapshot revalidated on entry to `run_translated`; any mismatch
//!   drops all blocks (counted as `emu_block_invalidate_mpu`).
//! - **Self-modifying-code tracking.** Pages (512 bytes) spanned by
//!   compiled blocks are marked in a bitmap; every RAM write into a
//!   marked page queues a dirty range ([`TransState::note_code_write`],
//!   hooked into the machine's write paths next to the predecode
//!   invalidation). Dirty ranges break the block batch and drop
//!   overlapping blocks (counted as `emu_block_invalidate_smc`) before
//!   the next block executes.
//!
//! Anything a block cannot express — `Int`/`Iret` (interrupt frames,
//! resume latches, IRQ trace spans), undecodable or unfetchable code,
//! MMIO-resident code — falls back to [`Machine::step`], which is the
//! shared semantic core of all three engines.

use super::{instr_class, EngineKind, Event, Fault, Machine};
use eampu::{AccessDecision, AccessKind, TransferDecision};
use sp32::cfg::{ends_block, fetch};
use sp32::{Cond, Instr, Reg};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-shift hasher for the block map. Keys are guest entry
/// addresses — word-aligned, low-entropy `u32`s — where SipHash's
/// collision resistance buys nothing and its latency sits on the
/// block-dispatch hot path. A fixed odd multiplier mixes the address
/// bits well enough for a power-of-two table.
#[derive(Default)]
pub(crate) struct EntryHasher(u64);

impl Hasher for EntryHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    fn write_u32(&mut self, n: u32) {
        self.0 = u64::from(n).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    fn finish(&self) -> u64 {
        // HashMap keeps the high bits; the multiply pushed the entropy
        // there already.
        self.0
    }
}

/// The translation cache: compiled blocks keyed by entry address.
pub(crate) type BlockMap = HashMap<u32, TBlock, BuildHasherDefault<EntryHasher>>;

/// log2 of the SMC-tracking page size.
const PAGE_SHIFT: u32 = 9;

/// Longest straight-line run compiled into one block.
const MAX_OPS: usize = 64;

/// Translation-cache capacity; overflowing flushes everything (simple,
/// and unreachable outside adversarial workloads).
const MAX_BLOCKS: usize = 4096;

/// The epilogue transfer check of one op, pre-resolved where possible.
///
/// [`Machine::step`] ends every retired instruction (except `Iret`,
/// which is step-fallback here) with `check_transfer(pc, next)`; this is
/// that check's compiled form.
#[derive(Clone, Copy)]
enum PreCheck {
    /// Nothing to do: MPU disabled at compile time, or the edge is
    /// statically allowed and nobody is observing decisions.
    Quiet,
    /// Statically resolved and observed: replay the record (and fault
    /// if the resolution was a denial).
    Replay(TransferDecision),
    /// Not statically resolvable (dynamic target under a non-empty rule
    /// table): perform the live check.
    Dynamic,
}

/// The data-access check of a memory op, pre-resolved where possible.
#[derive(Clone, Copy)]
enum AccessMode {
    /// No check and no record: MPU disabled, or no rules and unobserved.
    Quiet,
    /// No rules but observed: replay the (always-allowed) record with
    /// the runtime address.
    Replay(AccessDecision),
    /// Rules exist, the address is dynamic: live check.
    Checked,
}

/// How an op hands control back to the block loop.
enum OpExit {
    /// Retired normally: `(next_eip, branch_taken)`. The block loop
    /// runs the shared epilogue (transfer check, cost, counters).
    Cont(u32, bool),
    /// The op ran via [`Machine::step`], which already did its own
    /// epilogue; control may have transferred anywhere, end the block.
    Done,
}

type Handler = fn(&mut Machine, &TOp) -> Result<OpExit, Fault>;

/// One threaded-code op: a handler plus everything it needs, flattened.
pub(crate) struct TOp {
    run: Handler,
    pc: u32,
    fallthrough: u32,
    /// Static branch target (`Jmp`/`Jcc`/`Call`); 0 otherwise.
    target: u32,
    /// First register operand (`rd`).
    a: u8,
    /// Second register operand (`rs`).
    b: u8,
    /// Pre-sign-extended immediate / displacement.
    imm: u32,
    /// Condition for `Jcc` (placeholder elsewhere).
    cond: Cond,
    cost_not_taken: u64,
    cost_taken: u64,
    /// [`instr_class`] index for the per-class retirement counters.
    class: u8,
    /// Whether this op can queue an SMC dirty range or move a device
    /// deadline (memory ops); checked after the op retires.
    may_dirty: bool,
    /// Epilogue check on the not-taken / fall-through edge.
    pre_ft: PreCheck,
    /// Epilogue check on the taken edge.
    pre_br: PreCheck,
    /// Data-access check mode (memory ops).
    access: AccessMode,
    /// True when the op cannot fault, cannot touch memory/devices, and
    /// both edges are [`PreCheck::Quiet`] — eligible for the lean loop,
    /// whose cycle/instruction accounting stays in host registers.
    lean: bool,
}

/// One compiled basic block.
pub(crate) struct TBlock {
    entry: u32,
    /// Exclusive end of the code bytes the block was compiled from.
    end: u32,
    ops: Vec<TOp>,
}

/// Configuration snapshot compiled blocks are valid under.
#[derive(Clone, Copy, PartialEq, Eq)]
struct Snap {
    mpu_gen: u64,
    mpu_enabled: bool,
    trap_gen: u64,
}

/// Translation-engine state owned by the [`Machine`].
pub(crate) struct TransState {
    /// Compiled blocks by entry address. Taken out of the machine (via
    /// `mem::take`) for the duration of `run_translated` so handlers
    /// can borrow the machine mutably while a block is executing.
    pub(crate) blocks: BlockMap,
    /// One bit per [`PAGE_SHIFT`] page of RAM: set when some compiled
    /// block's code spans the page.
    pages: Vec<u64>,
    /// True when any bit in `pages` is set — the one-compare guard on
    /// the RAM-write hot path.
    any_pages: bool,
    /// Write ranges `[start, end)` that hit marked pages; drained (and
    /// overlapping blocks dropped) at batch boundaries.
    dirty: Vec<(u32, u32)>,
    /// The snapshot current blocks were compiled under.
    snap: Option<Snap>,
}

impl TransState {
    pub(crate) fn new(ram_size: u32) -> Self {
        let pages = (ram_size >> PAGE_SHIFT) as usize + 1;
        TransState {
            blocks: BlockMap::default(),
            pages: vec![0; pages.div_ceil(64)],
            any_pages: false,
            dirty: Vec::new(),
            snap: None,
        }
    }

    /// Drops every block and clears the page map and dirty queue.
    pub(crate) fn flush(&mut self) {
        self.blocks.clear();
        self.reset_pages();
        self.dirty.clear();
        self.snap = None;
    }

    fn reset_pages(&mut self) {
        self.pages.fill(0);
        self.any_pages = false;
    }

    fn mark_pages(&mut self, start: u32, end: u32) {
        let last = end.saturating_sub(1);
        for page in (start >> PAGE_SHIFT)..=(last >> PAGE_SHIFT) {
            if let Some(word) = self.pages.get_mut(page as usize / 64) {
                *word |= 1u64 << (page % 64);
            }
        }
        self.any_pages = true;
    }

    fn page_marked(&self, page: u32) -> bool {
        self.pages
            .get(page as usize / 64)
            .is_some_and(|w| w & (1u64 << (page % 64)) != 0)
    }

    /// Notes a RAM write of `last_offset + 1` bytes at `addr` (called
    /// from the machine's write paths, beside the predecode
    /// invalidation). Queues a dirty range when the write touches a
    /// page spanned by compiled code.
    pub(crate) fn note_code_write(&mut self, addr: u32, last_offset: u32) {
        if !self.any_pages {
            return;
        }
        let last = addr.saturating_add(last_offset);
        for page in (addr >> PAGE_SHIFT)..=(last >> PAGE_SHIFT) {
            if self.page_marked(page) {
                self.dirty.push((addr, last.saturating_add(1)));
                return;
            }
        }
    }

    fn rebuild_pages<'a>(&mut self, blocks: impl Iterator<Item = &'a TBlock>) {
        self.reset_pages();
        for block in blocks {
            self.mark_pages(block.entry, block.end);
        }
    }
}

impl Machine {
    /// Drops all compiled blocks if anything they were specialised
    /// against has changed since they were compiled: EA-MPU epoch (rule
    /// table, cache mode, decision-log mode, tracer), MPU enforcement
    /// flag, or the firmware-trap set. Task load/unload and any EA-MPU
    /// window reconfiguration land here via the rule-table epoch.
    fn revalidate_translations(&mut self) {
        let snap = Snap {
            mpu_gen: self.mpu.generation(),
            mpu_enabled: self.mpu_enabled,
            trap_gen: self.trap_gen,
        };
        if self.tcache.snap != Some(snap) {
            let dropped = self.tcache.blocks.len();
            self.tcache.flush();
            self.tcache.snap = Some(snap);
            if dropped > 0 {
                if let Some(t) = &self.trace {
                    t.tracer
                        .counters()
                        .add(t.block_invalidate_mpu, dropped as u64);
                }
            }
        }
    }

    /// Drains queued SMC dirty ranges, dropping every block whose code
    /// overlaps one.
    fn drain_dirty(&mut self, blocks: &mut BlockMap) {
        if self.tcache.dirty.is_empty() {
            return;
        }
        let ranges = std::mem::take(&mut self.tcache.dirty);
        let before = blocks.len();
        blocks.retain(|_, b| !ranges.iter().any(|&(s, e)| s < b.end && e > b.entry));
        let removed = before - blocks.len();
        if removed > 0 {
            self.tcache.rebuild_pages(blocks.values());
            if let Some(t) = &self.trace {
                t.tracer
                    .counters()
                    .add(t.block_invalidate_smc, removed as u64);
            }
        }
    }

    /// Resolves the epilogue transfer check for the edge `from -> to`
    /// at compile time. `to == None` means the target is dynamic
    /// (`Ret`, `JmpReg`), resolvable only under an empty rule table.
    fn resolve_edge(&self, from: u32, to: Option<u32>, observed: bool) -> PreCheck {
        if !self.mpu_enabled {
            // `Machine::check_transfer` returns without consulting the
            // MPU (so without logging) when enforcement is off.
            return PreCheck::Quiet;
        }
        match to {
            Some(to) => {
                let decision = self.mpu.preview_transfer(from, to);
                if observed || matches!(decision, TransferDecision::DeniedMidRegion { .. }) {
                    PreCheck::Replay(decision)
                } else {
                    PreCheck::Quiet
                }
            }
            None if !self.mpu.has_rules() => {
                // With no rules, every transfer is `Allowed` regardless
                // of the runtime target.
                if observed {
                    PreCheck::Replay(TransferDecision::Allowed)
                } else {
                    PreCheck::Quiet
                }
            }
            None => PreCheck::Dynamic,
        }
    }

    /// Resolves the data-access check of a memory op at compile time.
    /// Addresses are always dynamic, so static resolution only exists
    /// under an empty rule table (every access `AllowedUnprotected`).
    fn resolve_access(&self, observed: bool) -> AccessMode {
        if !self.mpu_enabled {
            return AccessMode::Quiet;
        }
        if !self.mpu.has_rules() {
            if observed {
                AccessMode::Replay(AccessDecision::AllowedUnprotected)
            } else {
                AccessMode::Quiet
            }
        } else {
            AccessMode::Checked
        }
    }

    /// Compiles the basic block starting at `entry`, or `None` when the
    /// first instruction is unfetchable/undecodable (the caller falls
    /// back to [`Machine::step`], which faults identically) or lives in
    /// MMIO space.
    fn compile_block(&self, entry: u32) -> Option<TBlock> {
        let observed = self.mpu.traced() || self.mpu.log_enabled();
        let mut ops: Vec<TOp> = Vec::new();
        let mut pc = entry;
        loop {
            if ops.len() >= MAX_OPS {
                break;
            }
            // Stop before firmware-trap addresses: reaching one must
            // re-enter the run loop, which returns `FirmwareTrap`
            // before executing the (virtual) instruction there.
            if pc != entry && self.trap_hit(pc) {
                break;
            }
            let Ok(fetched) = fetch(&self.ram, pc) else {
                // Unfetchable or undecodable: end the block here; if
                // execution actually reaches this pc the step fallback
                // raises the identical fault.
                break;
            };
            let fallthrough = pc + fetched.size;
            if matches!(fetched.instr, Instr::Int { .. } | Instr::Iret) {
                // Interrupt machinery (frames, resume latches, IRQ
                // trace spans) runs through the shared step path.
                ops.push(self.step_fallback_op(pc, &fetched.instr));
                pc = fallthrough;
                break;
            }
            ops.push(self.compile_op(pc, fallthrough, &fetched.instr, observed));
            pc = fallthrough;
            if ends_block(&fetched.instr) {
                break;
            }
        }
        if ops.is_empty() {
            return None;
        }
        Some(TBlock {
            entry,
            end: pc,
            ops,
        })
    }

    fn step_fallback_op(&self, pc: u32, instr: &Instr) -> TOp {
        TOp {
            run: op_step_fallback,
            pc,
            fallthrough: 0,
            target: 0,
            a: 0,
            b: 0,
            imm: 0,
            cond: Cond::Z,
            cost_not_taken: 0,
            cost_taken: 0,
            class: instr_class(instr) as u8,
            may_dirty: true,
            pre_ft: PreCheck::Quiet,
            pre_br: PreCheck::Quiet,
            access: AccessMode::Quiet,
            lean: false,
        }
    }

    fn compile_op(&self, pc: u32, fallthrough: u32, instr: &Instr, observed: bool) -> TOp {
        let ft_edge = self.resolve_edge(pc, Some(fallthrough), observed);
        let mut op = TOp {
            run: op_nop,
            pc,
            fallthrough,
            target: 0,
            a: 0,
            b: 0,
            imm: 0,
            cond: Cond::Z,
            cost_not_taken: self.cycle_model.cost(instr, false),
            cost_taken: self.cycle_model.cost(instr, true),
            class: instr_class(instr) as u8,
            may_dirty: false,
            pre_ft: ft_edge,
            pre_br: PreCheck::Quiet,
            access: AccessMode::Quiet,
            lean: false,
        };
        let mem = |op: &mut TOp| {
            op.may_dirty = true;
            op.access = self.resolve_access(observed);
        };
        match *instr {
            Instr::Nop => op.run = op_nop,
            Instr::Hlt => op.run = op_hlt,
            Instr::MovReg { rd, rs } => {
                op.run = op_mov_reg;
                op.a = rd.index() as u8;
                op.b = rs.index() as u8;
            }
            Instr::MovImm { rd, imm } => {
                op.run = op_mov_imm;
                op.a = rd.index() as u8;
                op.imm = imm;
            }
            Instr::Add { rd, rs } => {
                op.run = op_add;
                op.a = rd.index() as u8;
                op.b = rs.index() as u8;
            }
            Instr::AddImm { rd, imm } => {
                op.run = op_add_imm;
                op.a = rd.index() as u8;
                op.imm = imm as i32 as u32;
            }
            Instr::Sub { rd, rs } => {
                op.run = op_sub;
                op.a = rd.index() as u8;
                op.b = rs.index() as u8;
            }
            Instr::Mul { rd, rs } => {
                op.run = op_mul;
                op.a = rd.index() as u8;
                op.b = rs.index() as u8;
            }
            Instr::And { rd, rs } => {
                op.run = op_and;
                op.a = rd.index() as u8;
                op.b = rs.index() as u8;
            }
            Instr::Or { rd, rs } => {
                op.run = op_or;
                op.a = rd.index() as u8;
                op.b = rs.index() as u8;
            }
            Instr::Xor { rd, rs } => {
                op.run = op_xor;
                op.a = rd.index() as u8;
                op.b = rs.index() as u8;
            }
            Instr::Not { rd } => {
                op.run = op_not;
                op.a = rd.index() as u8;
            }
            Instr::Shl { rd, rs } => {
                op.run = op_shl;
                op.a = rd.index() as u8;
                op.b = rs.index() as u8;
            }
            Instr::Shr { rd, rs } => {
                op.run = op_shr;
                op.a = rd.index() as u8;
                op.b = rs.index() as u8;
            }
            Instr::Cmp { rd, rs } => {
                op.run = op_cmp;
                op.a = rd.index() as u8;
                op.b = rs.index() as u8;
            }
            Instr::CmpImm { rd, imm } => {
                op.run = op_cmp_imm;
                op.a = rd.index() as u8;
                op.imm = imm as i32 as u32;
            }
            Instr::Ldw { rd, rs, disp } => {
                op.run = op_ldw;
                op.a = rd.index() as u8;
                op.b = rs.index() as u8;
                op.imm = disp as i32 as u32;
                mem(&mut op);
            }
            Instr::Ldb { rd, rs, disp } => {
                op.run = op_ldb;
                op.a = rd.index() as u8;
                op.b = rs.index() as u8;
                op.imm = disp as i32 as u32;
                mem(&mut op);
            }
            Instr::Stw { rd, rs, disp } => {
                op.run = op_stw;
                op.a = rd.index() as u8;
                op.b = rs.index() as u8;
                op.imm = disp as i32 as u32;
                mem(&mut op);
            }
            Instr::Stb { rd, rs, disp } => {
                op.run = op_stb;
                op.a = rd.index() as u8;
                op.b = rs.index() as u8;
                op.imm = disp as i32 as u32;
                mem(&mut op);
            }
            Instr::Jmp { target } => {
                op.run = op_jmp;
                op.target = target;
                op.pre_br = self.resolve_edge(pc, Some(target), observed);
            }
            Instr::Jcc { cond, target } => {
                op.run = op_jcc;
                op.cond = cond;
                op.target = target;
                op.pre_br = self.resolve_edge(pc, Some(target), observed);
            }
            Instr::JmpReg { rs } => {
                op.run = op_jmp_reg;
                op.b = rs.index() as u8;
                op.pre_br = self.resolve_edge(pc, None, observed);
            }
            Instr::Call { target } => {
                op.run = op_call;
                op.target = target;
                op.pre_br = self.resolve_edge(pc, Some(target), observed);
                mem(&mut op);
            }
            Instr::Ret => {
                op.run = op_ret;
                op.pre_br = self.resolve_edge(pc, None, observed);
                mem(&mut op);
            }
            Instr::Push { rs } => {
                op.run = op_push;
                op.b = rs.index() as u8;
                mem(&mut op);
            }
            Instr::Pop { rd } => {
                op.run = op_pop;
                op.a = rd.index() as u8;
                mem(&mut op);
            }
            Instr::Sti => op.run = op_sti,
            Instr::Cli => op.run = op_cli,
            // Compiled via the step fallback, never through here.
            Instr::Int { .. } | Instr::Iret => unreachable!("step-fallback instruction"),
        }
        op.lean = !op.may_dirty
            && matches!(op.pre_ft, PreCheck::Quiet)
            && matches!(op.pre_br, PreCheck::Quiet);
        op
    }

    /// Executes at `self.eip`: a cached block, a freshly compiled one,
    /// or a single interpreted step when no block can start here.
    fn exec_at(&mut self, blocks: &mut BlockMap, step_limit: u64) -> Result<(), Fault> {
        // A control-flow monitor needs to see every taken edge, and
        // compiled blocks retire interior edges without surfacing them:
        // bypass the block cache entirely while one is attached (the
        // attach already flushed compiled blocks). Host speed changes,
        // guest observables do not.
        if self.cf_monitor.is_some() {
            return self.step();
        }
        let eip = self.eip;
        if let Some(block) = blocks.get(&eip) {
            if let Some(t) = &self.trace {
                t.tracer.counters().incr(t.block_hit);
            }
            return exec_block(self, block, step_limit);
        }
        if let Some(block) = self.compile_block(eip) {
            if blocks.len() >= MAX_BLOCKS {
                blocks.clear();
                self.tcache.reset_pages();
            }
            if let Some(t) = &self.trace {
                t.tracer.counters().incr(t.block_compile);
            }
            self.tcache.mark_pages(block.entry, block.end);
            let block = blocks.entry(eip).or_insert(block);
            return exec_block(self, block, step_limit);
        }
        self.step()
    }

    /// The translated run loop: boundary-identical to
    /// [`Machine::run_fast`], with the batched-step inner loop replaced
    /// by block execution whenever no IRQ is pending.
    pub(crate) fn run_translated(&mut self, max_cycles: u64) -> Event {
        self.revalidate_translations();
        // Move the block map out of `self` for the duration of the run:
        // a block must stay borrowed while its handlers mutate the
        // machine, so it cannot live inside the machine meanwhile. The
        // page map and dirty queue stay behind for the write hooks.
        let mut blocks = std::mem::take(&mut self.tcache.blocks);
        let event = self.run_translated_inner(max_cycles, &mut blocks);
        self.tcache.blocks = blocks;
        event
    }

    fn run_translated_inner(&mut self, max_cycles: u64, blocks: &mut BlockMap) -> Event {
        debug_assert_eq!(self.engine, EngineKind::Translated);
        let deadline = self.clock.saturating_add(max_cycles);
        loop {
            if self.device_deadline_dirty {
                self.recompute_device_deadline();
            }
            if self.clock >= self.device_deadline {
                self.poll_devices();
                self.recompute_device_deadline();
            }

            if self.interrupts_enabled() {
                if let Some(&vector) = self.pending_irqs.iter().next() {
                    self.pending_irqs.remove(&vector);
                    let origin = self.eip;
                    if let Err(fault) = self.dispatch_interrupt(vector, origin) {
                        self.stats.faults += 1;
                        self.note_fault();
                        return Event::Fault(fault);
                    }
                }
            }

            if self.trap_hit(self.eip) && !self.halted {
                return Event::FirmwareTrap { addr: self.eip };
            }

            if self.halted {
                self.clock += 8;
                if let Some(o) = &self.observer {
                    o.idle(8);
                }
                if self.clock >= deadline {
                    return Event::IdleBudgetExhausted;
                }
                continue;
            }

            if self.clock >= deadline {
                return Event::BudgetExhausted;
            }

            let step_limit = deadline.min(self.device_deadline);
            if !self.pending_irqs.is_empty() {
                // An IRQ is latched but masked: `Sti` anywhere makes it
                // deliverable at the very next boundary, which a block
                // cannot honour mid-run. Take the interpreter's careful
                // per-step loop until the set drains.
                loop {
                    if let Err(fault) = self.step() {
                        self.stats.faults += 1;
                        self.note_fault();
                        return Event::Fault(fault);
                    }
                    if self.halted
                        || self.device_deadline_dirty
                        || self.clock >= step_limit
                        || self.interrupts_enabled()
                        || self.trap_hit(self.eip)
                    {
                        break;
                    }
                }
            } else {
                // No pending IRQ, and none can appear before the next
                // poll boundary (devices raise IRQs only when polled),
                // so `Sti`/`Cli` inside a block are unobservable and
                // only the remaining batch-break conditions matter.
                loop {
                    self.drain_dirty(blocks);
                    if let Err(fault) = self.exec_at(blocks, step_limit) {
                        self.stats.faults += 1;
                        self.note_fault();
                        return Event::Fault(fault);
                    }
                    if self.halted
                        || self.device_deadline_dirty
                        || !self.tcache.dirty.is_empty()
                        || self.clock >= step_limit
                        || self.trap_hit(self.eip)
                    {
                        break;
                    }
                }
            }
        }
    }
}

/// The epilogue transfer check of one retired op.
#[inline]
fn apply_pre(m: &mut Machine, op: &TOp, pre: PreCheck, next: u32) -> Result<(), Fault> {
    match pre {
        PreCheck::Quiet => Ok(()),
        PreCheck::Replay(decision) => {
            m.mpu.replay_transfer(op.pc, next, decision);
            if let TransferDecision::DeniedMidRegion { expected_entry } = decision {
                return Err(Fault::MpuTransfer {
                    from: op.pc,
                    to: next,
                    expected_entry,
                });
            }
            Ok(())
        }
        PreCheck::Dynamic => m.check_transfer(op.pc, next),
    }
}

/// Runs `block` until it ends, faults, or hits a batch-break condition.
/// On `Err` the machine's `EIP` is exactly where [`Machine::step`] would
/// leave it: compiled handlers never move `EIP` (the epilogue maintains
/// the invariant `EIP == op.pc` while a handler runs, matching `step`'s
/// convention of updating `EIP` only after success), and the step
/// fallback defers to `step` itself — which *does* advance `EIP` before
/// a faulting `Int` dispatch, so the fault path must not roll it back.
///
/// Two refinements keep the hot path hot, neither observable:
///
/// - **Local accounting.** With no tracer and no observer attached, the
///   clock and retirement count accumulate in host registers and are
///   flushed to the machine before any op that could read them (memory
///   ops reach devices, which poll the clock; the step fallback is
///   `step` itself) and at every exit. Lean ops cannot fault, so the
///   flushed state is exact wherever it is observable.
/// - **Self-loop chaining.** When the block's terminator lands back on
///   its own entry and no batch-break condition fired, the block is
///   re-entered directly. Sound because every condition the batch loop
///   would re-check is already known clear: not halted (`Hlt` exits via
///   `next != entry`), no dirty ranges and no device-deadline movement
///   (memory ops break out via `may_dirty`), budget remaining (checked
///   per op), no firmware trap at the entry (the trap set cannot change
///   mid-run, and the entry was vetted when the block was first
///   entered), and no deliverable IRQ (none was pending, and devices
///   only raise at poll boundaries, which sit past `step_limit`).
fn exec_block(m: &mut Machine, block: &TBlock, step_limit: u64) -> Result<(), Fault> {
    if m.trace.is_some() || m.observer.is_some() {
        return exec_block_observed(m, block, step_limit);
    }
    let mut clock = m.clock;
    let mut retired = 0u64;
    let mut eip = m.eip;
    let result = 'run: loop {
        for op in &block.ops {
            // Step-fallback ops (the only ones with `fallthrough == 0`)
            // manage EIP through `Machine::step`; all others rely on it.
            debug_assert!(op.fallthrough == 0 || eip == op.pc);
            if op.lean {
                let Ok(OpExit::Cont(next, taken)) = (op.run)(m, op) else {
                    unreachable!("lean ops retire normally");
                };
                clock += if taken {
                    op.cost_taken
                } else {
                    op.cost_not_taken
                };
                retired += 1;
                eip = next;
                if clock >= step_limit {
                    break 'run Ok(());
                }
            } else {
                // Devices read the clock; the step fallback (the sole op
                // with `fallthrough == 0`) reads EIP and the stats. Lean
                // handlers read none of those, so inside a lean streak
                // all three live in host registers only.
                m.clock = clock;
                if op.fallthrough == 0 {
                    m.eip = eip;
                    m.stats.instructions += retired;
                    retired = 0;
                }
                match (op.run)(m, op) {
                    Err(fault) => {
                        // The step fallback does its own accounting even
                        // on the fault path (e.g. a faulting `Int`
                        // dispatch still charges cycles and may move
                        // EIP); pick both up. For compiled ops the
                        // syncs are no-ops: the machine state was just
                        // flushed and the handler failed without moving
                        // it, leaving EIP at the faulting `op.pc` as the
                        // step convention requires.
                        clock = m.clock;
                        if op.fallthrough == 0 {
                            eip = m.eip;
                        }
                        break 'run Err(fault);
                    }
                    Ok(OpExit::Done) => {
                        clock = m.clock;
                        eip = m.eip;
                        break 'run Ok(());
                    }
                    Ok(OpExit::Cont(next, taken)) => {
                        let (pre, cost) = if taken {
                            (op.pre_br, op.cost_taken)
                        } else {
                            (op.pre_ft, op.cost_not_taken)
                        };
                        if let Err(fault) = apply_pre(m, op, pre, next) {
                            break 'run Err(fault);
                        }
                        clock += cost;
                        retired += 1;
                        eip = next;
                        if clock >= step_limit {
                            break 'run Ok(());
                        }
                        if op.may_dirty && (m.device_deadline_dirty || !m.tcache.dirty.is_empty()) {
                            break 'run Ok(());
                        }
                    }
                }
            }
        }
        if eip != block.entry {
            break Ok(());
        }
    };
    m.eip = eip;
    m.clock = clock;
    m.stats.instructions += retired;
    result
}

/// The fully instrumented block loop: per-op clock/stat updates, class
/// counters, and observer callbacks, exactly as the interpreters do
/// them. Chosen whenever a tracer or cycle observer is attached.
fn exec_block_observed(m: &mut Machine, block: &TBlock, step_limit: u64) -> Result<(), Fault> {
    for op in &block.ops {
        debug_assert!(op.fallthrough == 0 || m.eip == op.pc);
        match (op.run)(m, op) {
            Err(fault) => return Err(fault),
            Ok(OpExit::Done) => return Ok(()),
            Ok(OpExit::Cont(next, taken)) => {
                let (pre, cost) = if taken {
                    (op.pre_br, op.cost_taken)
                } else {
                    (op.pre_ft, op.cost_not_taken)
                };
                apply_pre(m, op, pre, next)?;
                m.clock += cost;
                m.stats.instructions += 1;
                if let Some(t) = &m.trace {
                    t.tracer.counters().incr(t.class[op.class as usize]);
                }
                if let Some(o) = &m.observer {
                    o.instruction(op.pc, cost);
                }
                m.eip = next;
                if m.clock >= step_limit {
                    return Ok(());
                }
                if op.may_dirty && (m.device_deadline_dirty || !m.tcache.dirty.is_empty()) {
                    return Ok(());
                }
            }
        }
    }
    Ok(())
}

fn access_check(m: &mut Machine, op: &TOp, addr: u32, kind: AccessKind) -> Result<(), Fault> {
    match op.access {
        AccessMode::Quiet => Ok(()),
        AccessMode::Replay(decision) => {
            m.mpu.replay_access(op.pc, addr, kind, decision);
            Ok(())
        }
        AccessMode::Checked => m.check(op.pc, addr, kind),
    }
}

// ---------------------------------------------------------- op handlers
//
// Each handler reproduces the matching arm of `Machine::step` exactly;
// the shared epilogue (transfer check, cost, counters, EIP update) runs
// in `exec_block`.

fn op_step_fallback(m: &mut Machine, _op: &TOp) -> Result<OpExit, Fault> {
    m.step()?;
    Ok(OpExit::Done)
}

fn op_nop(_m: &mut Machine, op: &TOp) -> Result<OpExit, Fault> {
    let _ = op;
    Ok(OpExit::Cont(op.fallthrough, false))
}

fn op_hlt(m: &mut Machine, op: &TOp) -> Result<OpExit, Fault> {
    m.halted = true;
    Ok(OpExit::Cont(op.fallthrough, false))
}

fn op_mov_reg(m: &mut Machine, op: &TOp) -> Result<OpExit, Fault> {
    m.regs[op.a as usize] = m.regs[op.b as usize];
    Ok(OpExit::Cont(op.fallthrough, false))
}

fn op_mov_imm(m: &mut Machine, op: &TOp) -> Result<OpExit, Fault> {
    m.regs[op.a as usize] = op.imm;
    Ok(OpExit::Cont(op.fallthrough, false))
}

fn op_add(m: &mut Machine, op: &TOp) -> Result<OpExit, Fault> {
    let (v, c) = m.regs[op.a as usize].overflowing_add(m.regs[op.b as usize]);
    m.regs[op.a as usize] = v;
    m.set_arith_flags(v, c);
    Ok(OpExit::Cont(op.fallthrough, false))
}

fn op_add_imm(m: &mut Machine, op: &TOp) -> Result<OpExit, Fault> {
    let (v, c) = m.regs[op.a as usize].overflowing_add(op.imm);
    m.regs[op.a as usize] = v;
    m.set_arith_flags(v, c);
    Ok(OpExit::Cont(op.fallthrough, false))
}

fn op_sub(m: &mut Machine, op: &TOp) -> Result<OpExit, Fault> {
    let (v, borrow) = m.regs[op.a as usize].overflowing_sub(m.regs[op.b as usize]);
    m.regs[op.a as usize] = v;
    m.set_arith_flags(v, borrow);
    Ok(OpExit::Cont(op.fallthrough, false))
}

fn op_mul(m: &mut Machine, op: &TOp) -> Result<OpExit, Fault> {
    let v = m.regs[op.a as usize].wrapping_mul(m.regs[op.b as usize]);
    m.regs[op.a as usize] = v;
    m.set_zs_flags(v);
    Ok(OpExit::Cont(op.fallthrough, false))
}

fn op_and(m: &mut Machine, op: &TOp) -> Result<OpExit, Fault> {
    let v = m.regs[op.a as usize] & m.regs[op.b as usize];
    m.regs[op.a as usize] = v;
    m.set_zs_flags(v);
    Ok(OpExit::Cont(op.fallthrough, false))
}

fn op_or(m: &mut Machine, op: &TOp) -> Result<OpExit, Fault> {
    let v = m.regs[op.a as usize] | m.regs[op.b as usize];
    m.regs[op.a as usize] = v;
    m.set_zs_flags(v);
    Ok(OpExit::Cont(op.fallthrough, false))
}

fn op_xor(m: &mut Machine, op: &TOp) -> Result<OpExit, Fault> {
    let v = m.regs[op.a as usize] ^ m.regs[op.b as usize];
    m.regs[op.a as usize] = v;
    m.set_zs_flags(v);
    Ok(OpExit::Cont(op.fallthrough, false))
}

fn op_not(m: &mut Machine, op: &TOp) -> Result<OpExit, Fault> {
    let v = !m.regs[op.a as usize];
    m.regs[op.a as usize] = v;
    m.set_zs_flags(v);
    Ok(OpExit::Cont(op.fallthrough, false))
}

fn op_shl(m: &mut Machine, op: &TOp) -> Result<OpExit, Fault> {
    let v = m.regs[op.a as usize] << (m.regs[op.b as usize] & 31);
    m.regs[op.a as usize] = v;
    m.set_zs_flags(v);
    Ok(OpExit::Cont(op.fallthrough, false))
}

fn op_shr(m: &mut Machine, op: &TOp) -> Result<OpExit, Fault> {
    let v = m.regs[op.a as usize] >> (m.regs[op.b as usize] & 31);
    m.regs[op.a as usize] = v;
    m.set_zs_flags(v);
    Ok(OpExit::Cont(op.fallthrough, false))
}

fn op_cmp(m: &mut Machine, op: &TOp) -> Result<OpExit, Fault> {
    let (v, borrow) = m.regs[op.a as usize].overflowing_sub(m.regs[op.b as usize]);
    m.set_arith_flags(v, borrow);
    Ok(OpExit::Cont(op.fallthrough, false))
}

fn op_cmp_imm(m: &mut Machine, op: &TOp) -> Result<OpExit, Fault> {
    let (v, borrow) = m.regs[op.a as usize].overflowing_sub(op.imm);
    m.set_arith_flags(v, borrow);
    Ok(OpExit::Cont(op.fallthrough, false))
}

fn op_ldw(m: &mut Machine, op: &TOp) -> Result<OpExit, Fault> {
    let addr = m.regs[op.b as usize].wrapping_add(op.imm);
    access_check(m, op, addr, AccessKind::Read)?;
    m.regs[op.a as usize] = m.read_word(addr)?;
    Ok(OpExit::Cont(op.fallthrough, false))
}

fn op_ldb(m: &mut Machine, op: &TOp) -> Result<OpExit, Fault> {
    let addr = m.regs[op.b as usize].wrapping_add(op.imm);
    access_check(m, op, addr, AccessKind::Read)?;
    m.regs[op.a as usize] = u32::from(m.read_byte(addr)?);
    Ok(OpExit::Cont(op.fallthrough, false))
}

fn op_stw(m: &mut Machine, op: &TOp) -> Result<OpExit, Fault> {
    let addr = m.regs[op.a as usize].wrapping_add(op.imm);
    access_check(m, op, addr, AccessKind::Write)?;
    m.write_word(addr, m.regs[op.b as usize])?;
    Ok(OpExit::Cont(op.fallthrough, false))
}

fn op_stb(m: &mut Machine, op: &TOp) -> Result<OpExit, Fault> {
    let addr = m.regs[op.a as usize].wrapping_add(op.imm);
    access_check(m, op, addr, AccessKind::Write)?;
    m.write_byte(addr, m.regs[op.b as usize] as u8)?;
    Ok(OpExit::Cont(op.fallthrough, false))
}

fn op_jmp(_m: &mut Machine, op: &TOp) -> Result<OpExit, Fault> {
    Ok(OpExit::Cont(op.target, true))
}

fn op_jcc(m: &mut Machine, op: &TOp) -> Result<OpExit, Fault> {
    if op.cond.holds(m.eflags) {
        Ok(OpExit::Cont(op.target, true))
    } else {
        Ok(OpExit::Cont(op.fallthrough, false))
    }
}

fn op_jmp_reg(m: &mut Machine, op: &TOp) -> Result<OpExit, Fault> {
    Ok(OpExit::Cont(m.regs[op.b as usize], true))
}

fn op_call(m: &mut Machine, op: &TOp) -> Result<OpExit, Fault> {
    let sp = m.regs[Reg::SP.index()].wrapping_sub(4);
    access_check(m, op, sp, AccessKind::Write)?;
    m.push_word(op.fallthrough)?;
    Ok(OpExit::Cont(op.target, true))
}

fn op_ret(m: &mut Machine, op: &TOp) -> Result<OpExit, Fault> {
    access_check(m, op, m.regs[Reg::SP.index()], AccessKind::Read)?;
    let next = m.pop_word()?;
    Ok(OpExit::Cont(next, true))
}

fn op_push(m: &mut Machine, op: &TOp) -> Result<OpExit, Fault> {
    let sp = m.regs[Reg::SP.index()].wrapping_sub(4);
    access_check(m, op, sp, AccessKind::Write)?;
    let value = m.regs[op.b as usize];
    m.push_word(value)?;
    Ok(OpExit::Cont(op.fallthrough, false))
}

fn op_pop(m: &mut Machine, op: &TOp) -> Result<OpExit, Fault> {
    access_check(m, op, m.regs[Reg::SP.index()], AccessKind::Read)?;
    let value = m.pop_word()?;
    m.regs[op.a as usize] = value;
    Ok(OpExit::Cont(op.fallthrough, false))
}

fn op_sti(m: &mut Machine, op: &TOp) -> Result<OpExit, Fault> {
    m.eflags |= sp32::EFLAGS_IF;
    Ok(OpExit::Cont(op.fallthrough, false))
}

fn op_cli(m: &mut Machine, op: &TOp) -> Result<OpExit, Fault> {
    m.eflags &= !sp32::EFLAGS_IF;
    Ok(OpExit::Cont(op.fallthrough, false))
}
