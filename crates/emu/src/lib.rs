//! Cycle-annotated functional simulator of a Siskiyou-Peak-like core.
//!
//! The TyTAN paper (DAC 2015) implements its security architecture on Intel
//! Siskiyou Peak: a low-power 32-bit core with a flat physical addressing
//! model, memory-mapped I/O, and a hardware exception engine that saves
//! `EIP`/`EFLAGS` to the interrupted task's stack and vectors through an
//! IDT. This crate rebuilds that platform in software (the repository's
//! hardware substitution, see DESIGN.md):
//!
//! - [`Machine`] — the core: registers, flat RAM, the EA-MPU (from the
//!   [`eampu`] crate) checked on every guest access and control transfer,
//!   the IDT-based exception engine, and a cycle counter driven by the
//!   [`CycleModel`].
//! - [`Device`] / [`devices`] — MMIO peripherals: the RTOS tick [`devices::Timer`],
//!   a [`devices::Uart`], and the automotive [`devices::Sensor`]s and
//!   [`devices::Actuator`] of the paper's use case.
//! - **Firmware traps** — the mechanism by which trusted software
//!   components (the RTOS kernel, TyTAN's Int Mux, IPC proxy, RTM, …) are
//!   modelled: the platform registers trap addresses, the machine pauses
//!   with [`Event::FirmwareTrap`] when guest control reaches one, and the
//!   host-side component manipulates machine state and charges cycles via
//!   [`Machine::tick`] before resuming. Short trusted routines (context
//!   save/restore, task entry) are instead real SP32 code, so their cycle
//!   counts come from the instruction stream.
//!
//! # Examples
//!
//! Run a guest program to completion:
//!
//! ```
//! use sp32::asm::assemble;
//! use sp_emu::{Machine, MachineConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut machine = Machine::new(MachineConfig::default());
//! let program = assemble("movi r0, 1\nmovi r1, 2\nadd r0, r1\nhlt\n", 0x1000)?;
//! machine.load_image(0x1000, &program.bytes)?;
//! machine.set_eip(0x1000);
//! machine.run(1_000);
//! assert_eq!(machine.reg(sp32::Reg::R0), 3);
//! # Ok(())
//! # }
//! ```

pub mod cfa;
mod cycles;
pub mod debug;
mod device;
pub mod devices;
mod engine;
mod machine;

pub use cfa::{CfMonitor, CF_LOG_CAP, OUT_OF_REGION};
pub use cycles::{CycleModel, FirmwareCosts};
pub use device::Device;
pub use engine::{core_for, CpuCore, FastCore, LegacyCore, TranslatedCore};
pub use machine::{
    engine_from_env, CycleObserver, DispatchStamp, EngineKind, Event, Fault, Machine,
    MachineConfig, MachineSnapshot, MachineStats,
};
