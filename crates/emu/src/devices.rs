//! Standard peripherals: timer, UART, sensors, and an actuator.
//!
//! The sensor and actuator devices stand in for the automotive peripherals
//! of the paper's use case (Figure 2): an accelerator-pedal position
//! sensor, a radar range sensor, and the engine control actuator. Each is a
//! plain MMIO device, so EA-MPU rules can grant a single secure task
//! exclusive access to "its" sensor.

use crate::device::Device;
use eampu::Region;
use std::any::Any;

/// Register offsets of the [`Timer`].
pub mod timer_reg {
    /// Control register: bit 0 enables the timer.
    pub const CTRL: u32 = 0x0;
    /// Firing interval in cycles.
    pub const INTERVAL: u32 = 0x4;
    /// Cycles elapsed since the last firing (read-only).
    pub const COUNT: u32 = 0x8;
}

/// A periodic interval timer that raises an IRQ every `interval` cycles.
///
/// This is the tick source of the RTOS: the kernel programs the interval at
/// boot and the timer interrupt drives preemptive scheduling.
///
/// # Examples
///
/// ```
/// use sp_emu::devices::Timer;
///
/// let mut timer = Timer::new(0xf000_0000, 32);
/// timer.configure(48_000, true); // 1 kHz tick at 48 MHz
/// assert_eq!(timer.vector(), 32);
/// ```
#[derive(Debug)]
pub struct Timer {
    base: u32,
    vector: u8,
    enabled: bool,
    interval: u64,
    next_fire: u64,
}

impl Timer {
    /// Creates a disabled timer mapped at `base` raising IRQ `vector`.
    pub fn new(base: u32, vector: u8) -> Self {
        Timer {
            base,
            vector,
            enabled: false,
            interval: 0,
            next_fire: u64::MAX,
        }
    }

    /// Programs the interval (cycles) and enables/disables firing.
    pub fn configure(&mut self, interval: u64, enabled: bool) {
        self.interval = interval.max(1);
        self.enabled = enabled && interval > 0;
        // Arm relative to "now = unknown": first poll arms the timer.
        self.next_fire = u64::MAX;
    }

    /// The IRQ vector this timer raises.
    pub fn vector(&self) -> u8 {
        self.vector
    }

    /// The programmed interval in cycles.
    pub fn interval(&self) -> u64 {
        self.interval
    }
}

impl Device for Timer {
    fn range(&self) -> Region {
        Region::new(self.base, 0x10)
    }

    fn read(&mut self, offset: u32, now: u64) -> u32 {
        match offset {
            timer_reg::CTRL => self.enabled as u32,
            timer_reg::INTERVAL => self.interval as u32,
            timer_reg::COUNT => {
                if self.next_fire == u64::MAX {
                    0
                } else {
                    (self
                        .interval
                        .saturating_sub(self.next_fire.saturating_sub(now)))
                        as u32
                }
            }
            _ => 0,
        }
    }

    fn write(&mut self, offset: u32, value: u32, now: u64) {
        match offset {
            timer_reg::CTRL => {
                self.enabled = value & 1 != 0;
                if self.enabled && self.interval > 0 {
                    // Saturate: an absurd interval means "never fires"
                    // (u64::MAX doubles as the unarmed sentinel), not an
                    // arithmetic overflow.
                    self.next_fire = now.saturating_add(self.interval);
                }
            }
            timer_reg::INTERVAL => {
                self.interval = u64::from(value).max(1);
            }
            _ => {}
        }
    }

    fn poll_irq(&mut self, now: u64) -> Option<u8> {
        if !self.enabled || self.interval == 0 {
            return None;
        }
        if self.next_fire == u64::MAX {
            // Saturating: a near-MAX interval arms to the sentinel and
            // simply never fires, instead of overflowing here.
            self.next_fire = now.saturating_add(self.interval);
            return None;
        }
        if now >= self.next_fire {
            // Catch up without queueing a burst of stale ticks. The
            // saturating add terminates the loop even for intervals
            // that would wrap past `u64::MAX`.
            while self.next_fire <= now {
                self.next_fire = self.next_fire.saturating_add(self.interval);
            }
            return Some(self.vector);
        }
        None
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        if !self.enabled || self.interval == 0 {
            return None;
        }
        if self.next_fire == u64::MAX {
            // Not yet armed: the next poll arms it, so it must happen at
            // the next boundary (as a per-instruction loop would).
            return Some(now);
        }
        Some(self.next_fire)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A write-only character output device.
///
/// Guest code stores a byte to offset 0; the host reads the accumulated
/// output with [`Uart::output`].
#[derive(Debug, Default)]
pub struct Uart {
    base: u32,
    buffer: Vec<u8>,
}

impl Uart {
    /// Creates a UART mapped at `base`.
    pub fn new(base: u32) -> Self {
        Uart {
            base,
            buffer: Vec::new(),
        }
    }

    /// Everything written so far.
    pub fn output(&self) -> &[u8] {
        &self.buffer
    }

    /// The output interpreted as UTF-8 (lossy).
    pub fn output_string(&self) -> String {
        String::from_utf8_lossy(&self.buffer).into_owned()
    }
}

impl Device for Uart {
    fn range(&self) -> Region {
        Region::new(self.base, 0x4)
    }

    fn read(&mut self, _offset: u32, _now: u64) -> u32 {
        0
    }

    fn write(&mut self, offset: u32, value: u32, _now: u64) {
        if offset == 0 {
            self.buffer.push(value as u8);
        }
    }

    fn next_event(&self, _now: u64) -> Option<u64> {
        None // Never raises interrupts; polling is a no-op.
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A read-only sensor whose value follows a scripted trace.
///
/// The trace is a list of `(cycle, value)` points; a read returns the value
/// of the latest point at or before the current cycle. This reproduces the
/// pedal-position and radar-range inputs of the paper's adaptive
/// cruise-control use case with synthetic data.
///
/// # Examples
///
/// ```
/// use sp_emu::devices::Sensor;
///
/// let mut sensor = Sensor::new(0xf000_0100, 40);
/// sensor.set_trace(vec![(0, 40), (1_000, 55)]);
/// ```
#[derive(Debug)]
pub struct Sensor {
    base: u32,
    initial: u32,
    trace: Vec<(u64, u32)>,
    reads: u64,
    threshold: Option<(u32, u8)>,
    threshold_armed: bool,
}

impl Sensor {
    /// Creates a sensor at `base` with a constant `initial` value.
    pub fn new(base: u32, initial: u32) -> Self {
        Sensor {
            base,
            initial,
            trace: Vec::new(),
            reads: 0,
            threshold: None,
            threshold_armed: true,
        }
    }

    /// Raises IRQ `vector` on the rising edge of the value crossing
    /// `threshold` (re-armed when the value falls below again) — the
    /// proximity-alert style interrupt a radar front-end generates.
    pub fn set_threshold_irq(&mut self, threshold: u32, vector: u8) {
        self.threshold = Some((threshold, vector));
        self.threshold_armed = true;
    }

    /// Installs a `(cycle, value)` trace (must be sorted by cycle).
    pub fn set_trace(&mut self, trace: Vec<(u64, u32)>) {
        debug_assert!(
            trace.windows(2).all(|w| w[0].0 <= w[1].0),
            "trace must be sorted"
        );
        self.trace = trace;
    }

    /// The value the sensor reports at `now`.
    pub fn value_at(&self, now: u64) -> u32 {
        match self.trace.partition_point(|&(t, _)| t <= now) {
            0 => self.initial,
            n => self.trace[n - 1].1,
        }
    }

    /// How many times guest code has sampled the sensor.
    pub fn read_count(&self) -> u64 {
        self.reads
    }
}

impl Device for Sensor {
    fn range(&self) -> Region {
        Region::new(self.base, 0x4)
    }

    fn read(&mut self, offset: u32, now: u64) -> u32 {
        if offset == 0 {
            self.reads += 1;
            self.value_at(now)
        } else {
            0
        }
    }

    fn write(&mut self, _offset: u32, _value: u32, _now: u64) {}

    fn poll_irq(&mut self, now: u64) -> Option<u8> {
        let (threshold, vector) = self.threshold?;
        let value = self.value_at(now);
        if self.threshold_armed && value >= threshold {
            self.threshold_armed = false;
            return Some(vector);
        }
        if !self.threshold_armed && value < threshold {
            self.threshold_armed = true;
        }
        None
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        let (threshold, _) = self.threshold?;
        let value = self.value_at(now);
        // A poll right now would fire or re-arm: that transition must
        // happen at the next boundary, like per-instruction polling would.
        let pending = (self.threshold_armed && value >= threshold)
            || (!self.threshold_armed && value < threshold);
        if pending {
            return Some(now);
        }
        // Otherwise the reported value — and with it the poll state
        // machine — can only change at the next trace point.
        self.trace.iter().map(|&(t, _)| t).find(|&t| t > now)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A write-only actuator that records every command with its timestamp.
///
/// Stands in for the engine control output of the use case; the recorded
/// `(cycle, value)` log is what the Table 1 experiment analyses to verify
/// the control task kept its deadlines.
#[derive(Debug, Default)]
pub struct Actuator {
    base: u32,
    log: Vec<(u64, u32)>,
}

impl Actuator {
    /// Creates an actuator mapped at `base`.
    pub fn new(base: u32) -> Self {
        Actuator {
            base,
            log: Vec::new(),
        }
    }

    /// The `(cycle, value)` command log.
    pub fn log(&self) -> &[(u64, u32)] {
        &self.log
    }
}

impl Device for Actuator {
    fn range(&self) -> Region {
        Region::new(self.base, 0x4)
    }

    fn read(&mut self, _offset: u32, _now: u64) -> u32 {
        self.log.last().map(|&(_, v)| v).unwrap_or(0)
    }

    fn write(&mut self, offset: u32, value: u32, now: u64) {
        if offset == 0 {
            self.log.push((now, value));
        }
    }

    fn next_event(&self, _now: u64) -> Option<u64> {
        None // Never raises interrupts; polling is a no-op.
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_fires_periodically() {
        let mut t = Timer::new(0xf000_0000, 32);
        t.configure(100, true);
        assert_eq!(t.poll_irq(0), None); // arming poll
        assert_eq!(t.poll_irq(50), None);
        assert_eq!(t.poll_irq(100), Some(32));
        assert_eq!(t.poll_irq(150), None);
        assert_eq!(t.poll_irq(200), Some(32));
    }

    #[test]
    fn timer_catches_up_without_bursts() {
        let mut t = Timer::new(0xf000_0000, 32);
        t.configure(100, true);
        t.poll_irq(0);
        // A long gap produces a single IRQ, not a backlog.
        assert_eq!(t.poll_irq(1_000), Some(32));
        assert_eq!(t.poll_irq(1_001), None);
        assert_eq!(t.poll_irq(1_100), Some(32));
    }

    #[test]
    fn timer_survives_near_max_intervals_without_overflow() {
        // Found by the tytan-fuzz timer-chaos scenario: arming with an
        // interval near u64::MAX overflowed `now + interval` in the
        // arming poll. The deadline must saturate ("never fires"), not
        // wrap or panic.
        let mut t = Timer::new(0xf000_0000, 32);
        t.configure(u64::MAX - 2, true);
        assert_eq!(t.poll_irq(1_000), None); // arming poll: saturates
        assert_eq!(t.poll_irq(2_000), None);
        assert_eq!(t.next_event(2_000), Some(2_000), "sentinel re-arms");
        // Same hazard through the MMIO path: enable via CTRL at a large
        // `now` with a huge programmed interval.
        let mut t = Timer::new(0xf000_0000, 32);
        t.configure(u64::MAX / 2, false);
        t.write(timer_reg::CTRL, 1, u64::MAX / 2 + 10);
        assert_eq!(t.poll_irq(u64::MAX / 2 + 11), None);
        // And the catch-up loop: a fire deadline far in the past with a
        // huge interval must terminate (saturating) with one IRQ.
        let mut t = Timer::new(0xf000_0000, 32);
        t.configure(u64::MAX - 5, true);
        t.poll_irq(0); // arms at u64::MAX - 5
        assert_eq!(t.poll_irq(u64::MAX - 1), Some(32));
    }

    #[test]
    fn timer_disabled_never_fires() {
        let mut t = Timer::new(0xf000_0000, 32);
        t.configure(100, false);
        assert_eq!(t.poll_irq(1_000_000), None);
    }

    #[test]
    fn timer_mmio_programming() {
        let mut t = Timer::new(0xf000_0000, 32);
        t.write(timer_reg::INTERVAL, 500, 0);
        t.write(timer_reg::CTRL, 1, 0);
        assert_eq!(t.read(timer_reg::CTRL, 0), 1);
        assert_eq!(t.read(timer_reg::INTERVAL, 0), 500);
        assert_eq!(t.poll_irq(499), None);
        assert_eq!(t.poll_irq(500), Some(32));
    }

    #[test]
    fn uart_collects_output() {
        let mut u = Uart::new(0xf000_0200);
        for b in b"hi" {
            u.write(0, *b as u32, 0);
        }
        assert_eq!(u.output(), b"hi");
        assert_eq!(u.output_string(), "hi");
    }

    #[test]
    fn sensor_follows_trace() {
        let mut s = Sensor::new(0xf000_0100, 10);
        s.set_trace(vec![(100, 20), (200, 30)]);
        assert_eq!(s.value_at(0), 10);
        assert_eq!(s.value_at(99), 10);
        assert_eq!(s.value_at(100), 20);
        assert_eq!(s.value_at(150), 20);
        assert_eq!(s.value_at(200), 30);
        assert_eq!(s.value_at(10_000), 30);
    }

    #[test]
    fn sensor_counts_reads() {
        let mut s = Sensor::new(0xf000_0100, 10);
        assert_eq!(s.read(0, 0), 10);
        assert_eq!(s.read(0, 1), 10);
        assert_eq!(s.read_count(), 2);
    }

    #[test]
    fn sensor_threshold_irq_fires_on_rising_edge_only() {
        let mut s = Sensor::new(0xf000_0100, 0);
        s.set_trace(vec![(100, 50), (200, 10), (300, 80)]);
        s.set_threshold_irq(40, 44);
        assert_eq!(s.poll_irq(0), None);
        assert_eq!(s.poll_irq(100), Some(44), "first crossing fires");
        assert_eq!(s.poll_irq(150), None, "no retrigger while high");
        assert_eq!(s.poll_irq(200), None, "falling below re-arms");
        assert_eq!(s.poll_irq(300), Some(44), "second rising edge fires");
        assert_eq!(s.poll_irq(350), None);
    }

    #[test]
    fn actuator_logs_commands() {
        let mut a = Actuator::new(0xf000_0300);
        a.write(0, 42, 100);
        a.write(0, 43, 200);
        assert_eq!(a.log(), &[(100, 42), (200, 43)]);
        assert_eq!(a.read(0, 300), 43);
    }
}
