//! Guest-level kernel-queue tests on the baseline platform: real SP32
//! tasks exchanging values through a kernel message queue with blocking
//! semantics and frame-patched syscall results.

use rtos::kernel::syscall;
use rtos::{layout, Runner, RunnerConfig, StaticTask};

fn producer(count: u32) -> StaticTask {
    StaticTask {
        name: "producer".into(),
        priority: 1,
        source: format!(
            "main:\n movi r4, 1\n\
             loop:\n movi r1, {send}\n movi r2, 0\n mov r3, r4\n int {vec:#x}\n\
             addi r4, 1\n cmpi r4, {end}\n jnz loop\n\
             done:\n movi r1, {delay}\n movi r2, 1000\n int {vec:#x}\n jmp done\n",
            send = syscall::QUEUE_SEND,
            delay = syscall::DELAY,
            vec = layout::SYSCALL_VECTOR,
            end = count + 1,
        ),
        stack_len: 256,
    }
}

fn consumer() -> StaticTask {
    StaticTask {
        name: "consumer".into(),
        priority: 1,
        source: format!(
            "main:\n movi r3, out\n\
             loop:\n movi r1, {recv}\n movi r2, 0\n int {vec:#x}\n\
             stw [r3], r0\n addi r3, 4\n jmp loop\n\
             out:\n .space 128\n",
            recv = syscall::QUEUE_RECV,
            vec = layout::SYSCALL_VECTOR,
        ),
        stack_len: 256,
    }
}

#[test]
fn producer_consumer_through_kernel_queue() {
    let mut runner = Runner::new(RunnerConfig::default()).unwrap();
    let queue = runner.kernel_mut().create_queue(4);
    assert_eq!(queue.index(), 0, "tasks hardcode queue id 0");
    let _p = runner.add_task(producer(20)).unwrap();
    let c = runner.add_task(consumer()).unwrap();
    runner.start().unwrap();
    runner.run_for(3_000_000).unwrap();

    let out = runner.task_symbol(c, "out").unwrap();
    let mut received = Vec::new();
    for i in 0..20 {
        let v = runner.machine_mut().read_word(out + 4 * i).unwrap();
        if v != 0 {
            received.push(v);
        }
    }
    assert_eq!(
        received,
        (1..=20).collect::<Vec<u32>>(),
        "in-order delivery"
    );
}

#[test]
fn consumer_blocks_until_producer_sends() {
    let mut runner = Runner::new(RunnerConfig::default()).unwrap();
    runner.kernel_mut().create_queue(2);
    let c = runner.add_task(consumer()).unwrap();
    runner.start().unwrap();
    runner.run_for(500_000).unwrap();
    // No producer: the consumer must be blocked with nothing received.
    let out = runner.task_symbol(c, "out").unwrap();
    assert_eq!(runner.machine_mut().read_word(out).unwrap(), 0);
    assert_eq!(
        runner.kernel().task(c).unwrap().state,
        rtos::TaskState::BlockedOnQueue
    );
}

#[test]
fn bounded_queue_backpressure() {
    // A fast producer against a tiny queue and a slow consumer: the
    // producer must block rather than drop values; everything arrives.
    let mut runner = Runner::new(RunnerConfig::default()).unwrap();
    runner.kernel_mut().create_queue(1);
    let _p = runner.add_task(producer(10)).unwrap();
    let slow_consumer = StaticTask {
        name: "slow".into(),
        priority: 1,
        source: format!(
            "main:\n movi r3, out\n\
             loop:\n movi r1, {recv}\n movi r2, 0\n int {vec:#x}\n\
             stw [r3], r0\n addi r3, 4\n\
             movi r1, {delay}\n movi r2, 1\n int {vec:#x}\n\
             jmp loop\n\
             out:\n .space 64\n",
            recv = syscall::QUEUE_RECV,
            delay = syscall::DELAY,
            vec = layout::SYSCALL_VECTOR,
        ),
        stack_len: 256,
    };
    let c = runner.add_task(slow_consumer).unwrap();
    runner.start().unwrap();
    runner.run_for(30_000_000).unwrap();

    let out = runner.task_symbol(c, "out").unwrap();
    let received: Vec<u32> = (0..10)
        .map(|i| runner.machine_mut().read_word(out + 4 * i).unwrap())
        .collect();
    assert_eq!(
        received,
        (1..=10).collect::<Vec<u32>>(),
        "no drops under backpressure"
    );
}

#[test]
fn guest_semaphore_signalling() {
    use rtos::kernel::syscall;
    // A waiter blocks on semaphore 0; a signaller gives it every few
    // iterations. The waiter's counter tracks the number of permits.
    let waiter = StaticTask {
        name: "waiter".into(),
        priority: 2,
        source: format!(
            "main:\n movi r4, counter\n\
             loop:\n movi r1, {take}\n movi r2, 0\n int {vec:#x}\n\
             ldw r5, [r4]\n addi r5, 1\n stw [r4], r5\n jmp loop\n\
             counter:\n .word 0\n",
            take = syscall::SEM_TAKE,
            vec = layout::SYSCALL_VECTOR,
        ),
        stack_len: 256,
    };
    let signaller = StaticTask {
        name: "signaller".into(),
        priority: 1,
        source: format!(
            "main:\n movi r4, 0\n\
             loop:\n movi r1, {give}\n movi r2, 0\n int {vec:#x}\n\
             addi r4, 1\n cmpi r4, 7\n jnz loop\n\
             done:\n movi r1, {delay}\n movi r2, 1000\n int {vec:#x}\n jmp done\n",
            give = syscall::SEM_GIVE,
            delay = syscall::DELAY,
            vec = layout::SYSCALL_VECTOR,
        ),
        stack_len: 256,
    };
    let mut runner = Runner::new(RunnerConfig::default()).unwrap();
    let sem = runner.kernel_mut().create_semaphore(0, 8);
    assert_eq!(sem.index(), 0);
    let w = runner.add_task(waiter).unwrap();
    runner.add_task(signaller).unwrap();
    runner.start().unwrap();
    runner.run_for(5_000_000).unwrap();

    let counter = runner.task_symbol(w, "counter").unwrap();
    let taken = runner.machine_mut().read_word(counter).unwrap();
    assert_eq!(taken, 7, "exactly the given permits were consumed");
    assert_eq!(
        runner.kernel().task(w).unwrap().state,
        rtos::TaskState::BlockedOnQueue,
        "waiter blocked again after draining the semaphore"
    );
}

#[test]
fn host_semaphore_give_wakes_guest_waiter() {
    use rtos::kernel::syscall;
    let waiter = StaticTask {
        name: "waiter".into(),
        priority: 1,
        source: format!(
            "main:\n movi r1, {take}\n movi r2, 0\n int {vec:#x}\n\
             movi r4, woke\n movi r5, 1\n stw [r4], r5\n\
             spin:\n jmp spin\n\
             woke:\n .word 0\n",
            take = syscall::SEM_TAKE,
            vec = layout::SYSCALL_VECTOR,
        ),
        stack_len: 256,
    };
    let mut runner = Runner::new(RunnerConfig::default()).unwrap();
    let sem = runner.kernel_mut().create_semaphore(0, 1);
    let w = runner.add_task(waiter).unwrap();
    runner.start().unwrap();
    runner.run_for(200_000).unwrap();
    let woke = runner.task_symbol(w, "woke").unwrap();
    assert_eq!(
        runner.machine_mut().read_word(woke).unwrap(),
        0,
        "still blocked"
    );

    // A "device driver" gives the semaphore from host context.
    runner.kernel_mut().semaphore_give(sem).unwrap();
    runner.run_for(200_000).unwrap();
    assert_eq!(
        runner.machine_mut().read_word(woke).unwrap(),
        1,
        "woken by give"
    );
}
