//! Scheduler invariants under random operation sequences.
//!
//! Whatever interleaving of create / suspend / resume / delete / tick /
//! syscall / dispatch the platform produces, the kernel must preserve:
//! the running task is the one the machine executes, ready bookkeeping is
//! consistent, and the highest-priority ready task always wins.

use eampu::Region;
use proptest::prelude::*;
use rtos::kernel::syscall;
use rtos::{Kernel, KernelConfig, TaskHandle, TaskKind, TaskState, TcbParams};
use sp32::Reg;
use sp_emu::{Machine, MachineConfig};

#[derive(Debug, Clone)]
enum Op {
    Create { priority: u8 },
    SuspendIdx(usize),
    ResumeIdx(usize),
    DeleteIdx(usize),
    Tick,
    Dispatch,
    SaveCurrent,
    YieldCurrent,
    DelayCurrent { ticks: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..8).prop_map(|priority| Op::Create { priority }),
        any::<usize>().prop_map(Op::SuspendIdx),
        any::<usize>().prop_map(Op::ResumeIdx),
        any::<usize>().prop_map(Op::DeleteIdx),
        Just(Op::Tick),
        Just(Op::Dispatch),
        Just(Op::SaveCurrent),
        Just(Op::YieldCurrent),
        (1u8..5).prop_map(|ticks| Op::DelayCurrent { ticks }),
    ]
}

fn params(index: usize, priority: u8) -> TcbParams {
    let base = 0x1_0000 + index as u32 * 0x2000;
    TcbParams {
        name: format!("t{index}"),
        priority,
        entry: base,
        stack_top: base + 0x1000,
        code: Region::new(base, 0x400),
        data: Region::new(base + 0x400, 0xc00),
        kind: TaskKind::Normal,
    }
}

/// Checks the kernel's structural invariants.
fn check_invariants(kernel: &Kernel) {
    // The current task, if any, is live and Running.
    if let Some(current) = kernel.current() {
        let tcb = kernel.task(current).expect("current task is live");
        assert_eq!(tcb.state, TaskState::Running, "current task is Running");
    }
    // Every live task has a consistent state; only ever one Running.
    let running = kernel
        .handles()
        .into_iter()
        .filter(|&h| kernel.task(h).unwrap().state == TaskState::Running)
        .count();
    assert!(running <= 1, "at most one Running task");
    if running == 1 {
        assert!(kernel.current().is_some());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn scheduler_invariants_hold_under_random_ops(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let mut machine = Machine::new(MachineConfig::default());
        machine.set_mpu_enabled(false);
        let mut kernel = Kernel::new(KernelConfig::default());
        let mut created: Vec<TaskHandle> = Vec::new();
        let mut next_index = 0usize;

        for op in ops {
            match op {
                Op::Create { priority } if created.len() < 12 => {
                    let handle = kernel
                        .create_task(&mut machine, params(next_index, priority))
                        .expect("create succeeds");
                    created.push(handle);
                    next_index += 1;
                }
                Op::SuspendIdx(i) if !created.is_empty() => {
                    let handle = created[i % created.len()];
                    let _ = kernel.suspend_task(handle, machine.cycles());
                }
                Op::ResumeIdx(i) if !created.is_empty() => {
                    let handle = created[i % created.len()];
                    let _ = kernel.resume_task(handle, machine.cycles());
                }
                Op::DeleteIdx(i) if !created.is_empty() => {
                    let handle = created.remove(i % created.len());
                    let _ = kernel.delete_task(handle, machine.cycles());
                }
                Op::Tick => kernel.on_tick(machine.cycles()),
                Op::Dispatch if kernel.current().is_none() => {
                    kernel.dispatch(&mut machine).expect("dispatch succeeds");
                }
                Op::SaveCurrent => kernel.save_current(&machine),
                Op::YieldCurrent => {
                    if let Some(current) = kernel.current() {
                        kernel.save_current(&machine);
                        machine.set_reg(Reg::R1, syscall::YIELD);
                        let _ = kernel.handle_syscall(&mut machine, current);
                    }
                }
                Op::DelayCurrent { ticks } => {
                    if let Some(current) = kernel.current() {
                        kernel.save_current(&machine);
                        machine.set_reg(Reg::R1, syscall::DELAY);
                        machine.set_reg(Reg::R2, u32::from(ticks));
                        let _ = kernel.handle_syscall(&mut machine, current);
                    }
                }
                _ => {}
            }
            check_invariants(&kernel);
        }

        // Drain: after enough ticks every delayed task is ready again and
        // dispatch picks the highest priority among the ready set.
        for _ in 0..10 {
            kernel.on_tick(machine.cycles());
        }
        kernel.save_current(&machine);
        kernel.dispatch(&mut machine).expect("final dispatch");
        if let Some(current) = kernel.current() {
            let current_priority = kernel.task(current).unwrap().params.priority;
            for handle in kernel.handles() {
                let tcb = kernel.task(handle).unwrap();
                if tcb.state == TaskState::Ready {
                    prop_assert!(
                        tcb.params.priority <= current_priority,
                        "no ready task outranks the dispatched one"
                    );
                }
            }
        }
    }
}
