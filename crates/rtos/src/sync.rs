//! Counting semaphores.
//!
//! FreeRTOS's binary/counting semaphores are the idiom for signalling
//! between interrupt handlers and tasks; like every kernel primitive here
//! they are bounded-time (§4 requirement 3).

use crate::tcb::TaskHandle;
use std::collections::VecDeque;

/// Identifier of a kernel semaphore.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SemaphoreId(pub(crate) usize);

impl SemaphoreId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Outcome of a semaphore operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemOp {
    /// The operation completed.
    Done,
    /// The caller must block.
    Block,
}

/// A counting semaphore with a capacity ceiling.
#[derive(Debug, Clone)]
pub struct Semaphore {
    count: u32,
    max: u32,
    waiters: VecDeque<TaskHandle>,
}

impl Semaphore {
    /// Creates a semaphore with `initial` permits, capped at `max`.
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero or `initial > max`.
    pub fn new(initial: u32, max: u32) -> Self {
        assert!(max > 0, "semaphore capacity must be positive");
        assert!(initial <= max, "initial count exceeds capacity");
        Semaphore {
            count: initial,
            max,
            waiters: VecDeque::new(),
        }
    }

    /// Current permit count.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Attempts to take a permit for `task`; blocks when none available.
    pub fn take(&mut self, task: TaskHandle) -> SemOp {
        if self.count > 0 {
            self.count -= 1;
            SemOp::Done
        } else {
            self.waiters.push_back(task);
            SemOp::Block
        }
    }

    /// Releases a permit; a blocked waiter is handed it directly and
    /// returned for waking. Gives beyond `max` are ignored (FreeRTOS
    /// semantics for counting semaphores).
    pub fn give(&mut self) -> Option<TaskHandle> {
        if let Some(waiter) = self.waiters.pop_front() {
            return Some(waiter);
        }
        if self.count < self.max {
            self.count += 1;
        }
        None
    }

    /// Removes `task` from the wait list (task deletion).
    pub fn forget_task(&mut self, task: TaskHandle) {
        self.waiters.retain(|&h| h != task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: TaskHandle = TaskHandle(0);
    const B: TaskHandle = TaskHandle(1);

    #[test]
    fn take_give_cycle() {
        let mut s = Semaphore::new(1, 1);
        assert_eq!(s.take(A), SemOp::Done);
        assert_eq!(s.take(B), SemOp::Block);
        assert_eq!(s.give(), Some(B), "waiter handed the permit directly");
        assert_eq!(s.count(), 0, "direct handoff leaves the count at zero");
    }

    #[test]
    fn counting_semantics() {
        let mut s = Semaphore::new(2, 3);
        assert_eq!(s.take(A), SemOp::Done);
        assert_eq!(s.take(A), SemOp::Done);
        assert_eq!(s.take(A), SemOp::Block);
        assert_eq!(s.give(), Some(A));
        assert_eq!(s.give(), None);
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn gives_saturate_at_max() {
        let mut s = Semaphore::new(1, 1);
        assert_eq!(s.give(), None);
        assert_eq!(s.count(), 1, "give beyond max ignored");
    }

    #[test]
    fn forget_task_purges_waiter() {
        let mut s = Semaphore::new(0, 1);
        assert_eq!(s.take(B), SemOp::Block);
        s.forget_task(B);
        assert_eq!(s.give(), None, "forgotten waiter not woken");
        assert_eq!(s.count(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = Semaphore::new(0, 0);
    }
}
