//! Real-time message queues.
//!
//! FreeRTOS's central IPC primitive for *normal* tasks (secure tasks use
//! TyTAN's authenticated IPC proxy instead). Queues are fixed-capacity and
//! every operation is O(1), preserving the bounded-execution-time property
//! the paper requires of all primitives (§4).

use crate::tcb::TaskHandle;
use std::collections::VecDeque;
use std::fmt;

/// Identifier of a kernel message queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueueId(pub(crate) usize);

impl QueueId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Errors from queue operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueError {
    /// The queue id does not name a queue.
    NoSuchQueue,
}

impl fmt::Display for QueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueError::NoSuchQueue => write!(f, "no such queue"),
        }
    }
}

impl std::error::Error for QueueError {}

/// Outcome of a non-blocking queue operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueOp {
    /// The operation completed with the given value (0 for sends).
    Done(u32),
    /// The caller must block; it was appended to the wait list.
    Block,
}

/// A fixed-capacity FIFO of 32-bit messages with blocking semantics.
#[derive(Debug, Clone)]
pub struct MessageQueue {
    capacity: usize,
    items: VecDeque<u32>,
    waiting_recv: VecDeque<TaskHandle>,
    waiting_send: VecDeque<(TaskHandle, u32)>,
}

impl MessageQueue {
    /// Creates a queue holding up to `capacity` messages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        MessageQueue {
            capacity,
            items: VecDeque::with_capacity(capacity),
            waiting_recv: VecDeque::new(),
            waiting_send: VecDeque::new(),
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue holds no messages.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Attempts to send `value` on behalf of `sender`.
    ///
    /// If a receiver is waiting the value is handed over directly and the
    /// woken receiver is returned; if the queue is full the sender is
    /// queued to block.
    pub fn send(&mut self, sender: TaskHandle, value: u32) -> (QueueOp, Option<(TaskHandle, u32)>) {
        if let Some(receiver) = self.waiting_recv.pop_front() {
            return (QueueOp::Done(0), Some((receiver, value)));
        }
        if self.items.len() < self.capacity {
            self.items.push_back(value);
            (QueueOp::Done(0), None)
        } else {
            self.waiting_send.push_back((sender, value));
            (QueueOp::Block, None)
        }
    }

    /// Attempts to receive on behalf of `receiver`.
    ///
    /// Returns the dequeued value, or queues the receiver to block. If a
    /// blocked sender can now make progress, it is returned for waking.
    pub fn recv(&mut self, receiver: TaskHandle) -> (QueueOp, Option<TaskHandle>) {
        match self.items.pop_front() {
            Some(value) => {
                // Admit one blocked sender into the freed slot.
                let woken = self.waiting_send.pop_front().map(|(sender, v)| {
                    self.items.push_back(v);
                    sender
                });
                (QueueOp::Done(value), woken)
            }
            None => {
                self.waiting_recv.push_back(receiver);
                (QueueOp::Block, None)
            }
        }
    }

    /// Removes `task` from the wait lists (task deletion).
    pub fn forget_task(&mut self, task: TaskHandle) {
        self.waiting_recv.retain(|&h| h != task);
        self.waiting_send.retain(|&(h, _)| h != task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: TaskHandle = TaskHandle(0);
    const B: TaskHandle = TaskHandle(1);

    #[test]
    fn fifo_order() {
        let mut q = MessageQueue::new(4);
        q.send(A, 1);
        q.send(A, 2);
        q.send(A, 3);
        assert_eq!(q.recv(B).0, QueueOp::Done(1));
        assert_eq!(q.recv(B).0, QueueOp::Done(2));
        assert_eq!(q.recv(B).0, QueueOp::Done(3));
    }

    #[test]
    fn recv_on_empty_blocks() {
        let mut q = MessageQueue::new(1);
        assert_eq!(q.recv(B).0, QueueOp::Block);
        // A later send hands the value to the blocked receiver directly.
        let (op, handoff) = q.send(A, 42);
        assert_eq!(op, QueueOp::Done(0));
        assert_eq!(handoff, Some((B, 42)));
        assert!(q.is_empty());
    }

    #[test]
    fn send_on_full_blocks_and_recv_wakes() {
        let mut q = MessageQueue::new(1);
        assert_eq!(q.send(A, 1).0, QueueOp::Done(0));
        assert_eq!(q.send(A, 2).0, QueueOp::Block);
        let (op, woken) = q.recv(B);
        assert_eq!(op, QueueOp::Done(1));
        assert_eq!(woken, Some(A));
        // The blocked sender's value was admitted.
        assert_eq!(q.recv(B).0, QueueOp::Done(2));
    }

    #[test]
    fn forget_task_purges_waiters() {
        let mut q = MessageQueue::new(1);
        q.recv(B); // B blocks
        q.forget_task(B);
        let (_, handoff) = q.send(A, 7);
        assert_eq!(handoff, None, "forgotten task not woken");
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = MessageQueue::new(0);
    }
}
