//! The kernel: task table, scheduler, tick, syscalls, queues, timers.

use crate::layout;
use crate::queue::{MessageQueue, QueueError, QueueId, QueueOp};
use crate::sync::{SemOp, Semaphore, SemaphoreId};
use crate::tcb::{TaskHandle, TaskKind, TaskState, Tcb, TcbParams};
use crate::timer::{SoftTimer, TimerAction, TimerId};
use crate::trace::{SchedEventKind, SchedTrace};
use sp32::{Reg, EFLAGS_IF};
use sp_emu::{Fault, Machine};
use std::collections::VecDeque;
use std::fmt;

/// Invocation-reason values passed to a secure task's entry routine in
/// `r0` (§4: "TyTAN provides this information in a CPU register, which is
/// checked by the entry routine").
pub mod entry_reason {
    /// The task is being (re)started for the first time.
    pub const START: u32 = 0;
    /// The task is resumed after an interrupt; restore context from stack.
    pub const RESUME: u32 = 1;
    /// The task is invoked to receive an IPC message.
    pub const MESSAGE: u32 = 2;
}

/// Syscall opcodes, passed in `r1` with `INT` [`layout::SYSCALL_VECTOR`].
pub mod syscall {
    /// Give up the CPU for this scheduling round.
    pub const YIELD: u32 = 0;
    /// Sleep for `r2` ticks.
    pub const DELAY: u32 = 1;
    /// Suspend the calling task until another party resumes it.
    pub const SUSPEND: u32 = 2;
    /// Send `r3` to queue `r2`; blocks when full.
    pub const QUEUE_SEND: u32 = 3;
    /// Receive from queue `r2` into `r0`; blocks when empty.
    pub const QUEUE_RECV: u32 = 4;
    /// Read the kernel tick count into `r0`.
    pub const TICKS: u32 = 5;
    /// Take a permit from semaphore `r2`; blocks when none available.
    pub const SEM_TAKE: u32 = 6;
    /// Give a permit to semaphore `r2`.
    pub const SEM_GIVE: u32 = 7;
}

/// Kernel construction parameters (addresses come from the stub block).
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Address of the normal-task context-restore stub.
    pub restore_stub: u32,
    /// Address of the idle loop.
    pub idle_addr: u32,
    /// Stack used while idling (no task context live).
    pub kernel_stack_top: u32,
    /// An address inside the kernel's code region, used as the EA-MPU
    /// actor for kernel memory accesses.
    pub kernel_actor: u32,
    /// Number of priority levels.
    pub num_priorities: u8,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            restore_stub: layout::KERNEL_BASE,
            idle_addr: layout::KERNEL_BASE,
            kernel_stack_top: layout::KERNEL_STACK_TOP,
            kernel_actor: layout::KERNEL_BASE,
            num_priorities: 8,
        }
    }
}

/// Errors from kernel operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// The handle does not name a live task.
    NoSuchTask,
    /// The priority exceeds the configured range.
    BadPriority(u8),
    /// A machine access failed while manipulating task state.
    Machine(Fault),
    /// The queue id does not name a queue.
    Queue(QueueError),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::NoSuchTask => write!(f, "no such task"),
            KernelError::BadPriority(p) => write!(f, "priority {p} out of range"),
            KernelError::Machine(fault) => write!(f, "machine fault: {fault}"),
            KernelError::Queue(e) => write!(f, "queue error: {e}"),
        }
    }
}

impl std::error::Error for KernelError {}

impl From<Fault> for KernelError {
    fn from(fault: Fault) -> Self {
        KernelError::Machine(fault)
    }
}

impl From<QueueError> for KernelError {
    fn from(e: QueueError) -> Self {
        KernelError::Queue(e)
    }
}

/// What the syscall handler decided (the platform uses this for tracing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyscallOutcome {
    /// The caller stays ready (yield, ticks, completed queue op).
    Continue,
    /// The caller blocked.
    Blocked,
    /// The opcode was unknown; the caller stays ready.
    Unknown(u32),
}

/// The RTOS kernel.
///
/// Owns the task table, per-priority ready queues, the tick counter,
/// message queues, software timers, and the scheduling trace. All
/// operations are bounded-time in the number of tasks/timers (paper §4,
/// requirement 3).
#[derive(Debug)]
pub struct Kernel {
    config: KernelConfig,
    tasks: Vec<Option<Tcb>>,
    ready: Vec<VecDeque<TaskHandle>>,
    current: Option<TaskHandle>,
    tick: u64,
    queues: Vec<MessageQueue>,
    semaphores: Vec<Semaphore>,
    timers: Vec<SoftTimer>,
    trace: SchedTrace,
}

impl Kernel {
    /// Creates an empty kernel.
    ///
    /// # Panics
    ///
    /// Panics if `config.num_priorities` is zero.
    pub fn new(config: KernelConfig) -> Self {
        assert!(
            config.num_priorities > 0,
            "need at least one priority level"
        );
        let ready = (0..config.num_priorities)
            .map(|_| VecDeque::new())
            .collect();
        Kernel {
            config,
            tasks: Vec::new(),
            ready,
            current: None,
            tick: 0,
            queues: Vec::new(),
            semaphores: Vec::new(),
            timers: Vec::new(),
            trace: SchedTrace::new(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// The kernel tick counter.
    pub fn tick_count(&self) -> u64 {
        self.tick
    }

    /// The currently running task, if any.
    pub fn current(&self) -> Option<TaskHandle> {
        self.current
    }

    /// Borrows a task control block.
    pub fn task(&self, handle: TaskHandle) -> Option<&Tcb> {
        self.tasks.get(handle.0).and_then(|t| t.as_ref())
    }

    /// Mutably borrows a task control block.
    pub fn task_mut(&mut self, handle: TaskHandle) -> Option<&mut Tcb> {
        self.tasks.get_mut(handle.0).and_then(|t| t.as_mut())
    }

    /// Handles of all live tasks.
    pub fn handles(&self) -> Vec<TaskHandle> {
        self.tasks
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_ref().map(|_| TaskHandle(i)))
            .collect()
    }

    /// Finds the task whose code region contains `addr` (sender
    /// identification for the IPC proxy: the hardware reports the
    /// interrupt origin, the proxy maps it to a task).
    pub fn find_by_code_addr(&self, addr: u32) -> Option<TaskHandle> {
        self.tasks.iter().enumerate().find_map(|(i, t)| {
            t.as_ref()
                .filter(|tcb| tcb.params.code.contains(addr))
                .map(|_| TaskHandle(i))
        })
    }

    /// The scheduling trace.
    pub fn trace(&self) -> &SchedTrace {
        &self.trace
    }

    /// Mutable access to the scheduling trace (enable/disable, clear).
    pub fn trace_mut(&mut self) -> &mut SchedTrace {
        &mut self.trace
    }

    // ----- task lifecycle -----

    /// Creates a task and makes it ready.
    ///
    /// For a normal task the kernel prepares the initial interrupt frame
    /// on the task's stack "as if it had been executed before and was
    /// interrupted" (§4), so the ordinary restore path starts it. Secure
    /// task stacks are untouchable; they start through their entry routine
    /// with [`entry_reason::START`].
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::BadPriority`] or a machine fault from the
    /// stack preparation.
    pub fn create_task(
        &mut self,
        machine: &mut Machine,
        params: TcbParams,
    ) -> Result<TaskHandle, KernelError> {
        if params.priority >= self.config.num_priorities {
            return Err(KernelError::BadPriority(params.priority));
        }
        let mut tcb = Tcb::new(params);
        if tcb.params.kind == TaskKind::Normal {
            let sp = self.prepare_initial_frame(machine, &tcb)?;
            tcb.saved_sp = sp;
            tcb.started = true;
        }
        machine.tick(machine.firmware_costs().stack_prepare);

        let slot = self.tasks.iter().position(|t| t.is_none());
        let handle = match slot {
            Some(i) => {
                self.tasks[i] = Some(tcb);
                TaskHandle(i)
            }
            None => {
                self.tasks.push(Some(tcb));
                TaskHandle(self.tasks.len() - 1)
            }
        };
        self.make_ready(handle)?;
        self.trace
            .record(machine.cycles(), SchedEventKind::Created(handle));
        Ok(handle)
    }

    fn prepare_initial_frame(&self, machine: &mut Machine, tcb: &Tcb) -> Result<u32, KernelError> {
        let actor = self.config.kernel_actor;
        let sp = tcb.params.stack_top - layout::FRAME_WORDS * 4;
        for r in 0..=6u32 {
            machine.checked_write_word(actor, sp + layout::frame_reg_offset(r), 0)?;
        }
        machine.checked_write_word(actor, sp + layout::FRAME_EIP_OFFSET, tcb.params.entry)?;
        machine.checked_write_word(actor, sp + layout::FRAME_EFLAGS_OFFSET, EFLAGS_IF)?;
        Ok(sp)
    }

    /// Deletes a task: removes it from the scheduler and all wait lists.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchTask`] for a dead handle.
    pub fn delete_task(&mut self, handle: TaskHandle, now: u64) -> Result<Tcb, KernelError> {
        let tcb = self
            .tasks
            .get_mut(handle.0)
            .and_then(Option::take)
            .ok_or(KernelError::NoSuchTask)?;
        self.remove_from_ready(handle);
        if self.current == Some(handle) {
            self.current = None;
        }
        for queue in &mut self.queues {
            queue.forget_task(handle);
        }
        for semaphore in &mut self.semaphores {
            semaphore.forget_task(handle);
        }
        self.trace.record(now, SchedEventKind::Deleted(handle));
        Ok(tcb)
    }

    /// Suspends a task (loaded but not executing, §4).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchTask`] for a dead handle.
    pub fn suspend_task(&mut self, handle: TaskHandle, now: u64) -> Result<(), KernelError> {
        if self.task(handle).is_none() {
            return Err(KernelError::NoSuchTask);
        }
        self.remove_from_ready(handle);
        if self.current == Some(handle) {
            self.current = None;
        }
        self.task_mut(handle).expect("checked above").state = TaskState::Suspended;
        self.trace.record(now, SchedEventKind::Suspended(handle));
        Ok(())
    }

    /// Resumes a suspended task.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchTask`] for a dead handle.
    pub fn resume_task(&mut self, handle: TaskHandle, now: u64) -> Result<(), KernelError> {
        match self.task(handle) {
            Some(tcb) if tcb.state == TaskState::Suspended => {
                self.make_ready(handle)?;
                self.trace.record(now, SchedEventKind::Resumed(handle));
                Ok(())
            }
            Some(_) => Ok(()),
            None => Err(KernelError::NoSuchTask),
        }
    }

    /// Changes a task's scheduling priority (FreeRTOS's
    /// `vTaskPrioritySet`); a ready task is re-queued at the new level.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchTask`] or [`KernelError::BadPriority`].
    pub fn set_priority(&mut self, handle: TaskHandle, priority: u8) -> Result<(), KernelError> {
        if priority >= self.config.num_priorities {
            return Err(KernelError::BadPriority(priority));
        }
        let state = self.task(handle).ok_or(KernelError::NoSuchTask)?.state;
        self.task_mut(handle).expect("checked").params.priority = priority;
        if state == TaskState::Ready {
            self.remove_from_ready(handle);
            self.make_ready(handle)?;
        }
        Ok(())
    }

    /// Marks a task ready and enqueues it at its priority.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchTask`] for a dead handle.
    pub fn make_ready(&mut self, handle: TaskHandle) -> Result<(), KernelError> {
        let priority = {
            let tcb = self.task_mut(handle).ok_or(KernelError::NoSuchTask)?;
            tcb.state = TaskState::Ready;
            tcb.params.priority as usize
        };
        if !self.ready[priority].contains(&handle) {
            self.ready[priority].push_back(handle);
        }
        Ok(())
    }

    fn remove_from_ready(&mut self, handle: TaskHandle) {
        for queue in &mut self.ready {
            queue.retain(|&h| h != handle);
        }
    }

    // ----- trap-time operations -----

    /// Records the interrupted task's stack pointer and requeues it as
    /// ready. Call once per kernel trap, before any syscall processing.
    pub fn save_current(&mut self, machine: &Machine) {
        if let Some(handle) = self.current.take() {
            if let Some(tcb) = self.task_mut(handle) {
                tcb.saved_sp = machine.reg(Reg::SP);
                tcb.started = true;
            }
            let _ = self.make_ready(handle);
        }
    }

    /// Processes a kernel tick: advances the tick counter, wakes expired
    /// delays, fires software timers. Bounded by the number of tasks plus
    /// timers.
    pub fn on_tick(&mut self, now: u64) {
        self.tick += 1;
        self.trace.record(now, SchedEventKind::Tick(self.tick));

        let tick = self.tick;
        let woken: Vec<TaskHandle> = self
            .tasks
            .iter()
            .enumerate()
            .filter_map(|(i, t)| match t {
                Some(tcb) => match tcb.state {
                    TaskState::Delayed { until_tick } if until_tick <= tick => Some(TaskHandle(i)),
                    _ => None,
                },
                None => None,
            })
            .collect();
        for handle in woken {
            let _ = self.make_ready(handle);
        }

        let mut actions = Vec::new();
        for timer in &mut self.timers {
            if let Some(action) = timer.advance(tick) {
                actions.push(action);
            }
        }
        for action in actions {
            match action {
                TimerAction::ResumeTask(handle) => {
                    let _ = self.resume_task(handle, now);
                }
                TimerAction::QueueSend { queue, value } => {
                    if let Some(q) = self.queues.get_mut(queue.0) {
                        // Timers never block: dropped on a full queue.
                        let (_, handoff) = q.send(TaskHandle(usize::MAX), value);
                        if let Some((receiver, v)) = handoff {
                            self.complete_recv(receiver, v);
                        }
                    }
                }
                TimerAction::Noop => {}
            }
        }
    }

    fn complete_recv(&mut self, receiver: TaskHandle, value: u32) {
        if let Some(tcb) = self.task_mut(receiver) {
            tcb.pending_result = Some(value);
        }
        let _ = self.make_ready(receiver);
    }

    /// Blocks the task that just trapped (removes it from ready).
    fn block_trapped(&mut self, handle: TaskHandle, state: TaskState, now: u64) {
        self.remove_from_ready(handle);
        if let Some(tcb) = self.task_mut(handle) {
            tcb.state = state;
        }
        self.trace.record(now, SchedEventKind::Blocked(handle));
    }

    /// Handles a syscall trap from `caller`. Arguments arrive in the live
    /// registers `r1..r3` (the syscall stub deliberately preserves them).
    ///
    /// Results for normal tasks are patched into the saved frame's `r0`
    /// when the task next resumes; secure tasks cannot receive kernel
    /// results (their frames are unreadable to the OS) and should use the
    /// secure IPC facilities instead.
    pub fn handle_syscall(&mut self, machine: &mut Machine, caller: TaskHandle) -> SyscallOutcome {
        // Arguments normally arrive in the live registers the syscall stub
        // deliberately preserved. Under the hardware-context-save ablation
        // the exception engine wiped them, so the kernel reads the saved
        // frame instead (possible for normal tasks; secure tasks cannot
        // receive kernel syscall results in that mode).
        let saved_sp = self.task(caller).map(|t| t.saved_sp);
        let actor = self.config.kernel_actor;
        let hw_save = machine.hw_context_save();
        let mut arg = |index: u32, live: Reg| -> u32 {
            if hw_save {
                if let Some(sp) = saved_sp {
                    if let Ok(value) =
                        machine.checked_read_word(actor, sp + layout::frame_reg_offset(index))
                    {
                        return value;
                    }
                }
            }
            machine.reg(live)
        };
        let op = arg(1, Reg::R1);
        let arg1 = arg(2, Reg::R2);
        let arg2 = arg(3, Reg::R3);
        let now = machine.cycles();
        match op {
            syscall::YIELD => SyscallOutcome::Continue,
            syscall::DELAY => {
                let until = self.tick + u64::from(arg1.max(1));
                self.block_trapped(caller, TaskState::Delayed { until_tick: until }, now);
                SyscallOutcome::Blocked
            }
            syscall::SUSPEND => {
                let _ = self.suspend_task(caller, now);
                SyscallOutcome::Blocked
            }
            syscall::QUEUE_SEND => match self.queues.get_mut(arg1 as usize) {
                Some(q) => {
                    let (op, handoff) = q.send(caller, arg2);
                    if let Some((receiver, v)) = handoff {
                        self.complete_recv(receiver, v);
                    }
                    match op {
                        QueueOp::Done(_) => SyscallOutcome::Continue,
                        QueueOp::Block => {
                            self.block_trapped(caller, TaskState::BlockedOnQueue, now);
                            SyscallOutcome::Blocked
                        }
                    }
                }
                None => SyscallOutcome::Unknown(op),
            },
            syscall::QUEUE_RECV => match self.queues.get_mut(arg1 as usize) {
                Some(q) => {
                    let (op, woken_sender) = q.recv(caller);
                    if let Some(sender) = woken_sender {
                        let _ = self.make_ready(sender);
                    }
                    match op {
                        QueueOp::Done(value) => {
                            if let Some(tcb) = self.task_mut(caller) {
                                tcb.pending_result = Some(value);
                            }
                            SyscallOutcome::Continue
                        }
                        QueueOp::Block => {
                            self.block_trapped(caller, TaskState::BlockedOnQueue, now);
                            SyscallOutcome::Blocked
                        }
                    }
                }
                None => SyscallOutcome::Unknown(op),
            },
            syscall::SEM_TAKE => match self.semaphores.get_mut(arg1 as usize) {
                Some(semaphore) => match semaphore.take(caller) {
                    SemOp::Done => SyscallOutcome::Continue,
                    SemOp::Block => {
                        self.block_trapped(caller, TaskState::BlockedOnQueue, now);
                        SyscallOutcome::Blocked
                    }
                },
                None => SyscallOutcome::Unknown(op),
            },
            syscall::SEM_GIVE => match self.semaphores.get_mut(arg1 as usize) {
                Some(semaphore) => {
                    if let Some(woken) = semaphore.give() {
                        let _ = self.make_ready(woken);
                    }
                    SyscallOutcome::Continue
                }
                None => SyscallOutcome::Unknown(op),
            },
            syscall::TICKS => {
                let tick = self.tick as u32;
                if let Some(tcb) = self.task_mut(caller) {
                    tcb.pending_result = Some(tick);
                }
                SyscallOutcome::Continue
            }
            other => SyscallOutcome::Unknown(other),
        }
    }

    /// Picks the highest-priority ready task (round-robin within a
    /// priority) and programs the machine to resume it; idles otherwise.
    ///
    /// # Errors
    ///
    /// Returns a machine fault from frame patching.
    pub fn dispatch(&mut self, machine: &mut Machine) -> Result<(), KernelError> {
        machine.tick(machine.firmware_costs().scheduler_pick);
        let next = self
            .ready
            .iter_mut()
            .rev()
            .find_map(|queue| queue.pop_front());

        let Some(handle) = next else {
            // No ready task: run the idle loop on the kernel stack.
            machine.set_reg(Reg::SP, self.config.kernel_stack_top);
            machine.set_eflags(EFLAGS_IF);
            machine.set_eip(self.config.idle_addr);
            self.trace.record(machine.cycles(), SchedEventKind::Idle);
            return Ok(());
        };

        let (kind, started, saved_sp, stack_top, entry, pending) = {
            let tcb = self.task_mut(handle).expect("ready task is live");
            tcb.state = TaskState::Running;
            tcb.dispatches += 1;
            (
                tcb.params.kind,
                tcb.started,
                tcb.saved_sp,
                tcb.params.stack_top,
                tcb.params.entry,
                tcb.pending_result.take(),
            )
        };
        self.current = Some(handle);
        self.trace
            .record(machine.cycles(), SchedEventKind::Dispatched(handle));
        match kind {
            TaskKind::Normal => {
                if let Some(value) = pending {
                    let addr = saved_sp + layout::frame_reg_offset(0);
                    machine.checked_write_word(self.config.kernel_actor, addr, value)?;
                }
                machine.set_reg(Reg::SP, saved_sp);
                // IF stays clear until the frame's EFLAGS is restored by
                // IRET, so the restore stub cannot be preempted.
                machine.set_eflags(0);
                machine.set_eip(self.config.restore_stub);
            }
            TaskKind::Secure => {
                // Never leak kernel register contents into the task.
                machine.set_regs([0; 8]);
                if started {
                    machine.set_reg(Reg::R0, entry_reason::RESUME);
                    machine.set_reg(Reg::SP, saved_sp);
                } else {
                    machine.set_reg(Reg::R0, entry_reason::START);
                    machine.set_reg(Reg::SP, stack_top);
                    self.task_mut(handle).expect("live").started = true;
                }
                machine.set_eflags(0);
                machine.set_eip(entry);
            }
        }
        Ok(())
    }

    /// Invokes a secure task to receive an IPC message: the task is
    /// dispatched through its entry routine with
    /// [`entry_reason::MESSAGE`] in `r0` (the synchronous IPC path, §4:
    /// "the IPC proxy branches to R, whose entry routine processes m").
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchTask`] for a dead handle.
    pub fn dispatch_message(
        &mut self,
        machine: &mut Machine,
        handle: TaskHandle,
    ) -> Result<(), KernelError> {
        let (entry, started, saved_sp, stack_top) = {
            let tcb = self.task(handle).ok_or(KernelError::NoSuchTask)?;
            (
                tcb.params.entry,
                tcb.started,
                tcb.saved_sp,
                tcb.params.stack_top,
            )
        };
        self.remove_from_ready(handle);
        {
            let tcb = self.task_mut(handle).expect("checked above");
            tcb.state = TaskState::Running;
            tcb.dispatches += 1;
            tcb.started = true;
        }
        self.current = Some(handle);
        self.trace
            .record(machine.cycles(), SchedEventKind::Dispatched(handle));
        machine.set_regs([0; 8]);
        machine.set_reg(Reg::R0, entry_reason::MESSAGE);
        machine.set_reg(Reg::SP, if started { saved_sp } else { stack_top });
        machine.set_eflags(0);
        machine.set_eip(entry);
        Ok(())
    }

    // ----- queues and timers -----

    /// Creates a message queue.
    pub fn create_queue(&mut self, capacity: usize) -> QueueId {
        self.queues.push(MessageQueue::new(capacity));
        QueueId(self.queues.len() - 1)
    }

    /// Borrows a queue.
    pub fn queue(&self, id: QueueId) -> Option<&MessageQueue> {
        self.queues.get(id.0)
    }

    /// Creates a counting semaphore.
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero or `initial > max`.
    pub fn create_semaphore(&mut self, initial: u32, max: u32) -> SemaphoreId {
        self.semaphores.push(Semaphore::new(initial, max));
        SemaphoreId(self.semaphores.len() - 1)
    }

    /// Borrows a semaphore.
    pub fn semaphore(&self, id: SemaphoreId) -> Option<&Semaphore> {
        self.semaphores.get(id.0)
    }

    /// Gives a permit from host context (e.g. a device driver signalling
    /// a waiting task), waking one blocked waiter.
    pub fn semaphore_give(&mut self, id: SemaphoreId) -> Result<(), KernelError> {
        let semaphore = self
            .semaphores
            .get_mut(id.0)
            .ok_or(KernelError::NoSuchTask)?;
        if let Some(woken) = semaphore.give() {
            let _ = self.make_ready(woken);
        }
        Ok(())
    }

    /// Creates a software timer firing `period_ticks` from now.
    pub fn create_timer(
        &mut self,
        period_ticks: u64,
        periodic: bool,
        action: TimerAction,
    ) -> TimerId {
        self.timers
            .push(SoftTimer::new(self.tick, period_ticks, periodic, action));
        TimerId(self.timers.len() - 1)
    }

    /// Borrows a timer.
    pub fn timer(&self, id: TimerId) -> Option<&SoftTimer> {
        self.timers.get(id.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eampu::Region;
    use sp_emu::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig::default())
    }

    fn params(name: &str, priority: u8, kind: TaskKind) -> TcbParams {
        TcbParams {
            name: name.into(),
            priority,
            entry: 0x4000,
            stack_top: 0x6000,
            code: Region::new(0x4000, 0x400),
            data: Region::new(0x5000, 0x1000),
            kind,
        }
    }

    #[test]
    fn create_normal_task_prepares_frame() {
        let mut m = machine();
        let mut k = Kernel::new(KernelConfig::default());
        let h = k
            .create_task(&mut m, params("a", 1, TaskKind::Normal))
            .unwrap();
        let tcb = k.task(h).unwrap();
        assert!(tcb.started);
        let sp = tcb.saved_sp;
        assert_eq!(sp, 0x6000 - 36);
        assert_eq!(m.read_word(sp + layout::FRAME_EIP_OFFSET).unwrap(), 0x4000);
        assert_eq!(
            m.read_word(sp + layout::FRAME_EFLAGS_OFFSET).unwrap(),
            EFLAGS_IF
        );
    }

    #[test]
    fn create_secure_task_touches_no_memory() {
        let mut m = machine();
        let mut k = Kernel::new(KernelConfig::default());
        let h = k
            .create_task(&mut m, params("s", 1, TaskKind::Secure))
            .unwrap();
        let tcb = k.task(h).unwrap();
        assert!(!tcb.started);
        // Stack memory stays zero.
        assert_eq!(m.read_word(0x6000 - 36).unwrap(), 0);
    }

    #[test]
    fn bad_priority_rejected() {
        let mut m = machine();
        let mut k = Kernel::new(KernelConfig::default());
        let err = k
            .create_task(&mut m, params("a", 99, TaskKind::Normal))
            .unwrap_err();
        assert_eq!(err, KernelError::BadPriority(99));
    }

    #[test]
    fn dispatch_prefers_higher_priority() {
        let mut m = machine();
        let mut k = Kernel::new(KernelConfig::default());
        let low = k
            .create_task(&mut m, params("low", 1, TaskKind::Normal))
            .unwrap();
        let mut hi_params = params("hi", 5, TaskKind::Normal);
        hi_params.stack_top = 0x7000;
        let hi = k.create_task(&mut m, hi_params).unwrap();
        k.dispatch(&mut m).unwrap();
        assert_eq!(k.current(), Some(hi));
        let _ = low;
    }

    #[test]
    fn round_robin_within_priority() {
        let mut m = machine();
        let mut k = Kernel::new(KernelConfig::default());
        let a = k
            .create_task(&mut m, params("a", 1, TaskKind::Normal))
            .unwrap();
        let mut b_params = params("b", 1, TaskKind::Normal);
        b_params.stack_top = 0x7000;
        let b = k.create_task(&mut m, b_params).unwrap();

        k.dispatch(&mut m).unwrap();
        assert_eq!(k.current(), Some(a));
        k.save_current(&m); // a back to ready (tail)
        k.dispatch(&mut m).unwrap();
        assert_eq!(k.current(), Some(b));
        k.save_current(&m);
        k.dispatch(&mut m).unwrap();
        assert_eq!(k.current(), Some(a));
    }

    #[test]
    fn dispatch_idles_when_nothing_ready() {
        let mut m = machine();
        let mut k = Kernel::new(KernelConfig::default());
        k.dispatch(&mut m).unwrap();
        assert_eq!(k.current(), None);
        assert_eq!(m.eip(), k.config().idle_addr);
        assert_eq!(m.reg(Reg::SP), k.config().kernel_stack_top);
        assert!(m.interrupts_enabled());
    }

    #[test]
    fn secure_dispatch_wipes_registers_and_sets_reason() {
        let mut m = machine();
        m.set_reg(Reg::R3, 0xdead_beef);
        let mut k = Kernel::new(KernelConfig::default());
        let h = k
            .create_task(&mut m, params("s", 1, TaskKind::Secure))
            .unwrap();
        k.dispatch(&mut m).unwrap();
        assert_eq!(m.reg(Reg::R0), entry_reason::START);
        assert_eq!(m.reg(Reg::R3), 0, "kernel registers wiped");
        assert_eq!(m.reg(Reg::SP), 0x6000);
        assert_eq!(m.eip(), 0x4000);
        assert!(k.task(h).unwrap().started);

        // Preempt: context save handled by stub; kernel records sp.
        m.set_reg(Reg::SP, 0x5f00);
        k.save_current(&m);
        k.dispatch(&mut m).unwrap();
        assert_eq!(m.reg(Reg::R0), entry_reason::RESUME);
        assert_eq!(m.reg(Reg::SP), 0x5f00);
    }

    #[test]
    fn delay_syscall_blocks_until_tick() {
        let mut m = machine();
        let mut k = Kernel::new(KernelConfig::default());
        let h = k
            .create_task(&mut m, params("a", 1, TaskKind::Normal))
            .unwrap();
        k.dispatch(&mut m).unwrap();
        k.save_current(&m);
        m.set_reg(Reg::R1, syscall::DELAY);
        m.set_reg(Reg::R2, 3);
        assert_eq!(k.handle_syscall(&mut m, h), SyscallOutcome::Blocked);
        assert_eq!(
            k.task(h).unwrap().state,
            TaskState::Delayed { until_tick: 3 }
        );

        k.dispatch(&mut m).unwrap();
        assert_eq!(k.current(), None, "nothing ready while delayed");

        for _ in 0..3 {
            k.on_tick(m.cycles());
        }
        assert_eq!(k.task(h).unwrap().state, TaskState::Ready);
        k.dispatch(&mut m).unwrap();
        assert_eq!(k.current(), Some(h));
    }

    #[test]
    fn suspend_resume_cycle() {
        let mut m = machine();
        let mut k = Kernel::new(KernelConfig::default());
        let h = k
            .create_task(&mut m, params("a", 1, TaskKind::Normal))
            .unwrap();
        k.suspend_task(h, 0).unwrap();
        assert_eq!(k.task(h).unwrap().state, TaskState::Suspended);
        k.dispatch(&mut m).unwrap();
        assert_eq!(k.current(), None);
        k.resume_task(h, 0).unwrap();
        k.dispatch(&mut m).unwrap();
        assert_eq!(k.current(), Some(h));
    }

    #[test]
    fn queue_send_recv_between_tasks() {
        let mut m = machine();
        let mut k = Kernel::new(KernelConfig::default());
        let a = k
            .create_task(&mut m, params("a", 1, TaskKind::Normal))
            .unwrap();
        let mut b_params = params("b", 1, TaskKind::Normal);
        b_params.stack_top = 0x7000;
        let b = k.create_task(&mut m, b_params).unwrap();
        let q = k.create_queue(2);

        // b receives first: blocks.
        m.set_reg(Reg::R1, syscall::QUEUE_RECV);
        m.set_reg(Reg::R2, q.index() as u32);
        assert_eq!(k.handle_syscall(&mut m, b), SyscallOutcome::Blocked);

        // a sends: direct handoff wakes b with the value pending.
        m.set_reg(Reg::R1, syscall::QUEUE_SEND);
        m.set_reg(Reg::R2, q.index() as u32);
        m.set_reg(Reg::R3, 99);
        assert_eq!(k.handle_syscall(&mut m, a), SyscallOutcome::Continue);
        assert_eq!(k.task(b).unwrap().state, TaskState::Ready);
        assert_eq!(k.task(b).unwrap().pending_result, Some(99));
    }

    #[test]
    fn pending_result_patched_into_frame_on_dispatch() {
        let mut m = machine();
        let mut k = Kernel::new(KernelConfig::default());
        let h = k
            .create_task(&mut m, params("a", 1, TaskKind::Normal))
            .unwrap();
        k.task_mut(h).unwrap().pending_result = Some(0xabcd);
        k.dispatch(&mut m).unwrap();
        let sp = m.reg(Reg::SP);
        let r0 = m.read_word(sp + layout::frame_reg_offset(0)).unwrap();
        assert_eq!(r0, 0xabcd);
    }

    #[test]
    fn ticks_syscall_reports_tick_count() {
        let mut m = machine();
        let mut k = Kernel::new(KernelConfig::default());
        let h = k
            .create_task(&mut m, params("a", 1, TaskKind::Normal))
            .unwrap();
        k.on_tick(0);
        k.on_tick(0);
        m.set_reg(Reg::R1, syscall::TICKS);
        assert_eq!(k.handle_syscall(&mut m, h), SyscallOutcome::Continue);
        assert_eq!(k.task(h).unwrap().pending_result, Some(2));
    }

    #[test]
    fn unknown_syscall_reported() {
        let mut m = machine();
        let mut k = Kernel::new(KernelConfig::default());
        let h = k
            .create_task(&mut m, params("a", 1, TaskKind::Normal))
            .unwrap();
        m.set_reg(Reg::R1, 999);
        assert_eq!(k.handle_syscall(&mut m, h), SyscallOutcome::Unknown(999));
    }

    #[test]
    fn delete_task_purges_everywhere() {
        let mut m = machine();
        let mut k = Kernel::new(KernelConfig::default());
        let h = k
            .create_task(&mut m, params("a", 1, TaskKind::Normal))
            .unwrap();
        let q = k.create_queue(1);
        m.set_reg(Reg::R1, syscall::QUEUE_RECV);
        m.set_reg(Reg::R2, q.index() as u32);
        k.handle_syscall(&mut m, h);
        k.delete_task(h, 0).unwrap();
        assert!(k.task(h).is_none());
        assert_eq!(k.delete_task(h, 0).unwrap_err(), KernelError::NoSuchTask);
        k.dispatch(&mut m).unwrap();
        assert_eq!(k.current(), None);
        // Slot is reused by the next creation.
        let h2 = k
            .create_task(&mut m, params("b", 1, TaskKind::Normal))
            .unwrap();
        assert_eq!(h2.index(), h.index());
    }

    #[test]
    fn software_timer_resumes_task() {
        let mut m = machine();
        let mut k = Kernel::new(KernelConfig::default());
        let h = k
            .create_task(&mut m, params("a", 1, TaskKind::Normal))
            .unwrap();
        k.suspend_task(h, 0).unwrap();
        k.create_timer(2, false, TimerAction::ResumeTask(h));
        k.on_tick(0);
        assert_eq!(k.task(h).unwrap().state, TaskState::Suspended);
        k.on_tick(0);
        assert_eq!(k.task(h).unwrap().state, TaskState::Ready);
    }

    #[test]
    fn set_priority_requeues_and_validates() {
        let mut m = machine();
        let mut k = Kernel::new(KernelConfig::default());
        let low = k
            .create_task(&mut m, params("low", 1, TaskKind::Normal))
            .unwrap();
        let mut other = params("other", 3, TaskKind::Normal);
        other.stack_top = 0x7000;
        let hi = k.create_task(&mut m, other).unwrap();
        // Raise `low` above `hi`: it must now be picked first.
        k.set_priority(low, 5).unwrap();
        k.dispatch(&mut m).unwrap();
        assert_eq!(k.current(), Some(low));
        assert_eq!(
            k.set_priority(hi, 99).unwrap_err(),
            KernelError::BadPriority(99)
        );
        assert_eq!(
            k.set_priority(TaskHandle::from_index(42), 1).unwrap_err(),
            KernelError::NoSuchTask
        );
    }

    #[test]
    fn find_by_code_addr_identifies_tasks() {
        let mut m = machine();
        let mut k = Kernel::new(KernelConfig::default());
        let h = k
            .create_task(&mut m, params("a", 1, TaskKind::Normal))
            .unwrap();
        assert_eq!(k.find_by_code_addr(0x4080), Some(h));
        assert_eq!(k.find_by_code_addr(0x9000), None);
    }
}
