//! The baseline platform: unmodified-FreeRTOS semantics.
//!
//! [`Runner`] wires a [`Machine`], the [`Kernel`], the baseline interrupt
//! stubs and a tick timer into the platform the paper compares TyTAN
//! against (the "FreeRTOS" rows of Tables 2, 3, 4 and 8): static task
//! configuration at boot, normal tasks only, no EA-MPU enforcement, no
//! register wiping on interrupts.

use crate::kernel::{Kernel, KernelConfig, KernelError};
use crate::layout;
use crate::stubs::{build_stub_block, StubBlock, StubKind, StubSpec};
use crate::tcb::{TaskHandle, TaskKind, TcbParams};
use eampu::Region;
use sp32::asm::{assemble, AssembleError, Program};
use sp32::Reg;
use sp_emu::devices::{Timer, Uart};
use sp_emu::{Event, Fault, Machine, MachineConfig};
use std::collections::BTreeMap;
use std::fmt;

/// Construction parameters for the baseline platform.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Machine parameters.
    pub machine: MachineConfig,
    /// Cycles between kernel ticks (e.g. 32,000 cycles = 1.5 kHz at the
    /// paper's 48 MHz clock).
    pub tick_interval: u64,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            machine: MachineConfig::default(),
            tick_interval: 32_000,
        }
    }
}

/// A statically-configured task, loaded at boot (the TrustLite model the
/// paper contrasts with TyTAN's dynamic loading).
#[derive(Debug, Clone)]
pub struct StaticTask {
    /// Task name.
    pub name: String,
    /// Scheduling priority.
    pub priority: u8,
    /// SP32 assembly with a `main:` label; assembled in place at the
    /// task's load address.
    pub source: String,
    /// Stack size in bytes.
    pub stack_len: u32,
}

/// Errors from the baseline platform.
#[derive(Debug)]
pub enum RunnerError {
    /// Task source failed to assemble.
    Assemble(AssembleError),
    /// A kernel operation failed.
    Kernel(KernelError),
    /// The machine faulted.
    Fault(Fault),
    /// Execution reached an unregistered firmware trap.
    UnexpectedTrap(u32),
    /// The task heap is exhausted.
    OutOfMemory,
    /// The task source does not define `main`.
    NoMain,
}

impl fmt::Display for RunnerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunnerError::Assemble(e) => write!(f, "assembly failed: {e}"),
            RunnerError::Kernel(e) => write!(f, "kernel error: {e}"),
            RunnerError::Fault(fault) => write!(f, "machine fault: {fault}"),
            RunnerError::UnexpectedTrap(addr) => write!(f, "unexpected trap at {addr:#010x}"),
            RunnerError::OutOfMemory => write!(f, "task heap exhausted"),
            RunnerError::NoMain => write!(f, "task source defines no `main` label"),
        }
    }
}

impl std::error::Error for RunnerError {}

impl From<AssembleError> for RunnerError {
    fn from(e: AssembleError) -> Self {
        RunnerError::Assemble(e)
    }
}

impl From<KernelError> for RunnerError {
    fn from(e: KernelError) -> Self {
        RunnerError::Kernel(e)
    }
}

impl From<Fault> for RunnerError {
    fn from(e: Fault) -> Self {
        RunnerError::Fault(e)
    }
}

/// The baseline FreeRTOS-like platform.
///
/// # Examples
///
/// See the crate-level example; typical use is `new` → `add_task`… →
/// `start` → `run_for`.
#[derive(Debug)]
pub struct Runner {
    machine: Machine,
    kernel: Kernel,
    stubs: StubBlock,
    programs: BTreeMap<TaskHandle, Program>,
    next_base: u32,
    started: bool,
}

impl Runner {
    /// Boots the platform: loads the baseline interrupt stubs, programs
    /// the IDT, and attaches the tick timer and UART.
    ///
    /// # Errors
    ///
    /// Returns [`RunnerError::Fault`] if boot-time memory writes fail.
    pub fn new(config: RunnerConfig) -> Result<Self, RunnerError> {
        let mut machine = Machine::new(config.machine.clone());
        // Baseline platform: no EA-MPU (the paper's comparison rows run on
        // the unmodified platform).
        machine.set_mpu_enabled(false);

        let specs = [
            StubSpec {
                vector: layout::TICK_VECTOR,
                kind: StubKind::Baseline,
            },
            StubSpec {
                vector: layout::SYSCALL_VECTOR,
                kind: StubKind::Baseline,
            },
        ];
        let stubs = build_stub_block(layout::KERNEL_BASE, layout::KERNEL_TRAP, &specs)
            .expect("stub generation is infallible for valid specs");
        machine.load_image(layout::KERNEL_BASE, &stubs.program.bytes)?;
        machine.add_firmware_trap(layout::KERNEL_TRAP);

        machine.set_idt_base(layout::IDT_BASE);
        machine.set_idt_entry(layout::TICK_VECTOR, stubs.save_stubs[&layout::TICK_VECTOR])?;
        machine.set_idt_entry(
            layout::SYSCALL_VECTOR,
            stubs.save_stubs[&layout::SYSCALL_VECTOR],
        )?;

        let mut timer = Timer::new(layout::TIMER_BASE, layout::TICK_VECTOR);
        timer.configure(config.tick_interval, true);
        machine.add_device(Box::new(timer));
        machine.add_device(Box::new(Uart::new(layout::UART_BASE)));

        let kernel = Kernel::new(KernelConfig {
            restore_stub: stubs.restore_stub,
            idle_addr: stubs.idle,
            kernel_stack_top: layout::KERNEL_STACK_TOP,
            kernel_actor: layout::KERNEL_BASE,
            num_priorities: 8,
        });

        Ok(Runner {
            machine,
            kernel,
            stubs,
            programs: BTreeMap::new(),
            next_base: layout::HEAP_BASE,
            started: false,
        })
    }

    /// The machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to the machine (inspection, device access).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Mutable access to the kernel.
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// The assembled stub block (for phase-boundary addresses in benches).
    pub fn stubs(&self) -> &StubBlock {
        &self.stubs
    }

    /// Assembles `task.source` at the next free heap address and creates
    /// the task.
    ///
    /// # Errors
    ///
    /// Returns [`RunnerError::Assemble`] for bad source,
    /// [`RunnerError::NoMain`] if `main` is missing,
    /// [`RunnerError::OutOfMemory`] when the heap is exhausted.
    pub fn add_task(&mut self, task: StaticTask) -> Result<TaskHandle, RunnerError> {
        let base = self.next_base;
        let program = assemble(&task.source, base)?;
        let entry = program.symbol("main").ok_or(RunnerError::NoMain)?;
        let code_len = (program.bytes.len() as u32 + 3) & !3;
        let total = code_len + task.stack_len;
        if base + total > layout::HEAP_END {
            return Err(RunnerError::OutOfMemory);
        }
        self.machine.load_image(base, &program.bytes)?;
        let stack_top = base + total;
        let handle = self.kernel.create_task(
            &mut self.machine,
            TcbParams {
                name: task.name,
                priority: task.priority,
                entry,
                stack_top,
                code: Region::new(base, code_len),
                data: Region::new(base + code_len, task.stack_len),
                kind: TaskKind::Normal,
            },
        )?;
        self.programs.insert(handle, program);
        self.next_base = base + total;
        Ok(handle)
    }

    /// Resolves a label inside a task's program to its absolute address.
    pub fn task_symbol(&self, handle: TaskHandle, label: &str) -> Option<u32> {
        self.programs.get(&handle)?.symbol(label)
    }

    /// Dispatches the first task. Call once after all [`Runner::add_task`]
    /// calls.
    ///
    /// # Errors
    ///
    /// Returns a kernel error from the first dispatch.
    pub fn start(&mut self) -> Result<(), RunnerError> {
        if !self.started {
            self.kernel.dispatch(&mut self.machine)?;
            self.started = true;
        }
        Ok(())
    }

    /// Runs the platform for `cycles` machine cycles, servicing kernel
    /// traps.
    ///
    /// # Errors
    ///
    /// Returns [`RunnerError::Fault`] if guest code faults, or
    /// [`RunnerError::UnexpectedTrap`] for a trap the runner does not own.
    pub fn run_for(&mut self, cycles: u64) -> Result<(), RunnerError> {
        assert!(self.started, "call start() before run_for()");
        let deadline = self.machine.cycles().saturating_add(cycles);
        while self.machine.cycles() < deadline {
            let budget = deadline - self.machine.cycles();
            match self.machine.run(budget) {
                Event::FirmwareTrap { addr } if addr == layout::KERNEL_TRAP => {
                    self.handle_kernel_trap()?;
                }
                Event::FirmwareTrap { addr } => return Err(RunnerError::UnexpectedTrap(addr)),
                Event::Fault(fault) => return Err(RunnerError::Fault(fault)),
                Event::BudgetExhausted | Event::IdleBudgetExhausted => {}
            }
        }
        Ok(())
    }

    /// Runs until the next machine event; kernel traps are serviced,
    /// other firmware traps (benchmark phase boundaries) are returned
    /// unserviced for the caller to timestamp.
    ///
    /// # Errors
    ///
    /// Returns [`RunnerError::Fault`] if guest code faults.
    pub fn run_one_event(&mut self, max_cycles: u64) -> Result<Event, RunnerError> {
        if !self.started {
            self.start()?;
        }
        let event = self.machine.run(max_cycles);
        match event {
            Event::FirmwareTrap { addr } if addr == layout::KERNEL_TRAP => {
                self.handle_kernel_trap()?;
            }
            Event::Fault(fault) => return Err(RunnerError::Fault(fault)),
            _ => {}
        }
        Ok(event)
    }

    fn handle_kernel_trap(&mut self) -> Result<(), RunnerError> {
        let vector = self.machine.reg(Reg::R0) as u8;
        let caller = self.kernel.current();
        self.kernel.save_current(&self.machine);
        match vector {
            layout::TICK_VECTOR => {
                let now = self.machine.cycles();
                self.kernel.on_tick(now);
            }
            layout::SYSCALL_VECTOR => {
                if let Some(caller) = caller {
                    let _ = self.kernel.handle_syscall(&mut self.machine, caller);
                }
            }
            _ => {}
        }
        self.kernel.dispatch(&mut self.machine)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::syscall;
    use crate::trace::SchedEventKind;

    /// A task that increments a counter forever.
    fn counter_task(name: &str, priority: u8) -> StaticTask {
        StaticTask {
            name: name.into(),
            priority,
            source: "main:\n movi r1, counter\n\
                     loop:\n ldw r2, [r1]\n addi r2, 1\n stw [r1], r2\n jmp loop\n\
                     counter:\n .word 0\n"
                .to_string(),
            stack_len: 256,
        }
    }

    #[test]
    fn single_task_runs_and_counts() {
        let mut r = Runner::new(RunnerConfig::default()).unwrap();
        let h = r.add_task(counter_task("count", 1)).unwrap();
        r.start().unwrap();
        r.run_for(200_000).unwrap();
        let counter_addr = r.task_symbol(h, "counter").unwrap();
        let count = r.machine_mut().read_word(counter_addr).unwrap();
        assert!(count > 1_000, "counter advanced: {count}");
    }

    #[test]
    fn two_equal_priority_tasks_share_cpu() {
        let mut r = Runner::new(RunnerConfig::default()).unwrap();
        let a = r.add_task(counter_task("a", 1)).unwrap();
        let b = r.add_task(counter_task("b", 1)).unwrap();
        r.start().unwrap();
        r.run_for(2_000_000).unwrap();
        let ca_addr = r.task_symbol(a, "counter").unwrap();
        let ca = r.machine_mut().read_word(ca_addr).unwrap();
        let cb_addr = r.task_symbol(b, "counter").unwrap();
        let cb = r.machine_mut().read_word(cb_addr).unwrap();
        assert!(ca > 0 && cb > 0, "both progressed: {ca} {cb}");
        let ratio = ca as f64 / cb as f64;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "roughly fair split: {ca} vs {cb}"
        );
    }

    #[test]
    fn higher_priority_task_starves_lower() {
        let mut r = Runner::new(RunnerConfig::default()).unwrap();
        let hi = r.add_task(counter_task("hi", 5)).unwrap();
        let lo = r.add_task(counter_task("lo", 1)).unwrap();
        r.start().unwrap();
        r.run_for(1_000_000).unwrap();
        let chi_addr = r.task_symbol(hi, "counter").unwrap();
        let chi = r.machine_mut().read_word(chi_addr).unwrap();
        let clo_addr = r.task_symbol(lo, "counter").unwrap();
        let clo = r.machine_mut().read_word(clo_addr).unwrap();
        assert!(chi > 1_000);
        assert_eq!(clo, 0, "lower priority never ran");
    }

    #[test]
    fn delay_syscall_yields_cpu_to_other_task() {
        // Task a delays every iteration; task b runs free. b should vastly
        // outpace a.
        let delaying = StaticTask {
            name: "a".into(),
            priority: 1,
            source: format!(
                "main:\n movi r1, counter\n\
                 loop:\n ldw r2, [r1]\n addi r2, 1\n stw [r1], r2\n\
                 movi r1, {op}\n movi r2, 1\n int {vec:#x}\n\
                 movi r1, counter\n jmp loop\n\
                 counter:\n .word 0\n",
                op = syscall::DELAY,
                vec = layout::SYSCALL_VECTOR,
            ),
            stack_len: 256,
        };
        let mut r = Runner::new(RunnerConfig::default()).unwrap();
        let a = r.add_task(delaying).unwrap();
        let b = r.add_task(counter_task("b", 1)).unwrap();
        r.start().unwrap();
        r.run_for(1_000_000).unwrap();
        let ca_addr = r.task_symbol(a, "counter").unwrap();
        let ca = r.machine_mut().read_word(ca_addr).unwrap();
        let cb_addr = r.task_symbol(b, "counter").unwrap();
        let cb = r.machine_mut().read_word(cb_addr).unwrap();
        assert!(ca >= 1, "delaying task made progress: {ca}");
        assert!(cb > ca * 10, "free-running task dominates: {ca} vs {cb}");
    }

    #[test]
    fn idle_when_all_tasks_blocked() {
        let sleeper = StaticTask {
            name: "s".into(),
            priority: 1,
            source: format!(
                "main:\n movi r1, {op}\n movi r2, 100\n int {vec:#x}\n jmp main\n",
                op = syscall::DELAY,
                vec = layout::SYSCALL_VECTOR,
            ),
            stack_len: 256,
        };
        let mut r = Runner::new(RunnerConfig::default()).unwrap();
        r.add_task(sleeper).unwrap();
        r.start().unwrap();
        r.run_for(500_000).unwrap();
        let idles = r
            .kernel()
            .trace()
            .events()
            .iter()
            .filter(|e| matches!(e.kind, SchedEventKind::Idle))
            .count();
        assert!(idles > 0, "platform idled while the task slept");
    }

    #[test]
    fn tick_count_advances_with_time() {
        let mut r = Runner::new(RunnerConfig::default()).unwrap();
        r.add_task(counter_task("t", 1)).unwrap();
        r.start().unwrap();
        r.run_for(10 * 32_000).unwrap();
        let ticks = r.kernel().tick_count();
        assert!((8..=12).contains(&ticks), "~10 ticks elapsed, got {ticks}");
    }

    #[test]
    fn out_of_memory_detected() {
        let mut r = Runner::new(RunnerConfig::default()).unwrap();
        let huge = StaticTask {
            name: "huge".into(),
            priority: 1,
            source: "main:\n hlt\n".into(),
            stack_len: layout::HEAP_END - layout::HEAP_BASE,
        };
        assert!(matches!(r.add_task(huge), Err(RunnerError::OutOfMemory)));
    }

    #[test]
    fn missing_main_rejected() {
        let mut r = Runner::new(RunnerConfig::default()).unwrap();
        let nomain = StaticTask {
            name: "x".into(),
            priority: 1,
            source: "start:\n hlt\n".into(),
            stack_len: 64,
        };
        assert!(matches!(r.add_task(nomain), Err(RunnerError::NoMain)));
    }
}
