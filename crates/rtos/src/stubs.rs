//! SP32 assembly stubs: interrupt save paths, context restore, idle loop.
//!
//! These are the short trusted routines whose cycle counts the paper
//! measures directly (Tables 2 and 3), so they execute as real guest code
//! rather than modelled firmware. The generator serves both platforms:
//!
//! - [`StubKind::Baseline`] — the unmodified-FreeRTOS interrupt prologue:
//!   save `r0..r6` to the interrupted task's stack, branch to the kernel.
//! - [`StubKind::IntMux`] — TyTAN's trusted interrupt multiplexer (§4):
//!   save the context, **wipe** the registers so a (malicious) interrupt
//!   handler learns nothing about the interrupted task, then branch.
//! - [`StubKind::Syscall`] — like `IntMux` but preserving `r1..r3`, which
//!   carry the syscall arguments the caller deliberately exposes to the OS.
//!
//! Each stub ends by loading its vector into `r0` and jumping to the
//! kernel trap address, where the host-side kernel takes over.

use sp32::asm::{assemble, AssembleError, Program};
use std::collections::BTreeMap;

/// Which interrupt-save behaviour a stub implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StubKind {
    /// Plain FreeRTOS save, no register wipe (baseline platform).
    Baseline,
    /// TyTAN Int Mux: save then wipe all scratch registers.
    IntMux,
    /// TyTAN Int Mux syscall path: save, wipe all but the syscall
    /// arguments in `r1..r3`.
    Syscall,
    /// Hardware-assisted save (the machine's exception engine already
    /// saved and wiped): the stub only loads the vector and branches.
    HwAssisted,
}

/// A stub to generate for one interrupt vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StubSpec {
    /// The IDT vector the stub serves.
    pub vector: u8,
    /// The save behaviour.
    pub kind: StubKind,
}

/// The assembled stub region with the addresses the kernel needs.
#[derive(Debug, Clone)]
pub struct StubBlock {
    /// Entry address of the save stub per vector (IDT entries point here).
    pub save_stubs: BTreeMap<u8, u32>,
    /// Start of the register-wipe phase per vector (Table 2 phase
    /// boundary); absent for [`StubKind::Baseline`] stubs.
    pub wipe_starts: BTreeMap<u8, u32>,
    /// Start of the branch-to-kernel phase per vector (Table 2 boundary).
    pub branch_starts: BTreeMap<u8, u32>,
    /// Entry of the normal-task context-restore stub (pops `r6..r0`,
    /// `IRET`).
    pub restore_stub: u32,
    /// Entry of the idle loop (`sti; hlt;` repeat).
    pub idle: u32,
    /// The assembled program, ready to load at its origin.
    pub program: Program,
}

fn stub_source(spec: StubSpec, trap: u32, dispatch_table: Option<u32>) -> String {
    let v = spec.vector;
    let mut s = String::new();
    s.push_str(&format!("v{v}_save:\n"));
    if spec.kind != StubKind::HwAssisted {
        for r in 0..=6 {
            s.push_str(&format!(" push r{r}\n"));
        }
    }
    match spec.kind {
        StubKind::Baseline | StubKind::HwAssisted => {}
        StubKind::IntMux => {
            s.push_str(&format!("v{v}_wipe:\n"));
            for r in 1..=6 {
                s.push_str(&format!(" xor r{r}, r{r}\n"));
            }
        }
        StubKind::Syscall => {
            s.push_str(&format!("v{v}_wipe:\n"));
            for r in 4..=6 {
                s.push_str(&format!(" xor r{r}, r{r}\n"));
            }
        }
    }
    s.push_str(&format!("v{v}_branch:\n"));
    s.push_str(&format!(" movi r0, {v}\n"));
    // Only the preemption (IntMux) path uses the table: it may clobber
    // scratch registers freely because they were wiped. The syscall path
    // must preserve the live argument registers r1..r3.
    match (dispatch_table, spec.kind) {
        (Some(table), StubKind::IntMux) => {
            // The full Int Mux branch path: mark the multiplexer busy,
            // look the OS handler up in the protected dispatch table,
            // validate it, and branch indirectly (the work behind the
            // paper's 41-cycle branch phase).
            let busy = crate::layout::INTMUX_BUSY_FLAG;
            let entry = table + 4 * u32::from(v);
            s.push_str(&format!(" movi r2, {busy:#x}\n"));
            s.push_str(" movi r3, 1\n");
            s.push_str(" stw [r2], r3\n");
            s.push_str(&format!(" movi r1, {entry:#x}\n"));
            s.push_str(" ldw r1, [r1]\n");
            s.push_str(" cmpi r1, 0\n");
            s.push_str(&format!(" jz v{v}_badvec\n"));
            s.push_str(" jmpr r1\n");
            s.push_str(&format!("v{v}_badvec:\n"));
            s.push_str(&format!(" jmp {trap:#x}\n"));
        }
        _ => {
            s.push_str(&format!(" jmp {trap:#x}\n"));
        }
    }
    s
}

/// Assembles the stub region at `base`, with all stubs branching to the
/// firmware trap at `trap`.
///
/// # Errors
///
/// Returns the assembler error if generation produced invalid source
/// (indicates a bug in the generator, not in caller input).
pub fn build_stub_block(
    base: u32,
    trap: u32,
    specs: &[StubSpec],
) -> Result<StubBlock, AssembleError> {
    build_stub_block_with_table(base, trap, specs, None)
}

/// Like [`build_stub_block`], with an optional Int Mux dispatch table:
/// when given, `IntMux` and `Syscall` stubs branch indirectly through the
/// table (marking the busy flag first) instead of jumping straight to the
/// kernel trap.
///
/// # Errors
///
/// Returns the assembler error if generation produced invalid source.
pub fn build_stub_block_with_table(
    base: u32,
    trap: u32,
    specs: &[StubSpec],
    dispatch_table: Option<u32>,
) -> Result<StubBlock, AssembleError> {
    let mut source = String::new();
    for spec in specs {
        source.push_str(&stub_source(*spec, trap, dispatch_table));
    }
    source.push_str(
        "restore:\n pop r6\n pop r5\n pop r4\n pop r3\n pop r2\n pop r1\n pop r0\n iret\n",
    );
    source.push_str("idle:\n sti\n hlt\n jmp idle\n");

    let program = assemble(&source, base)?;
    let sym = |name: &str| program.symbol(name).expect("generated label exists");
    let mut save_stubs = BTreeMap::new();
    let mut wipe_starts = BTreeMap::new();
    let mut branch_starts = BTreeMap::new();
    for spec in specs {
        let v = spec.vector;
        save_stubs.insert(v, sym(&format!("v{v}_save")));
        if !matches!(spec.kind, StubKind::Baseline | StubKind::HwAssisted) {
            wipe_starts.insert(v, sym(&format!("v{v}_wipe")));
        }
        branch_starts.insert(v, sym(&format!("v{v}_branch")));
    }
    Ok(StubBlock {
        save_stubs,
        wipe_starts,
        branch_starts,
        restore_stub: sym("restore"),
        idle: sym("idle"),
        program,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout;

    fn specs() -> Vec<StubSpec> {
        vec![
            StubSpec {
                vector: layout::TICK_VECTOR,
                kind: StubKind::IntMux,
            },
            StubSpec {
                vector: layout::SYSCALL_VECTOR,
                kind: StubKind::Syscall,
            },
            StubSpec {
                vector: layout::IPC_VECTOR,
                kind: StubKind::IntMux,
            },
        ]
    }

    #[test]
    fn builds_all_labels() {
        let block = build_stub_block(0x400, 0x7fc, &specs()).unwrap();
        assert_eq!(block.save_stubs.len(), 3);
        assert_eq!(block.wipe_starts.len(), 3);
        assert_eq!(block.branch_starts.len(), 3);
        assert!(block.restore_stub > *block.save_stubs.values().max().unwrap());
        assert!(block.idle > block.restore_stub);
        assert!(!block.program.bytes.is_empty());
    }

    #[test]
    fn baseline_stub_has_no_wipe_phase() {
        let block = build_stub_block(
            0x400,
            0x7fc,
            &[StubSpec {
                vector: 32,
                kind: StubKind::Baseline,
            }],
        )
        .unwrap();
        assert!(block.wipe_starts.is_empty());
        // Baseline branch phase starts right after the 7 pushes.
        assert_eq!(block.branch_starts[&32], block.save_stubs[&32] + 7 * 4);
    }

    #[test]
    fn intmux_wipe_is_six_xors() {
        let block = build_stub_block(
            0x400,
            0x7fc,
            &[StubSpec {
                vector: 32,
                kind: StubKind::IntMux,
            }],
        )
        .unwrap();
        let wipe_len = block.branch_starts[&32] - block.wipe_starts[&32];
        assert_eq!(wipe_len, 6 * 4);
    }

    #[test]
    fn syscall_stub_preserves_argument_registers() {
        let block = build_stub_block(
            0x400,
            0x7fc,
            &[StubSpec {
                vector: 0x21,
                kind: StubKind::Syscall,
            }],
        )
        .unwrap();
        // Only r4..r6 wiped: 3 xors.
        let wipe_len = block.branch_starts[&0x21] - block.wipe_starts[&0x21];
        assert_eq!(wipe_len, 3 * 4);
    }

    #[test]
    fn stubs_fit_in_kernel_region() {
        let block = build_stub_block(layout::KERNEL_BASE, layout::KERNEL_TRAP, &specs()).unwrap();
        assert!(
            (block.program.bytes.len() as u32) < layout::KERNEL_CODE_LEN - 4,
            "stub block overflows kernel code region"
        );
    }
}
